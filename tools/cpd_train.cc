// Command-line front end: train CPD on TSV dumps and emit the profiles,
// without writing any C++. Input format (see graph/graph_io.h):
//   docs.tsv:      user_id <TAB> time_bin <TAB> raw text
//   friends.tsv:   u <TAB> v
//   diffusion.tsv: doc_row_i <TAB> doc_row_j <TAB> time_bin
//
// Usage:
//   cpd_train --users N --docs docs.tsv --friends friends.tsv
//             --diffusion diffusion.tsv [--communities 20] [--topics 20]
//             [--iterations 15] [--threads 1] [--seed 42]
//             [--sampler sparse|dense] [--mh_steps 4]
//             [--executor auto|serial|pooled|distributed] [--shards 0]
//             [--workers N | --worker_addrs H:P,H:P] [--worker_binary PATH]
//             [--sweep_deadline_ms 30000]
//             [--model out.cpd] [--model_binary out.cpdb]
//             [--vocab out.vocab] [--dot diffusion.dot]
//             [--json profiles.json]
//             [--trace_out sweeps.json] [--log_level info]
//
// --trace_out writes a Chrome trace-event JSON timeline of the run (one
// span per sweep phase, per-worker rows for the distributed executor);
// load it in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Prints dataset statistics, training progress, community labels and the
// topic-aggregated diffusion matrix; optionally saves the model (text
// and/or binary .cpdb for cpd_query), the vocabulary, and the Fig. 7-style
// visualization exports.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "apps/visualization.h"
#include "core/cpd_model.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/file_util.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --users N --docs docs.tsv --friends friends.tsv "
               "--diffusion diffusion.tsv\n"
               "          [--communities 20] [--topics 20] [--iterations 15]\n"
               "          [--threads 1] [--seed 42] [--sampler sparse|dense]\n"
               "          [--mh_steps 4]\n"
               "          [--executor auto|serial|pooled|distributed]\n"
               "          [--workers N | --worker_addrs H:P,H:P]\n"
               "          [--worker_binary PATH] [--sweep_deadline_ms 30000]\n"
               "          [--shards 0] [--model out.cpd]\n"
               "          [--model_binary out.cpdb] [--artifact_version 3]\n"
               "          [--vocab out.vocab]\n"
               "          [--dot out.dot] [--json out.json]\n"
               "          [--trace_out sweeps.json]\n"
               "          [--log_level debug|info|warning|error|off]\n",
               argv0);
}

const std::set<std::string> kKnownFlags = {
    "users",    "docs",     "friends",      "diffusion", "communities",
    "topics",   "iterations", "threads",    "seed",      "sampler",
    "mh_steps", "executor", "shards",       "model",     "model_binary",
    "vocab",    "dot",      "json",         "workers",   "worker_addrs",
    "worker_binary", "sweep_deadline_ms", "trace_out", "log_level",
    "artifact_version"};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = cpd::ParseFlags(argc, argv, kKnownFlags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    Usage(argv[0]);
    return 2;
  }
  cpd::FlagMap args = std::move(*parsed);
  auto get = [&args](const std::string& key, const std::string& fallback) {
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };
  // Typed flag parsing: a mistyped numeric flag is a usage error (exit 2),
  // identically to cpd_query / cpd_serve.
  const auto usage = [argv] { Usage(argv[0]); };
  const auto int_flag = [&args, &usage](const std::string& name,
                                        int64_t fallback) {
    return cpd::GetInt64FlagOrExit(args, name, fallback, usage);
  };
  if (!args.count("users") || !args.count("docs") || !args.count("friends") ||
      !args.count("diffusion")) {
    Usage(argv[0]);
    return 2;
  }

  const size_t num_users = cpd::GetUint64FlagOrExit(args, "users", 0, usage);
  std::printf("loading graph (%zu users)...\n", num_users);
  auto graph = cpd::LoadSocialGraph(num_users, args["docs"], args["friends"],
                                    args["diffusion"]);
  if (!graph.ok()) {
    std::fprintf(stderr, "load failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", cpd::GraphStatsToString(cpd::ComputeGraphStats(*graph)).c_str());

  cpd::CpdConfig config;
  config.num_communities = static_cast<int>(int_flag("communities", 20));
  config.num_topics = static_cast<int>(int_flag("topics", 20));
  config.em_iterations = static_cast<int>(int_flag("iterations", 15));
  config.num_threads = static_cast<int>(int_flag("threads", 1));
  config.seed = cpd::GetUint64FlagOrExit(args, "seed", 42, usage);
  const std::string sampler = get("sampler", "sparse");
  if (sampler == "dense") {
    config.sampler_mode = cpd::SamplerMode::kDense;
  } else if (sampler != "sparse") {
    std::fprintf(stderr, "unknown --sampler '%s' (sparse|dense)\n",
                 sampler.c_str());
    return 2;
  }
  config.mh_steps =
      static_cast<int>(int_flag("mh_steps", cpd::CpdConfig().mh_steps));
  const std::string executor = get("executor", "auto");
  if (executor == "serial") {
    config.executor_mode = cpd::ExecutorMode::kSerial;
  } else if (executor == "pooled") {
    config.executor_mode = cpd::ExecutorMode::kPooled;
  } else if (executor == "distributed") {
    config.executor_mode = cpd::ExecutorMode::kDistributed;
  } else if (executor != "auto") {
    std::fprintf(stderr,
                 "unknown --executor '%s' (auto|serial|pooled|distributed)\n",
                 executor.c_str());
    Usage(argv[0]);
    return 2;
  }
  config.num_shards = static_cast<int>(int_flag("shards", 0));
  // Distributed-executor wiring. The flag pairings are validated here so a
  // contradictory invocation is a usage error (exit 2), not a late training
  // failure.
  config.dist_workers = static_cast<int>(int_flag("workers", 0));
  config.dist_worker_addrs = get("worker_addrs", "");
  config.dist_worker_binary = get("worker_binary", "");
  config.dist_sweep_deadline_ms = static_cast<int>(
      int_flag("sweep_deadline_ms", cpd::CpdConfig().dist_sweep_deadline_ms));
  if (config.dist_workers > 0 && !config.dist_worker_addrs.empty()) {
    std::fprintf(stderr,
                 "--workers and --worker_addrs are mutually exclusive\n");
    Usage(argv[0]);
    return 2;
  }
  const bool has_dist_flags =
      config.dist_workers > 0 || !config.dist_worker_addrs.empty();
  if (config.executor_mode == cpd::ExecutorMode::kDistributed &&
      !has_dist_flags) {
    std::fprintf(stderr,
                 "--executor distributed requires --workers N or "
                 "--worker_addrs H:P,...\n");
    Usage(argv[0]);
    return 2;
  }
  if (config.executor_mode != cpd::ExecutorMode::kDistributed &&
      has_dist_flags) {
    std::fprintf(stderr,
                 "--workers/--worker_addrs require --executor distributed\n");
    Usage(argv[0]);
    return 2;
  }
  config.verbose = true;
  config.trace_out = get("trace_out", "");
  if (args.count("log_level")) {
    auto level = cpd::ParseLogLevel(args["log_level"]);
    if (!level.ok()) {
      std::fprintf(stderr, "%s\n", level.status().message().c_str());
      Usage(argv[0]);
      return 2;
    }
    cpd::SetLogLevel(*level);
  }

  std::printf("training CPD: |C|=%d |Z|=%d T1=%d threads=%d...\n",
              config.num_communities, config.num_topics, config.em_iterations,
              config.num_threads);
  cpd::WallTimer timer;
  auto model = cpd::CpdModel::Train(*graph, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  const cpd::TrainStats& stats = model->stats();
  std::printf("trained in %.1fs (E-step %.1fs [snapshot %.2fs, merge %.2fs], "
              "M-step %.1fs)\n",
              timer.ElapsedSeconds(), stats.e_step_seconds,
              stats.snapshot_seconds, stats.merge_seconds,
              stats.m_step_seconds);
  const int64_t collapse_total =
      stats.eta_collapse_hits + stats.eta_collapse_misses;
  std::printf("delta E-step: %zu doc moves merged; eta-collapse cache hit "
              "rate %.2f (%lld lookups)\n\n",
              stats.delta_doc_moves,
              collapse_total > 0
                  ? static_cast<double>(stats.eta_collapse_hits) /
                        static_cast<double>(collapse_total)
                  : 0.0,
              static_cast<long long>(collapse_total));
  if (stats.dist_workers_connected > 0) {
    std::printf("distributed E-step: %d workers (%d lost, %lld shards "
                "re-dispatched); %.1f MB out, %.1f MB in; serialize %.2fs, "
                "wait %.2fs\n",
                stats.dist_workers_connected, stats.dist_workers_lost,
                static_cast<long long>(stats.dist_shards_redispatched),
                static_cast<double>(stats.dist_bytes_out) / 1e6,
                static_cast<double>(stats.dist_bytes_in) / 1e6,
                stats.dist_serialize_seconds, stats.dist_wait_seconds);
  }

  const cpd::Vocabulary& vocab = graph->corpus().vocabulary();
  std::printf("communities:\n");
  for (int c = 0; c < model->num_communities(); ++c) {
    std::printf("  c%02d: %s\n", c,
                cpd::CommunityLabel(*model, vocab, c, 5).c_str());
  }
  std::printf("\ntopic-aggregated diffusion profile (row diffuses column):\n");
  for (int c = 0; c < model->num_communities(); ++c) {
    std::printf("  c%02d:", c);
    for (int c2 = 0; c2 < model->num_communities(); ++c2) {
      std::printf(" %.3f", model->EtaAggregated(c, c2));
    }
    std::printf("\n");
  }

  if (args.count("model")) {
    const cpd::Status status = model->SaveToFile(args["model"]);
    if (!status.ok()) {
      std::fprintf(stderr, "model save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nmodel -> %s\n", args["model"].c_str());
  }
  if (args.count("model_binary")) {
    // The vocabulary is bundled into the artifact so cpd_query and
    // cpd_serve need no side --vocab file. --artifact_version 1|2 keeps
    // emitting the legacy heap-only layouts for older readers; the default
    // v3 is page-aligned for zero-copy mmap serving.
    cpd::ArtifactWriteOptions write_options;
    write_options.version = static_cast<uint32_t>(cpd::GetInt64FlagOrExit(
        args, "artifact_version", write_options.version, usage));
    const cpd::Status status =
        model->SaveBinary(args["model_binary"], &vocab, write_options);
    if (!status.ok()) {
      std::fprintf(stderr, "binary model save failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("binary model -> %s (vocabulary bundled; serve it with "
                "cpd_query or cpd_serve)\n",
                args["model_binary"].c_str());
  }
  if (args.count("vocab")) {
    const cpd::Status status = vocab.SaveToFile(args["vocab"]);
    if (!status.ok()) {
      std::fprintf(stderr, "vocab save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("vocabulary -> %s\n", args["vocab"].c_str());
  }
  cpd::VisualizationOptions viz;
  if (args.count("dot")) {
    const cpd::Status status = cpd::WriteStringToFile(
        args["dot"], cpd::ExportDiffusionDot(*model, vocab, viz));
    if (!status.ok()) {
      std::fprintf(stderr, "dot export failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("visualization -> %s\n", args["dot"].c_str());
  }
  if (args.count("json")) {
    const cpd::Status status = cpd::WriteStringToFile(
        args["json"], cpd::ExportProfilesJson(*model, vocab, viz));
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("profiles -> %s\n", args["json"].c_str());
  }
  return 0;
}
