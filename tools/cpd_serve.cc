// HTTP serving front end: load a ".cpdb" artifact (vocabulary bundled in
// v2 artifacts; --vocab overrides) into a hot-swappable ModelRegistry and
// serve the four query types as JSON endpoints until SIGINT/SIGTERM.
//
// Usage:
//   cpd_serve --model model.cpdb [--vocab vocab.tsv] [--top_k 5]
//             [--precompute 1]
//             [--port 8080] [--host 127.0.0.1] [--threads 4]
//             [--io_mode epoll|blocking] [--max_connections 1024]
//             [--coalesce_window_us 0] [--coalesce_max 16]
//             [--max_inflight 64] [--deadline_ms 0]
//             [--log_level info] [--metrics on|off] [--slow_request_ms 500]
//             [--users N --docs docs.tsv --friends friends.tsv
//              --diffusion diffusion.tsv]   (enables diffusion queries AND
//                                            streaming ingest)
//             [--warm_iters 2] [--ingest_threads 1] [--ingest_out base]
//
// Endpoints (see docs/HTTP_API.md for the wire format):
//   POST /v1/query              single {"type":...} or {"batch":[...]}
//   GET  /v1/membership/{user}  ?k=N&distribution=1
//   GET  /v1/models             loaded models (name, generation, ...)
//   POST /v1/models/{m}/query   query a named model
//   GET  /v1/models/{m}/membership/{user}
//   GET  /healthz | /statsz
//   POST /admin/reload          re-reads --model (or {"path":...} switch;
//                               {"model":...} addresses a named model)
//   POST /admin/ingest          UpdateBatch JSON -> warm-started model ->
//                               fresh artifact -> zero-downtime swap
//                               (needs the training-graph quartet above;
//                                artifacts land at <--ingest_out>.gN.cpdb,
//                                default <--model>)
//
// I/O: --io_mode epoll (default) multiplexes up to --max_connections on an
// event loop; blocking is the thread-per-connection path (--threads is then
// also the connection cap). --coalesce_window_us > 0 micro-batches
// concurrent single queries through the batched scoring path.
//
// Overload returns 429 + Retry-After; requests over --deadline_ms return
// 504; SIGINT drains in-flight requests before exiting.

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "core/cpd_model.h"
#include "graph/graph_io.h"
#include "ingest/ingest_pipeline.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "text/vocabulary.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --model model.cpdb [--vocab vocab.tsv] [--top_k 5]\n"
               "          [--precompute 1] [--load_mode auto|heap|mmap]\n"
               "          [--port 8080] [--host 127.0.0.1] [--threads 4]\n"
               "          [--io_mode epoll|blocking] [--max_connections "
               "1024]\n"
               "          [--coalesce_window_us 0] [--coalesce_max 16]\n"
               "          [--max_inflight 64] [--deadline_ms 0]\n"
               "          [--log_level debug|info|warning|error|off]\n"
               "          [--metrics on|off] [--slow_request_ms 500]\n"
               "          [--users N --docs docs.tsv --friends friends.tsv "
               "--diffusion diffusion.tsv]\n"
               "          [--warm_iters 2] [--ingest_threads 1] "
               "[--ingest_out base] [--emit_delta 0]\n",
               argv0);
}

const std::set<std::string> kKnownFlags = {
    "model", "vocab",   "top_k",        "port",        "host",
    "threads", "users", "docs",         "friends",     "diffusion",
    "max_inflight",     "deadline_ms",  "warm_iters",  "ingest_threads",
    "ingest_out",       "io_mode",      "max_connections",
    "coalesce_window_us", "coalesce_max", "precompute",
    "log_level", "metrics", "slow_request_ms",
    "load_mode", "emit_delta"};

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

}  // namespace

int main(int argc, char** argv) {
  auto parsed = cpd::ParseFlags(argc, argv, kKnownFlags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    Usage(argv[0]);
    return 2;
  }
  cpd::FlagMap args = std::move(*parsed);
  if (!args.count("model")) {
    Usage(argv[0]);
    return 2;
  }
  // Typed flag parsing: a mistyped numeric flag is a usage error (exit 2),
  // identically to cpd_train / cpd_query.
  const auto usage = [argv] { Usage(argv[0]); };
  const auto int_flag = [&args, &usage](const std::string& name,
                                        int64_t fallback) {
    return cpd::GetInt64FlagOrExit(args, name, fallback, usage);
  };

  if (args.count("log_level")) {
    auto level = cpd::ParseLogLevel(args["log_level"]);
    if (!level.ok()) {
      std::fprintf(stderr, "%s\n", level.status().message().c_str());
      Usage(argv[0]);
      return 2;
    }
    cpd::SetLogLevel(*level);
  }
  bool metrics_enabled = true;
  if (args.count("metrics")) {
    if (args["metrics"] == "off") {
      metrics_enabled = false;
    } else if (args["metrics"] != "on") {
      std::fprintf(stderr, "--metrics must be on|off, got '%s'\n",
                   args["metrics"].c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  cpd::serve::ProfileIndexOptions index_options;
  index_options.membership_top_k =
      static_cast<int>(int_flag("top_k", index_options.membership_top_k));
  // --precompute 0 serves through the naive reference kernels (saves
  // (|C|+|V|+|C|^2)*|Z| doubles of index memory per generation).
  index_options.precompute_scoring = int_flag("precompute", 1) != 0;
  // --load_mode mmap serves the v3 artifact straight off the page cache
  // (and makes non-v3 inputs a hard error); heap forces the copying
  // reference path; auto (default) maps v3 and copies everything else.
  if (args.count("load_mode")) {
    auto mode = cpd::serve::ParseArtifactLoadMode(args["load_mode"]);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().message().c_str());
      Usage(argv[0]);
      return 2;
    }
    index_options.load_mode = *mode;
  }

  std::shared_ptr<const cpd::SocialGraph> graph;
  if (args.count("docs")) {
    if (!args.count("users") || !args.count("friends") ||
        !args.count("diffusion")) {
      std::fprintf(stderr,
                   "diffusion queries need --users, --docs, --friends and "
                   "--diffusion together\n");
      return 2;
    }
    const uint64_t users = cpd::GetUint64FlagOrExit(args, "users", 0, usage);
    auto loaded = cpd::LoadSocialGraph(users, args["docs"], args["friends"],
                                       args["diffusion"]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "graph load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::make_shared<const cpd::SocialGraph>(std::move(*loaded));
  }

  cpd::server::ModelRegistry registry(index_options, graph);
  if (args.count("vocab")) {
    auto vocab = cpd::Vocabulary::LoadFromFile(args["vocab"]);
    if (!vocab.ok()) {
      std::fprintf(stderr, "vocab load failed: %s\n",
                   vocab.status().ToString().c_str());
      return 1;
    }
    registry.SetVocabularyOverride(
        std::make_shared<const cpd::Vocabulary>(std::move(*vocab)));
  }
  const cpd::Status loaded = registry.LoadFrom(args["model"]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  {
    // Scoped: holding this snapshot for the process lifetime would pin
    // generation 1 in memory across every future hot reload.
    const auto model = registry.Snapshot();
    if (model->vocabulary == nullptr) {
      CPD_LOG(Warning)
          << "no vocabulary (v1 artifact without --vocab): textual rank "
             "queries disabled, send word ids";
    }
  }

  // Streaming ingest: with the training graph loaded, POST /admin/ingest
  // warm-starts the model and swaps fresh artifacts through the registry.
  std::unique_ptr<cpd::ingest::IngestPipeline> pipeline;
  if (graph != nullptr) {
    // Pipeline-setup failures only disable the ingest route (it answers
    // 409); read traffic keeps serving — e.g. a text-format artifact (the
    // registry sniffs it, but warm starts need the binary form) or a
    // graph/model mismatch.
    auto trained = cpd::CpdModel::LoadBinary(args["model"]);
    if (!trained.ok()) {
      CPD_LOG(Warning) << "ingest disabled (model not loadable as .cpdb): "
                       << trained.status().ToString();
    } else {
      cpd::ingest::IngestOptions ingest_options;
      ingest_options.config = trained->config();
      ingest_options.config.num_communities = trained->num_communities();
      ingest_options.config.num_topics = trained->num_topics();
      ingest_options.config.num_threads =
          static_cast<int>(int_flag("ingest_threads", 1));
      ingest_options.warm_iterations =
          static_cast<int>(int_flag("warm_iters", 2));
      ingest_options.artifact_base =
          args.count("ingest_out") ? args["ingest_out"] : args["model"];
      // --emit_delta 1: each batch also writes the ".cpdd" diff against the
      // previous generation, and /admin/ingest swaps it in copy-on-write
      // when the serving model is mmap-backed.
      ingest_options.write_delta = int_flag("emit_delta", 0) != 0;
      ingest_options.base_generation =
          registry.Snapshot()->index.artifact_generation();
      auto created = cpd::ingest::IngestPipeline::Create(graph, *trained,
                                                         ingest_options);
      if (!created.ok()) {
        CPD_LOG(Warning) << "ingest disabled: "
                         << created.status().ToString();
      } else {
        pipeline = std::move(*created);
        std::printf("streaming ingest enabled (POST /admin/ingest, "
                    "artifacts at %s.gN.cpdb)\n",
                    ingest_options.artifact_base.c_str());
      }
    }
  }

  cpd::server::HttpServerOptions options;
  options.host = args.count("host") ? args["host"] : options.host;
  options.port = static_cast<int>(int_flag("port", 8080));
  options.threads = static_cast<int>(int_flag("threads", options.threads));
  // The serving binary defaults to the event loop; the library default
  // stays blocking so embedded/test users opt in explicitly.
  options.io_mode = cpd::server::IoMode::kEpoll;
  if (args.count("io_mode")) {
    auto mode = cpd::server::ParseIoMode(args["io_mode"]);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().message().c_str());
      Usage(argv[0]);
      return 2;
    }
    options.io_mode = *mode;
  }
  options.max_connections =
      static_cast<int>(int_flag("max_connections", options.max_connections));
  options.max_inflight =
      static_cast<int>(int_flag("max_inflight", options.max_inflight));
  options.deadline_ms =
      static_cast<int>(int_flag("deadline_ms", options.deadline_ms));
  // Requests slower than this get a Warning line with the per-stage
  // breakdown (0 disables the slow log).
  options.slow_request_us = int_flag("slow_request_ms", 500) * 1000;

  cpd::server::CoalescerOptions coalescer_options;
  coalescer_options.window_us =
      static_cast<int>(int_flag("coalesce_window_us", 0));
  coalescer_options.max_batch = static_cast<int>(int_flag("coalesce_max", 16));
  cpd::server::Coalescer coalescer(coalescer_options);
  if (coalescer.enabled()) {
    std::printf("request coalescing enabled (window %d us, max batch %d)\n",
                coalescer_options.window_us, coalescer_options.max_batch);
  }

  cpd::server::HttpServer server(options);
  cpd::server::ServiceStats stats;
  stats.set_metrics_enabled(metrics_enabled);
  cpd::server::RegisterCpdRoutes(&server, &registry, &stats, pipeline.get(),
                                 &coalescer);
  const cpd::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving %s on http://%s:%d/ (Ctrl-C drains and exits)\n",
              args["model"].c_str(), options.host.c_str(), server.port());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down...\n");
  server.Stop();
  return 0;
}
