#!/usr/bin/env bash
# Docs gate (run from anywhere; CI's docs job runs it on every push):
#   1. every relative markdown link in README.md and docs/*.md must resolve
#      to an existing file (anchors are stripped; http(s) links skipped);
#   2. every HTTP route registered in src/server/json_api.cc must appear in
#      docs/HTTP_API.md, so new endpoints cannot ship undocumented;
#   3. every metric family name ("cpd_..." string literal in src/**/*.cc)
#      must appear in the docs/OBSERVABILITY.md catalog, so new metrics
#      cannot ship undocumented.
# Exits non-zero listing every violation.

set -u
cd "$(dirname "$0")/.."

failures=0

# ----- 1. intra-repo markdown links -----
while IFS= read -r file; do
  dir=$(dirname "$file")
  # Extract (target) of [text](target), tolerating several links per line.
  grep -oE '\]\([^)]+\)' "$file" | sed -e 's/^](//' -e 's/)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"            # Strip the anchor.
    [ -z "$path" ] && continue      # Pure same-file anchor.
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $file -> $target"
      exit 1                        # Subshell: flag via exit status.
    fi
  done || failures=1
done < <(ls README.md docs/*.md 2>/dev/null)

# ----- 2. route coverage in docs/HTTP_API.md -----
api_doc=docs/HTTP_API.md
if [ ! -f "$api_doc" ]; then
  echo "MISSING: $api_doc"
  failures=1
else
  # Route patterns are the second string literal of server->Handle(...).
  routes=$(grep -A1 -E 'server->Handle\(' src/server/json_api.cc |
           grep -oE '"/[^"]*"' | tr -d '"' | sort -u)
  if [ -z "$routes" ]; then
    echo "ERROR: no routes extracted from src/server/json_api.cc" \
         "(did the registration idiom change?)"
    failures=1
  fi
  for route in $routes; do
    if ! grep -qF "$route" "$api_doc"; then
      echo "UNDOCUMENTED ROUTE: $route (registered in" \
           "src/server/json_api.cc, absent from $api_doc)"
      failures=1
    fi
  done
fi

# ----- 3. metric-family coverage in docs/OBSERVABILITY.md -----
obs_doc=docs/OBSERVABILITY.md
if [ ! -f "$obs_doc" ]; then
  echo "MISSING: $obs_doc"
  failures=1
else
  # Family names are string literals at their registration / exposition
  # sites (.cc only; headers mention names in prose comments).
  metrics=$(grep -rhoE '"cpd_[a-z0-9_]+"' --include='*.cc' src |
            tr -d '"' | sort -u)
  if [ -z "$metrics" ]; then
    echo "ERROR: no metric families extracted from src/**/*.cc" \
         "(did the registration idiom change?)"
    failures=1
  fi
  for metric in $metrics; do
    if ! grep -qF "$metric" "$obs_doc"; then
      echo "UNDOCUMENTED METRIC: $metric (registered in src, absent from" \
           "$obs_doc)"
      failures=1
    fi
  done
fi

if [ "$failures" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK (links resolve, every route and metric documented)"
