// Serving front end for trained models: load a binary ".cpdb" artifact (or
// a legacy text model) into a ProfileIndex and answer the four §5 query
// types through the QueryEngine — interactively (REPL on stdin) or as a
// batch file fanned out over a thread pool. v2 artifacts bundle the
// vocabulary, so textual `rank` queries work without --vocab (the flag
// remains as an override).
//
// Usage:
//   cpd_query --model model.cpdb [--vocab vocab.tsv] [--top_k 5]
//             [--users N --docs docs.tsv --friends friends.tsv
//              --diffusion diffusion.tsv]                 (enables `diffusion`)
//             [--batch queries.txt] [--threads 4]
//
// Commands (one per line):
//   membership <user> [k]          top-k communities of a user
//   rank <term> [term...]          Eq. 19 community ranking for a query
//                                  (terms are vocabulary words with --vocab,
//                                  numeric word ids otherwise)
//   topusers <community> [k]       strongest members of a community
//   diffusion <u> <v> <doc> <t>    Eq. 18 diffusion probability
//   help | quit
//
// The REPL answers one query at a time; --batch parses every line first,
// runs them through QueryEngine::QueryBatch (--threads workers), and prints
// the responses in input order.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/community_ranking.h"
#include "graph/graph_io.h"
#include "parallel/thread_pool.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "text/vocabulary.h"
#include "util/file_util.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using cpd::serve::ProfileIndex;
using cpd::serve::QueryEngine;
using cpd::serve::QueryRequest;
using cpd::serve::QueryResponse;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --model model.cpdb [--vocab vocab.tsv] [--top_k 5]\n"
               "          [--precompute 1] [--users N --docs docs.tsv "
               "--friends friends.tsv --diffusion diffusion.tsv]\n"
               "          [--batch queries.txt] [--threads 1]\n"
               "commands: membership <user> [k] | rank <term...> |\n"
               "          topusers <community> [k] | diffusion <u> <v> <doc> "
               "<t> | help | quit\n",
               argv0);
}

const std::set<std::string> kKnownFlags = {
    "model", "vocab", "top_k",     "users",  "docs",
    "friends", "diffusion", "batch", "threads", "precompute"};

/// Parses one command line into a typed request. `vocab` may be null (rank
/// terms are then numeric word ids).
cpd::StatusOr<QueryRequest> ParseCommand(const std::string& line,
                                         const cpd::Vocabulary* vocab) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  auto malformed = [&command](const std::string& expect) {
    return cpd::Status::InvalidArgument("usage: " + command + " " + expect);
  };
  if (command == "membership") {
    cpd::serve::MembershipRequest request;
    if (!(in >> request.user)) return malformed("<user> [k]");
    in >> request.top_k;
    request.include_distribution = false;
    return QueryRequest(request);
  }
  if (command == "rank") {
    cpd::serve::RankCommunitiesRequest request;
    if (vocab != nullptr) {
      // Same tokenization as the offline app: stem against the vocabulary,
      // fall back to raw tokens (synthetic vocabularies are unstemmed).
      std::string text;
      std::getline(in, text);
      request.words = cpd::CommunityRanker::ParseQuery(*vocab, text);
      if (request.words.empty()) {
        return cpd::Status::NotFound("no query term is in the vocabulary:" +
                                     text);
      }
    } else {
      std::string term;
      while (in >> term) {
        char* end = nullptr;
        const auto w =
            static_cast<cpd::WordId>(std::strtol(term.c_str(), &end, 10));
        if (end == term.c_str() || *end != '\0') {
          return cpd::Status::InvalidArgument(
              "no --vocab loaded; rank takes numeric word ids, got: " + term);
        }
        request.words.push_back(w);
      }
      if (request.words.empty()) return malformed("<term> [term...]");
    }
    request.top_k = 5;
    return QueryRequest(request);
  }
  if (command == "topusers") {
    cpd::serve::TopUsersRequest request;
    if (!(in >> request.community)) return malformed("<community> [k]");
    if (!(in >> request.top_k)) request.top_k = 10;
    return QueryRequest(request);
  }
  if (command == "diffusion") {
    cpd::serve::DiffusionRequest request;
    if (!(in >> request.source >> request.target >> request.document >>
          request.time_bin)) {
      return malformed("<source_user> <target_user> <doc> <time_bin>");
    }
    return QueryRequest(request);
  }
  return cpd::Status::InvalidArgument("unknown command: " + command +
                                      " (try: help)");
}

void PrintResponse(const QueryResponse& response, const ProfileIndex& index,
                   const cpd::Vocabulary* vocab) {
  if (const auto* membership =
          std::get_if<cpd::serve::MembershipResponse>(&response)) {
    for (const auto& entry : membership->top) {
      std::printf("  c%02d  %.4f\n", entry.community, entry.weight);
    }
    return;
  }
  if (const auto* ranked =
          std::get_if<cpd::serve::RankCommunitiesResponse>(&response)) {
    for (const auto& entry : ranked->ranked) {
      std::printf("  c%02d  score %.6g", entry.community, entry.score);
      if (!entry.topic_distribution.empty() && vocab != nullptr) {
        // Label with the top word of the dominant query topic.
        size_t best_z = 0;
        for (size_t z = 1; z < entry.topic_distribution.size(); ++z) {
          if (entry.topic_distribution[z] > entry.topic_distribution[best_z]) {
            best_z = z;
          }
        }
        const auto phi = index.TopicWords(static_cast<int>(best_z));
        size_t best_w = 0;
        for (size_t w = 1; w < phi.size(); ++w) {
          if (phi[w] > phi[best_w]) best_w = w;
        }
        std::printf("  (topic %zu: %s)", best_z,
                    vocab->WordOf(static_cast<cpd::WordId>(best_w)).c_str());
      }
      std::printf("\n");
    }
    return;
  }
  if (const auto* diffusion =
          std::get_if<cpd::serve::DiffusionResponse>(&response)) {
    std::printf("  p(diffuse) = %.6f   p(friend) = %.6f\n",
                diffusion->probability, diffusion->friendship_score);
    return;
  }
  const auto& top_users = std::get<cpd::serve::TopUsersResponse>(response);
  for (size_t i = 0; i < top_users.users.size(); ++i) {
    std::printf("  u%-6d  %.4f\n", top_users.users[i], top_users.weights[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = cpd::ParseFlags(argc, argv, kKnownFlags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    Usage(argv[0]);
    return 2;
  }
  cpd::FlagMap args = std::move(*parsed);
  if (!args.count("model")) {
    Usage(argv[0]);
    return 2;
  }
  // Typed flag parsing: a mistyped numeric flag is a usage error (exit 2),
  // identically to cpd_train / cpd_serve.
  const auto usage = [argv] { Usage(argv[0]); };
  const auto int_flag = [&args, &usage](const std::string& name,
                                        int64_t fallback) {
    return cpd::GetInt64FlagOrExit(args, name, fallback, usage);
  };

  cpd::serve::ProfileIndexOptions options;
  options.membership_top_k =
      static_cast<int>(int_flag("top_k", options.membership_top_k));
  // --precompute 0 skips the query-invariant scoring tables (naive
  // reference kernels; saves (|C|+|V|+|C|^2)*|Z| doubles of index memory).
  options.precompute_scoring = int_flag("precompute", 1) != 0;
  cpd::WallTimer load_timer;
  auto bundle = cpd::serve::LoadModelBundle(args["model"], options);
  if (!bundle.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  const ProfileIndex* index = &bundle->index;
  std::printf("loaded %s in %.0f ms: |C|=%d |Z|=%d users=%zu vocab=%zu%s\n",
              args["model"].c_str(), load_timer.ElapsedMillis(),
              index->num_communities(), index->num_topics(),
              index->num_users(), index->vocab_size(),
              bundle->vocabulary != nullptr ? " (vocabulary bundled)" : "");

  // --vocab overrides the artifact's bundled vocabulary; without either,
  // rank queries take numeric word ids.
  std::optional<cpd::Vocabulary> vocab;
  if (args.count("vocab")) {
    auto loaded = cpd::Vocabulary::LoadFromFile(args["vocab"]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "vocab load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (loaded->size() != index->vocab_size()) {
      std::fprintf(stderr, "vocab has %zu words, model expects %zu\n",
                   loaded->size(), index->vocab_size());
      return 1;
    }
    vocab = std::move(*loaded);
  }

  std::optional<cpd::SocialGraph> graph;
  if (args.count("docs")) {
    if (!args.count("users") || !args.count("friends") ||
        !args.count("diffusion")) {
      std::fprintf(stderr,
                   "diffusion queries need --users, --docs, --friends and "
                   "--diffusion together\n");
      return 2;
    }
    const uint64_t users = cpd::GetUint64FlagOrExit(args, "users", 0, usage);
    auto loaded = cpd::LoadSocialGraph(users, args["docs"], args["friends"],
                                       args["diffusion"]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "graph load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  }

  const QueryEngine engine(*index, graph ? &*graph : nullptr);
  const cpd::Vocabulary* vocab_ptr =
      vocab ? &*vocab : bundle->vocabulary.get();

  if (args.count("batch")) {
    auto lines = cpd::ReadLines(args["batch"]);
    if (!lines.ok()) {
      std::fprintf(stderr, "batch read failed: %s\n",
                   lines.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> commands;
    std::vector<QueryRequest> requests;
    for (const std::string& line : *lines) {
      if (line.empty() || line[0] == '#') continue;
      auto request = ParseCommand(line, vocab_ptr);
      if (!request.ok()) {
        std::fprintf(stderr, "%s: %s\n", line.c_str(),
                     request.status().ToString().c_str());
        return 1;
      }
      commands.push_back(line);
      requests.push_back(std::move(*request));
    }
    const int threads =
        std::max(1, static_cast<int>(int_flag("threads", 1)));
    std::optional<cpd::ThreadPool> pool;
    if (threads > 1) pool.emplace(static_cast<size_t>(threads));
    cpd::WallTimer timer;
    const auto responses =
        engine.QueryBatch(requests, pool ? &*pool : nullptr);
    const double elapsed = timer.ElapsedSeconds();
    for (size_t i = 0; i < responses.size(); ++i) {
      std::printf("> %s\n", commands[i].c_str());
      if (!responses[i].ok()) {
        std::printf("  error: %s\n", responses[i].status().ToString().c_str());
        continue;
      }
      PrintResponse(*responses[i], *index, vocab_ptr);
    }
    std::printf("%zu queries in %.1f ms (%.0f queries/sec, %d threads)\n",
                responses.size(), elapsed * 1e3,
                static_cast<double>(responses.size()) / elapsed, threads);
    return 0;
  }

  // REPL: one query per line, answered immediately.
  std::printf("cpd_query> ");
  std::fflush(stdout);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      Usage(argv[0]);
    } else if (!line.empty()) {
      auto request = ParseCommand(line, vocab_ptr);
      if (!request.ok()) {
        std::printf("  error: %s\n", request.status().ToString().c_str());
      } else {
        cpd::WallTimer timer;
        auto response = engine.Query(*request);
        const double ms = timer.ElapsedMillis();
        if (!response.ok()) {
          std::printf("  error: %s\n", response.status().ToString().c_str());
        } else {
          PrintResponse(*response, *index, vocab_ptr);
          std::printf("  (%.2f ms)\n", ms);
        }
      }
    }
    std::printf("cpd_query> ");
    std::fflush(stdout);
  }
  return 0;
}
