// Distributed E-step worker process (see docs/ARCHITECTURE.md, "Distributed
// E-step"): connects to a cpd_train coordinator (or listens for one), speaks
// the src/dist wire protocol, and serves shard-sweep requests until the
// coordinator drains the session.
//
// Usage:
//   cpd_worker --connect HOST:PORT     connect out to a coordinator
//   cpd_worker --listen PORT           accept one coordinator, then exit
//
// Hidden fault-injection flags (used by the re-dispatch tests only):
//   --fail_after_shards N   die (or hang) instead of serving shard N+1
//   --hang                  fail by going silent instead of disconnecting

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "dist/transport.h"
#include "dist/worker.h"
#include "util/flags.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT | --listen PORT\n"
               "          [--fail_after_shards N] [--hang]\n",
               argv0);
}

const std::set<std::string> kKnownFlags = {"connect", "listen",
                                           "fail_after_shards", "hang"};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = cpd::ParseFlags(argc, argv, kKnownFlags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    Usage(argv[0]);
    return 2;
  }
  cpd::FlagMap args = std::move(*parsed);
  const auto usage = [argv] { Usage(argv[0]); };
  if (args.count("connect") == args.count("listen")) {
    std::fprintf(stderr, "exactly one of --connect or --listen is required\n");
    Usage(argv[0]);
    return 2;
  }

  cpd::dist::WorkerHooks hooks;
  hooks.fail_after_shards = static_cast<int>(
      cpd::GetInt64FlagOrExit(args, "fail_after_shards", -1, usage));
  if (args.count("hang")) {
    // Flag syntax is strictly "--flag value"; any value enables it.
    hooks.hang_instead = args["hang"] != "0" && args["hang"] != "false";
  }

  int fd = -1;
  if (args.count("connect")) {
    auto connected = cpd::dist::ConnectTo(args["connect"]);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    fd = *connected;
  } else {
    const int64_t port = cpd::GetInt64FlagOrExit(args, "listen", 0, usage);
    if (port < 1 || port > 65535) {
      std::fprintf(stderr, "bad --listen port %lld\n",
                   static_cast<long long>(port));
      Usage(argv[0]);
      return 2;
    }
    // Listening on a fixed port is the pre-started-worker mode
    // (cpd_train --worker_addrs); serve exactly one session.
    auto listening = cpd::dist::ListenOnPort(static_cast<uint16_t>(port));
    if (!listening.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   listening.status().ToString().c_str());
      return 1;
    }
    auto accepted =
        cpd::dist::AcceptWithTimeout(*listening, /*timeout_ms=*/-1);
    if (!accepted.ok()) {
      std::fprintf(stderr, "accept failed: %s\n",
                   accepted.status().ToString().c_str());
      return 1;
    }
    fd = *accepted;
  }

  const cpd::Status status = cpd::dist::ServeWorker(fd, hooks);
  if (!status.ok()) {
    std::fprintf(stderr, "worker session failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
