// Offline streaming-ingest front end: apply a JSON update batch to a
// trained model + its training graph, run warm-started EM sweeps over the
// touched shards, and write a fresh v2 artifact — no full retrain, no
// server required. The same batch format is accepted online by cpd_serve's
// POST /admin/ingest (docs/HTTP_API.md pins it).
//
// Usage:
//   cpd_ingest --model in.cpdb --update batch.json --out out.cpdb
//              --users N --docs docs.tsv --friends friends.tsv
//              --diffusion diffusion.tsv
//              [--warm_iters 2] [--threads 1] [--shards 0] [--seed 42]
//              [--save_graph prefix]    (writes prefix.{docs,friends,
//                                        diffusion}.tsv of the merged graph
//                                        for the next ingest)
//
// The graph quartet must be the data --model was trained on (user/doc/word
// ids are append-only across ingests). Exit codes: 0 ok, 1 runtime failure,
// 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "core/cpd_model.h"
#include "graph/graph_io.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_batch.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --model in.cpdb --update batch.json --out out.cpdb\n"
               "          --users N --docs docs.tsv --friends friends.tsv "
               "--diffusion diffusion.tsv\n"
               "          [--warm_iters 2] [--threads 1] [--shards 0]\n"
               "          [--seed 42] [--save_graph prefix] [--emit_delta 0]\n",
               argv0);
}

const std::set<std::string> kKnownFlags = {
    "model", "update",     "out",     "users",  "docs", "friends",
    "diffusion", "warm_iters", "threads", "shards", "seed", "save_graph",
    "emit_delta"};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = cpd::ParseFlags(argc, argv, kKnownFlags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    Usage(argv[0]);
    return 2;
  }
  cpd::FlagMap args = std::move(*parsed);
  const auto usage = [argv] { Usage(argv[0]); };
  const auto int_flag = [&args, &usage](const std::string& name,
                                        int64_t fallback) {
    return cpd::GetInt64FlagOrExit(args, name, fallback, usage);
  };
  for (const char* required :
       {"model", "update", "out", "users", "docs", "friends", "diffusion"}) {
    if (!args.count(required)) {
      Usage(argv[0]);
      return 2;
    }
  }

  const uint64_t num_users = cpd::GetUint64FlagOrExit(args, "users", 0, usage);
  auto loaded = cpd::LoadSocialGraph(num_users, args["docs"], args["friends"],
                                     args["diffusion"]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "graph load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto graph =
      std::make_shared<const cpd::SocialGraph>(std::move(*loaded));

  // Decode the artifact (not just the model) so the base generation stamp
  // survives into any emitted delta.
  auto artifact = cpd::ReadModelArtifact(args["model"]);
  if (!artifact.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }
  const uint64_t base_generation = artifact->generation;
  auto model = cpd::CpdModel::FromArtifact(std::move(*artifact));
  if (!model.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  auto batch = cpd::ingest::LoadUpdateBatch(args["update"]);
  if (!batch.ok()) {
    std::fprintf(stderr, "update batch load failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }

  cpd::ingest::IngestOptions options;
  options.config = model->config();
  options.config.num_communities = model->num_communities();
  options.config.num_topics = model->num_topics();
  options.config.num_threads = static_cast<int>(int_flag("threads", 1));
  options.config.num_shards = static_cast<int>(int_flag("shards", 0));
  options.config.seed = cpd::GetUint64FlagOrExit(args, "seed", 42, usage);
  options.warm_iterations = static_cast<int>(int_flag("warm_iters", 2));
  // --emit_delta 1 also writes "<out minus .cpdb>.cpdd": the diff against
  // the input artifact, for POST /admin/reload {"delta": ...} publication.
  options.write_delta = int_flag("emit_delta", 0) != 0;
  options.base_generation = base_generation;

  auto pipeline =
      cpd::ingest::IngestPipeline::Create(graph, *model, std::move(options));
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline setup failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  std::printf("ingesting %zu documents, %zu friendships, %zu diffusions...\n",
              batch->documents.size(), batch->friendships.size(),
              batch->diffusions.size());
  auto result = (*pipeline)->Ingest(*batch, args["out"]);
  if (!result.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s\n"
      "  +%zu docs (%zu dropped), +%zu users, +%zu friendships, "
      "+%zu diffusions, +%zu words\n"
      "  now %zu users / %zu docs / %zu words\n"
      "  apply %.3f s, warm sweeps %.3f s, save %.3f s, total %.3f s\n"
      "  link log-likelihood %.2f\n",
      result->artifact_path.c_str(), result->counts.new_documents,
      result->counts.dropped_documents, result->counts.new_users,
      result->counts.new_friendships, result->counts.new_diffusions,
      result->counts.new_words, result->num_users, result->num_documents,
      result->vocab_size, result->apply_seconds, result->warm_seconds,
      result->save_seconds, result->total_seconds,
      result->link_log_likelihood);
  if (!result->delta_path.empty()) {
    std::printf("  delta -> %s (%zu bytes vs %zu full; generation %llu)\n",
                result->delta_path.c_str(), result->delta_bytes,
                result->artifact_bytes,
                static_cast<unsigned long long>(result->generation));
  }

  if (args.count("save_graph")) {
    const std::string prefix = args["save_graph"];
    const auto merged = (*pipeline)->graph();
    const cpd::Status saved = cpd::SaveSocialGraph(
        *merged, prefix + ".docs.tsv", prefix + ".friends.tsv",
        prefix + ".diffusion.tsv");
    if (!saved.ok()) {
      std::fprintf(stderr, "merged graph save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("merged graph saved to %s.{docs,friends,diffusion}.tsv "
                "(%zu users; pass --users %zu next time)\n",
                prefix.c_str(), merged->num_users(), merged->num_users());
  }
  return 0;
}
