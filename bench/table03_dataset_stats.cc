// Reproduces Table 3: dataset statistics — #(user), #(friend. link),
// #(diff. link), #(doc.), #(word) — for the Twitter-like and DBLP-like
// synthetic datasets that substitute for the paper's crawls (DESIGN.md §2).

#include <cstdio>

#include "bench_common.h"
#include "graph/graph_stats.h"

namespace cpd::bench {
namespace {

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  TableWriter table("Table 3: Data set statistics (synthetic substitutes)");
  table.SetHeader({"dataset", "#(user)", "#(friend. link)", "#(diff. link)",
                   "#(doc.)", "#(word)", "docs/user", "words/doc"});
  for (const BenchDataset* dataset :
       {&TwitterDataset(scale), &DblpDataset(scale)}) {
    const GraphStats stats = ComputeGraphStats(dataset->data.graph);
    table.AddRow({dataset->name, std::to_string(stats.num_users),
                  std::to_string(stats.num_friendship_links),
                  std::to_string(stats.num_diffusion_links),
                  std::to_string(stats.num_documents),
                  std::to_string(stats.num_words),
                  FormatDouble(stats.avg_documents_per_user, 2),
                  FormatDouble(stats.avg_words_per_document, 2)});
  }
  table.Print();
  std::printf("Paper (full scale): Twitter 137,325 users / 3.59M friend / "
              "0.99M diff / 39.9M docs / 2.32M words; DBLP 916,907 users / "
              "3.06M friend / 10.2M diff / 4.12M docs / 0.33M words.\n"
              "Shape preserved: Twitter has more docs per user and directed "
              "follows; DBLP has more diffusion (citations) per document and "
              "symmetric co-authorship.\n");
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
