// Observability overhead benchmark -> BENCH_obs.json.
//
// Two measurements pin the cost of the src/obs subsystem:
//
//   1. Record-path microbench: ns/op for Counter::Increment and
//      Histogram::Record (the two hot-path primitives every request
//      touches), single-threaded, on the real registry handles.
//   2. End-to-end serving overhead: the bench_server_load stack (trained
//      model, epoll, one closed-loop connection issuing POST /v1/query)
//      run twice against fresh servers — once fully instrumented, once
//      with ServiceStats metrics recording disabled (`cpd_serve
//      --metrics off`). Reports best-of-three qps per mode and the
//      relative overhead; the observability PR's budget is <= 2%.
//
// A single connection is the worst case for relative overhead: each
// request crosses every instrumented stage and there is no concurrency to
// hide the atomics behind. Best-of-three damps loopback scheduling noise
// (overhead can legitimately print negative on a noisy box — treat small
// magnitudes as "within noise", not as metrics being free).
//
// Follows the BENCH_server.json conventions: laptop-friendly scale,
// honors CPD_BENCH_JSON_DIR, records hardware_concurrency.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

constexpr int kServerThreads = 8;
constexpr size_t kRequests = 3000;
constexpr int kMeasuredPasses = 3;

/// Same request mix as bench_server_load, pre-serialized.
std::vector<std::string> BuildWireWorkload(const SocialGraph& graph,
                                           const serve::ProfileIndex& index,
                                           size_t count, Rng* rng) {
  std::vector<std::string> bodies;
  bodies.reserve(count);
  const auto& links = graph.diffusion_links();
  for (size_t i = 0; i < count; ++i) {
    const double pick = rng->NextDouble();
    serve::QueryRequest request;
    if (pick < 0.55) {
      serve::MembershipRequest membership;
      membership.user = static_cast<UserId>(rng->NextUint64(graph.num_users()));
      membership.top_k = 5;
      request = membership;
    } else if (pick < 0.80) {
      serve::RankCommunitiesRequest rank;
      const size_t terms = 1 + rng->NextUint64(2);
      for (size_t t = 0; t < terms; ++t) {
        rank.words.push_back(
            static_cast<WordId>(rng->NextUint64(index.vocab_size())));
      }
      rank.top_k = 5;
      request = rank;
    } else if (pick < 0.90 && !links.empty()) {
      const DiffusionLink& link = links[rng->NextUint64(links.size())];
      serve::DiffusionRequest diffusion;
      diffusion.source = graph.document(link.i).user;
      diffusion.target = graph.document(link.j).user;
      diffusion.document = link.j;
      diffusion.time_bin = link.time;
      request = diffusion;
    } else {
      serve::TopUsersRequest top_users;
      top_users.community = static_cast<int>(
          rng->NextUint64(static_cast<uint64_t>(index.num_communities())));
      top_users.top_k = 10;
      request = top_users;
    }
    bodies.push_back(server::QueryRequestToJson(request).Dump());
  }
  return bodies;
}

/// One closed-loop pass on a single keep-alive connection; returns qps.
double RunPass(int port, const std::vector<std::string>& workload) {
  auto client = server::HttpClient::Connect("127.0.0.1", port);
  CPD_CHECK(client.ok());
  WallTimer wall;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->RoundTrip("POST", "/v1/query", workload[i]);
    CPD_CHECK(response.ok());
    CPD_CHECK_EQ(response->status, 200);
  }
  return static_cast<double>(workload.size()) / wall.ElapsedSeconds();
}

/// Fresh server at one metrics setting; warm-up pass, then best-of-N qps.
double MeasureServing(server::ModelRegistry* registry,
                      const std::vector<std::string>& workload,
                      bool metrics_enabled) {
  server::HttpServerOptions options;
  options.port = 0;
  options.io_mode = server::IoMode::kEpoll;
  options.threads = kServerThreads;
  options.log_requests = false;
  server::HttpServer http_server(options);
  server::ServiceStats stats;
  stats.set_metrics_enabled(metrics_enabled);
  server::RegisterCpdRoutes(&http_server, registry, &stats,
                            /*pipeline=*/nullptr, /*coalescer=*/nullptr);
  CPD_CHECK(http_server.Start().ok());
  const int port = http_server.port();

  RunPass(port, workload);  // Warm-up.
  double best_qps = 0.0;
  for (int pass = 0; pass < kMeasuredPasses; ++pass) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    best_qps = std::max(best_qps, RunPass(port, workload));
  }
  http_server.Stop();
  return best_qps;
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = TwitterDataset(scale);
  PrintBenchHeader("Observability overhead (src/obs)", scale, dataset);

  // ----- 1. record-path microbench -----
  obs::MetricsRegistry registry_micro;
  obs::Counter* counter = registry_micro.GetCounter(
      "bench_obs_counter_total", "Microbench counter.");
  obs::Histogram* histogram = registry_micro.GetHistogram(
      "bench_obs_histogram_us", "Microbench histogram.");
  constexpr size_t kOps = 5'000'000;
  WallTimer counter_timer;
  for (size_t i = 0; i < kOps; ++i) counter->Increment();
  const double counter_ns = counter_timer.ElapsedSeconds() * 1e9 /
                            static_cast<double>(kOps);
  WallTimer histogram_timer;
  for (size_t i = 0; i < kOps; ++i) {
    histogram->Record(static_cast<double>(1 + (i & 1023)));
  }
  const double histogram_ns = histogram_timer.ElapsedSeconds() * 1e9 /
                              static_cast<double>(kOps);
  std::printf("record path: counter %.1f ns/op, histogram %.1f ns/op\n",
              counter_ns, histogram_ns);

  // ----- 2. end-to-end serving overhead -----
  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = 12;
  std::printf("training |C|=%d |Z|=%d T1=%d...\n", config.num_communities,
              config.num_topics, config.em_iterations);
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  const std::string artifact_path =
      (std::filesystem::temp_directory_path() / "bench_obs.cpdb").string();
  CPD_CHECK(model
                ->SaveBinary(artifact_path,
                             &dataset.data.graph.corpus().vocabulary())
                .ok());
  server::ModelRegistry registry(
      serve::ProfileIndexOptions{},
      std::shared_ptr<const SocialGraph>(&dataset.data.graph,
                                         [](const SocialGraph*) {}));
  CPD_CHECK(registry.LoadFrom(artifact_path).ok());

  Rng rng(20260807);
  const std::vector<std::string> workload = BuildWireWorkload(
      dataset.data.graph, registry.Snapshot()->index, kRequests, &rng);

  const double qps_off = MeasureServing(&registry, workload,
                                        /*metrics_enabled=*/false);
  const double qps_on = MeasureServing(&registry, workload,
                                       /*metrics_enabled=*/true);
  const double overhead_pct = (qps_off - qps_on) / qps_off * 100.0;
  std::printf(
      "serving (epoll, 1 connection, best of %d): metrics off %7.0f "
      "req/sec, on %7.0f req/sec -> overhead %.2f%%\n",
      kMeasuredPasses, qps_off, qps_on, overhead_pct);
  std::filesystem::remove(artifact_path);

  std::string json = "{\n  \"bench\": \"obs\",\n";
  json += StrFormat(
      "  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
      "\"communities\": %d, \"topics\": %d},\n",
      dataset.data.graph.num_users(), dataset.data.graph.num_documents(),
      config.num_communities, config.num_topics);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat("  \"counter_increment_ns\": %.2f,\n", counter_ns);
  json += StrFormat("  \"histogram_record_ns\": %.2f,\n", histogram_ns);
  json += StrFormat("  \"serving_requests_per_pass\": %zu,\n", kRequests);
  json += StrFormat("  \"serving_passes\": %d,\n", kMeasuredPasses);
  json += StrFormat("  \"serving_qps_metrics_off\": %.1f,\n", qps_off);
  json += StrFormat("  \"serving_qps_metrics_on\": %.1f,\n", qps_on);
  json += StrFormat("  \"serving_overhead_pct\": %.2f\n", overhead_pct);
  json += "}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_obs.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
