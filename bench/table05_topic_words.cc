// Reproduces Table 5 (§6.3.1): the top-4 words of each learned topic on the
// DBLP-like dataset, with their probabilities — the human-readable
// word-distribution view that backs the case studies.

#include <cstdio>

#include "bench_common.h"
#include "util/math_util.h"

namespace cpd::bench {
namespace {

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = DblpDataset(scale);
  PrintBenchHeader("Table 5: top words per topic", scale, dataset);

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = scale.community_sweep[1];
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  const Vocabulary& vocab = dataset.data.graph.corpus().vocabulary();
  TableWriter table("Top four words in each topic (word:probability)");
  table.SetHeader({"topic", "word distribution"});
  for (int z = 0; z < model->num_topics(); ++z) {
    const auto& phi = model->TopicWords(z);
    std::string row;
    for (size_t idx : TopKIndices(phi, 4)) {
      if (!row.empty()) row += ", ";
      row += vocab.WordOf(static_cast<WordId>(idx)) + ":" +
             FormatDouble(phi[idx], 3);
    }
    table.AddRow({"T" + std::to_string(z), row});
  }
  table.Print();
  std::printf("Paper example rows: T22 network:0.059 wireless:0.050 "
              "sensor:0.046 routing:0.038; T8 security:0.031 key:0.028 ...\n"
              "Shape preserved: each topic concentrates on one themed word "
              "cluster.\n");
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
