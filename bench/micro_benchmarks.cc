// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// inference kernels — Polya-Gamma sampling, categorical draws, alias tables,
// Gibbs document sweeps (dense and sparse backends) and PG augmentation
// sweeps, LDA iterations. Not a paper figure; guards against performance
// regressions in the samplers that dominate Alg. 1's E-step.
//
// Besides the google-benchmark registry, a bare invocation finishes with two
// JSON perf artifacts (in the working directory, or $CPD_BENCH_JSON_DIR), so
// successive PRs accumulate a machine-readable perf trajectory:
//  - BENCH_sampler.json (or CPD_WRITE_SAMPLER_JSON set): dense-vs-sparse
//    document-sweep tokens/sec over K ∈ {10, 50, 200} topics;
//  - BENCH_estep_merge.json (or CPD_WRITE_ESTEP_JSON set): snapshot/delta
//    E-step tokens/sec and merge/snapshot seconds vs shard count {1,2,4,8},
//    plus the same sweep over distributed cpd_worker process counts {1,2,4}
//    with serialize/transport seconds and wire bytes per sweep.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "core/em_trainer.h"
#include "core/gibbs_sampler.h"
#include "sampling/alias_table.h"
#include "sampling/distributions.h"
#include "sampling/polya_gamma.h"
#include "synth/generator.h"
#include "synth/synth_config.h"
#include "topic/lda.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cpd {
namespace {

SynthConfig MicroConfig() {
  SynthConfig config;
  config.num_users = 200;
  config.num_communities = 8;
  config.num_topics = 10;
  config.background_vocab = 500;
  config.docs_per_user_mean = 5.0;
  config.seed = 7171;
  return config;
}

const SynthResult& MicroData() {
  static const SynthResult* kData = [] {
    auto result = GenerateSocialGraph(MicroConfig());
    CPD_CHECK(result.ok());
    return new SynthResult(std::move(*result));
  }();
  return *kData;
}

void BM_PolyaGammaSample(benchmark::State& state) {
  PolyaGammaSampler sampler;
  Rng rng(1);
  const double c = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(c, &rng));
  }
}
BENCHMARK(BM_PolyaGammaSample)->Arg(0)->Arg(10)->Arg(40)->Arg(160);

void BM_SampleCategoricalFromLog(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> log_weights(static_cast<size_t>(state.range(0)));
  for (double& w : log_weights) w = -5.0 * rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleCategoricalFromLog(log_weights, &rng));
  }
}
BENCHMARK(BM_SampleCategoricalFromLog)->Arg(8)->Arg(32)->Arg(128);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.NextDoubleOpen();
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(100)->Arg(10000);

// One document sweep at the given (sampler mode, K topics); items/sec is
// documents/sec. The dense-vs-sparse pairs at matched K are the regression
// guard for the sparse backend.
void GibbsDocumentSweepBenchmark(benchmark::State& state, SamplerMode mode) {
  const SynthResult& data = MicroData();
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = static_cast<int>(state.range(0));
  config.sampler_mode = mode;
  LinkCaches caches(data.graph);
  ModelState model_state(data.graph, config);
  Rng rng(4);
  model_state.InitializeRandom(data.graph, &rng);
  model_state.RebuildCounts(data.graph);
  model_state.popularity.Refresh(data.graph, model_state.doc_topic);
  GibbsSampler sampler(data.graph, config, caches, &model_state);
  for (auto _ : state) {
    sampler.SweepDocuments(&rng);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.graph.num_documents()));
}

void BM_GibbsDocumentSweepDense(benchmark::State& state) {
  GibbsDocumentSweepBenchmark(state, SamplerMode::kDense);
}
BENCHMARK(BM_GibbsDocumentSweepDense)->Arg(10)->Arg(50)->Arg(200);

void BM_GibbsDocumentSweepSparse(benchmark::State& state) {
  GibbsDocumentSweepBenchmark(state, SamplerMode::kSparse);
}
BENCHMARK(BM_GibbsDocumentSweepSparse)->Arg(10)->Arg(50)->Arg(200);

void BM_PolyaGammaAugmentationSweep(benchmark::State& state) {
  const SynthResult& data = MicroData();
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  LinkCaches caches(data.graph);
  ModelState model_state(data.graph, config);
  Rng rng(5);
  model_state.InitializeRandom(data.graph, &rng);
  model_state.RebuildCounts(data.graph);
  model_state.popularity.Refresh(data.graph, model_state.doc_topic);
  GibbsSampler sampler(data.graph, config, caches, &model_state);
  for (auto _ : state) {
    sampler.SweepFriendshipAugmentation(&rng);
    sampler.SweepDiffusionAugmentation(&rng);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.graph.num_friendship_links() +
                           data.graph.num_diffusion_links()));
}
BENCHMARK(BM_PolyaGammaAugmentationSweep);

void BM_LdaIteration(benchmark::State& state) {
  const SynthResult& data = MicroData();
  for (auto _ : state) {
    LdaConfig config;
    config.num_topics = 10;
    config.iterations = 1;
    auto model = LdaModel::Train(data.graph.corpus(), config);
    benchmark::DoNotOptimize(model.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          data.graph.corpus().total_tokens());
}
BENCHMARK(BM_LdaIteration);

void BM_FullEmIteration(benchmark::State& state) {
  const SynthResult& data = MicroData();
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  config.gibbs_sweeps_per_em = 1;
  config.nu_iterations = 20;
  config.num_threads = static_cast<int>(state.range(0));
  EmTrainer trainer(data.graph, config);
  CPD_CHECK(trainer.Initialize().ok());
  CPD_CHECK(trainer.EStep().ok());  // Warm-up (thread plan).
  for (auto _ : state) {
    CPD_CHECK(trainer.EStep().ok());
    trainer.MStep();
  }
}
BENCHMARK(BM_FullEmIteration)->Arg(1)->Arg(4);

// ---------- dense-vs-sparse sampler sweep -> BENCH_sampler.json ----------

struct SamplerSweepPoint {
  int num_topics = 0;
  double dense_tokens_per_sec = 0.0;
  double sparse_tokens_per_sec = 0.0;
  double topic_accept_rate = 0.0;
  double community_accept_rate = 0.0;
};

double MeasureTokensPerSec(const SynthResult& data, SamplerMode mode, int k,
                           MhStats* mh_out) {
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = k;
  config.sampler_mode = mode;
  LinkCaches caches(data.graph);
  ModelState model_state(data.graph, config);
  Rng rng(4);
  model_state.InitializeRandom(data.graph, &rng);
  model_state.RebuildCounts(data.graph);
  model_state.popularity.Refresh(data.graph, model_state.doc_topic);
  GibbsSampler sampler(data.graph, config, caches, &model_state);
  sampler.SweepDocuments(&rng);  // Warm-up (tables, counts in cache).
  sampler.ResetMhStats();
  const int sweeps = 3;
  WallTimer timer;
  for (int i = 0; i < sweeps; ++i) sampler.SweepDocuments(&rng);
  const double seconds = timer.ElapsedSeconds();
  if (mh_out != nullptr) *mh_out = sampler.mh_stats();
  const double tokens = static_cast<double>(data.graph.corpus().total_tokens()) *
                        static_cast<double>(sweeps);
  return tokens / seconds;
}

void WriteSamplerSweepJson() {
  const SynthResult& data = MicroData();
  std::vector<SamplerSweepPoint> points;
  for (int k : {10, 50, 200}) {
    SamplerSweepPoint point;
    point.num_topics = k;
    point.dense_tokens_per_sec =
        MeasureTokensPerSec(data, SamplerMode::kDense, k, nullptr);
    MhStats mh;
    point.sparse_tokens_per_sec =
        MeasureTokensPerSec(data, SamplerMode::kSparse, k, &mh);
    point.topic_accept_rate = mh.TopicAcceptRate();
    point.community_accept_rate = mh.CommunityAcceptRate();
    points.push_back(point);
    std::printf("sampler sweep K=%-3d  dense %.0f tok/s  sparse %.0f tok/s  "
                "(%.2fx, topic acc %.2f, community acc %.2f)\n",
                k, point.dense_tokens_per_sec, point.sparse_tokens_per_sec,
                point.sparse_tokens_per_sec / point.dense_tokens_per_sec,
                point.topic_accept_rate, point.community_accept_rate);
  }

  std::string json = "{\n  \"bench\": \"sampler_mode_sweep\",\n";
  json += StrFormat("  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
                    "\"tokens\": %lld, \"communities\": 8},\n",
                    data.graph.num_users(), data.graph.num_documents(),
                    static_cast<long long>(data.graph.corpus().total_tokens()));
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const SamplerSweepPoint& p = points[i];
    json += StrFormat(
        "    {\"num_topics\": %d, \"dense_tokens_per_sec\": %.1f, "
        "\"sparse_tokens_per_sec\": %.1f, \"speedup\": %.3f, "
        "\"topic_accept_rate\": %.4f, \"community_accept_rate\": %.4f}%s\n",
        p.num_topics, p.dense_tokens_per_sec, p.sparse_tokens_per_sec,
        p.sparse_tokens_per_sec / p.dense_tokens_per_sec, p.topic_accept_rate,
        p.community_accept_rate, i + 1 < points.size() ? "," : "");
  }
  json += "  ]\n}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_sampler.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

// ---------- E-step shard scaling sweep -> BENCH_estep_merge.json ----------

struct EstepSweepPoint {
  int shards = 0;
  double tokens_per_sec = 0.0;
  double merge_seconds_per_estep = 0.0;
  double snapshot_seconds_per_estep = 0.0;
  double doc_moves_per_estep = 0.0;
};

// One point of the snapshot/delta E-step scaling curve: tokens/sec of the
// full EStep (snapshot + shard sweeps + delta merge + PG augmentation) at
// the given shard count, pool size == shard count.
EstepSweepPoint MeasureEstep(const SynthResult& data, int shards) {
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  config.gibbs_sweeps_per_em = 1;
  config.num_threads = shards;
  config.num_shards = shards;
  EmTrainer trainer(data.graph, config);
  CPD_CHECK(trainer.Initialize().ok());
  CPD_CHECK(trainer.EStep().ok());  // Warm-up (plan + executor build).

  const double e0 = trainer.stats().e_step_seconds;
  const double m0 = trainer.stats().merge_seconds;
  const double s0 = trainer.stats().snapshot_seconds;
  const size_t d0 = trainer.stats().delta_doc_moves;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) CPD_CHECK(trainer.EStep().ok());

  EstepSweepPoint point;
  point.shards = shards;
  const double tokens =
      static_cast<double>(data.graph.corpus().total_tokens()) *
      static_cast<double>(reps) * config.gibbs_sweeps_per_em;
  point.tokens_per_sec = tokens / (trainer.stats().e_step_seconds - e0);
  point.merge_seconds_per_estep =
      (trainer.stats().merge_seconds - m0) / static_cast<double>(reps);
  point.snapshot_seconds_per_estep =
      (trainer.stats().snapshot_seconds - s0) / static_cast<double>(reps);
  point.doc_moves_per_estep =
      static_cast<double>(trainer.stats().delta_doc_moves - d0) /
      static_cast<double>(reps);
  return point;
}

struct DistSweepPoint {
  int workers = 0;
  double tokens_per_sec = 0.0;
  double serialize_seconds_per_sweep = 0.0;
  double wait_seconds_per_sweep = 0.0;
  double merge_seconds_per_sweep = 0.0;
  double bytes_out_per_sweep = 0.0;
  double bytes_in_per_sweep = 0.0;
};

// One point of the distributed E-step curve: the same EStep workload
// dispatched to `workers` spawned cpd_worker processes (one shard per
// worker). Transport counters are cumulative in TrainStats, so per-sweep
// figures are deltas across the measured reps.
DistSweepPoint MeasureDistributedEstep(const SynthResult& data,
                                       const std::string& worker_binary,
                                       int workers) {
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  config.gibbs_sweeps_per_em = 1;
  config.num_shards = workers;
  config.executor_mode = ExecutorMode::kDistributed;
  config.dist_workers = workers;
  config.dist_worker_binary = worker_binary;
  EmTrainer trainer(data.graph, config);
  CPD_CHECK(trainer.Initialize().ok());
  CPD_CHECK(trainer.EStep().ok());  // Warm-up (spawn + handshake + setup).

  const double e0 = trainer.stats().e_step_seconds;
  const double m0 = trainer.stats().merge_seconds;
  const double ser0 = trainer.stats().dist_serialize_seconds;
  const double wait0 = trainer.stats().dist_wait_seconds;
  const uint64_t out0 = trainer.stats().dist_bytes_out;
  const uint64_t in0 = trainer.stats().dist_bytes_in;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) CPD_CHECK(trainer.EStep().ok());

  DistSweepPoint point;
  point.workers = workers;
  const double tokens =
      static_cast<double>(data.graph.corpus().total_tokens()) *
      static_cast<double>(reps) * config.gibbs_sweeps_per_em;
  point.tokens_per_sec = tokens / (trainer.stats().e_step_seconds - e0);
  const double sweeps = static_cast<double>(reps) * config.gibbs_sweeps_per_em;
  point.serialize_seconds_per_sweep =
      (trainer.stats().dist_serialize_seconds - ser0) / sweeps;
  point.wait_seconds_per_sweep =
      (trainer.stats().dist_wait_seconds - wait0) / sweeps;
  point.merge_seconds_per_sweep =
      (trainer.stats().merge_seconds - m0) / sweeps;
  point.bytes_out_per_sweep =
      static_cast<double>(trainer.stats().dist_bytes_out - out0) / sweeps;
  point.bytes_in_per_sweep =
      static_cast<double>(trainer.stats().dist_bytes_in - in0) / sweeps;
  return point;
}

void WriteEstepMergeJson() {
  const SynthResult& data = MicroData();
  std::vector<EstepSweepPoint> points;
  for (int shards : {1, 2, 4, 8}) {
    points.push_back(MeasureEstep(data, shards));
    const EstepSweepPoint& p = points.back();
    std::printf("estep merge sweep shards=%d  %.0f tok/s  merge %.4fs  "
                "snapshot %.4fs  (%.2fx vs 1 shard)\n",
                p.shards, p.tokens_per_sec, p.merge_seconds_per_estep,
                p.snapshot_seconds_per_estep,
                p.tokens_per_sec / points.front().tokens_per_sec);
  }

  std::string json = "{\n  \"bench\": \"estep_merge_sweep\",\n";
  json += StrFormat("  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
                    "\"tokens\": %lld, \"communities\": 8, \"topics\": 10},\n",
                    data.graph.num_users(), data.graph.num_documents(),
                    static_cast<long long>(data.graph.corpus().total_tokens()));
  // Shard counts beyond the physical cores cannot speed up wall-clock;
  // record the machine so the series is interpretable across runners.
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const EstepSweepPoint& p = points[i];
    json += StrFormat(
        "    {\"shards\": %d, \"tokens_per_sec\": %.1f, "
        "\"merge_seconds_per_estep\": %.6f, "
        "\"snapshot_seconds_per_estep\": %.6f, "
        "\"doc_moves_per_estep\": %.1f, \"speedup_vs_serial\": %.3f}%s\n",
        p.shards, p.tokens_per_sec, p.merge_seconds_per_estep,
        p.snapshot_seconds_per_estep, p.doc_moves_per_estep,
        p.tokens_per_sec / points.front().tokens_per_sec,
        i + 1 < points.size() ? "," : "");
  }
  json += "  ],\n";

  // Same workload over distributed worker processes. Skipped (empty array)
  // when cpd_worker was not built next to this binary, so the artifact stays
  // diffable either way.
  const std::string worker_binary = CurrentExecutableDir() + "/cpd_worker";
  std::vector<DistSweepPoint> dist_points;
  if (FileExists(worker_binary)) {
    for (int workers : {1, 2, 4}) {
      dist_points.push_back(
          MeasureDistributedEstep(data, worker_binary, workers));
      const DistSweepPoint& p = dist_points.back();
      std::printf("estep distributed sweep workers=%d  %.0f tok/s  "
                  "serialize %.4fs  wait %.4fs  merge %.4fs  "
                  "%.0f B out  %.0f B in\n",
                  p.workers, p.tokens_per_sec, p.serialize_seconds_per_sweep,
                  p.wait_seconds_per_sweep, p.merge_seconds_per_sweep,
                  p.bytes_out_per_sweep, p.bytes_in_per_sweep);
    }
  } else {
    std::printf("cpd_worker not found next to this binary; skipping the "
                "distributed E-step sweep\n");
  }
  json += "  \"distributed_results\": [\n";
  for (size_t i = 0; i < dist_points.size(); ++i) {
    const DistSweepPoint& p = dist_points[i];
    json += StrFormat(
        "    {\"workers\": %d, \"tokens_per_sec\": %.1f, "
        "\"serialize_seconds_per_sweep\": %.6f, "
        "\"wait_seconds_per_sweep\": %.6f, "
        "\"merge_seconds_per_sweep\": %.6f, "
        "\"bytes_out_per_sweep\": %.1f, \"bytes_in_per_sweep\": %.1f}%s\n",
        p.workers, p.tokens_per_sec, p.serialize_seconds_per_sweep,
        p.wait_seconds_per_sweep, p.merge_seconds_per_sweep,
        p.bytes_out_per_sweep, p.bytes_in_per_sweep,
        i + 1 < dist_points.size() ? "," : "");
  }
  json += "  ]\n}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_estep_merge.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace cpd

int main(int argc, char** argv) {
  // The JSON sweeps train real models for minutes, so they run only on a
  // bare invocation (the regression-guard default) or when explicitly
  // requested — never for filtered/listing runs someone uses to poke at a
  // single micro-benchmark.
  const bool bare_invocation = (argc == 1);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (bare_invocation || std::getenv("CPD_WRITE_SAMPLER_JSON") != nullptr) {
    cpd::WriteSamplerSweepJson();
  }
  if (bare_invocation || std::getenv("CPD_WRITE_ESTEP_JSON") != nullptr) {
    cpd::WriteEstepMergeJson();
  }
  return 0;
}
