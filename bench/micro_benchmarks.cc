// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// inference kernels — Polya-Gamma sampling, categorical draws, alias tables,
// Gibbs document sweeps and PG augmentation sweeps, LDA iterations. Not a
// paper figure; guards against performance regressions in the samplers that
// dominate Alg. 1's E-step.

#include <benchmark/benchmark.h>

#include "core/em_trainer.h"
#include "core/gibbs_sampler.h"
#include "sampling/alias_table.h"
#include "sampling/distributions.h"
#include "sampling/polya_gamma.h"
#include "synth/generator.h"
#include "synth/synth_config.h"
#include "topic/lda.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cpd {
namespace {

SynthConfig MicroConfig() {
  SynthConfig config;
  config.num_users = 200;
  config.num_communities = 8;
  config.num_topics = 10;
  config.background_vocab = 500;
  config.docs_per_user_mean = 5.0;
  config.seed = 7171;
  return config;
}

const SynthResult& MicroData() {
  static const SynthResult* kData = [] {
    auto result = GenerateSocialGraph(MicroConfig());
    CPD_CHECK(result.ok());
    return new SynthResult(std::move(*result));
  }();
  return *kData;
}

void BM_PolyaGammaSample(benchmark::State& state) {
  PolyaGammaSampler sampler;
  Rng rng(1);
  const double c = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(c, &rng));
  }
}
BENCHMARK(BM_PolyaGammaSample)->Arg(0)->Arg(10)->Arg(40)->Arg(160);

void BM_SampleCategoricalFromLog(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> log_weights(static_cast<size_t>(state.range(0)));
  for (double& w : log_weights) w = -5.0 * rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleCategoricalFromLog(log_weights, &rng));
  }
}
BENCHMARK(BM_SampleCategoricalFromLog)->Arg(8)->Arg(32)->Arg(128);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.NextDoubleOpen();
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(100)->Arg(10000);

void BM_GibbsDocumentSweep(benchmark::State& state) {
  const SynthResult& data = MicroData();
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  LinkCaches caches(data.graph);
  ModelState model_state(data.graph, config);
  Rng rng(4);
  model_state.InitializeRandom(data.graph, &rng);
  model_state.RebuildCounts(data.graph);
  model_state.popularity.Refresh(data.graph, model_state.doc_topic);
  GibbsSampler sampler(data.graph, config, caches, &model_state);
  for (auto _ : state) {
    sampler.SweepDocuments(&rng);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.graph.num_documents()));
}
BENCHMARK(BM_GibbsDocumentSweep);

void BM_PolyaGammaAugmentationSweep(benchmark::State& state) {
  const SynthResult& data = MicroData();
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  LinkCaches caches(data.graph);
  ModelState model_state(data.graph, config);
  Rng rng(5);
  model_state.InitializeRandom(data.graph, &rng);
  model_state.RebuildCounts(data.graph);
  model_state.popularity.Refresh(data.graph, model_state.doc_topic);
  GibbsSampler sampler(data.graph, config, caches, &model_state);
  for (auto _ : state) {
    sampler.SweepFriendshipAugmentation(&rng);
    sampler.SweepDiffusionAugmentation(&rng);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.graph.num_friendship_links() +
                           data.graph.num_diffusion_links()));
}
BENCHMARK(BM_PolyaGammaAugmentationSweep);

void BM_LdaIteration(benchmark::State& state) {
  const SynthResult& data = MicroData();
  for (auto _ : state) {
    LdaConfig config;
    config.num_topics = 10;
    config.iterations = 1;
    auto model = LdaModel::Train(data.graph.corpus(), config);
    benchmark::DoNotOptimize(model.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          data.graph.corpus().total_tokens());
}
BENCHMARK(BM_LdaIteration);

void BM_FullEmIteration(benchmark::State& state) {
  const SynthResult& data = MicroData();
  CpdConfig config;
  config.num_communities = 8;
  config.num_topics = 10;
  config.gibbs_sweeps_per_em = 1;
  config.nu_iterations = 20;
  config.num_threads = static_cast<int>(state.range(0));
  EmTrainer trainer(data.graph, config);
  CPD_CHECK(trainer.Initialize().ok());
  CPD_CHECK(trainer.EStep().ok());  // Warm-up (thread plan).
  for (auto _ : state) {
    CPD_CHECK(trainer.EStep().ok());
    trainer.MStep();
  }
}
BENCHMARK(BM_FullEmIteration)->Arg(1)->Arg(4);

}  // namespace
}  // namespace cpd

BENCHMARK_MAIN();
