// Reproduces Figure 6 (profile-driven community ranking, §6.3.2): MAF@K for
// K = 1..20 at two community counts, comparing CPD against COLD, COLD+Agg
// and CRM+Agg. Queries are frequent terms (hashtags on Twitter, non-top
// words on DBLP) and a community ranking is scored by how many of its top-5
// member users truly diffuse about the query (Eq. 19 / MAP-MAR-MAF of §6.1).
// Expected shape (paper): "Ours" above every baseline at every K, converging
// earlier.

#include <algorithm>
#include <cstdio>

#include "apps/community_ranking.h"
#include "baselines/aggregation.h"
#include "baselines/cold.h"
#include "baselines/crm.h"
#include "bench_common.h"
#include "synth/queries.h"

namespace cpd::bench {
namespace {

constexpr int kMaxK = 20;

std::vector<RankingQuery> DatasetQueries(const BenchDataset& dataset,
                                         bool twitter) {
  Rng rng(606);
  QueryOptions options;
  options.min_frequency = 15;
  options.max_queries = 40;
  options.min_relevant_users = 3;
  options.hashtags_only = twitter;      // Twitter: hashtags as queries.
  options.skip_top_frequent = twitter ? 0 : 20;  // DBLP: drop frequent words.
  return BuildRankingQueries(dataset.data.graph, options, &rng);
}

MeanRankingMetrics EvaluateRanker(
    const std::vector<RankingQuery>& queries,
    const std::vector<std::vector<UserId>>& community_users,
    const std::function<std::vector<int>(const std::vector<WordId>&)>& rank) {
  std::vector<std::vector<RankingPoint>> per_query;
  for (const RankingQuery& query : queries) {
    const std::vector<WordId> words = {query.word};
    per_query.push_back(EvaluateRanking(rank(words), community_users,
                                        query.relevant_users, kMaxK));
  }
  return AggregateRankings(per_query, kMaxK);
}

void RunDataset(const BenchDataset& dataset, const BenchScale& scale,
                bool twitter, int kc) {
  PrintBenchHeader(
      StrFormat("Figure 6: community ranking MAF@K (|C|=%d)", kc), scale,
      dataset);
  const auto queries = DatasetQueries(dataset, twitter);
  std::printf("queries: %zu\n", queries.size());
  if (queries.empty()) return;
  const SocialGraph& graph = dataset.data.graph;

  TableWriter table(StrFormat("MAF@K - %s (|C|=%d)", dataset.name.c_str(), kc));
  std::vector<std::string> header = {"method"};
  for (int k = 1; k <= kMaxK; k += 2) header.push_back("K=" + std::to_string(k));
  table.SetHeader(header);
  auto add_row = [&table](const std::string& name,
                          const MeanRankingMetrics& metrics) {
    std::vector<double> row;
    for (int k = 1; k <= kMaxK; k += 2) {
      row.push_back(metrics.maf_at_k[static_cast<size_t>(k - 1)]);
    }
    table.AddRow(name, row, 3);
  };

  // COLD (its own eta/theta) + COLD+Agg + CRM+Agg + Ours.
  ColdConfig cold_config;
  cold_config.num_communities = kc;
  cold_config.num_topics = 12;
  cold_config.em_iterations = scale.em_iterations;
  auto cold = ColdModel::Train(graph, cold_config);
  CPD_CHECK(cold.ok());
  {
    CommunityRanker ranker(cold->model());
    const auto sets = CommunityRanker::CommunityUserSets(cold->model(), std::max(1, kc / 10));
    add_row("COLD", EvaluateRanker(queries, sets,
                                   [&ranker](const std::vector<WordId>& q) {
                                     std::vector<int> order;
                                     for (const auto& entry : ranker.Rank(q)) {
                                       order.push_back(entry.community);
                                     }
                                     return order;
                                   }));
  }
  {
    AggregationConfig agg_config;
    agg_config.num_topics = 12;
    auto profiles =
        AggregatedProfiles::Build(graph, cold->Memberships(), agg_config);
    CPD_CHECK(profiles.ok());
    const auto sets = profiles->CommunityUserSets(std::max(1, kc / 10));
    add_row("COLD+Agg",
            EvaluateRanker(queries, sets, [&profiles](const std::vector<WordId>& q) {
              return profiles->RankCommunities(q);
            }));
  }
  {
    CrmConfig crm_config;
    crm_config.num_communities = kc;
    auto crm = CrmModel::Train(graph, crm_config);
    CPD_CHECK(crm.ok());
    AggregationConfig agg_config;
    agg_config.num_topics = 12;
    auto profiles =
        AggregatedProfiles::Build(graph, crm->Memberships(), agg_config);
    CPD_CHECK(profiles.ok());
    const auto sets = profiles->CommunityUserSets(std::max(1, kc / 10));
    add_row("CRM+Agg",
            EvaluateRanker(queries, sets, [&profiles](const std::vector<WordId>& q) {
              return profiles->RankCommunities(q);
            }));
  }
  {
    CpdConfig config = BaseCpdConfig(scale);
    config.num_communities = kc;
    auto model = CpdModel::Train(graph, config);
    CPD_CHECK(model.ok());
    CommunityRanker ranker(*model);
    const auto sets = CommunityRanker::CommunityUserSets(*model, std::max(1, kc / 10));
    add_row("Ours", EvaluateRanker(queries, sets,
                                   [&ranker](const std::vector<WordId>& q) {
                                     std::vector<int> order;
                                     for (const auto& entry : ranker.Rank(q)) {
                                       order.push_back(entry.community);
                                     }
                                     return order;
                                   }));
  }
  table.Print();
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  // The paper plots |C| = 50 and |C| = 100; the scaled sweep uses its two
  // middle values.
  const int c_small = scale.community_sweep[1];
  const int c_large = scale.community_sweep[2];
  RunDataset(TwitterDataset(scale), scale, /*twitter=*/true, c_small);
  RunDataset(TwitterDataset(scale), scale, /*twitter=*/true, c_large);
  RunDataset(DblpDataset(scale), scale, /*twitter=*/false, c_small);
  RunDataset(DblpDataset(scale), scale, /*twitter=*/false, c_large);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
