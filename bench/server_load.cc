// HTTP serving-layer benchmark -> BENCH_server.json.
//
// Trains one model on the Twitter-like preset, saves a v2 ".cpdb" artifact
// (vocabulary bundled), serves it through the real stack (ModelRegistry +
// HttpServer + JSON endpoints on loopback), and drives a closed-loop load
// generator against POST /v1/query: at 1 / 4 / 16 concurrent keep-alive
// connections, every connection issues its next request as soon as the
// previous response lands. Reports per-level qps and p50/p99 request
// latency, plus a single-connection GET /healthz baseline that isolates
// transport cost (framing + JSON + loopback) from query cost.
//
// Follows the BENCH_query.json conventions: argument-free, laptop-friendly
// scale, honors CPD_BENCH_JSON_DIR, records hardware_concurrency (a 1-core
// container cannot show concurrency gains; CI's multicore runners do).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

// Comfortably above 2x the largest connection level: a finished client's
// server-side connection lingers for a moment after close, so warm-up and
// measured connections can briefly coexist without tripping the accept-edge
// 429 shed.
constexpr int kServerThreads = 40;
constexpr size_t kRequestsPerLevel = 3000;
const int kConnectionLevels[] = {1, 4, 16};

struct LevelResult {
  int connections = 0;
  size_t requests = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double>* sorted_in_place, double fraction) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t index = static_cast<size_t>(
      static_cast<double>(sorted_in_place->size()) * fraction);
  return (*sorted_in_place)[std::min(index, sorted_in_place->size() - 1)];
}

/// Pre-serialized mixed workload (same mix as bench_query's BuildWorkload,
/// already JSON so the generator measures the server, not the encoder).
std::vector<std::string> BuildWireWorkload(const SocialGraph& graph,
                                           const serve::ProfileIndex& index,
                                           size_t count, Rng* rng) {
  std::vector<std::string> bodies;
  bodies.reserve(count);
  const auto& links = graph.diffusion_links();
  for (size_t i = 0; i < count; ++i) {
    const double pick = rng->NextDouble();
    serve::QueryRequest request;
    if (pick < 0.55) {
      serve::MembershipRequest membership;
      membership.user = static_cast<UserId>(rng->NextUint64(graph.num_users()));
      membership.top_k = 5;
      request = membership;
    } else if (pick < 0.80) {
      serve::RankCommunitiesRequest rank;
      const size_t terms = 1 + rng->NextUint64(2);
      for (size_t t = 0; t < terms; ++t) {
        rank.words.push_back(
            static_cast<WordId>(rng->NextUint64(index.vocab_size())));
      }
      rank.top_k = 5;
      request = rank;
    } else if (pick < 0.90 && !links.empty()) {
      const DiffusionLink& link = links[rng->NextUint64(links.size())];
      serve::DiffusionRequest diffusion;
      diffusion.source = graph.document(link.i).user;
      diffusion.target = graph.document(link.j).user;
      diffusion.document = link.j;
      diffusion.time_bin = link.time;
      request = diffusion;
    } else {
      serve::TopUsersRequest top_users;
      top_users.community = static_cast<int>(
          rng->NextUint64(static_cast<uint64_t>(index.num_communities())));
      top_users.top_k = 10;
      request = top_users;
    }
    bodies.push_back(server::QueryRequestToJson(request).Dump());
  }
  return bodies;
}

/// Closed loop at one concurrency level: `connections` client threads, each
/// with its own keep-alive connection, splitting the workload evenly.
LevelResult RunLevel(int port, const std::vector<std::string>& workload,
                     int connections) {
  LevelResult result;
  result.connections = connections;
  const size_t per_connection = workload.size() / static_cast<size_t>(connections);
  result.requests = per_connection * static_cast<size_t>(connections);

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<size_t> failures{0};
  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto client = server::HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(per_connection);
        return;
      }
      auto& slot = latencies[static_cast<size_t>(c)];
      slot.reserve(per_connection);
      const size_t begin = static_cast<size_t>(c) * per_connection;
      for (size_t i = 0; i < per_connection; ++i) {
        WallTimer timer;
        auto response =
            client->RoundTrip("POST", "/v1/query", workload[begin + i]);
        const double us = timer.ElapsedSeconds() * 1e6;
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        slot.push_back(us);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const double seconds = wall.ElapsedSeconds();
  CPD_CHECK_EQ(failures.load(), 0u);

  std::vector<double> all;
  all.reserve(result.requests);
  for (const auto& slot : latencies) {
    all.insert(all.end(), slot.begin(), slot.end());
  }
  result.qps = static_cast<double>(result.requests) / seconds;
  result.p99_us = Percentile(&all, 0.99);
  result.p50_us = Percentile(&all, 0.50);
  return result;
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = TwitterDataset(scale);
  PrintBenchHeader("HTTP serving layer (cpd_serve stack)", scale, dataset);

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = 12;
  std::printf("training |C|=%d |Z|=%d T1=%d...\n", config.num_communities,
              config.num_topics, config.em_iterations);
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  const std::string artifact_path =
      (std::filesystem::temp_directory_path() / "bench_server_load.cpdb")
          .string();
  CPD_CHECK(model
                ->SaveBinary(artifact_path,
                             &dataset.data.graph.corpus().vocabulary())
                .ok());

  // Non-owning alias: the cached dataset outlives the bench body.
  server::ModelRegistry registry(
      serve::ProfileIndexOptions{},
      std::shared_ptr<const SocialGraph>(&dataset.data.graph,
                                         [](const SocialGraph*) {}));
  CPD_CHECK(registry.LoadFrom(artifact_path).ok());
  server::HttpServerOptions options;
  options.port = 0;
  options.threads = kServerThreads;
  options.max_inflight = 64;
  options.log_requests = false;  // The request log would dominate the bench.
  server::HttpServer http_server(options);
  server::ServiceStats stats;
  server::RegisterCpdRoutes(&http_server, &registry, &stats);
  CPD_CHECK(http_server.Start().ok());
  const int port = http_server.port();

  Rng rng(20260731);
  const std::vector<std::string> workload = BuildWireWorkload(
      dataset.data.graph, registry.Snapshot()->index, kRequestsPerLevel, &rng);

  // Transport-only baseline: /healthz round trips on one connection.
  {
    auto client = server::HttpClient::Connect("127.0.0.1", port);
    CPD_CHECK(client.ok());
    for (int i = 0; i < 50; ++i) {  // Warm-up.
      CPD_CHECK(client->RoundTrip("GET", "/healthz").ok());
    }
  }
  std::vector<double> health_us;
  {
    auto client = server::HttpClient::Connect("127.0.0.1", port);
    CPD_CHECK(client.ok());
    health_us.reserve(500);
    for (int i = 0; i < 500; ++i) {
      WallTimer timer;
      CPD_CHECK(client->RoundTrip("GET", "/healthz").ok());
      health_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
  }
  const double health_p50 = Percentile(&health_us, 0.50);
  std::printf("transport baseline (GET /healthz): p50 %.1f us\n", health_p50);

  std::vector<LevelResult> levels;
  for (const int connections : kConnectionLevels) {
    // Warm-up pass at this width, then the measured pass (with a breather
    // so the warm-up's closed connections finish their server-side
    // teardown and free worker slots).
    RunLevel(port, workload, connections);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const LevelResult result = RunLevel(port, workload, connections);
    std::printf(
        "%2d connection%s: %7.0f req/sec   p50 %7.1f us   p99 %8.1f us\n",
        result.connections, result.connections == 1 ? " " : "s", result.qps,
        result.p50_us, result.p99_us);
    levels.push_back(result);
  }
  http_server.Stop();
  std::filesystem::remove(artifact_path);

  std::string json = "{\n  \"bench\": \"server_load\",\n";
  json += StrFormat(
      "  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
      "\"communities\": %d, \"topics\": %d},\n",
      dataset.data.graph.num_users(), dataset.data.graph.num_documents(),
      config.num_communities, config.num_topics);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat("  \"server_threads\": %d,\n", kServerThreads);
  json += StrFormat("  \"healthz_p50_us\": %.2f,\n", health_p50);
  json += "  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    json += StrFormat(
        "    {\"connections\": %d, \"requests\": %zu, "
        "\"queries_per_sec\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
        levels[i].connections, levels[i].requests, levels[i].qps,
        levels[i].p50_us, levels[i].p99_us,
        i + 1 < levels.size() ? "," : "");
  }
  json += "  ]\n}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_server.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
