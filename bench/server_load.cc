// HTTP serving-layer benchmark -> BENCH_server.json.
//
// Trains one model on the Twitter-like preset, saves a v3 ".cpdb" artifact
// (vocabulary bundled), serves it through the real stack (ModelRegistry +
// HttpServer + JSON endpoints on loopback), and drives a closed-loop load
// generator against POST /v1/query over an io_mode x coalescing matrix:
//
//   blocking          1 / 4 / 16 connections (the thread-per-connection
//                     path; its accept edge caps connections at the worker
//                     count, so wider sweeps are meaningless here)
//   epoll             1 / 16 / 256 / 1024 connections
//   epoll+coalesce    16 / 256 / 1024 connections (micro-batch window on)
//
// Levels whose fd appetite (client + server side) would cross the process
// RLIMIT_NOFILE are skipped with a note rather than failing half-connected.
//
// Every connection issues its next request as soon as the previous response
// lands. Reports per-level qps and client-side p50/p99 request latency,
// server-side p50/p99 reconstructed from the /metricsz query-latency
// histogram (scrape delta around the measured pass), plus a
// single-connection GET /healthz baseline that isolates transport cost
// (framing + JSON + loopback) from query cost. `--connections N` overrides
// the sweep with one custom level (e.g. 1024) on the epoll configs.
//
// The JSON records which artifact load mode backs the serving index
// ("load_mode") and a "reloads" section timing the full ModelRegistry
// reload path (artifact load + vocabulary + engine + load-then-swap) under
// load_mode=heap vs load_mode=mmap, with RSS deltas.
//
// Follows the BENCH_query.json conventions: laptop-friendly scale, honors
// CPD_BENCH_JSON_DIR, records hardware_concurrency (a 1-core container
// cannot show concurrency gains; CI's multicore runners do).

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "server/coalescer.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

// Comfortably above 2x the largest blocking-mode connection level: a
// finished client's server-side connection lingers for a moment after
// close, so warm-up and measured connections can briefly coexist without
// tripping the accept-edge 429 shed.
constexpr int kServerThreads = 40;
constexpr size_t kRequestsPerLevel = 3000;

struct BenchConfig {
  const char* label;
  server::IoMode io_mode;
  bool coalesce;
  std::vector<int> levels;
};

struct LevelResult {
  const char* config_label = "";
  server::IoMode io_mode = server::IoMode::kBlocking;
  bool coalesce = false;
  int connections = 0;
  size_t requests = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Server-side handler latency over the same window, reconstructed from
  /// the /metricsz cpd_query_latency_us histogram (scrape delta around the
  /// measured pass). Client p50 - server p50 isolates the transport.
  double server_p50_us = 0.0;
  double server_p99_us = 0.0;
};

double Percentile(std::vector<double>* sorted_in_place, double fraction) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t index = static_cast<size_t>(
      static_cast<double>(sorted_in_place->size()) * fraction);
  return (*sorted_in_place)[std::min(index, sorted_in_place->size() - 1)];
}

/// Scrapes /metricsz and sums the cumulative cpd_query_latency_us bucket
/// counts position-wise across the query-type children (every histogram
/// shares the fixed bucket layout, so positions line up).
std::vector<uint64_t> ScrapeLatencyBuckets(int port) {
  auto client = server::HttpClient::Connect("127.0.0.1", port);
  CPD_CHECK(client.ok());
  auto response = client->RoundTrip("GET", "/metricsz");
  CPD_CHECK(response.ok());
  CPD_CHECK_EQ(response->status, 200);
  std::vector<uint64_t> buckets;
  constexpr const char* kPrefix = "cpd_query_latency_us_bucket{";
  size_t index = 0;
  size_t pos = 0;
  const std::string& body = response->body;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line(&body[pos], eol - pos);
    if (line.rfind(kPrefix, 0) == 0) {
      const size_t space = line.rfind(' ');
      CPD_CHECK(space != std::string::npos);
      const uint64_t value = std::strtoull(line.data() + space + 1, nullptr, 10);
      if (index >= buckets.size()) buckets.resize(index + 1, 0);
      buckets[index] += value;
      ++index;
    } else {
      index = 0;  // A child's bucket lines are consecutive.
    }
    pos = eol + 1;
  }
  return buckets;
}

/// Server-side percentiles from the delta of two cumulative scrapes,
/// reusing the obs bucket-midpoint reconstruction.
obs::Histogram::Snapshot SnapshotFromScrapeDelta(
    const std::vector<uint64_t>& before, const std::vector<uint64_t>& after) {
  obs::Histogram::Snapshot snap;
  snap.buckets.resize(after.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < after.size(); ++i) {
    const uint64_t cumulative =
        after[i] - (i < before.size() ? before[i] : 0);
    snap.buckets[i] = cumulative - prev;
    prev = cumulative;
  }
  snap.count = prev;
  return snap;
}

/// Pre-serialized mixed workload (same mix as bench_query's BuildWorkload,
/// already JSON so the generator measures the server, not the encoder).
std::vector<std::string> BuildWireWorkload(const SocialGraph& graph,
                                           const serve::ProfileIndex& index,
                                           size_t count, Rng* rng) {
  std::vector<std::string> bodies;
  bodies.reserve(count);
  const auto& links = graph.diffusion_links();
  for (size_t i = 0; i < count; ++i) {
    const double pick = rng->NextDouble();
    serve::QueryRequest request;
    if (pick < 0.55) {
      serve::MembershipRequest membership;
      membership.user = static_cast<UserId>(rng->NextUint64(graph.num_users()));
      membership.top_k = 5;
      request = membership;
    } else if (pick < 0.80) {
      serve::RankCommunitiesRequest rank;
      const size_t terms = 1 + rng->NextUint64(2);
      for (size_t t = 0; t < terms; ++t) {
        rank.words.push_back(
            static_cast<WordId>(rng->NextUint64(index.vocab_size())));
      }
      rank.top_k = 5;
      request = rank;
    } else if (pick < 0.90 && !links.empty()) {
      const DiffusionLink& link = links[rng->NextUint64(links.size())];
      serve::DiffusionRequest diffusion;
      diffusion.source = graph.document(link.i).user;
      diffusion.target = graph.document(link.j).user;
      diffusion.document = link.j;
      diffusion.time_bin = link.time;
      request = diffusion;
    } else {
      serve::TopUsersRequest top_users;
      top_users.community = static_cast<int>(
          rng->NextUint64(static_cast<uint64_t>(index.num_communities())));
      top_users.top_k = 10;
      request = top_users;
    }
    bodies.push_back(server::QueryRequestToJson(request).Dump());
  }
  return bodies;
}

/// Closed loop at one concurrency level: `connections` client threads, each
/// with its own keep-alive connection, splitting the workload evenly.
LevelResult RunLevel(int port, const std::vector<std::string>& workload,
                     int connections) {
  LevelResult result;
  result.connections = connections;
  // At least 8 requests per connection (cycling the workload) so the wide
  // levels measure steady-state serving, not just connection setup.
  const size_t per_connection = std::max<size_t>(
      workload.size() / static_cast<size_t>(connections), 8);
  result.requests = per_connection * static_cast<size_t>(connections);

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<size_t> failures{0};
  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto client = server::HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(per_connection);
        return;
      }
      auto& slot = latencies[static_cast<size_t>(c)];
      slot.reserve(per_connection);
      const size_t begin = static_cast<size_t>(c) * per_connection;
      for (size_t i = 0; i < per_connection; ++i) {
        WallTimer timer;
        auto response = client->RoundTrip(
            "POST", "/v1/query", workload[(begin + i) % workload.size()]);
        const double us = timer.ElapsedSeconds() * 1e6;
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        slot.push_back(us);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const double seconds = wall.ElapsedSeconds();
  CPD_CHECK_EQ(failures.load(), 0u);

  std::vector<double> all;
  all.reserve(result.requests);
  for (const auto& slot : latencies) {
    all.insert(all.end(), slot.begin(), slot.end());
  }
  result.qps = static_cast<double>(result.requests) / seconds;
  result.p99_us = Percentile(&all, 0.99);
  result.p50_us = Percentile(&all, 0.50);
  return result;
}

void Run(int override_connections) {
  BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = TwitterDataset(scale);
  PrintBenchHeader("HTTP serving layer (cpd_serve stack)", scale, dataset);

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = 12;
  std::printf("training |C|=%d |Z|=%d T1=%d...\n", config.num_communities,
              config.num_topics, config.em_iterations);
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  const std::string artifact_path =
      (std::filesystem::temp_directory_path() / "bench_server_load.cpdb")
          .string();
  CPD_CHECK(model
                ->SaveBinary(artifact_path,
                             &dataset.data.graph.corpus().vocabulary())
                .ok());

  // Non-owning alias: the cached dataset outlives the bench body.
  server::ModelRegistry registry(
      serve::ProfileIndexOptions{},
      std::shared_ptr<const SocialGraph>(&dataset.data.graph,
                                         [](const SocialGraph*) {}));
  CPD_CHECK(registry.LoadFrom(artifact_path).ok());

  // ----- reloads: full registry reload latency + RSS per load mode -----
  // Measures the path /admin/reload exercises: artifact load, vocabulary,
  // engine rebuild, load-then-swap. Default serving options (scoring tables
  // on) so the numbers match what a production swap costs.
  struct ReloadResult {
    const char* mode = "";
    double reload_ms_best = 0.0;
    double reload_ms_mean = 0.0;
    long rss_delta_kb = 0;
  };
  std::vector<ReloadResult> reloads;
  for (const serve::ArtifactLoadMode mode :
       {serve::ArtifactLoadMode::kHeap, serve::ArtifactLoadMode::kMmap}) {
    serve::ProfileIndexOptions options;
    options.load_mode = mode;
    server::ModelRegistry probe(
        options, std::shared_ptr<const SocialGraph>(&dataset.data.graph,
                                                    [](const SocialGraph*) {}));
    ReloadResult result;
    result.mode = serve::ArtifactLoadModeName(mode);
    const long rss_before_kb = CurrentRssKb();
    constexpr int kReloadIters = 5;
    double best_ms = 0.0;
    double total_ms = 0.0;
    for (int i = 0; i < kReloadIters; ++i) {
      WallTimer timer;
      CPD_CHECK(probe.LoadFrom(artifact_path).ok());
      const double ms = timer.ElapsedSeconds() * 1e3;
      best_ms = (i == 0) ? ms : std::min(best_ms, ms);
      total_ms += ms;
    }
    CPD_CHECK(probe.Snapshot()->index.is_mmap_backed() ==
              (mode == serve::ArtifactLoadMode::kMmap));
    result.reload_ms_best = best_ms;
    result.reload_ms_mean = total_ms / kReloadIters;
    result.rss_delta_kb = CurrentRssKb() - rss_before_kb;
    reloads.push_back(result);
    std::printf("reload load_mode=%s best %.3fms mean %.3fms rss %+ldkB\n",
                result.mode, result.reload_ms_best, result.reload_ms_mean,
                result.rss_delta_kb);
  }

  Rng rng(20260731);
  const std::vector<std::string> workload = BuildWireWorkload(
      dataset.data.graph, registry.Snapshot()->index, kRequestsPerLevel, &rng);

  std::vector<BenchConfig> configs = {
      {"blocking", server::IoMode::kBlocking, false, {1, 4, 16}},
      {"epoll", server::IoMode::kEpoll, false, {1, 16, 256, 1024}},
      {"epoll+coalesce", server::IoMode::kEpoll, true, {16, 256, 1024}},
  };
  if (override_connections > 0) {
    for (BenchConfig& bench_config : configs) {
      bench_config.levels = {override_connections};
    }
    if (override_connections > kServerThreads) {
      // The blocking accept edge sheds past the worker count; a wider
      // custom level only makes sense on the epoll configs.
      std::printf("skipping blocking config (%d connections > %d workers)\n",
                  override_connections, kServerThreads);
      configs.erase(configs.begin());
    }
  }

  // Every connection costs two fds in this process (client + server end);
  // drop levels a constrained RLIMIT_NOFILE could not carry half-connected.
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    const rlim_t budget = nofile.rlim_cur;
    for (BenchConfig& bench_config : configs) {
      std::vector<int> kept;
      for (const int level : bench_config.levels) {
        if (static_cast<rlim_t>(level) * 2 + 64 <= budget) {
          kept.push_back(level);
        } else {
          std::printf(
              "skipping %s @ %d connections (RLIMIT_NOFILE %llu too low)\n",
              bench_config.label, level,
              static_cast<unsigned long long>(budget));
        }
      }
      bench_config.levels = std::move(kept);
    }
  }

  double health_p50 = 0.0;
  std::vector<LevelResult> levels;
  for (const BenchConfig& bench_config : configs) {
    server::HttpServerOptions options;
    options.port = 0;
    options.io_mode = bench_config.io_mode;
    options.threads = kServerThreads;
    options.max_connections =
        std::max(2048, override_connections * 2);
    options.max_inflight = 64;
    options.log_requests = false;  // The log would dominate the bench.
    server::CoalescerOptions coalescer_options;
    coalescer_options.window_us = bench_config.coalesce ? 200 : 0;
    coalescer_options.max_batch = 16;
    server::Coalescer coalescer(coalescer_options);
    server::HttpServer http_server(options);
    server::ServiceStats stats;
    server::RegisterCpdRoutes(&http_server, &registry, &stats,
                              /*pipeline=*/nullptr, &coalescer);
    CPD_CHECK(http_server.Start().ok());
    const int port = http_server.port();

    if (bench_config.io_mode == server::IoMode::kBlocking &&
        !bench_config.coalesce) {
      // Transport-only baseline: /healthz round trips on one connection
      // (measured on the blocking path so it stays comparable with the
      // pre-event-loop numbers).
      auto warm = server::HttpClient::Connect("127.0.0.1", port);
      CPD_CHECK(warm.ok());
      for (int i = 0; i < 50; ++i) {
        CPD_CHECK(warm->RoundTrip("GET", "/healthz").ok());
      }
      auto client = server::HttpClient::Connect("127.0.0.1", port);
      CPD_CHECK(client.ok());
      std::vector<double> health_us;
      health_us.reserve(500);
      for (int i = 0; i < 500; ++i) {
        WallTimer timer;
        CPD_CHECK(client->RoundTrip("GET", "/healthz").ok());
        health_us.push_back(timer.ElapsedSeconds() * 1e6);
      }
      health_p50 = Percentile(&health_us, 0.50);
      std::printf("transport baseline (GET /healthz): p50 %.1f us\n",
                  health_p50);
    }

    std::printf("-- %s --\n", bench_config.label);
    for (const int connections : bench_config.levels) {
      // Warm-up pass at this width, then the measured pass (with a
      // breather so the warm-up's closed connections finish their
      // server-side teardown and free capacity).
      RunLevel(port, workload, connections);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const std::vector<uint64_t> scrape_before = ScrapeLatencyBuckets(port);
      LevelResult result = RunLevel(port, workload, connections);
      const std::vector<uint64_t> scrape_after = ScrapeLatencyBuckets(port);
      result.config_label = bench_config.label;
      result.io_mode = bench_config.io_mode;
      result.coalesce = bench_config.coalesce;
      const obs::Histogram::Snapshot server_side =
          SnapshotFromScrapeDelta(scrape_before, scrape_after);
      result.server_p50_us = server_side.Percentile(0.50);
      result.server_p99_us = server_side.Percentile(0.99);
      std::printf(
          "%4d connection%s: %7.0f req/sec   p50 %7.1f us   p99 %8.1f us   "
          "(server-side p50 %.1f / p99 %.1f us)\n",
          result.connections, result.connections == 1 ? " " : "s",
          result.qps, result.p50_us, result.p99_us, result.server_p50_us,
          result.server_p99_us);
      levels.push_back(result);
    }
    if (bench_config.coalesce) {
      const server::CoalescerStats batching = coalescer.stats();
      std::printf(
          "   coalescer: %llu requests in %llu batches (%llu coalesced; "
          "seals: %llu full, %llu timeout, %llu swap)\n",
          static_cast<unsigned long long>(batching.requests),
          static_cast<unsigned long long>(batching.batches),
          static_cast<unsigned long long>(batching.coalesced),
          static_cast<unsigned long long>(batching.flush_full),
          static_cast<unsigned long long>(batching.flush_timeout),
          static_cast<unsigned long long>(batching.flush_mismatch));
    }
    http_server.Stop();
  }
  std::filesystem::remove(artifact_path);

  std::string json = "{\n  \"bench\": \"server_load\",\n";
  json += StrFormat(
      "  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
      "\"communities\": %d, \"topics\": %d},\n",
      dataset.data.graph.num_users(), dataset.data.graph.num_documents(),
      config.num_communities, config.num_topics);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat("  \"server_threads\": %d,\n", kServerThreads);
  // Whether the served index carried the precomputed scoring tables —
  // comparing rows across commits needs this pinned next to the numbers.
  json += StrFormat("  \"precompute_scoring\": %s,\n",
                    registry.Snapshot()->index.has_scoring_tables() ? "true"
                                                                    : "false");
  // Which artifact load mode backed the serving index for the whole sweep
  // (kAuto maps v3 artifacts, so this is "mmap" unless the format regresses).
  json += StrFormat("  \"load_mode\": \"%s\",\n",
                    registry.Snapshot()->index.is_mmap_backed() ? "mmap"
                                                                : "heap");
  json += StrFormat("  \"healthz_p50_us\": %.2f,\n", health_p50);
  json += "  \"reloads\": [\n";
  for (size_t i = 0; i < reloads.size(); ++i) {
    json += StrFormat(
        "    {\"load_mode\": \"%s\", \"reload_ms_best\": %.3f, "
        "\"reload_ms_mean\": %.3f, \"rss_delta_kb\": %ld}%s\n",
        reloads[i].mode, reloads[i].reload_ms_best, reloads[i].reload_ms_mean,
        reloads[i].rss_delta_kb, i + 1 < reloads.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    json += StrFormat(
        "    {\"io_mode\": \"%s\", \"coalesce\": %s, \"connections\": %d, "
        "\"requests\": %zu, \"queries_per_sec\": %.1f, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f, \"server_p50_us\": %.2f, "
        "\"server_p99_us\": %.2f}%s\n",
        server::IoModeName(levels[i].io_mode),
        levels[i].coalesce ? "true" : "false", levels[i].connections,
        levels[i].requests, levels[i].qps, levels[i].p50_us,
        levels[i].p99_us, levels[i].server_p50_us, levels[i].server_p99_us,
        i + 1 < levels.size() ? "," : "");
  }
  json += "  ]\n}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_server.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace cpd::bench

int main(int argc, char** argv) {
  int override_connections = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      override_connections = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--connections N]\n", argv[0]);
      return 2;
    }
  }
  cpd::bench::Run(override_connections);
  return 0;
}
