// Reproduces Figure 3 (model-design study, §6.2):
//   (a-f) full CPD vs "no joint modeling" vs "no heterogeneity" on community
//         detection (conductance), friendship link prediction (AUC) and
//         diffusion link prediction (AUC), sweeping |C| on both datasets;
//   (g-h) full CPD vs "no individual & topic" vs "no topic" on diffusion
//         prediction AUC.
// Expected shape (paper): "Ours" dominates "No Joint Modeling" everywhere,
// beats "No Heterogeneity" on diffusion prediction while staying comparable
// on detection/friendship; dropping the individual and topic factors costs
// several AUC points each.

#include <cstdio>

#include "bench_common.h"

namespace cpd::bench {
namespace {

struct Variant {
  const char* name;
  CpdAblation ablation;
};

CpdConfig VariantConfig(const BenchScale& scale, int kc, const Variant& variant) {
  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = kc;
  config.ablation = variant.ablation;
  return config;
}

double FullGraphConductance(const SocialGraph& graph, const CpdConfig& config) {
  auto model = CpdModel::Train(graph, config);
  CPD_CHECK(model.ok());
  std::vector<std::vector<double>> memberships(graph.num_users());
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto row = model->Membership(static_cast<UserId>(u));
    memberships[u].assign(row.begin(), row.end());
  }
  // The paper assigns each user to her top-5 communities with |C| >= 20;
  // at scaled-down |C| keep the same *fraction* (5/20 = |C|/4).
  const int top_k = std::max(1, config.num_communities / 4);
  return AverageConductance(graph, memberships, top_k);
}

void RunPanelSet(const BenchDataset& dataset, const BenchScale& scale,
                 const std::vector<Variant>& variants, const char* panel,
                 bool with_detection) {
  PrintBenchHeader(std::string("Figure 3") + panel, scale, dataset);

  TableWriter conductance("Community detection (conductance, lower=better) - " +
                          dataset.name);
  TableWriter friendship("Friendship link prediction (AUC) - " + dataset.name);
  TableWriter diffusion("Diffusion link prediction (AUC) - " + dataset.name);
  std::vector<std::string> header = {"variant"};
  for (int kc : scale.community_sweep) header.push_back("C=" + std::to_string(kc));
  conductance.SetHeader(header);
  friendship.SetHeader(header);
  diffusion.SetHeader(header);

  for (const Variant& variant : variants) {
    std::vector<double> cond_row, friend_row, diff_row;
    for (int kc : scale.community_sweep) {
      const CpdConfig config = VariantConfig(scale, kc, variant);
      if (with_detection) {
        cond_row.push_back(FullGraphConductance(dataset.data.graph, config));
      }
      const FoldResult folds = RunLinkPredictionFolds(
          dataset.data.graph, scale, MakeCpdScorerFactory(config),
          /*seed=*/977 + static_cast<uint64_t>(kc));
      friend_row.push_back(folds.MeanFriendshipAuc());
      diff_row.push_back(folds.MeanDiffusionAuc());
    }
    if (with_detection) conductance.AddRow(variant.name, cond_row);
    friendship.AddRow(variant.name, friend_row);
    diffusion.AddRow(variant.name, diff_row);
  }
  if (with_detection) {
    conductance.Print();
    friendship.Print();
  }
  diffusion.Print();
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();

  CpdAblation full;
  CpdAblation no_joint;
  no_joint.joint_profiling = false;
  CpdAblation no_hetero;
  no_hetero.heterogeneous_links = false;
  const std::vector<Variant> abc = {{"No Heterogeneity", no_hetero},
                                    {"No Joint Modeling", no_joint},
                                    {"Ours", full}};

  CpdAblation no_indiv_topic;
  no_indiv_topic.individual_factor = false;
  no_indiv_topic.topic_factor = false;
  CpdAblation no_topic;
  no_topic.topic_factor = false;
  const std::vector<Variant> gh = {{"No Individual & Topic", no_indiv_topic},
                                   {"No Topic", no_topic},
                                   {"Ours", full}};

  RunPanelSet(TwitterDataset(scale), scale, abc, "(a-c)", /*with_detection=*/true);
  RunPanelSet(DblpDataset(scale), scale, abc, "(d-f)", /*with_detection=*/true);
  RunPanelSet(TwitterDataset(scale), scale, gh, "(g)", /*with_detection=*/false);
  RunPanelSet(DblpDataset(scale), scale, gh, "(h)", /*with_detection=*/false);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
