// Streaming-ingest benchmark -> BENCH_ingest.json.
//
// Measures the economics of warm-started incremental updates against the
// only alternative a static trainer has — a cold retrain on the merged
// corpus:
//   1. cold-train a base model on the Twitter-like preset;
//   2. synthesize an update batch (~10% new users replaying base-document
//      token distributions, plus novel words, friendships, diffusions);
//   3. warm path: IngestPipeline::Ingest — merged graph, bounded warm
//      sweeps over the touched shards, fresh v2 artifact;
//   4. cold path: full retrain on the same merged graph + artifact write.
// Reports time-to-fresh-artifact and effective tokens/sec for both paths
// plus quality parity (content perplexity and link log-likelihood of warm
// vs cold on the merged corpus). The warm path must win wall-clock by
// construction (it sweeps a fraction of the corpus a fraction of the
// iterations); the JSON keeps the ratio visible across PRs.
//
// Follows the BENCH_sampler.json conventions: argument-free,
// laptop-friendly, honors CPD_BENCH_JSON_DIR.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/metrics.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_batch.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

struct Quality {
  double perplexity = 0.0;
  double link_log_likelihood = 0.0;
};

Quality Evaluate(const SocialGraph& graph, const CpdModel& model,
                 double link_ll) {
  std::vector<std::vector<double>> pi(model.num_users());
  for (size_t u = 0; u < model.num_users(); ++u) {
    const auto view = model.Membership(static_cast<UserId>(u));
    pi[u].assign(view.begin(), view.end());
  }
  std::vector<std::vector<double>> theta(
      static_cast<size_t>(model.num_communities()));
  for (int c = 0; c < model.num_communities(); ++c) {
    const auto view = model.ContentProfile(c);
    theta[static_cast<size_t>(c)].assign(view.begin(), view.end());
  }
  std::vector<std::vector<double>> phi(static_cast<size_t>(model.num_topics()));
  for (int z = 0; z < model.num_topics(); ++z) {
    const auto view = model.TopicWords(z);
    phi[static_cast<size_t>(z)].assign(view.begin(), view.end());
  }
  std::vector<DocId> all_docs(graph.num_documents());
  for (size_t d = 0; d < all_docs.size(); ++d) {
    all_docs[d] = static_cast<DocId>(d);
  }
  Quality quality;
  quality.perplexity = ContentPerplexity(graph, all_docs, pi, theta, phi);
  quality.link_log_likelihood = link_ll;
  return quality;
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = TwitterDataset(scale);
  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = 12;
  config.num_topics = 12;
  PrintBenchHeader("Streaming ingest: warm-started EM vs cold retrain",
                   scale, dataset);

  const SocialGraph& base = dataset.data.graph;
  std::printf("cold-training the base model (T1=%d)...\n",
              config.em_iterations);
  WallTimer base_timer;
  auto base_model = CpdModel::Train(base, config);
  CPD_CHECK(base_model.ok());
  const double base_train_seconds = base_timer.ElapsedSeconds();

  // ~10% new users, each replaying base token distributions.
  Rng rng(20260731);
  ingest::SampleUpdateOptions update_options;
  update_options.new_users = std::max<size_t>(2, base.num_users() / 10);
  update_options.docs_per_user = 4;
  update_options.novel_words_per_doc = 1;
  update_options.friends_per_user = 4;
  update_options.diffusions = update_options.new_users * 2;
  update_options.time = base.num_time_bins() - 1;
  const ingest::UpdateBatch batch =
      ingest::SampleUpdateBatch(base, update_options, &rng);
  std::printf("update batch: %zu docs, %zu friendships, %zu diffusions, "
              "+%zu users\n",
              batch.documents.size(), batch.friendships.size(),
              batch.diffusions.size(),
              batch.num_users - base.num_users());

  const std::string tmp =
      std::filesystem::temp_directory_path().string() + "/bench_ingest";

  // ----- warm path: pipeline end to end (time-to-fresh-artifact) -----
  ingest::IngestOptions pipeline_options;
  pipeline_options.config = config;
  pipeline_options.warm_iterations = 2;
  auto graph_alias = std::shared_ptr<const SocialGraph>(
      &base, [](const SocialGraph*) {});
  auto pipeline = ingest::IngestPipeline::Create(graph_alias, *base_model,
                                                 pipeline_options);
  CPD_CHECK(pipeline.ok());
  auto warm = (*pipeline)->Ingest(batch, tmp + ".warm.cpdb");
  CPD_CHECK(warm.ok());
  const auto warm_model = (*pipeline)->model();
  const auto merged = (*pipeline)->graph();
  std::printf("warm ingest: %.3f s to fresh artifact "
              "(apply %.3f, sweeps %.3f, save %.3f)\n",
              warm->total_seconds, warm->apply_seconds, warm->warm_seconds,
              warm->save_seconds);

  // ----- cold path: full retrain on the same merged graph -----
  WallTimer cold_timer;
  auto cold_model = CpdModel::Train(*merged, config);
  CPD_CHECK(cold_model.ok());
  const Status cold_saved = cold_model->SaveBinary(
      tmp + ".cold.cpdb", &merged->corpus().vocabulary());
  CPD_CHECK(cold_saved.ok());
  const double cold_seconds = cold_timer.ElapsedSeconds();
  std::printf("cold retrain on the merged corpus: %.3f s\n", cold_seconds);

  const double speedup =
      warm->total_seconds > 0.0 ? cold_seconds / warm->total_seconds : 0.0;
  std::printf("time-to-fresh-artifact: warm %.3f s vs cold %.3f s (%.1fx)\n",
              warm->total_seconds, cold_seconds, speedup);

  // Effective sampling throughput: tokens the E-steps actually swept per
  // second. Cold sweeps the whole merged corpus T1 times; warm sweeps only
  // its touched users warm_iterations times — count those tokens.
  const auto merged_tokens =
      static_cast<double>(merged->corpus().total_tokens());
  const int sweeps = config.gibbs_sweeps_per_em;
  const double cold_tokens_per_sec =
      merged_tokens * config.em_iterations * sweeps /
      cold_model->stats().e_step_seconds;
  const double touched_tokens = static_cast<double>(warm->touched_tokens);
  const double warm_estep_seconds = warm_model->stats().e_step_seconds;
  const double warm_tokens_per_sec =
      warm_estep_seconds > 0.0 ? touched_tokens * pipeline_options.warm_iterations *
                                     sweeps / warm_estep_seconds
                               : 0.0;
  std::printf("E-step throughput: warm %.0f tokens/s over %.0f touched "
              "tokens, cold %.0f tokens/s over the full corpus\n",
              warm_tokens_per_sec, touched_tokens, cold_tokens_per_sec);

  const Quality warm_quality =
      Evaluate(*merged, *warm_model, warm->link_log_likelihood);
  const Quality cold_quality =
      Evaluate(*merged, *cold_model,
               cold_model->stats().link_log_likelihood.empty()
                   ? 0.0
                   : cold_model->stats().link_log_likelihood.back());
  std::printf("quality on the merged corpus: perplexity warm %.1f vs cold "
              "%.1f, link LL warm %.1f vs cold %.1f\n",
              warm_quality.perplexity, cold_quality.perplexity,
              warm_quality.link_log_likelihood,
              cold_quality.link_log_likelihood);

  std::string json = "{\n  \"bench\": \"ingest\",\n";
  json += StrFormat(
      "  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
      "\"communities\": %d, \"topics\": %d},\n",
      base.num_users(), base.num_documents(), config.num_communities,
      config.num_topics);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat(
      "  \"batch\": {\"documents\": %zu, \"new_users\": %zu, "
      "\"friendships\": %zu, \"diffusions\": %zu, \"new_words\": %zu},\n",
      batch.documents.size(), batch.num_users - base.num_users(),
      batch.friendships.size(), batch.diffusions.size(),
      warm->counts.new_words);
  json += StrFormat("  \"base_train_seconds\": %.4f,\n", base_train_seconds);
  json += StrFormat(
      "  \"warm\": {\"time_to_fresh_artifact_seconds\": %.4f, "
      "\"apply_seconds\": %.4f, \"warm_sweep_seconds\": %.4f, "
      "\"save_seconds\": %.4f, \"warm_iterations\": %d, "
      "\"tokens_per_sec\": %.1f, \"touched_tokens\": %.0f},\n",
      warm->total_seconds, warm->apply_seconds, warm->warm_seconds,
      warm->save_seconds, pipeline_options.warm_iterations,
      warm_tokens_per_sec, touched_tokens);
  json += StrFormat(
      "  \"cold\": {\"time_to_fresh_artifact_seconds\": %.4f, "
      "\"em_iterations\": %d, \"tokens_per_sec\": %.1f},\n",
      cold_seconds, config.em_iterations, cold_tokens_per_sec);
  json += StrFormat("  \"speedup_time_to_fresh_artifact\": %.2f,\n", speedup);
  json += StrFormat(
      "  \"quality\": {\"warm_perplexity\": %.3f, \"cold_perplexity\": %.3f, "
      "\"warm_link_ll\": %.3f, \"cold_link_ll\": %.3f}\n",
      warm_quality.perplexity, cold_quality.perplexity,
      warm_quality.link_log_likelihood, cold_quality.link_log_likelihood);
  json += "}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_ingest.json";
  const Status written = WriteStringToFile(path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
  std::filesystem::remove(tmp + ".warm.cpdb");
  std::filesystem::remove(tmp + ".cold.cpdb");
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
