// Reproduces Figure 9 (community quality, §6.3.4): conductance (top-5
// membership, lower = better) and friendship link-prediction AUC of CPD vs
// PMTLM, CRM and COLD across |C|, on both datasets. Expected shape (paper):
// "Ours" has the lowest conductance and the highest AUC — PMTLM/COLD ignore
// friendship links, CRM does not enforce intra-community density.

#include <algorithm>
#include <cstdio>

#include "baselines/cold.h"
#include "baselines/crm.h"
#include "baselines/pmtlm.h"
#include "bench_common.h"
#include "eval/significance.h"
#include "util/math_util.h"

namespace cpd::bench {
namespace {

using MembershipFn =
    std::function<std::vector<std::vector<double>>(const SocialGraph&, int kc)>;
using FriendFactoryFn = std::function<ScorerFactory(int kc)>;

struct Method {
  std::string name;
  MembershipFn memberships;  ///< Trained on the full graph (conductance).
  FriendFactoryFn factory;   ///< Trained per fold (friendship AUC).
};

void RunDataset(const BenchDataset& dataset, const BenchScale& scale) {
  PrintBenchHeader("Figure 9: community detection quality", scale, dataset);
  const SocialGraph& graph = dataset.data.graph;

  std::vector<Method> methods;
  methods.push_back(Method{
      "PMTLM",
      [](const SocialGraph& g, int kc) {
        PmtlmConfig config;
        config.num_topics = kc;
        auto model = PmtlmModel::Train(g, config);
        CPD_CHECK(model.ok());
        return model->Memberships();
      },
      [](int kc) {
        return [kc](const SocialGraph& train) -> TrainedScorers {
          PmtlmConfig config;
          config.num_topics = kc;
          auto model = PmtlmModel::Train(train, config);
          CPD_CHECK(model.ok());
          auto shared = std::make_shared<PmtlmModel>(std::move(*model));
          TrainedScorers scorers;
          scorers.friendship = [shared](UserId u, UserId v) {
            return shared->AsFriendshipScorer()(u, v);
          };
          return scorers;
        };
      }});
  methods.push_back(Method{
      "CRM",
      [](const SocialGraph& g, int kc) {
        CrmConfig config;
        config.num_communities = kc;
        auto model = CrmModel::Train(g, config);
        CPD_CHECK(model.ok());
        return model->Memberships();
      },
      [](int kc) {
        return [kc](const SocialGraph& train) -> TrainedScorers {
          CrmConfig config;
          config.num_communities = kc;
          auto model = CrmModel::Train(train, config);
          CPD_CHECK(model.ok());
          auto shared = std::make_shared<CrmModel>(std::move(*model));
          TrainedScorers scorers;
          scorers.friendship = [shared](UserId u, UserId v) {
            return shared->AsFriendshipScorer()(u, v);
          };
          return scorers;
        };
      }});
  const int em = scale.em_iterations;
  methods.push_back(Method{
      "COLD",
      [em](const SocialGraph& g, int kc) {
        ColdConfig config;
        config.num_communities = kc;
        config.num_topics = 12;
        config.em_iterations = em;
        auto model = ColdModel::Train(g, config);
        CPD_CHECK(model.ok());
        return model->Memberships();
      },
      [em](int kc) {
        return [kc, em](const SocialGraph& train) -> TrainedScorers {
          ColdConfig config;
          config.num_communities = kc;
          config.num_topics = 12;
          config.em_iterations = em;
          auto model = ColdModel::Train(train, config);
          CPD_CHECK(model.ok());
          auto shared = std::make_shared<ColdModel>(std::move(*model));
          TrainedScorers scorers;
          scorers.friendship = [shared](UserId u, UserId v) {
            return shared->AsFriendshipScorer()(u, v);
          };
          return scorers;
        };
      }});
  methods.push_back(Method{
      "Ours",
      [&scale](const SocialGraph& g, int kc) {
        CpdConfig config = BaseCpdConfig(scale);
        config.num_communities = kc;
        auto model = CpdModel::Train(g, config);
        CPD_CHECK(model.ok());
        std::vector<std::vector<double>> memberships(g.num_users());
        for (size_t u = 0; u < g.num_users(); ++u) {
          const auto row = model->Membership(static_cast<UserId>(u));
          memberships[u].assign(row.begin(), row.end());
        }
        return memberships;
      },
      [&scale](int kc) {
        CpdConfig config = BaseCpdConfig(scale);
        config.num_communities = kc;
        return MakeCpdScorerFactory(config);
      }});

  TableWriter conductance("Community detection (conductance, lower=better) - " +
                          dataset.name);
  TableWriter friendship("Friendship link prediction (AUC) - " + dataset.name);
  std::vector<std::string> header = {"method"};
  for (int kc : scale.community_sweep) header.push_back("C=" + std::to_string(kc));
  conductance.SetHeader(header);
  friendship.SetHeader(header);

  for (const Method& method : methods) {
    std::vector<double> cond_row, friend_row;
    for (int kc : scale.community_sweep) {
      // Top-5 membership at the paper's |C| >= 20; the same fraction
      // (|C|/4) at scaled-down community counts.
      cond_row.push_back(AverageConductance(graph, method.memberships(graph, kc),
                                            std::max(1, kc / 4)));
      const FoldResult folds =
          RunLinkPredictionFolds(graph, scale, method.factory(kc),
                                 /*seed=*/919 + static_cast<uint64_t>(kc));
      friend_row.push_back(folds.MeanFriendshipAuc());
    }
    conductance.AddRow(method.name, cond_row);
    friendship.AddRow(method.name, friend_row);
  }
  conductance.Print();
  friendship.Print();
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  RunDataset(TwitterDataset(scale), scale);
  RunDataset(DblpDataset(scale), scale);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
