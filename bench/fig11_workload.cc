// Reproduces Figure 11 (workload balancing, §6.4): for an 8-thread parallel
// E-step, the estimated per-core workload from the LDA-segmentation +
// knapsack allocation (Eq. 17) vs the measured per-core running time — both
// should be flat across cores. Also contrasts the knapsack allocator's
// imbalance with the greedy LPT baseline on the actual segment workloads.

#include <cstdio>

#include "bench_common.h"
#include "core/em_trainer.h"
#include "parallel/knapsack.h"
#include "parallel/segmenter.h"
#include "util/math_util.h"

namespace cpd::bench {
namespace {

constexpr int kCores = 8;

void RunDataset(const BenchDataset& dataset, const BenchScale& scale) {
  PrintBenchHeader("Figure 11: per-core workload balancing", scale, dataset);

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = scale.community_sweep[1];
  config.num_threads = kCores;
  config.gibbs_sweeps_per_em = 2;
  EmTrainer trainer(dataset.data.graph, config);
  CPD_CHECK(trainer.Initialize().ok());
  CPD_CHECK(trainer.EStep().ok());

  const TrainStats& stats = trainer.stats();
  TableWriter table("Estimated workload vs actual running time per core - " +
                    dataset.name);
  table.SetHeader({"core", "estimated workload (rel.)", "actual time (ms)"});
  const double total_estimated = StableSum(stats.thread_estimated_workload);
  for (int t = 0; t < kCores; ++t) {
    table.AddRow({std::to_string(t + 1),
                  FormatDouble(stats.thread_estimated_workload[static_cast<size_t>(t)] /
                                   std::max(total_estimated, 1e-12) * kCores,
                               3),
                  FormatDouble(stats.thread_actual_seconds[static_cast<size_t>(t)] *
                                   1e3,
                               2)});
  }
  table.Print();

  const double est_imbalance =
      *std::max_element(stats.thread_estimated_workload.begin(),
                        stats.thread_estimated_workload.end()) /
      std::max(Mean(stats.thread_estimated_workload), 1e-12);
  const double actual_imbalance =
      *std::max_element(stats.thread_actual_seconds.begin(),
                        stats.thread_actual_seconds.end()) /
      std::max(Mean(stats.thread_actual_seconds), 1e-12);
  std::printf("segments=%zu  estimated imbalance=%.3f  actual imbalance=%.3f "
              "(1.0 = perfectly even; paper: \"good workload balancing\")\n",
              stats.num_segments, est_imbalance, actual_imbalance);

  // Knapsack vs greedy on the same segment workloads.
  WorkloadCostModel cost;
  auto segments = SegmentUsersByTopic(dataset.data.graph,
                                      std::max(config.num_topics, kCores), cost,
                                      /*lda_iterations=*/15, config.seed + 101);
  CPD_CHECK(segments.ok());
  std::vector<double> workloads;
  for (const DataSegment& segment : *segments) {
    workloads.push_back(segment.estimated_workload);
  }
  const SegmentAllocation knapsack = AllocateSegmentsKnapsack(workloads, kCores);
  const SegmentAllocation greedy = AllocateSegmentsGreedy(workloads, kCores);
  std::printf("allocator imbalance on these segments: knapsack (Eq. 17) = "
              "%.3f, greedy LPT = %.3f\n\n",
              knapsack.Imbalance(), greedy.Imbalance());
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  RunDataset(TwitterDataset(scale), scale);
  RunDataset(DblpDataset(scale), scale);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
