// Reproduces Figure 5 (diffusion-factor case study, §6.3.1) on the
// DBLP-like dataset:
//   (a) individual factor: #citations-made vs user activeness, and
//       #citations-received vs user popularity (both should correlate);
//   (b) topic factor: papers and citations per year for one topic track each
//       other over time;
//   (c) community factor: top diffusion topics between the top-2 communities
//       ranked for a "router"-like query differ by direction.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/community_ranking.h"
#include "bench_common.h"
#include "util/math_util.h"

namespace cpd::bench {
namespace {

void PanelA(const BenchDataset& dataset) {
  const SocialGraph& graph = dataset.data.graph;
  std::vector<double> activeness, diffusions_made, popularity, citations_received;
  std::vector<int64_t> received(graph.num_users(), 0);
  for (const DiffusionLink& link : graph.diffusion_links()) {
    ++received[static_cast<size_t>(graph.document(link.j).user)];
  }
  // Popularity = followers/followees is identically 1 on a symmetric
  // co-authorship graph; fall back to the collaborator count ("established
  // researchers have more co-authors") when the ratio is degenerate.
  bool ratio_varies = false;
  for (size_t u = 1; u < graph.num_users() && !ratio_varies; ++u) {
    ratio_varies = std::fabs(graph.activity(static_cast<UserId>(u)).Popularity() -
                             graph.activity(0).Popularity()) > 1e-12;
  }
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const UserActivity& activity = graph.activity(static_cast<UserId>(u));
    activeness.push_back(activity.Activeness());
    diffusions_made.push_back(static_cast<double>(activity.diffusions));
    popularity.push_back(ratio_varies
                             ? activity.Popularity()
                             : static_cast<double>(activity.followers));
    citations_received.push_back(static_cast<double>(received[u]));
  }
  TableWriter table("Fig 5(a): individual factor correlations - " + dataset.name);
  table.SetHeader({"relationship", "Pearson r"});
  table.AddRow({"#citations made vs activeness",
                FormatDouble(PearsonCorrelation(activeness, diffusions_made), 4)});
  table.AddRow({"#citations received vs popularity",
                FormatDouble(PearsonCorrelation(popularity, citations_received), 4)});
  table.Print();
  std::printf("Paper observation: both correlations positive (more active "
              "users cite more; more popular users are cited more).\n\n");
}

void PanelB(const BenchDataset& dataset, const CpdModel& model) {
  const SocialGraph& graph = dataset.data.graph;
  // Pick the topic with the most diffusions overall.
  std::vector<int64_t> topic_diffusions(
      static_cast<size_t>(model.num_topics()), 0);
  // Re-derive per-doc topics from the model's posterior-free training counts
  // is unavailable here; count by planted truth (the generator's labels).
  const auto& truth = dataset.data.truth;
  for (const DiffusionLink& link : graph.diffusion_links()) {
    ++topic_diffusions[static_cast<size_t>(
        truth.doc_topic[static_cast<size_t>(link.i)])];
  }
  const int z = static_cast<int>(std::distance(
      topic_diffusions.begin(),
      std::max_element(topic_diffusions.begin(), topic_diffusions.end())));

  std::vector<int64_t> papers(static_cast<size_t>(graph.num_time_bins()), 0);
  std::vector<int64_t> citations(static_cast<size_t>(graph.num_time_bins()), 0);
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    if (truth.doc_topic[d] == z) {
      ++papers[static_cast<size_t>(graph.document(static_cast<DocId>(d)).time)];
    }
  }
  for (const DiffusionLink& link : graph.diffusion_links()) {
    if (truth.doc_topic[static_cast<size_t>(link.i)] == z) {
      ++citations[static_cast<size_t>(link.time)];
    }
  }
  TableWriter table("Fig 5(b): papers vs citations per year, topic " +
                    std::to_string(z) + " - " + dataset.name);
  table.SetHeader({"year", "#papers", "#citations"});
  std::vector<double> paper_series, citation_series;
  for (int32_t t = 0; t < graph.num_time_bins(); ++t) {
    table.AddRow({std::to_string(t),
                  std::to_string(papers[static_cast<size_t>(t)]),
                  std::to_string(citations[static_cast<size_t>(t)])});
    paper_series.push_back(static_cast<double>(papers[static_cast<size_t>(t)]));
    citation_series.push_back(
        static_cast<double>(citations[static_cast<size_t>(t)]));
  }
  table.Print();
  std::printf("Pearson(papers, citations) over time = %.4f (paper: \"high "
              "correlation\" -> topic popularity drives diffusion)\n\n",
              PearsonCorrelation(paper_series, citation_series));
}

void PanelC(const BenchDataset& dataset, const CpdModel& model) {
  // Query the ranking application for a networking-themed term and inspect
  // the diffusion between the top-2 communities (paper Fig. 5(c): c18/c32
  // cite each other on "network", asymmetrically on "security"/"service").
  CommunityRanker ranker(model);
  const std::vector<WordId> query = CommunityRanker::ParseQuery(
      dataset.data.graph.corpus().vocabulary(), "router");
  CPD_CHECK(!query.empty());
  const auto ranked = ranker.Rank(query);
  CPD_CHECK(ranked.size() >= 2u);
  const int a = ranked[0].community;
  const int b = ranked[1].community;

  auto top_topics = [&model](int from, int to) {
    std::vector<std::pair<double, int>> strengths;
    for (int z = 0; z < model.num_topics(); ++z) {
      strengths.emplace_back(model.Eta(from, to, z), z);
    }
    std::sort(strengths.rbegin(), strengths.rend());
    strengths.resize(5);
    return strengths;
  };

  TableWriter table("Fig 5(c): top-5 diffusion topics between the top-2 "
                    "communities for query 'router' - " +
                    dataset.name);
  table.SetHeader({"direction", "rank", "topic", "diffusion strength"});
  const auto ab = top_topics(a, b);
  const auto ba = top_topics(b, a);
  for (size_t r = 0; r < 5; ++r) {
    table.AddRow({StrFormat("c%02d -> c%02d", a, b), std::to_string(r + 1),
                  "T" + std::to_string(ab[r].second),
                  FormatDouble(ab[r].first, 6)});
  }
  for (size_t r = 0; r < 5; ++r) {
    table.AddRow({StrFormat("c%02d -> c%02d", b, a), std::to_string(r + 1),
                  "T" + std::to_string(ba[r].second),
                  FormatDouble(ba[r].first, 6)});
  }
  table.Print();
  std::printf("Paper observation: the two communities share a top exchange "
              "topic but the remaining preferences are asymmetric -> the "
              "community factor is direction- and topic-specific.\n");
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = DblpDataset(scale);
  PrintBenchHeader("Figure 5: diffusion factor case study", scale, dataset);

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = scale.community_sweep[1];
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  PanelA(dataset);
  PanelB(dataset, *model);
  PanelC(dataset, *model);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
