#ifndef CPD_BENCH_BENCH_COMMON_H_
#define CPD_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Shared harness for the per-table/per-figure benchmark binaries. Every
/// binary runs argument-free at a laptop-friendly scale and prints the rows /
/// series of the corresponding paper table or figure. Environment knobs:
///   CPD_BENCH_SCALE=paper  enlarge the |C| sweep to the paper's grid
///                          {20,50,100,150} and the datasets ~4x (slow);
///   CPD_BENCH_FOLDS=n      cross-validation folds to evaluate (default 2).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/diffusion_prediction.h"
#include "core/cpd_model.h"
#include "eval/cross_validation.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "graph/social_graph.h"
#include "synth/generator.h"
#include "synth/synth_config.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace cpd::bench {

/// Resolved benchmark scale.
struct BenchScale {
  bool paper = false;
  std::vector<int> community_sweep;  ///< x-axis of Figs. 3/4/8/9.
  double dataset_scale = 1.0;        ///< Multiplies preset user counts.
  int folds = 2;                     ///< Evaluated CV folds (of 10).
  int em_iterations = 10;

  static BenchScale FromEnv();
};

/// Generated dataset plus its name for table captions.
struct BenchDataset {
  std::string name;  ///< "Twitter" or "DBLP".
  SynthResult data;
};

/// Builds the Twitter-like dataset at the given scale (cached per process).
const BenchDataset& TwitterDataset(const BenchScale& scale);
/// Builds the DBLP-like dataset at the given scale (cached per process).
const BenchDataset& DblpDataset(const BenchScale& scale);

/// Base CPD config used across benches (|C|, |Z| filled by the caller).
CpdConfig BaseCpdConfig(const BenchScale& scale);

/// Scorers produced by one training run on a fold's training graph. They
/// must stay valid only while that graph is alive (the fold loop evaluates
/// them immediately); leave a scorer empty to skip that task.
struct TrainedScorers {
  FriendshipScorer friendship;
  DiffusionScorer diffusion;
};

/// Trains one model on the fold's training graph and exposes its scorers.
using ScorerFactory = std::function<TrainedScorers(const SocialGraph& train)>;

struct FoldResult {
  std::vector<double> friendship_auc;  ///< Per fold.
  std::vector<double> diffusion_auc;   ///< Per fold.
  double MeanFriendshipAuc() const;
  double MeanDiffusionAuc() const;
};

/// Runs the k-fold protocol of §6.1 (train on 90% of the links, score the
/// held-out 10% against sampled negatives).
FoldResult RunLinkPredictionFolds(const SocialGraph& graph,
                                  const BenchScale& scale,
                                  const ScorerFactory& factory, uint64_t seed);

/// Factory for full CPD (or any ablated variant via config.ablation).
ScorerFactory MakeCpdScorerFactory(CpdConfig config);

/// Pretty header line for a bench binary.
void PrintBenchHeader(const std::string& title, const BenchScale& scale,
                      const BenchDataset& dataset);

/// Resident set size of this process in KiB (VmRSS from /proc/self/status),
/// or 0 on platforms without procfs. Used by the load_mode bench sections to
/// report how much private heap each artifact load mode pins.
long CurrentRssKb();

}  // namespace cpd::bench

#endif  // CPD_BENCH_BENCH_COMMON_H_
