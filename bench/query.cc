// Query-serving benchmark -> BENCH_query.json.
//
// Trains one model on the Twitter-like preset, builds a ProfileIndex +
// QueryEngine, and measures the read side the way a serving front end sees
// it:
//   - single-thread: per-request latency (p50/p99 microseconds per query
//     type) and sequential-loop throughput over a mixed workload;
//   - batched: the same workload through QueryEngine::QueryBatch on a
//     4-thread pool (the CI acceptance bar: batched >= 2x the sequential
//     loop on a multicore runner; a 1-core container cannot show >1x, so
//     hardware_concurrency is recorded alongside).
//
// Follows the BENCH_sampler.json conventions: runs argument-free at a
// laptop-friendly scale, honors CPD_BENCH_JSON_DIR, appends nothing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "parallel/thread_pool.h"
#include "util/file_util.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

constexpr int kBatchThreads = 4;
constexpr size_t kWorkloadSize = 4000;

struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  size_t count = 0;
};

LatencySummary Summarize(std::vector<double>* latencies_us) {
  LatencySummary summary;
  summary.count = latencies_us->size();
  if (latencies_us->empty()) return summary;
  std::sort(latencies_us->begin(), latencies_us->end());
  summary.p50_us = (*latencies_us)[latencies_us->size() / 2];
  summary.p99_us = (*latencies_us)[latencies_us->size() * 99 / 100];
  return summary;
}

const char* RequestKind(const serve::QueryRequest& request) {
  switch (request.index()) {
    case 0: return "membership";
    case 1: return "rank";
    case 2: return "diffusion";
    default: return "top_users";
  }
}

/// Mixed serving workload: mostly cheap membership lookups with a steady
/// stream of ranking / diffusion / roster queries, request parameters drawn
/// from the trained graph.
std::vector<serve::QueryRequest> BuildWorkload(const SocialGraph& graph,
                                               const serve::ProfileIndex& index,
                                               size_t count, Rng* rng) {
  std::vector<serve::QueryRequest> requests;
  requests.reserve(count);
  const auto& links = graph.diffusion_links();
  for (size_t i = 0; i < count; ++i) {
    const double pick = rng->NextDouble();
    if (pick < 0.55) {
      serve::MembershipRequest request;
      request.user = static_cast<UserId>(rng->NextUint64(graph.num_users()));
      request.top_k = 5;
      requests.push_back(request);
    } else if (pick < 0.80) {
      serve::RankCommunitiesRequest request;
      const size_t terms = 1 + rng->NextUint64(2);
      for (size_t t = 0; t < terms; ++t) {
        request.words.push_back(
            static_cast<WordId>(rng->NextUint64(index.vocab_size())));
      }
      request.top_k = 5;
      requests.push_back(request);
    } else if (pick < 0.90 && !links.empty()) {
      const DiffusionLink& link =
          links[rng->NextUint64(links.size())];
      serve::DiffusionRequest request;
      request.source = graph.document(link.i).user;
      request.target = graph.document(link.j).user;
      request.document = link.j;
      request.time_bin = link.time;
      requests.push_back(request);
    } else {
      serve::TopUsersRequest request;
      request.community =
          static_cast<int>(rng->NextUint64(
              static_cast<uint64_t>(index.num_communities())));
      request.top_k = 10;
      requests.push_back(request);
    }
  }
  return requests;
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = TwitterDataset(scale);
  PrintBenchHeader("Query serving (ProfileIndex + QueryEngine)", scale,
                   dataset);

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = 12;
  std::printf("training |C|=%d |Z|=%d T1=%d...\n", config.num_communities,
              config.num_topics, config.em_iterations);
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  WallTimer build_timer;
  const serve::ProfileIndex index = serve::ProfileIndex::FromModel(*model);
  const double build_seconds = build_timer.ElapsedSeconds();
  const serve::QueryEngine engine(index, &dataset.data.graph);

  Rng rng(20260731);
  const std::vector<serve::QueryRequest> workload =
      BuildWorkload(dataset.data.graph, index, kWorkloadSize, &rng);

  // Warm-up: touch every matrix page once.
  for (size_t i = 0; i < std::min<size_t>(200, workload.size()); ++i) {
    CPD_CHECK(engine.Query(workload[i]).ok());
  }

  // Sequential-throughput pass: one timer around the plain loop, no
  // per-request instrumentation — this is the number the batched speedup
  // is judged against, so it must not carry clock/push_back overhead the
  // batch loop does not pay.
  WallTimer single_timer;
  for (const serve::QueryRequest& request : workload) {
    CPD_CHECK(engine.Query(request).ok());
  }
  const double single_seconds = single_timer.ElapsedSeconds();
  const double single_qps =
      static_cast<double>(workload.size()) / single_seconds;

  // Separate latency-sampling pass (per-request timers are fine here: the
  // percentiles describe single-query service time, not throughput).
  std::vector<double> all_us;
  std::vector<std::vector<double>> per_kind_us(4);
  all_us.reserve(workload.size());
  for (const serve::QueryRequest& request : workload) {
    WallTimer timer;
    const auto response = engine.Query(request);
    const double us = timer.ElapsedSeconds() * 1e6;
    CPD_CHECK(response.ok());
    all_us.push_back(us);
    per_kind_us[request.index()].push_back(us);
  }

  // Batched pass at a fixed pool width (the serving fan-out seam).
  ThreadPool pool(kBatchThreads);
  engine.QueryBatch(std::span(workload).subspan(0, 200), &pool);  // Warm-up.
  WallTimer batch_timer;
  const auto responses = engine.QueryBatch(workload, &pool);
  const double batch_seconds = batch_timer.ElapsedSeconds();
  for (const auto& response : responses) CPD_CHECK(response.ok());
  const double batch_qps =
      static_cast<double>(workload.size()) / batch_seconds;

  const LatencySummary overall = Summarize(&all_us);
  std::printf("single-thread: %.0f queries/sec  p50 %.1fus  p99 %.1fus\n",
              single_qps, overall.p50_us, overall.p99_us);
  std::printf("batched x%d:    %.0f queries/sec  (%.2fx single-thread; "
              "hardware_concurrency=%u)\n",
              kBatchThreads, batch_qps, batch_qps / single_qps,
              std::thread::hardware_concurrency());

  std::string json = "{\n  \"bench\": \"query_serving\",\n";
  json += StrFormat(
      "  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
      "\"communities\": %d, \"topics\": %d, \"vocab\": %zu},\n",
      dataset.data.graph.num_users(), dataset.data.graph.num_documents(),
      index.num_communities(), index.num_topics(), index.vocab_size());
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat("  \"index_build_seconds\": %.4f,\n", build_seconds);
  json += StrFormat("  \"workload_size\": %zu,\n", workload.size());
  json += "  \"per_type_single_thread\": [\n";
  for (size_t kind = 0; kind < per_kind_us.size(); ++kind) {
    serve::QueryRequest probe;  // Only for the kind name table.
    switch (kind) {
      case 0: probe = serve::MembershipRequest{}; break;
      case 1: probe = serve::RankCommunitiesRequest{}; break;
      case 2: probe = serve::DiffusionRequest{}; break;
      default: probe = serve::TopUsersRequest{}; break;
    }
    const LatencySummary summary = Summarize(&per_kind_us[kind]);
    json += StrFormat(
        "    {\"type\": \"%s\", \"count\": %zu, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f}%s\n",
        RequestKind(probe), summary.count, summary.p50_us, summary.p99_us,
        kind + 1 < per_kind_us.size() ? "," : "");
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"single_thread\": {\"queries_per_sec\": %.1f, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f},\n",
      single_qps, overall.p50_us, overall.p99_us);
  json += StrFormat(
      "  \"batched\": {\"threads\": %d, \"queries_per_sec\": %.1f, "
      "\"speedup_vs_single_thread\": %.3f}\n",
      kBatchThreads, batch_qps, batch_qps / single_qps);
  json += "}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_query.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
