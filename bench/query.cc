// Query-serving benchmark -> BENCH_query.json.
//
// Measures the read side the way a serving front end sees it, as a matrix
// of {preset} x {precompute_scoring on/off} runs:
//   - "twitter": a model trained on the Twitter-like preset, mixed workload
//     (membership / rank / diffusion / top_users) with the graph bound;
//   - "large": a synthetic K=200, |Z|=32, V=50k artifact at serving-realistic
//     dimensions (the kernels are what is measured, so the estimates are
//     random but properly normalized; no graph -> no diffusion share).
// Per run: per-type p50/p99 latency, sequential-loop throughput, and the
// same workload through QueryEngine::QueryBatch on a 4-thread pool (the CI
// acceptance bar: batched >= 2x sequential on a multicore runner; a 1-core
// container cannot show >1x, so hardware_concurrency is recorded).
// The off/on rank-p50 ratio on the large preset is emitted as
// "rank_p50_speedup_large" (acceptance: >= 3x from the precomputed
// link-content matrix + word-major log-phi + heap top-k).
// A "load_modes" section writes the large preset as a v3 .cpdb and times
// ProfileIndex::LoadFromFile under load_mode=heap (full decode copy) vs
// load_mode=mmap (zero-copy map + stored-derived adoption), with RSS
// deltas, and emits "mmap_reload_speedup" (acceptance: >= 10x).
//
// Follows the BENCH_sampler.json conventions: runs argument-free at a
// laptop-friendly scale, honors CPD_BENCH_JSON_DIR, appends nothing.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/model_artifact.h"
#include "parallel/thread_pool.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

constexpr int kBatchThreads = 4;
constexpr size_t kTwitterWorkload = 4000;
// The large preset's naive rank kernel is ~1ms/query; keep the matrix run
// inside a couple of minutes.
constexpr size_t kLargeWorkload = 1200;

struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  size_t count = 0;
};

LatencySummary Summarize(std::vector<double>* latencies_us) {
  LatencySummary summary;
  summary.count = latencies_us->size();
  if (latencies_us->empty()) return summary;
  std::sort(latencies_us->begin(), latencies_us->end());
  summary.p50_us = (*latencies_us)[latencies_us->size() / 2];
  summary.p99_us = (*latencies_us)[latencies_us->size() * 99 / 100];
  return summary;
}

constexpr const char* kKindNames[4] = {"membership", "rank", "diffusion",
                                       "top_users"};

/// Mixed serving workload: mostly cheap membership lookups with a steady
/// stream of ranking / diffusion / roster queries. `graph == nullptr`
/// (artifact-only presets) folds the diffusion share into ranking.
std::vector<serve::QueryRequest> BuildWorkload(const SocialGraph* graph,
                                               const serve::ProfileIndex& index,
                                               size_t count, Rng* rng) {
  std::vector<serve::QueryRequest> requests;
  requests.reserve(count);
  const std::vector<DiffusionLink>* links =
      graph != nullptr ? &graph->diffusion_links() : nullptr;
  for (size_t i = 0; i < count; ++i) {
    const double pick = rng->NextDouble();
    if (pick < 0.55) {
      serve::MembershipRequest request;
      request.user = static_cast<UserId>(rng->NextUint64(index.num_users()));
      request.top_k = 5;
      requests.push_back(request);
    } else if (pick < 0.80 ||
               (pick < 0.90 && (links == nullptr || links->empty()))) {
      serve::RankCommunitiesRequest request;
      const size_t terms = 1 + rng->NextUint64(2);
      for (size_t t = 0; t < terms; ++t) {
        request.words.push_back(
            static_cast<WordId>(rng->NextUint64(index.vocab_size())));
      }
      request.top_k = 5;
      requests.push_back(request);
    } else if (pick < 0.90) {
      const DiffusionLink& link = (*links)[rng->NextUint64(links->size())];
      serve::DiffusionRequest request;
      request.source = graph->document(link.i).user;
      request.target = graph->document(link.j).user;
      request.document = link.j;
      request.time_bin = link.time;
      requests.push_back(request);
    } else {
      serve::TopUsersRequest request;
      request.community =
          static_cast<int>(rng->NextUint64(
              static_cast<uint64_t>(index.num_communities())));
      request.top_k = 10;
      requests.push_back(request);
    }
  }
  return requests;
}

/// One measured (preset, precompute) cell.
struct RunResult {
  const char* preset = "";
  bool precompute = false;
  double build_seconds = 0.0;
  double single_qps = 0.0;
  double batch_qps = 0.0;
  LatencySummary overall;
  std::array<LatencySummary, 4> per_kind;
  size_t workload_size = 0;
};

RunResult MeasureEngine(const char* preset, bool precompute,
                        const serve::ProfileIndex& index,
                        const SocialGraph* graph, double build_seconds,
                        std::span<const serve::QueryRequest> workload) {
  const serve::QueryEngine engine(index, graph);

  // Warm-up: touch every matrix page once.
  for (size_t i = 0; i < std::min<size_t>(200, workload.size()); ++i) {
    CPD_CHECK(engine.Query(workload[i]).ok());
  }

  // Sequential-throughput pass: one timer around the plain loop, no
  // per-request instrumentation — this is the number the batched speedup
  // is judged against, so it must not carry clock/push_back overhead the
  // batch loop does not pay.
  WallTimer single_timer;
  for (const serve::QueryRequest& request : workload) {
    CPD_CHECK(engine.Query(request).ok());
  }
  const double single_seconds = single_timer.ElapsedSeconds();

  // Separate latency-sampling pass (per-request timers are fine here: the
  // percentiles describe single-query service time, not throughput).
  std::vector<double> all_us;
  std::array<std::vector<double>, 4> per_kind_us;
  all_us.reserve(workload.size());
  for (const serve::QueryRequest& request : workload) {
    WallTimer timer;
    const auto response = engine.Query(request);
    const double us = timer.ElapsedSeconds() * 1e6;
    CPD_CHECK(response.ok());
    all_us.push_back(us);
    per_kind_us[request.index()].push_back(us);
  }

  // Batched pass at a fixed pool width (the serving fan-out seam).
  ThreadPool pool(kBatchThreads);
  engine.QueryBatch(workload.subspan(0, std::min<size_t>(200, workload.size())),
                    &pool);  // Warm-up.
  WallTimer batch_timer;
  const auto responses = engine.QueryBatch(workload, &pool);
  const double batch_seconds = batch_timer.ElapsedSeconds();
  for (const auto& response : responses) CPD_CHECK(response.ok());

  RunResult result;
  result.preset = preset;
  result.precompute = precompute;
  result.build_seconds = build_seconds;
  result.workload_size = workload.size();
  result.single_qps = static_cast<double>(workload.size()) / single_seconds;
  result.batch_qps = static_cast<double>(workload.size()) / batch_seconds;
  result.overall = Summarize(&all_us);
  for (size_t kind = 0; kind < per_kind_us.size(); ++kind) {
    result.per_kind[kind] = Summarize(&per_kind_us[kind]);
  }
  std::printf(
      "%-8s precompute=%d: single %.0f q/s p50 %.1fus p99 %.1fus | "
      "rank p50 %.1fus | batched x%d %.0f q/s\n",
      preset, precompute ? 1 : 0, result.single_qps, result.overall.p50_us,
      result.overall.p99_us, result.per_kind[1].p50_us, kBatchThreads,
      result.batch_qps);
  return result;
}

/// Synthetic serving-scale artifact: K=200 communities, 32 topics, 50k
/// vocabulary. The kernels only see properly-normalized dense matrices, so
/// random estimates measure exactly what a trained model of these
/// dimensions would.
ModelArtifact MakeLargeArtifact(Rng* rng) {
  ModelArtifact artifact;
  artifact.num_communities = 200;
  artifact.num_topics = 32;
  artifact.num_users = 2000;
  artifact.vocab_size = 50000;
  artifact.num_time_bins = 8;
  const auto fill_rows = [rng](std::vector<double>* matrix, size_t rows,
                               size_t cols) {
    matrix->resize(rows * cols);
    for (size_t r = 0; r < rows; ++r) {
      double total = 0.0;
      for (size_t i = 0; i < cols; ++i) {
        const double v = 0.05 + rng->NextDouble();
        (*matrix)[r * cols + i] = v;
        total += v;
      }
      for (size_t i = 0; i < cols; ++i) (*matrix)[r * cols + i] /= total;
    }
  };
  const size_t kc = static_cast<size_t>(artifact.num_communities);
  const size_t kz = static_cast<size_t>(artifact.num_topics);
  fill_rows(&artifact.pi, artifact.num_users, kc);
  fill_rows(&artifact.theta, kc, kz);
  fill_rows(&artifact.phi, kz, artifact.vocab_size);
  fill_rows(&artifact.eta, kc * kc, kz);  // Row-normalized intensities.
  artifact.weights.assign(kNumDiffusionWeights, 0.1);
  fill_rows(&artifact.popularity,
            static_cast<size_t>(artifact.num_time_bins), kz);
  return artifact;
}

struct LoadModeResult {
  const char* mode = "";
  double reload_ms_best = 0.0;
  double reload_ms_mean = 0.0;
  long rss_delta_kb = 0;
};

// Times ProfileIndex::LoadFromFile on the large v3 artifact for one load
// mode. Scoring-table precompute is disabled: it is identical work in both
// modes and would drown the decode-vs-map cost being measured.
LoadModeResult MeasureLoadMode(const std::string& artifact_path,
                               serve::ArtifactLoadMode mode) {
  constexpr int kReloadIters = 5;
  serve::ProfileIndexOptions options;
  options.load_mode = mode;
  options.precompute_scoring = false;
  LoadModeResult result;
  result.mode = serve::ArtifactLoadModeName(mode);
  const long rss_before_kb = CurrentRssKb();
  std::optional<serve::ProfileIndex> held;  // Keeps the last load resident.
  double best_ms = 0.0;
  double total_ms = 0.0;
  for (int i = 0; i < kReloadIters; ++i) {
    WallTimer timer;
    auto index = serve::ProfileIndex::LoadFromFile(artifact_path, options);
    const double ms = timer.ElapsedSeconds() * 1e3;
    CPD_CHECK(index.ok());
    CPD_CHECK(index->is_mmap_backed() ==
              (mode == serve::ArtifactLoadMode::kMmap));
    best_ms = (i == 0) ? ms : std::min(best_ms, ms);
    total_ms += ms;
    held.emplace(std::move(*index));
  }
  result.reload_ms_best = best_ms;
  result.reload_ms_mean = total_ms / kReloadIters;
  result.rss_delta_kb = CurrentRssKb() - rss_before_kb;
  return result;
}

std::string RunJson(const RunResult& run, bool last) {
  std::string json = StrFormat(
      "    {\"preset\": \"%s\", \"precompute\": %s,\n"
      "     \"index_build_seconds\": %.4f, \"workload_size\": %zu,\n",
      run.preset, run.precompute ? "true" : "false", run.build_seconds,
      run.workload_size);
  json += "     \"per_type_single_thread\": [\n";
  for (size_t kind = 0; kind < run.per_kind.size(); ++kind) {
    json += StrFormat(
        "       {\"type\": \"%s\", \"count\": %zu, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f}%s\n",
        kKindNames[kind], run.per_kind[kind].count, run.per_kind[kind].p50_us,
        run.per_kind[kind].p99_us,
        kind + 1 < run.per_kind.size() ? "," : "");
  }
  json += "     ],\n";
  json += StrFormat(
      "     \"single_thread\": {\"queries_per_sec\": %.1f, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f},\n",
      run.single_qps, run.overall.p50_us, run.overall.p99_us);
  json += StrFormat(
      "     \"batched\": {\"threads\": %d, \"queries_per_sec\": %.1f, "
      "\"speedup_vs_single_thread\": %.3f}}%s\n",
      kBatchThreads, run.batch_qps, run.batch_qps / run.single_qps,
      last ? "" : ",");
  return json;
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = TwitterDataset(scale);
  PrintBenchHeader("Query serving (ProfileIndex + QueryEngine)", scale,
                   dataset);

  std::vector<RunResult> runs;

  // ----- "twitter" preset: trained model + bound graph -----
  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = 12;
  std::printf("training |C|=%d |Z|=%d T1=%d...\n", config.num_communities,
              config.num_topics, config.em_iterations);
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());
  {
    Rng rng(20260731);
    std::vector<serve::QueryRequest> workload;
    for (const bool precompute : {false, true}) {
      serve::ProfileIndexOptions options;
      options.precompute_scoring = precompute;
      WallTimer build_timer;
      const serve::ProfileIndex index =
          serve::ProfileIndex::FromModel(*model, options);
      const double build_seconds = build_timer.ElapsedSeconds();
      if (workload.empty()) {
        // Same request stream for both cells (built once, parameters drawn
        // off the fast=off index — the dimensions are identical).
        workload = BuildWorkload(&dataset.data.graph, index, kTwitterWorkload,
                                 &rng);
      }
      runs.push_back(MeasureEngine("twitter", precompute, index,
                                   &dataset.data.graph, build_seconds,
                                   workload));
    }
  }

  // ----- "large" preset: K=200, |Z|=32, V=50k synthetic artifact -----
  {
    Rng artifact_rng(20260807);
    const ModelArtifact artifact = MakeLargeArtifact(&artifact_rng);
    std::printf("large preset: |C|=%d |Z|=%d V=%llu U=%llu\n",
                artifact.num_communities, artifact.num_topics,
                static_cast<unsigned long long>(artifact.vocab_size),
                static_cast<unsigned long long>(artifact.num_users));
    Rng rng(20260808);
    std::vector<serve::QueryRequest> workload;
    for (const bool precompute : {false, true}) {
      serve::ProfileIndexOptions options;
      options.precompute_scoring = precompute;
      ModelArtifact copy = artifact;  // FromArtifact consumes the matrices.
      WallTimer build_timer;
      auto index = serve::ProfileIndex::FromArtifact(std::move(copy), options);
      const double build_seconds = build_timer.ElapsedSeconds();
      CPD_CHECK(index.ok());
      if (workload.empty()) {
        workload = BuildWorkload(nullptr, *index, kLargeWorkload, &rng);
      }
      runs.push_back(MeasureEngine("large", precompute, *index,
                                   /*graph=*/nullptr, build_seconds,
                                   workload));
    }
  }

  // ----- load_modes: reload latency + RSS, heap decode vs zero-copy mmap -----
  std::vector<LoadModeResult> load_modes;
  {
    Rng rng(20260809);
    const ModelArtifact artifact = MakeLargeArtifact(&rng);
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string artifact_path =
        (tmpdir != nullptr ? std::string(tmpdir) : std::string("/tmp")) +
        "/bench_query_large.cpdb";
    const Status write_status = WriteModelArtifact(artifact_path, artifact);
    CPD_CHECK(write_status.ok());
    for (const serve::ArtifactLoadMode mode :
         {serve::ArtifactLoadMode::kHeap, serve::ArtifactLoadMode::kMmap}) {
      load_modes.push_back(MeasureLoadMode(artifact_path, mode));
      const LoadModeResult& r = load_modes.back();
      std::printf("load_mode=%s reload best %.3fms mean %.3fms rss %+ldkB\n",
                  r.mode, r.reload_ms_best, r.reload_ms_mean, r.rss_delta_kb);
    }
    std::remove(artifact_path.c_str());
  }
  double mmap_reload_speedup = 0.0;
  if (load_modes.size() == 2 && load_modes[1].reload_ms_best > 0.0) {
    mmap_reload_speedup =
        load_modes[0].reload_ms_best / load_modes[1].reload_ms_best;
  }
  std::printf("mmap reload speedup over heap decode: %.1fx\n",
              mmap_reload_speedup);

  // Acceptance headline: naive-over-fast rank p50 on the large preset.
  double rank_speedup = 0.0;
  {
    const RunResult* off = nullptr;
    const RunResult* on = nullptr;
    for (const RunResult& run : runs) {
      if (std::string(run.preset) != "large") continue;
      (run.precompute ? on : off) = &run;
    }
    if (off != nullptr && on != nullptr && on->per_kind[1].p50_us > 0.0) {
      rank_speedup = off->per_kind[1].p50_us / on->per_kind[1].p50_us;
    }
  }
  std::printf("large-preset rank p50 speedup (precompute off/on): %.1fx\n",
              rank_speedup);

  std::string json = "{\n  \"bench\": \"query_serving\",\n";
  json += StrFormat(
      "  \"dataset\": {\"users\": %zu, \"documents\": %zu, "
      "\"communities\": %d, \"topics\": %d, \"vocab\": %zu},\n",
      dataset.data.graph.num_users(), dataset.data.graph.num_documents(),
      config.num_communities, config.num_topics,
      dataset.data.graph.vocabulary_size());
  json += StrFormat(
      "  \"large_preset\": {\"users\": 2000, \"communities\": 200, "
      "\"topics\": 32, \"vocab\": 50000},\n");
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat("  \"rank_p50_speedup_large\": %.2f,\n", rank_speedup);
  json += StrFormat("  \"mmap_reload_speedup\": %.2f,\n", mmap_reload_speedup);
  json += "  \"load_modes\": [\n";
  for (size_t i = 0; i < load_modes.size(); ++i) {
    const LoadModeResult& r = load_modes[i];
    json += StrFormat(
        "    {\"load_mode\": \"%s\", \"reload_ms_best\": %.3f, "
        "\"reload_ms_mean\": %.3f, \"rss_delta_kb\": %ld}%s\n",
        r.mode, r.reload_ms_best, r.reload_ms_mean, r.rss_delta_kb,
        i + 1 < load_modes.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    json += RunJson(runs[i], i + 1 == runs.size());
  }
  json += "  ]\n}\n";

  const char* dir = std::getenv("CPD_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_query.json";
  const Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.message().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
