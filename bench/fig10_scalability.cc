// Reproduces Figure 10 (scalability, §6.4):
//   (a) per-E-step training time vs dataset fraction p in {0.1..1.0} for the
//       serial and the parallel implementation — the paper's claim is
//       *linearity* in data size, which we verify with an R^2 fit;
//   (b) parallel speedup over serial vs number of CPU cores {2,4,6,8}.
// DBLP's speedup exceeds Twitter's because its users have lower topic
// diversity, giving cleaner LDA segments (§6.4) — the presets plant that.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/em_trainer.h"
#include "graph/graph_builder.h"
#include "util/math_util.h"
#include "util/timer.h"

namespace cpd::bench {
namespace {

// Subsamples p of the documents (with their diffusion links) and p of the
// friendship links.
SocialGraph Subsample(const SocialGraph& graph, double p, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  builder.SetNumUsers(graph.num_users());
  builder.SetVocabulary(graph.corpus().vocabulary());
  std::vector<DocId> remap(graph.num_documents(), Corpus::kInvalidDoc);
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    if (!rng.NextBernoulli(p)) continue;
    const Document& doc = graph.document(static_cast<DocId>(d));
    remap[d] = builder.AddTokenizedDocument(doc.user, doc.time, doc.words);
  }
  for (const FriendshipLink& link : graph.friendship_links()) {
    if (rng.NextBernoulli(p)) builder.AddFriendship(link.u, link.v);
  }
  for (const DiffusionLink& link : graph.diffusion_links()) {
    const DocId i = remap[static_cast<size_t>(link.i)];
    const DocId j = remap[static_cast<size_t>(link.j)];
    if (i == Corpus::kInvalidDoc || j == Corpus::kInvalidDoc) continue;
    builder.AddDiffusion(i, j, link.time);
  }
  auto built = builder.Build(/*drop_isolated_users=*/true);
  CPD_CHECK(built.ok());
  return std::move(*built);
}

// Seconds for one E-step at the given thread count and sampler backend
// (default = the library default, the sparse alias+MH path).
double TimeEStep(const SocialGraph& graph, const BenchScale& scale,
                 int num_threads,
                 SamplerMode sampler_mode = SamplerMode::kSparse) {
  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = scale.community_sweep[1];
  config.gibbs_sweeps_per_em = 1;
  config.num_threads = num_threads;
  config.sampler_mode = sampler_mode;
  EmTrainer trainer(graph, config);
  CPD_CHECK(trainer.Initialize().ok());
  CPD_CHECK(trainer.EStep().ok());  // Warm-up (builds the thread plan).
  WallTimer timer;
  CPD_CHECK(trainer.EStep().ok());
  CPD_CHECK(trainer.EStep().ok());
  return timer.ElapsedSeconds() / 2.0;
}

void PanelA(const BenchDataset& dataset, const BenchScale& scale) {
  // The per-fraction dense column was retired with the kSparse default:
  // dense is the exact-reference mode and is timed once per dataset in
  // PanelSamplerMode, not re-run at every subsample fraction.
  TableWriter table("Fig 10(a): E-step seconds vs dataset fraction - " +
                    dataset.name);
  table.SetHeader({"fraction", "serial (s)", "parallel (s)"});
  std::vector<double> fractions, serial_times;
  const int cores =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  for (double p = 0.2; p <= 1.0001; p += 0.2) {
    const SocialGraph sub = Subsample(dataset.data.graph, p, 1010);
    const double serial = TimeEStep(sub, scale, 1);
    const double parallel = TimeEStep(sub, scale, cores);
    table.AddRow(FormatDouble(p, 1), {serial, parallel}, 4);
    fractions.push_back(p);
    serial_times.push_back(serial);
  }
  table.Print();
  const LinearFit fit = FitLine(fractions, serial_times);
  std::printf("Linearity check (paper: time is linear in data size): "
              "serial time = %.4f * p + %.4f, R^2 = %.4f\n\n",
              fit.slope, fit.intercept, fit.r_squared);
}

// Not in the paper: E-step seconds for the dense vs the sparse (alias + MH)
// backend as the community count grows — the axis on which the sparse
// sampler is designed to win (amortized O(k_d + nnz) per document).
void PanelSamplerMode(const BenchDataset& dataset, const BenchScale& scale) {
  TableWriter table("Fig 10(+): E-step seconds, dense vs sparse backend - " +
                    dataset.name);
  table.SetHeader({"|C|", "dense (s)", "sparse (s)", "speedup"});
  for (int communities : scale.community_sweep) {
    BenchScale point = scale;
    point.community_sweep = {communities, communities};
    const double dense =
        TimeEStep(dataset.data.graph, point, 1, SamplerMode::kDense);
    const double sparse =
        TimeEStep(dataset.data.graph, point, 1, SamplerMode::kSparse);
    table.AddRow(std::to_string(communities), {dense, sparse, dense / sparse},
                 4);
  }
  table.Print();
  std::printf("Sparse backend target: >= 2x dense throughput at large |C|/|Z| "
              "(see BENCH_sampler.json from bench_micro_benchmarks).\n\n");
}

void PanelB(const BenchDataset& dataset, const BenchScale& scale) {
  TableWriter table("Fig 10(b): parallel speedup vs #cores - " + dataset.name);
  table.SetHeader({"#cores", "speedup over serial"});
  const double serial = TimeEStep(dataset.data.graph, scale, 1);
  const unsigned hardware = std::max(2u, std::thread::hardware_concurrency());
  for (int cores = 2; cores <= 8 && cores <= static_cast<int>(hardware);
       cores += 2) {
    const double parallel = TimeEStep(dataset.data.graph, scale, cores);
    table.AddRow(std::to_string(cores), {serial / parallel}, 2);
  }
  table.Print();
  std::printf("Paper shape: speedup grows with cores; DBLP > Twitter (lower "
              "per-user topic diversity -> cleaner segments, §6.4).\n\n");
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  for (const BenchDataset* dataset :
       {&TwitterDataset(scale), &DblpDataset(scale)}) {
    PrintBenchHeader("Figure 10: scalability", scale, *dataset);
    PanelA(*dataset, scale);
    PanelB(*dataset, scale);
    PanelSamplerMode(*dataset, scale);
  }
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
