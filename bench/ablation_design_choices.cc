// Ablation study for the interpretation choices DESIGN.md §5 documents —
// places where the paper under-specifies the model and this implementation
// had to pick a convention. Each block sweeps one choice with everything
// else fixed and reports held-out diffusion / friendship AUC:
//   1. topic-popularity representation n_tz: raw count (the paper's literal
//      wording) vs per-bin fraction (our default) vs log1p;
//   2. membership prior rho: the paper's 50/|C| convention vs the capped
//      sparse default (0.1) vs very sparse;
//   3. Gibbs sweeps per E-step (inference budget).

#include <cstdio>

#include "bench_common.h"

namespace cpd::bench {
namespace {

FoldResult RunConfig(const BenchDataset& dataset, const BenchScale& scale,
                     CpdConfig config, uint64_t seed) {
  return RunLinkPredictionFolds(dataset.data.graph, scale,
                                MakeCpdScorerFactory(config), seed);
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = DblpDataset(scale);
  PrintBenchHeader("Design-choice ablations (DESIGN.md §5)", scale, dataset);
  const int kc = scale.community_sweep[1];

  {
    TableWriter table("Topic-popularity representation n_tz");
    table.SetHeader({"mode", "diffusion AUC", "friendship AUC"});
    const struct {
      const char* name;
      PopularityMode mode;
    } kModes[] = {{"raw count (paper wording)", PopularityMode::kRaw},
                  {"per-bin fraction (default)", PopularityMode::kFraction},
                  {"log1p", PopularityMode::kLog1p}};
    for (const auto& entry : kModes) {
      CpdConfig config = BaseCpdConfig(scale);
      config.num_communities = kc;
      config.popularity_mode = entry.mode;
      const FoldResult result = RunConfig(dataset, scale, config, 771);
      table.AddRow(entry.name,
                   {result.MeanDiffusionAuc(), result.MeanFriendshipAuc()});
    }
    table.Print();
  }

  {
    TableWriter table("Membership prior rho (paper: 50/|C|, uncapped)");
    table.SetHeader({"rho", "diffusion AUC", "friendship AUC"});
    for (double rho : {50.0 / kc, 1.0, 0.1, 0.01}) {
      CpdConfig config = BaseCpdConfig(scale);
      config.num_communities = kc;
      config.rho = rho;
      const FoldResult result = RunConfig(dataset, scale, config, 773);
      table.AddRow(FormatDouble(rho, 3),
                   {result.MeanDiffusionAuc(), result.MeanFriendshipAuc()});
    }
    table.Print();
    std::printf("Expected: the uncapped 50/|C| prior smooths memberships "
                "toward uniform at this docs-per-user scale, hurting the "
                "friendship task most (DESIGN.md §5).\n\n");
  }

  {
    TableWriter table("Gibbs sweeps per E-step (inference budget)");
    table.SetHeader({"sweeps", "diffusion AUC", "friendship AUC"});
    for (int sweeps : {1, 3, 5}) {
      CpdConfig config = BaseCpdConfig(scale);
      config.num_communities = kc;
      config.gibbs_sweeps_per_em = sweeps;
      const FoldResult result = RunConfig(dataset, scale, config, 775);
      table.AddRow(std::to_string(sweeps),
                   {result.MeanDiffusionAuc(), result.MeanFriendshipAuc()});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
