// Reproduces Figure 4 (community-aware diffusion, §6.3.1): held-out
// diffusion-link prediction AUC of CPD vs the baselines — WTM, CRM, COLD,
// CRM+Agg, COLD+Agg (and PMTLM on DBLP only; the paper notes PMTLM is
// inapplicable to Twitter because a tweet and its retweet are near-identical
// text), sweeping the number of communities.
// Expected shape (paper): "Ours" on top at every |C|; joint CPD beats the
// first-detect-then-aggregate CRM+Agg / COLD+Agg variants.

#include <cstdio>
#include <memory>

#include "baselines/aggregation.h"
#include "baselines/cold.h"
#include "baselines/crm.h"
#include "baselines/pmtlm.h"
#include "baselines/wtm.h"
#include "bench_common.h"
#include "eval/significance.h"

namespace cpd::bench {
namespace {

ScorerFactory WtmFactory() {
  return [](const SocialGraph& train) -> TrainedScorers {
    WtmConfig config;
    config.num_topics = 12;
    auto model = WtmModel::Train(train, config);
    CPD_CHECK(model.ok());
    auto shared = std::make_shared<WtmModel>(std::move(*model));
    TrainedScorers scorers;
    scorers.diffusion = [shared](DocId i, DocId j, int32_t t) {
      return shared->AsDiffusionScorer()(i, j, t);
    };
    return scorers;
  };
}

ScorerFactory PmtlmFactory(int kc) {
  return [kc](const SocialGraph& train) -> TrainedScorers {
    PmtlmConfig config;
    config.num_topics = kc;
    auto model = PmtlmModel::Train(train, config);
    CPD_CHECK(model.ok());
    auto shared = std::make_shared<PmtlmModel>(std::move(*model));
    TrainedScorers scorers;
    scorers.diffusion = [shared](DocId i, DocId j, int32_t t) {
      return shared->AsDiffusionScorer()(i, j, t);
    };
    return scorers;
  };
}

ScorerFactory CrmFactory(int kc) {
  return [kc](const SocialGraph& train) -> TrainedScorers {
    CrmConfig config;
    config.num_communities = kc;
    auto model = CrmModel::Train(train, config);
    CPD_CHECK(model.ok());
    auto shared = std::make_shared<CrmModel>(std::move(*model));
    TrainedScorers scorers;
    scorers.diffusion = [shared, &train](DocId i, DocId j, int32_t t) {
      return shared->AsDiffusionScorer(train)(i, j, t);
    };
    return scorers;
  };
}

ScorerFactory ColdFactory(int kc, const BenchScale& scale) {
  const int em = scale.em_iterations;
  return [kc, em](const SocialGraph& train) -> TrainedScorers {
    ColdConfig config;
    config.num_communities = kc;
    config.num_topics = 12;
    config.em_iterations = em;
    auto model = ColdModel::Train(train, config);
    CPD_CHECK(model.ok());
    auto shared = std::make_shared<ColdModel>(std::move(*model));
    TrainedScorers scorers;
    scorers.diffusion = [shared, &train](DocId i, DocId j, int32_t t) {
      return shared->AsDiffusionScorer(train)(i, j, t);
    };
    return scorers;
  };
}

// "First detect, then aggregate" (§6.1): detection via CRM or COLD, profiles
// via Eqs. 20-21.
ScorerFactory AggFactory(int kc, const BenchScale& scale, bool use_cold) {
  const int em = scale.em_iterations;
  return [kc, em, use_cold](const SocialGraph& train) -> TrainedScorers {
    std::vector<std::vector<double>> memberships;
    if (use_cold) {
      ColdConfig config;
      config.num_communities = kc;
      config.num_topics = 12;
      config.em_iterations = em;
      auto model = ColdModel::Train(train, config);
      CPD_CHECK(model.ok());
      memberships = model->Memberships();
    } else {
      CrmConfig config;
      config.num_communities = kc;
      auto model = CrmModel::Train(train, config);
      CPD_CHECK(model.ok());
      memberships = model->Memberships();
    }
    AggregationConfig agg_config;
    agg_config.num_topics = 12;
    auto profiles = AggregatedProfiles::Build(train, memberships, agg_config);
    CPD_CHECK(profiles.ok());
    auto shared = std::make_shared<AggregatedProfiles>(std::move(*profiles));
    TrainedScorers scorers;
    scorers.diffusion = [shared, &train](DocId i, DocId j, int32_t t) {
      return shared->AsDiffusionScorer(train)(i, j, t);
    };
    return scorers;
  };
}

void RunDataset(const BenchDataset& dataset, const BenchScale& scale,
                bool include_pmtlm) {
  PrintBenchHeader("Figure 4: community-aware diffusion (AUC)", scale, dataset);
  TableWriter table("Diffusion link prediction AUC - " + dataset.name);
  std::vector<std::string> header = {"method"};
  for (int kc : scale.community_sweep) header.push_back("C=" + std::to_string(kc));
  table.SetHeader(header);

  struct Method {
    std::string name;
    std::function<ScorerFactory(int)> factory;
    bool per_c = true;
  };
  std::vector<Method> methods;
  if (include_pmtlm) {
    methods.push_back({"PMTLM", [](int kc) { return PmtlmFactory(kc); }, true});
  } else {
    methods.push_back({"WTM", [](int) { return WtmFactory(); }, false});
  }
  methods.push_back({"CRM", [](int kc) { return CrmFactory(kc); }, true});
  methods.push_back(
      {"COLD", [&scale](int kc) { return ColdFactory(kc, scale); }, true});
  methods.push_back({"CRM+Agg", [&scale](int kc) {
                       return AggFactory(kc, scale, /*use_cold=*/false);
                     },
                     true});
  methods.push_back({"COLD+Agg", [&scale](int kc) {
                       return AggFactory(kc, scale, /*use_cold=*/true);
                     },
                     true});
  methods.push_back({"Ours", [&scale](int kc) {
                       CpdConfig config = BaseCpdConfig(scale);
                       config.num_communities = kc;
                       return MakeCpdScorerFactory(config);
                     },
                     true});

  std::vector<double> ours_by_fold, cold_by_fold;
  for (const Method& method : methods) {
    std::vector<double> row;
    for (int kc : scale.community_sweep) {
      const FoldResult folds = RunLinkPredictionFolds(
          dataset.data.graph, scale, method.factory(kc),
          /*seed=*/1311 + static_cast<uint64_t>(kc));
      row.push_back(folds.MeanDiffusionAuc());
      if (method.name == "Ours" && kc == scale.community_sweep[1]) {
        ours_by_fold = folds.diffusion_auc;
      }
      if (method.name == "COLD" && kc == scale.community_sweep[1]) {
        cold_by_fold = folds.diffusion_auc;
      }
    }
    table.AddRow(method.name, row);
  }
  table.Print();

  if (ours_by_fold.size() >= 3 && ours_by_fold.size() == cold_by_fold.size()) {
    const TTestResult test = PairedTTestGreater(ours_by_fold, cold_by_fold);
    std::printf("Paired one-tailed t-test Ours > COLD at C=%d: t=%.3f "
                "p=%.4f (paper reports p < 0.01 over 10 folds)\n\n",
                scale.community_sweep[1], test.t_statistic, test.p_value);
  }
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  RunDataset(TwitterDataset(scale), scale, /*include_pmtlm=*/false);
  RunDataset(DblpDataset(scale), scale, /*include_pmtlm=*/true);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
