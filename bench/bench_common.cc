#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd::bench {

BenchScale BenchScale::FromEnv() {
  BenchScale scale;
  const char* scale_env = std::getenv("CPD_BENCH_SCALE");
  scale.paper = (scale_env != nullptr && std::string(scale_env) == "paper");
  if (scale.paper) {
    scale.community_sweep = {20, 50, 100, 150};
    scale.dataset_scale = 4.0;
    scale.em_iterations = 12;
  } else {
    scale.community_sweep = {5, 10, 15, 20};
    scale.dataset_scale = 1.0;
    scale.em_iterations = 10;
  }
  if (const char* folds_env = std::getenv("CPD_BENCH_FOLDS")) {
    scale.folds = std::max(1, std::atoi(folds_env));
  }
  scale.folds = std::min(scale.folds, 10);
  return scale;
}

namespace {
BenchDataset MakeDataset(const char* name, SynthConfig config,
                         const BenchScale& scale) {
  config = config.Scaled(scale.dataset_scale);
  auto result = GenerateSocialGraph(config);
  CPD_CHECK(result.ok());
  return BenchDataset{name, std::move(*result)};
}
}  // namespace

const BenchDataset& TwitterDataset(const BenchScale& scale) {
  static const BenchDataset* kDataset =
      new BenchDataset(MakeDataset("Twitter", SynthConfig::TwitterLike(), scale));
  return *kDataset;
}

const BenchDataset& DblpDataset(const BenchScale& scale) {
  static const BenchDataset* kDataset =
      new BenchDataset(MakeDataset("DBLP", SynthConfig::DBLPLike(), scale));
  return *kDataset;
}

CpdConfig BaseCpdConfig(const BenchScale& scale) {
  CpdConfig config;
  config.num_topics = 12;
  config.em_iterations = scale.em_iterations;
  config.gibbs_sweeps_per_em = 3;
  config.seed = 4242;
  return config;
}

double FoldResult::MeanFriendshipAuc() const { return Mean(friendship_auc); }
double FoldResult::MeanDiffusionAuc() const { return Mean(diffusion_auc); }

FoldResult RunLinkPredictionFolds(const SocialGraph& graph,
                                  const BenchScale& scale,
                                  const ScorerFactory& factory, uint64_t seed) {
  Rng rng(seed);
  const LinkFolds folds = AssignLinkFolds(graph, 10, &rng);
  FoldResult result;
  for (int fold = 0; fold < scale.folds; ++fold) {
    auto data = BuildFold(graph, folds, fold);
    CPD_CHECK(data.ok());
    const TrainedScorers scorers = factory(data->train_graph);
    if (scorers.friendship) {
      Rng eval_rng(seed + 1000 + static_cast<uint64_t>(fold));
      result.friendship_auc.push_back(EvaluateFriendshipAuc(
          graph, data->heldout_friendship, scorers.friendship, &eval_rng));
    }
    if (scorers.diffusion) {
      Rng eval_rng(seed + 2000 + static_cast<uint64_t>(fold));
      result.diffusion_auc.push_back(EvaluateDiffusionAuc(
          graph, data->heldout_diffusion, scorers.diffusion, &eval_rng));
    }
  }
  return result;
}

ScorerFactory MakeCpdScorerFactory(CpdConfig config) {
  return [config](const SocialGraph& train) -> TrainedScorers {
    auto model = CpdModel::Train(train, config);
    CPD_CHECK(model.ok());
    auto shared = std::make_shared<CpdModel>(std::move(*model));
    auto predictor = std::make_shared<DiffusionPredictor>(*shared, train);
    TrainedScorers scorers;
    scorers.friendship = [shared, predictor](UserId u, UserId v) {
      return predictor->FriendshipScore(u, v);
    };
    scorers.diffusion = [shared, predictor](DocId i, DocId j, int32_t t) {
      const auto scorer = predictor->AsDiffusionScorer();
      return scorer(i, j, t);
    };
    return scorers;
  };
}

void PrintBenchHeader(const std::string& title, const BenchScale& scale,
                      const BenchDataset& dataset) {
  std::printf("### %s | dataset=%s users=%zu docs=%zu F=%zu E=%zu | scale=%s "
              "folds=%d\n",
              title.c_str(), dataset.name.c_str(), dataset.data.graph.num_users(),
              dataset.data.graph.num_documents(),
              dataset.data.graph.num_friendship_links(),
              dataset.data.graph.num_diffusion_links(),
              scale.paper ? "paper" : "default", scale.folds);
}

long CurrentRssKb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  long rss_kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld kB", &rss_kb) == 1) break;
  }
  std::fclose(status);
  return rss_kb;
}

}  // namespace cpd::bench
