// Reproduces Table 6 (§6.3.2): the top-3 communities ranked for the query
// "router" with AP@K / AR@K / AF@K and each community's query-conditional
// topic distribution. The paper finds three networking-flavoured
// communities whose AF@K grows with K.

#include <algorithm>
#include <cstdio>

#include "apps/community_ranking.h"
#include "apps/visualization.h"
#include "bench_common.h"
#include "synth/queries.h"
#include "util/math_util.h"

namespace cpd::bench {
namespace {

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = DblpDataset(scale);
  PrintBenchHeader("Table 6: top communities for query 'router'", scale, dataset);
  const SocialGraph& graph = dataset.data.graph;

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = scale.community_sweep[1];
  auto model = CpdModel::Train(graph, config);
  CPD_CHECK(model.ok());

  const Vocabulary& vocab = graph.corpus().vocabulary();
  const std::vector<WordId> query = CommunityRanker::ParseQuery(vocab, "router");
  CPD_CHECK(!query.empty());

  // Ground truth U*_q: users mentioning "router" in their diffusing docs.
  std::vector<char> relevant(graph.num_users(), 0);
  std::vector<char> is_source(graph.num_documents(), 0);
  for (const DiffusionLink& link : graph.diffusion_links()) {
    is_source[static_cast<size_t>(link.i)] = 1;
  }
  size_t num_relevant = 0;
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    if (!is_source[d]) continue;
    const Document& doc = graph.document(static_cast<DocId>(d));
    for (WordId w : doc.words) {
      if (w == query.front()) {
        if (!relevant[static_cast<size_t>(doc.user)]) ++num_relevant;
        relevant[static_cast<size_t>(doc.user)] = 1;
        break;
      }
    }
  }
  std::printf("query='router' relevant users |U*_q| = %zu\n", num_relevant);

  CommunityRanker ranker(*model);
  const auto ranked = ranker.Rank(query);
  const auto community_users = CommunityRanker::CommunityUserSets(
      *model, std::max(1, config.num_communities / 10));
  std::vector<int> order;
  for (const auto& entry : ranked) order.push_back(entry.community);
  const auto points = EvaluateRanking(order, community_users, relevant, 3);

  TableWriter table("Top three communities ranked for query 'router'");
  table.SetHeader({"K", "community", "label", "AP@K", "AR@K", "AF@K",
                   "top topic distribution"});
  for (int k = 0; k < 3 && k < static_cast<int>(ranked.size()); ++k) {
    const RankedCommunity& entry = ranked[static_cast<size_t>(k)];
    std::string topics;
    for (size_t idx : TopKIndices(entry.topic_distribution, 3)) {
      if (!topics.empty()) topics += ", ";
      topics += "T" + std::to_string(idx) + ":" +
                FormatDouble(entry.topic_distribution[idx], 3);
    }
    table.AddRow({std::to_string(k + 1), StrFormat("c%02d", entry.community),
                  CommunityLabel(*model, vocab, entry.community, 3),
                  FormatDouble(points[static_cast<size_t>(k)].precision, 3),
                  FormatDouble(points[static_cast<size_t>(k)].recall, 3),
                  FormatDouble(points[static_cast<size_t>(k)].f1, 3), topics});
  }
  table.Print();
  std::printf("Paper shape: AF@K increases with K; the ranked communities "
              "are the networking-themed ones.\n");
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
