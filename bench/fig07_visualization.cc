// Reproduces Figure 7 (profile-driven community visualization, §6.3.3):
// exports the inter-community diffusion graph (a) aggregated over topics,
// (b) for a general topic (the one most communities discuss), and (c) for a
// specialized topic (the one fewest communities discuss), as Graphviz DOT
// files plus a JSON profile dump; prints the edges and the openness
// analysis (which communities diffuse with most others).

#include <algorithm>
#include <cstdio>

#include "apps/visualization.h"
#include "bench_common.h"
#include "util/file_util.h"

namespace cpd::bench {
namespace {

// Number of communities whose content profile puts > 1/|Z| mass on z.
int TopicSpread(const CpdModel& model, int z) {
  int spread = 0;
  const double uniform = 1.0 / static_cast<double>(model.num_topics());
  for (int c = 0; c < model.num_communities(); ++c) {
    if (model.ContentProfile(c)[static_cast<size_t>(z)] > uniform) ++spread;
  }
  return spread;
}

void PrintEdges(const CpdModel& model, const Vocabulary& vocab,
                const VisualizationOptions& options, const std::string& title) {
  const auto edges = CollectDiffusionEdges(model, options);
  TableWriter table(title);
  table.SetHeader({"from", "to", "strength"});
  const size_t shown = std::min<size_t>(edges.size(), 12);
  for (size_t e = 0; e < shown; ++e) {
    table.AddRow({StrFormat("c%02d %s", edges[e].from,
                            CommunityLabel(model, vocab, edges[e].from, 2).c_str()),
                  StrFormat("c%02d %s", edges[e].to,
                            CommunityLabel(model, vocab, edges[e].to, 2).c_str()),
                  FormatDouble(edges[e].strength, 5)});
  }
  table.Print();
  std::printf("(%zu edges above the mean-strength cutoff)\n\n", edges.size());
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchDataset& dataset = DblpDataset(scale);
  PrintBenchHeader("Figure 7: community diffusion visualization", scale, dataset);
  const Vocabulary& vocab = dataset.data.graph.corpus().vocabulary();

  CpdConfig config = BaseCpdConfig(scale);
  config.num_communities = scale.community_sweep[1];
  auto model = CpdModel::Train(dataset.data.graph, config);
  CPD_CHECK(model.ok());

  // (a) aggregate.
  VisualizationOptions aggregate;
  PrintEdges(*model, vocab, aggregate, "Fig 7(a): diffusion with topic aggregation");

  // (b)/(c): general vs specialized topic by community spread.
  int general = 0, specialized = 0;
  for (int z = 1; z < model->num_topics(); ++z) {
    if (TopicSpread(*model, z) > TopicSpread(*model, general)) general = z;
    if (TopicSpread(*model, z) < TopicSpread(*model, specialized)) specialized = z;
  }
  VisualizationOptions general_options;
  general_options.topic = general;
  PrintEdges(*model, vocab, general_options,
             StrFormat("Fig 7(b): diffusion on general topic T%d (discussed by "
                       "%d communities)",
                       general, TopicSpread(*model, general)));
  VisualizationOptions special_options;
  special_options.topic = specialized;
  PrintEdges(*model, vocab, special_options,
             StrFormat("Fig 7(c): diffusion on specialized topic T%d (discussed "
                       "by %d communities)",
                       specialized, TopicSpread(*model, specialized)));

  // Openness analysis (open vs closed research communities).
  TableWriter openness("Community openness (fraction of other communities "
                       "exchanged with, aggregate view)");
  openness.SetHeader({"community", "label", "openness"});
  std::vector<std::pair<double, int>> by_openness;
  for (int c = 0; c < model->num_communities(); ++c) {
    by_openness.emplace_back(CommunityOpenness(*model, c, aggregate), c);
  }
  std::sort(by_openness.rbegin(), by_openness.rend());
  for (const auto& [score, c] : by_openness) {
    openness.AddRow({StrFormat("c%02d", c), CommunityLabel(*model, vocab, c, 3),
                     FormatDouble(score, 3)});
  }
  openness.Print();

  // DOT / JSON artifacts.
  const std::string dot_a = ExportDiffusionDot(*model, vocab, aggregate);
  const std::string dot_b = ExportDiffusionDot(*model, vocab, general_options);
  const std::string dot_c = ExportDiffusionDot(*model, vocab, special_options);
  const std::string json = ExportProfilesJson(*model, vocab, aggregate);
  CPD_CHECK(WriteStringToFile("fig07_aggregate.dot", dot_a).ok());
  CPD_CHECK(WriteStringToFile("fig07_general_topic.dot", dot_b).ok());
  CPD_CHECK(WriteStringToFile("fig07_specialized_topic.dot", dot_c).ok());
  CPD_CHECK(WriteStringToFile("fig07_profiles.json", json).ok());
  std::printf("Wrote fig07_aggregate.dot, fig07_general_topic.dot, "
              "fig07_specialized_topic.dot, fig07_profiles.json "
              "(render with `dot -Tpdf`).\n");
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
