// Reproduces Figure 8 (content profile quality, §6.3.4): perplexity of
// held-out user content under the community content profiles of CPD vs the
// first-detect-then-aggregate baselines COLD+Agg and CRM+Agg, sweeping |C|.
// Expected shape (paper): "Ours" orders of magnitude lower — the joint model
// fits p(content | community) directly, the aggregation baselines do not.

#include <cstdio>

#include "baselines/aggregation.h"
#include "baselines/cold.h"
#include "baselines/crm.h"
#include "bench_common.h"

namespace cpd::bench {
namespace {

std::vector<DocId> HeldOutDocs(const SocialGraph& graph, uint64_t seed) {
  // 10% of documents for perplexity evaluation.
  Rng rng(seed);
  std::vector<DocId> docs;
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    if (rng.NextBernoulli(0.1)) docs.push_back(static_cast<DocId>(d));
  }
  return docs;
}

double CpdPerplexity(const SocialGraph& graph, const CpdConfig& config,
                     std::span<const DocId> docs) {
  auto model = CpdModel::Train(graph, config);
  CPD_CHECK(model.ok());
  std::vector<std::vector<double>> pi(graph.num_users());
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto row = model->Membership(static_cast<UserId>(u));
    pi[u].assign(row.begin(), row.end());
  }
  std::vector<std::vector<double>> theta(
      static_cast<size_t>(model->num_communities()));
  for (int c = 0; c < model->num_communities(); ++c) {
    const auto row = model->ContentProfile(c);
    theta[static_cast<size_t>(c)].assign(row.begin(), row.end());
  }
  std::vector<std::vector<double>> phi(static_cast<size_t>(model->num_topics()));
  for (int z = 0; z < model->num_topics(); ++z) {
    const auto row = model->TopicWords(z);
    phi[static_cast<size_t>(z)].assign(row.begin(), row.end());
  }
  return ContentPerplexity(graph, docs, pi, theta, phi);
}

double AggPerplexity(const SocialGraph& graph,
                     const std::vector<std::vector<double>>& memberships,
                     std::span<const DocId> docs) {
  AggregationConfig config;
  config.num_topics = 12;
  auto profiles = AggregatedProfiles::Build(graph, memberships, config);
  CPD_CHECK(profiles.ok());
  return ContentPerplexity(graph, docs, profiles->memberships(),
                           profiles->content_profiles(), profiles->topic_words());
}

void RunDataset(const BenchDataset& dataset, const BenchScale& scale) {
  PrintBenchHeader("Figure 8: content-profile perplexity (lower=better)", scale,
                   dataset);
  const SocialGraph& graph = dataset.data.graph;
  const std::vector<DocId> docs = HeldOutDocs(graph, 808);

  TableWriter table("Perplexity - " + dataset.name);
  std::vector<std::string> header = {"method"};
  for (int kc : scale.community_sweep) header.push_back("C=" + std::to_string(kc));
  table.SetHeader(header);

  std::vector<double> cold_row, crm_row, ours_row;
  for (int kc : scale.community_sweep) {
    ColdConfig cold_config;
    cold_config.num_communities = kc;
    cold_config.num_topics = 12;
    cold_config.em_iterations = scale.em_iterations;
    auto cold = ColdModel::Train(graph, cold_config);
    CPD_CHECK(cold.ok());
    cold_row.push_back(AggPerplexity(graph, cold->Memberships(), docs));

    CrmConfig crm_config;
    crm_config.num_communities = kc;
    auto crm = CrmModel::Train(graph, crm_config);
    CPD_CHECK(crm.ok());
    crm_row.push_back(AggPerplexity(graph, crm->Memberships(), docs));

    CpdConfig config = BaseCpdConfig(scale);
    config.num_communities = kc;
    ours_row.push_back(CpdPerplexity(graph, config, docs));
  }
  table.AddRow("COLD+Agg", cold_row, 1);
  table.AddRow("CRM+Agg", crm_row, 1);
  table.AddRow("Ours", ours_row, 1);
  table.Print();
  std::printf("Paper shape: Ours is far lower at every |C| (e.g. DBLP C=100: "
              "875 vs ~40,000).\n\n");
}

void Run() {
  const BenchScale scale = BenchScale::FromEnv();
  RunDataset(TwitterDataset(scale), scale);
  RunDataset(DblpDataset(scale), scale);
}

}  // namespace
}  // namespace cpd::bench

int main() {
  cpd::bench::Run();
  return 0;
}
