// Quickstart: build a small social graph by hand, train CPD, and read out
// the three things the paper defines (§3): community memberships pi_u,
// content profiles theta_c, and diffusion profiles eta_{c,c',z}.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/cpd_model.h"
#include "graph/graph_builder.h"
#include "synth/generator.h"
#include "util/math_util.h"

using namespace cpd;

int main() {
  // 1. Get a social graph G = (U, D, F, E). Here we use the built-in
  //    generator; GraphBuilder::AddDocument / AddFriendship / AddDiffusion
  //    or LoadSocialGraph (graph/graph_io.h) ingest real data.
  SynthConfig synth;
  synth.num_users = 150;
  synth.num_communities = 5;
  synth.num_topics = 8;
  synth.seed = 42;
  auto generated = GenerateSocialGraph(synth);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const SocialGraph& graph = generated->graph;
  std::printf("graph: %zu users, %zu docs, %zu friendship links, %zu diffusion "
              "links\n\n",
              graph.num_users(), graph.num_documents(),
              graph.num_friendship_links(), graph.num_diffusion_links());

  // 2. Train the joint community profiling + detection model (Alg. 1).
  CpdConfig config;
  config.num_communities = 5;
  config.num_topics = 8;
  config.em_iterations = 12;
  config.verbose = false;
  auto model = CpdModel::Train(graph, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3. Community membership of a user (Definition 3).
  const UserId user = 0;
  std::printf("pi_%d (community membership of user %d):\n  ", user, user);
  for (double p : model->Membership(user)) std::printf("%.3f ", p);
  std::printf("\n\n");

  // 4. Content profile of each community (Definition 4) with top words.
  const Vocabulary& vocab = graph.corpus().vocabulary();
  for (int c = 0; c < model->num_communities(); ++c) {
    const auto& theta = model->ContentProfile(c);
    const int top_topic = static_cast<int>(ArgMax(theta));
    const auto& phi = model->TopicWords(top_topic);
    std::printf("community c%d: top topic T%d (theta=%.2f), words:", c, top_topic,
                theta[static_cast<size_t>(top_topic)]);
    for (size_t w : TopKIndices(phi, 4)) {
      std::printf(" %s", vocab.WordOf(static_cast<WordId>(w)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");

  // 5. Diffusion profile (Definition 5): who diffuses whom, on what.
  std::printf("topic-aggregated diffusion strengths (eta, row = diffusing "
              "community):\n");
  for (int c = 0; c < model->num_communities(); ++c) {
    std::printf("  c%d:", c);
    for (int c2 = 0; c2 < model->num_communities(); ++c2) {
      std::printf(" %.3f", model->EtaAggregated(c, c2));
    }
    std::printf("\n");
  }

  // 6. Persist for later application use.
  if (model->SaveToFile("quickstart_model.cpd").ok()) {
    std::printf("\nmodel saved to quickstart_model.cpd\n");
  }
  return 0;
}
