// Research-community analysis on a DBLP-like citation network (§6.3.3):
// detect communities of authors, profile what each one publishes, measure
// how "open" each community is (does it cite other communities or only
// itself?), and export the Fig. 7-style diffusion visualization for a
// grant-call targeting decision (the paper's funding-agency scenario).
//
//   ./build/examples/citation_analysis "learning"

#include <algorithm>
#include <cstdio>
#include <string>

#include "apps/community_ranking.h"
#include "apps/visualization.h"
#include "core/cpd_model.h"
#include "synth/generator.h"
#include "util/file_util.h"
#include "util/math_util.h"

using namespace cpd;

int main(int argc, char** argv) {
  const std::string grant_theme = argc > 1 ? argv[1] : "learning";

  auto generated = GenerateSocialGraph(SynthConfig::DBLPLike().Scaled(0.6));
  if (!generated.ok()) return 1;
  const SocialGraph& graph = generated->graph;
  std::printf("DBLP-like network: %zu authors, %zu papers, %zu co-authorships, "
              "%zu citations, %d years\n",
              graph.num_users(), graph.num_documents(),
              graph.num_friendship_links(), graph.num_diffusion_links(),
              graph.num_time_bins());

  CpdConfig config;
  config.num_communities = 10;
  config.num_topics = 12;
  config.em_iterations = 12;
  auto model = CpdModel::Train(graph, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const Vocabulary& vocab = graph.corpus().vocabulary();

  // 1. The research landscape: what does each community publish?
  std::printf("\nresearch communities:\n");
  for (int c = 0; c < model->num_communities(); ++c) {
    std::printf("  c%02d: %s\n", c, CommunityLabel(*model, vocab, c, 4).c_str());
  }

  // 2. Openness (Fig. 7 discussion): which communities exchange citations
  //    with many others, and which are closed?
  VisualizationOptions viz;
  std::vector<std::pair<double, int>> openness;
  for (int c = 0; c < model->num_communities(); ++c) {
    openness.emplace_back(CommunityOpenness(*model, c, viz), c);
  }
  std::sort(openness.rbegin(), openness.rend());
  std::printf("\nmost open community:  c%02d (openness %.2f) — cites/cited by "
              "most fields\n",
              openness.front().second, openness.front().first);
  std::printf("most closed community: c%02d (openness %.2f) — mostly "
              "self-citing\n",
              openness.back().second, openness.back().first);

  // 3. Grant-call targeting (the paper's funding-agency scenario): which
  //    communities actively cite papers about the grant theme?
  const auto query = CommunityRanker::ParseQuery(vocab, grant_theme);
  if (query.empty()) {
    std::fprintf(stderr, "theme '%s' is out of vocabulary\n", grant_theme.c_str());
    return 1;
  }
  CommunityRanker ranker(*model);
  const auto ranked = ranker.Rank(query);
  std::printf("\ncommunities to notify for a grant call on '%s':\n",
              grant_theme.c_str());
  for (int k = 0; k < 3 && k < static_cast<int>(ranked.size()); ++k) {
    const auto& entry = ranked[static_cast<size_t>(k)];
    std::printf("  %d. c%02d  diffusion score %.5f  (%s)\n", k + 1,
                entry.community, entry.score,
                CommunityLabel(*model, vocab, entry.community, 3).c_str());
  }

  // 4. Cross-field knowledge flow: strongest inter-community citation edges.
  VisualizationOptions cross = viz;
  cross.include_self_loops = false;
  const auto edges = CollectDiffusionEdges(*model, cross);
  std::printf("\nstrongest cross-community citation flows:\n");
  for (size_t e = 0; e < 5 && e < edges.size(); ++e) {
    std::printf("  c%02d -> c%02d  strength %.4f\n", edges[e].from, edges[e].to,
                edges[e].strength);
  }

  // 5. Export the Fig. 7-style visualization.
  const std::string dot = ExportDiffusionDot(*model, vocab, viz);
  if (WriteStringToFile("citation_communities.dot", dot).ok()) {
    std::printf("\nwrote citation_communities.dot (render with `dot -Tpdf`)\n");
  }
  return 0;
}
