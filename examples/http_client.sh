#!/usr/bin/env sh
# JSON wire format of the cpd_serve HTTP endpoints, as curl one-liners.
#
# Start a server first (the v2 .cpdb bundles the vocabulary, so textual
# rank queries need no --vocab file):
#   ./build/cpd_train --users N --docs docs.tsv --friends friends.tsv \
#       --diffusion diffusion.tsv --model_binary model.cpdb
#   ./build/cpd_serve --model model.cpdb --port 8080 --threads 4
#
# Usage: examples/http_client.sh [host:port]

set -e
BASE="http://${1:-127.0.0.1:8080}"

echo "# liveness + serving generation"
curl -s "$BASE/healthz"
echo

echo "# membership: top-k communities of user 3 (POST form)"
curl -s -X POST "$BASE/v1/query" \
  -d '{"type":"membership","user":3,"top_k":5,"include_distribution":false}'
echo

echo "# the same query as a GET shortcut"
curl -s "$BASE/v1/membership/3?k=5"
echo

echo "# Eq. 19 community ranking for a textual query (bundled vocabulary)"
curl -s -X POST "$BASE/v1/query" \
  -d '{"type":"rank","query":"solar power","top_k":3}'
echo

echo "# ...or with raw word ids (works without any vocabulary)"
curl -s -X POST "$BASE/v1/query" \
  -d '{"type":"rank","words":[1,2],"top_k":3}'
echo

echo "# Eq. 18 diffusion probability (needs a server started with the graph:"
echo "#   --users/--docs/--friends/--diffusion; 409 otherwise)"
curl -s -X POST "$BASE/v1/query" \
  -d '{"type":"diffusion","source":0,"target":1,"document":7,"time_bin":2}'
echo

echo "# strongest members of community 2"
curl -s -X POST "$BASE/v1/query" \
  -d '{"type":"top_users","community":2,"top_k":10}'
echo

echo "# a batch: positionally aligned responses, per-slot errors"
curl -s -X POST "$BASE/v1/query" \
  -d '{"batch":[{"type":"membership","user":0},{"type":"top_users","community":0,"top_k":3}]}'
echo

echo "# hot swap: re-read the artifact with zero downtime"
curl -s -X POST "$BASE/admin/reload"
echo

echo "# serving counters"
curl -s "$BASE/statsz"
echo
