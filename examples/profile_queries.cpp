// Serving a trained model: train once, save the binary ".cpdb" artifact,
// load it back into a ProfileIndex (no trainer state involved), and answer
// the four §5 query types through the QueryEngine — one at a time and as a
// thread-pooled batch. This is the read-side path a query front end
// (tools/cpd_query.cc) or an RPC server builds on.
//
//   ./build/example_profile_queries

#include <cstdio>
#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "parallel/thread_pool.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "synth/generator.h"

using namespace cpd;

int main() {
  // 1. Train a small model (see quickstart.cpp for this part).
  SynthConfig synth;
  synth.num_users = 150;
  synth.num_communities = 5;
  synth.num_topics = 8;
  synth.seed = 42;
  auto generated = GenerateSocialGraph(synth);
  if (!generated.ok()) return 1;
  const SocialGraph& graph = generated->graph;
  CpdConfig config;
  config.num_communities = 5;
  config.num_topics = 8;
  config.em_iterations = 12;
  auto model = CpdModel::Train(graph, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // 2. Persist the binary artifact and serve from it. LoadFromFile also
  //    accepts the text format (SaveToFile) for older models.
  const std::string artifact_path = "profile_queries_model.cpdb";
  if (!model->SaveBinary(artifact_path).ok()) return 1;
  auto index = serve::ProfileIndex::LoadFromFile(artifact_path);
  if (!index.ok()) {
    std::fprintf(stderr, "load failed: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %s: |C|=%d |Z|=%d users=%zu\n\n", artifact_path.c_str(),
              index->num_communities(), index->num_topics(),
              index->num_users());

  // Binding the graph enables diffusion queries (document words + degree
  // features); the other three query types only need the index.
  serve::QueryEngine engine(*index, &graph);

  // 3. MembershipRequest: who is user 0?
  serve::MembershipRequest membership;
  membership.user = 0;
  membership.top_k = 3;
  if (auto response = engine.Membership(membership); response.ok()) {
    std::printf("user 0 top communities:");
    for (const auto& entry : response->top) {
      std::printf("  c%d (%.3f)", entry.community, entry.weight);
    }
    std::printf("\n");
  }

  // 4. RankCommunitiesRequest (Eq. 19): which communities diffuse word 0?
  serve::RankCommunitiesRequest rank;
  rank.words = {0};
  rank.top_k = 3;
  if (auto response = engine.RankCommunities(rank); response.ok()) {
    std::printf("communities ranked for word 0:");
    for (const auto& entry : response->ranked) {
      std::printf("  c%d (%.4g)", entry.community, entry.score);
    }
    std::printf("\n");
  }

  // 5. TopUsersRequest: the strongest members of community 0.
  serve::TopUsersRequest top_users;
  top_users.community = 0;
  top_users.top_k = 5;
  if (auto response = engine.TopUsers(top_users); response.ok()) {
    std::printf("community 0 top users:");
    for (size_t i = 0; i < response->users.size(); ++i) {
      std::printf("  u%d (%.3f)", response->users[i], response->weights[i]);
    }
    std::printf("\n");
  }

  // 6. DiffusionRequest (Eq. 18): will user 1 diffuse user 2's document?
  if (graph.num_documents() > 0) {
    serve::DiffusionRequest diffusion;
    diffusion.source = 1;
    diffusion.target = graph.document(0).user;
    diffusion.document = 0;
    diffusion.time_bin = 0;
    if (auto response = engine.Diffusion(diffusion); response.ok()) {
      std::printf("p(user 1 diffuses doc 0) = %.4f\n", response->probability);
    }
  }

  // 7. Batched serving: a vector of mixed requests fanned out over a pool.
  //    Responses are positionally aligned; errors stay per-slot.
  std::vector<serve::QueryRequest> batch;
  for (UserId u = 0; u < 8; ++u) {
    serve::MembershipRequest request;
    request.user = u;
    batch.push_back(request);
  }
  batch.push_back(rank);
  ThreadPool pool(4);
  const auto responses = engine.QueryBatch(batch, &pool);
  size_t ok = 0;
  for (const auto& response : responses) ok += response.ok() ? 1 : 0;
  std::printf("\nbatch of %zu mixed queries over 4 threads: %zu ok\n",
              batch.size(), ok);

  // 8. Typed errors instead of crashes: out-of-range ids, unbound graph...
  serve::MembershipRequest bad;
  bad.user = static_cast<UserId>(index->num_users()) + 100;
  std::printf("out-of-range user -> %s\n",
              engine.Membership(bad).status().ToString().c_str());
  return 0;
}
