// Multithreaded inference (§4.3): trains the same model serially and with
// the parallel E-step (LDA-based user segmentation + knapsack workload
// balancing), reporting the speedup, the per-thread balance, and showing
// that the parallel run reaches the same quality regime.
//
//   ./build/examples/parallel_training [num_threads]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/em_trainer.h"
#include "synth/generator.h"
#include "util/math_util.h"
#include "util/timer.h"

using namespace cpd;

int main(int argc, char** argv) {
  const int threads =
      argc > 1 ? std::atoi(argv[1])
               : static_cast<int>(
                     std::max(2u, std::thread::hardware_concurrency() / 2));

  auto generated = GenerateSocialGraph(SynthConfig::TwitterLike());
  if (!generated.ok()) return 1;
  const SocialGraph& graph = generated->graph;
  std::printf("network: %zu users, %zu docs, %zu friendship links, %zu "
              "diffusion links\n\n",
              graph.num_users(), graph.num_documents(),
              graph.num_friendship_links(), graph.num_diffusion_links());

  CpdConfig config;
  config.num_communities = 10;
  config.num_topics = 12;
  config.em_iterations = 8;

  // Serial run.
  WallTimer serial_timer;
  EmTrainer serial(graph, config);
  if (!serial.Train().ok()) return 1;
  const double serial_seconds = serial_timer.ElapsedSeconds();
  std::printf("serial:   %.2fs total (E-step %.2fs), final link "
              "log-likelihood %.1f\n",
              serial_seconds, serial.stats().e_step_seconds,
              serial.stats().link_log_likelihood.back());

  // Parallel run.
  config.num_threads = threads;
  WallTimer parallel_timer;
  EmTrainer parallel(graph, config);
  if (!parallel.Train().ok()) return 1;
  const double parallel_seconds = parallel_timer.ElapsedSeconds();
  std::printf("parallel: %.2fs total (E-step %.2fs, %d threads), final link "
              "log-likelihood %.1f\n",
              parallel_seconds, parallel.stats().e_step_seconds, threads,
              parallel.stats().link_log_likelihood.back());
  std::printf("E-step speedup: %.2fx\n\n",
              serial.stats().e_step_seconds /
                  std::max(parallel.stats().e_step_seconds, 1e-9));

  // Workload balance (Fig. 11 view).
  const TrainStats& stats = parallel.stats();
  std::printf("per-thread estimated workload (relative) and measured E-step "
              "seconds:\n");
  const double mean_est = Mean(stats.thread_estimated_workload);
  for (int t = 0; t < threads; ++t) {
    std::printf("  thread %d: workload %.2f  time %.3fs\n", t + 1,
                stats.thread_estimated_workload[static_cast<size_t>(t)] /
                    std::max(mean_est, 1e-12),
                stats.thread_actual_seconds[static_cast<size_t>(t)]);
  }
  std::printf("\n%zu LDA-derived user segments were packed onto %d threads by "
              "solving 0-1 knapsacks (Eq. 17).\n",
              stats.num_segments, threads);
  return 0;
}
