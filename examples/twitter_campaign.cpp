// Campaign targeting on a Twitter-like network (the paper's motivating
// application, §1): a company wants the communities most likely to retweet
// about its product so it can target a campaign. Uses profile-driven
// community ranking (Eq. 19) and community-aware diffusion (Eq. 18) to pick
// target communities and likely amplifier users.
//
//   ./build/examples/twitter_campaign "#network"

#include <algorithm>
#include <cstdio>
#include <string>

#include "apps/community_ranking.h"
#include "apps/diffusion_prediction.h"
#include "apps/visualization.h"
#include "core/cpd_model.h"
#include "synth/generator.h"
#include "util/math_util.h"

using namespace cpd;

int main(int argc, char** argv) {
  const std::string query_text = argc > 1 ? argv[1] : "#network";

  // A Twitter-like network (followership + tweets + retweets).
  auto generated = GenerateSocialGraph(SynthConfig::TwitterLike().Scaled(0.6));
  if (!generated.ok()) return 1;
  const SocialGraph& graph = generated->graph;
  std::printf("Twitter-like network: %zu users, %zu tweets, %zu follows, %zu "
              "retweets\n",
              graph.num_users(), graph.num_documents(),
              graph.num_friendship_links(), graph.num_diffusion_links());

  CpdConfig config;
  config.num_communities = 10;
  config.num_topics = 12;
  config.em_iterations = 12;
  auto model = CpdModel::Train(graph, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 1. Which communities will retweet about the campaign topic?
  const Vocabulary& vocab = graph.corpus().vocabulary();
  const auto query = CommunityRanker::ParseQuery(vocab, query_text);
  if (query.empty()) {
    std::fprintf(stderr, "query '%s' is out of vocabulary\n", query_text.c_str());
    return 1;
  }
  CommunityRanker ranker(*model);
  const auto ranked = ranker.Rank(query);
  std::printf("\ntop-3 communities to target for '%s':\n", query_text.c_str());
  for (int k = 0; k < 3 && k < static_cast<int>(ranked.size()); ++k) {
    const auto& entry = ranked[static_cast<size_t>(k)];
    std::printf("  %d. c%02d  score=%.5f  about: %s\n", k + 1, entry.community,
                entry.score,
                CommunityLabel(*model, vocab, entry.community, 4).c_str());
  }

  // 2. Within the top community, which members are the best amplifiers?
  //    Score each member's probability of retweeting a seed tweet about the
  //    query topic from a prototypical author (Eq. 18).
  const int target = ranked.front().community;
  // A seed document: the query topic's highest-probability document author.
  DocId seed_doc = 0;
  const int seed_topic = static_cast<int>(
      ArgMax(ranked.front().topic_distribution));
  // Find a document whose words best match the seed topic.
  double best = -1e300;
  const auto& phi = model->TopicWords(seed_topic);
  for (size_t d = 0; d < graph.num_documents(); d += 7) {
    double score = 0.0;
    for (WordId w : graph.document(static_cast<DocId>(d)).words) {
      score += phi[static_cast<size_t>(w)];
    }
    score /= static_cast<double>(
        graph.document(static_cast<DocId>(d)).words.size());
    if (score > best) {
      best = score;
      seed_doc = static_cast<DocId>(d);
    }
  }
  const UserId author = graph.document(seed_doc).user;

  DiffusionPredictor predictor(*model, graph);
  std::vector<std::pair<double, UserId>> amplifiers;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const UserId user = static_cast<UserId>(u);
    if (user == author) continue;
    const auto& pi = model->Membership(user);
    if (static_cast<int>(ArgMax(pi)) != target) continue;
    amplifiers.emplace_back(
        predictor.Score(user, author, seed_doc, graph.num_time_bins() - 1), user);
  }
  std::sort(amplifiers.rbegin(), amplifiers.rend());
  std::printf("\ntop amplifier users inside community c%02d (retweet "
              "probability of the seed tweet):\n",
              target);
  for (size_t k = 0; k < 5 && k < amplifiers.size(); ++k) {
    const UserActivity& activity = graph.activity(amplifiers[k].second);
    std::printf("  user %4d  p=%.4f  followers=%ld  retweet-ratio=%.2f\n",
                amplifiers[k].second, amplifiers[k].first,
                static_cast<long>(activity.followers), activity.Activeness());
  }
  std::printf("\nCampaign plan: seed the tweet with the top amplifiers; the "
              "ranking already accounts for the community's content interest, "
              "current topic popularity and individual retweet habits.\n");
  return 0;
}
