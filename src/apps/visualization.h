#ifndef CPD_APPS_VISUALIZATION_H_
#define CPD_APPS_VISUALIZATION_H_

/// \file visualization.h
/// Profile-driven community visualization (application 3, §5 / Fig. 7):
/// export the inter-community diffusion graph — either aggregated over all
/// topics (sum_z eta_{c,c',z}) or for one topic (eta_{c,c',z}) — as Graphviz
/// DOT and as JSON, with communities labeled by their top content words.
/// Edges below the average strength are skipped, matching the paper's
/// rendering rule.

#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "text/vocabulary.h"

namespace cpd {

struct VisualizationOptions {
  int topic = -1;            ///< -1 = aggregate over topics (Fig. 7(a)).
  int label_words = 3;       ///< Words per community label.
  double strength_cutoff_factor = 1.0;  ///< Skip edges below factor * mean.
  bool include_self_loops = true;
};

/// One rendered edge (exposed so tests and benches can inspect the graph).
struct DiffusionEdge {
  int from = -1;
  int to = -1;
  double strength = 0.0;
};

/// Human-readable label: top words of the community's dominant topics.
std::string CommunityLabel(const CpdModel& model, const Vocabulary& vocabulary,
                           int community, int num_words);

/// Edges passing the cutoff, sorted by descending strength.
std::vector<DiffusionEdge> CollectDiffusionEdges(const CpdModel& model,
                                                 const VisualizationOptions& options);

/// Graphviz DOT rendering (edge penwidth encodes strength).
std::string ExportDiffusionDot(const CpdModel& model, const Vocabulary& vocabulary,
                               const VisualizationOptions& options);

/// JSON rendering: nodes with labels + content profiles, edges with
/// strengths (consumed by the SocialLens-style browser of [4]).
std::string ExportProfilesJson(const CpdModel& model, const Vocabulary& vocabulary,
                               const VisualizationOptions& options);

/// Openness of a community (§6.3.3): fraction of *other* communities it
/// exchanges above-cutoff diffusion edges with (either direction).
double CommunityOpenness(const CpdModel& model, int community,
                         const VisualizationOptions& options);

}  // namespace cpd

#endif  // CPD_APPS_VISUALIZATION_H_
