#include "apps/attribute_profiles.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

StatusOr<AttributeProfiles> AttributeProfiles::Build(
    const CpdModel& model, const UserAttribute& attribute) {
  // The aggregation only reads pi rows and eta_agg; skip the top-k and
  // postings build.
  serve::ProfileIndexOptions options;
  options.build_membership_index = false;
  return Build(serve::ProfileIndex::FromModel(model, options), attribute);
}

StatusOr<AttributeProfiles> AttributeProfiles::Build(
    const serve::ProfileIndex& index, const UserAttribute& attribute) {
  if (attribute.values.empty()) {
    return Status::InvalidArgument("attribute has no values");
  }
  if (attribute.value_of_user.size() != index.num_users()) {
    return Status::InvalidArgument("attribute/user count mismatch");
  }
  for (int32_t v : attribute.value_of_user) {
    if (v < 0 || static_cast<size_t>(v) >= attribute.values.size()) {
      return Status::OutOfRange("attribute value id out of range");
    }
  }

  AttributeProfiles profiles;
  profiles.name_ = attribute.name;
  profiles.num_communities_ = index.num_communities();
  profiles.num_values_ = static_cast<int>(attribute.values.size());

  const size_t kc = static_cast<size_t>(profiles.num_communities_);
  const size_t ka = static_cast<size_t>(profiles.num_values_);
  profiles.internal_.assign(kc * ka, 1e-9);
  for (size_t u = 0; u < index.num_users(); ++u) {
    const auto pi = index.Membership(static_cast<UserId>(u));
    const size_t a = static_cast<size_t>(attribute.value_of_user[u]);
    for (size_t c = 0; c < kc; ++c) {
      profiles.internal_[c * ka + a] += pi[c];
    }
  }
  for (size_t c = 0; c < kc; ++c) {
    double total = 0.0;
    for (size_t a = 0; a < ka; ++a) total += profiles.internal_[c * ka + a];
    for (size_t a = 0; a < ka; ++a) profiles.internal_[c * ka + a] /= total;
  }

  profiles.eta_agg_.assign(kc * kc, 0.0);
  for (int c = 0; c < profiles.num_communities_; ++c) {
    double total = 0.0;
    for (int c2 = 0; c2 < profiles.num_communities_; ++c2) {
      const double strength = index.EtaAggregated(c, c2);
      profiles.eta_agg_[static_cast<size_t>(c) * kc + static_cast<size_t>(c2)] =
          strength;
      total += strength;
    }
    if (total > 0.0) {
      for (int c2 = 0; c2 < profiles.num_communities_; ++c2) {
        profiles.eta_agg_[static_cast<size_t>(c) * kc +
                          static_cast<size_t>(c2)] /= total;
      }
    }
  }
  return profiles;
}

double AttributeProfiles::Internal(int community, int value) const {
  CPD_DCHECK(community >= 0 && community < num_communities_);
  CPD_DCHECK(value >= 0 && value < num_values_);
  return internal_[static_cast<size_t>(community) *
                       static_cast<size_t>(num_values_) +
                   static_cast<size_t>(value)];
}

double AttributeProfiles::External(int c, int c2, int value, int value2) const {
  return eta_agg_[static_cast<size_t>(c) * static_cast<size_t>(num_communities_) +
                  static_cast<size_t>(c2)] *
         Internal(c, value) * Internal(c2, value2);
}

int AttributeProfiles::DominantValue(int community) const {
  int best = 0;
  for (int a = 1; a < num_values_; ++a) {
    if (Internal(community, a) > Internal(community, best)) best = a;
  }
  return best;
}

double AttributeProfiles::Entropy(int community) const {
  double entropy = 0.0;
  for (int a = 0; a < num_values_; ++a) {
    const double p = Internal(community, a);
    if (p > 0.0) entropy -= p * std::log(p);
  }
  return entropy;
}

}  // namespace cpd
