#ifndef CPD_APPS_ATTRIBUTE_PROFILES_H_
#define CPD_APPS_ATTRIBUTE_PROFILES_H_

/// \file attribute_profiles.h
/// The paper's stated future-work extension (§1, §7): "community profile" is
/// a flexible concept over any user information X — beyond content, e.g.
/// *attributes* in Facebook-style networks. This module derives
///   internal profile:  p(attribute | community)            ("community-X")
///   external profile:  p(attribute pair | community pair)  weighted by the
///                      diffusion strengths                  ("community-
///                                                           community-X")
/// from a trained CPD model plus a categorical attribute per user, following
/// the same membership-weighted aggregation semantics as Definition 4/5.

#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "graph/social_graph.h"
#include "serve/profile_index.h"
#include "util/status.h"

namespace cpd {

/// A categorical user attribute (e.g. region, affiliation type).
struct UserAttribute {
  std::string name;
  std::vector<std::string> values;     ///< Value labels, ids = indices.
  std::vector<int32_t> value_of_user;  ///< Per user, index into `values`.
};

class AttributeProfiles {
 public:
  /// Aggregates the attribute under the model's memberships:
  ///   p(a | c) ∝ sum_u pi_{u,c} [attr_u = a].
  /// The external profile weights user pairs by the communities' aggregated
  /// diffusion strength:
  ///   p(a, a' | c, c') ∝ eta_agg(c, c') p(a | c) p(a' | c').
  static StatusOr<AttributeProfiles> Build(const CpdModel& model,
                                           const UserAttribute& attribute);

  /// Same aggregation against a serving index (the adapter above builds a
  /// temporary index and forwards here).
  static StatusOr<AttributeProfiles> Build(const serve::ProfileIndex& index,
                                           const UserAttribute& attribute);

  int num_communities() const { return num_communities_; }
  int num_values() const { return num_values_; }
  const std::string& attribute_name() const { return name_; }

  /// Internal profile p(a | c); rows sum to 1.
  double Internal(int community, int value) const;

  /// External profile entry for (c, c') and attribute pair (a, a').
  double External(int c, int c2, int value, int value2) const;

  /// Most probable attribute value of a community.
  int DominantValue(int community) const;

  /// Entropy of p(. | c) in nats — low entropy = attribute-homogeneous
  /// community.
  double Entropy(int community) const;

 private:
  AttributeProfiles() = default;

  std::string name_;
  int num_communities_ = 0;
  int num_values_ = 0;
  std::vector<double> internal_;  // C x A, row-normalized.
  std::vector<double> eta_agg_;   // C x C, normalized over rows.
};

}  // namespace cpd

#endif  // CPD_APPS_ATTRIBUTE_PROFILES_H_
