#ifndef CPD_APPS_DIFFUSION_PREDICTION_H_
#define CPD_APPS_DIFFUSION_PREDICTION_H_

/// \file diffusion_prediction.h
/// Community-aware diffusion (application 1, §5 Eq. 18): the probability
/// that user u will publish a document diffusing user v's document d_vj at
/// time t, marginalized over d_vj's topics:
///   p = sum_z sigmoid(w_eta S(u,v,z) + w_pop n_tz + nu f_uv + b) p(z | d_vj).
///
/// Thin adapter over serve::QueryEngine — the Eq. 18 scoring lives in
/// QueryEngine::Diffusion so the offline evaluation harness and the serving
/// path share one implementation.

#include <optional>
#include <vector>

#include "core/cpd_model.h"
#include "eval/evaluator.h"
#include "graph/social_graph.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"

namespace cpd {

class DiffusionPredictor {
 public:
  /// Builds a private ProfileIndex from the model; the graph reference must
  /// outlive the predictor.
  DiffusionPredictor(const CpdModel& model, const SocialGraph& graph);

  /// Serves from an existing index; index and graph must outlive the
  /// predictor.
  DiffusionPredictor(const serve::ProfileIndex& index, const SocialGraph& graph);

  /// Non-copyable/movable: engine_ references the (possibly owned) index,
  /// so an implicit copy would dangle into the source object.
  DiffusionPredictor(const DiffusionPredictor&) = delete;
  DiffusionPredictor& operator=(const DiffusionPredictor&) = delete;

  /// Eq. 18: probability of u diffusing v's document j at time t.
  double Score(UserId u, UserId v, DocId j, int32_t t) const;

  /// Friendship link prediction score sigmoid(pi_u . pi_v) (Eq. 3).
  double FriendshipScore(UserId u, UserId v) const;

  /// Topic posterior p(z | d) ∝ (sum_c pi_{author,c} theta_{c,z})
  ///                            prod_w phi_{z,w}   (normalized).
  std::vector<double> DocumentTopicPosterior(DocId j) const;

  /// The community-factor score S(u, v, z) of Eq. 4 under trained estimates.
  double CommunityScore(UserId u, UserId v, int z) const;

  /// Adapters for the evaluation harness.
  DiffusionScorer AsDiffusionScorer() const;
  FriendshipScorer AsFriendshipScorer() const;

 private:
  std::optional<serve::ProfileIndex> owned_index_;
  const serve::ProfileIndex* index_;
  serve::QueryEngine engine_;
  const SocialGraph& graph_;
};

}  // namespace cpd

#endif  // CPD_APPS_DIFFUSION_PREDICTION_H_
