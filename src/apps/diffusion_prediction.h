#ifndef CPD_APPS_DIFFUSION_PREDICTION_H_
#define CPD_APPS_DIFFUSION_PREDICTION_H_

/// \file diffusion_prediction.h
/// Community-aware diffusion (application 1, §5 Eq. 18): the probability
/// that user u will publish a document diffusing user v's document d_vj at
/// time t, marginalized over d_vj's topics:
///   p = sum_z sigmoid(w_eta S(u,v,z) + w_pop n_tz + nu f_uv + b) p(z | d_vj).

#include "core/cpd_model.h"
#include "eval/evaluator.h"
#include "graph/social_graph.h"

namespace cpd {

class DiffusionPredictor {
 public:
  /// Both references must outlive the predictor.
  DiffusionPredictor(const CpdModel& model, const SocialGraph& graph);

  /// Eq. 18: probability of u diffusing v's document j at time t.
  double Score(UserId u, UserId v, DocId j, int32_t t) const;

  /// Friendship link prediction score sigmoid(pi_u . pi_v) (Eq. 3).
  double FriendshipScore(UserId u, UserId v) const;

  /// Topic posterior p(z | d) ∝ (sum_c pi_{author,c} theta_{c,z})
  ///                            prod_w phi_{z,w}   (normalized).
  std::vector<double> DocumentTopicPosterior(DocId j) const;

  /// The community-factor score S(u, v, z) of Eq. 4 under trained estimates.
  double CommunityScore(UserId u, UserId v, int z) const;

  /// Adapters for the evaluation harness.
  DiffusionScorer AsDiffusionScorer() const;
  FriendshipScorer AsFriendshipScorer() const;

 private:
  const CpdModel& model_;
  const SocialGraph& graph_;
};

}  // namespace cpd

#endif  // CPD_APPS_DIFFUSION_PREDICTION_H_
