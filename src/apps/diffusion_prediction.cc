#include "apps/diffusion_prediction.h"

#include "util/logging.h"

namespace cpd {

namespace {
// Eq. 18 scoring only reads pi rows, theta/phi/eta, weights and
// popularity; skip the top-k/postings build when adapting a model.
serve::ProfileIndexOptions PredictorIndexOptions() {
  serve::ProfileIndexOptions options;
  options.build_membership_index = false;
  return options;
}
}  // namespace

DiffusionPredictor::DiffusionPredictor(const CpdModel& model,
                                       const SocialGraph& graph)
    : owned_index_(
          serve::ProfileIndex::FromModel(model, PredictorIndexOptions())),
      index_(&*owned_index_),
      engine_(*index_, &graph),
      graph_(graph) {}

DiffusionPredictor::DiffusionPredictor(const serve::ProfileIndex& index,
                                       const SocialGraph& graph)
    : index_(&index), engine_(*index_, &graph), graph_(graph) {}

double DiffusionPredictor::CommunityScore(UserId u, UserId v, int z) const {
  return engine_.CommunityScore(u, v, z);
}

std::vector<double> DiffusionPredictor::DocumentTopicPosterior(DocId j) const {
  auto posterior = engine_.DocumentTopicPosterior(j);
  CPD_CHECK(posterior.ok());
  return std::move(*posterior);
}

double DiffusionPredictor::Score(UserId u, UserId v, DocId j, int32_t t) const {
  serve::DiffusionRequest request;
  request.source = u;
  request.target = v;
  request.document = j;
  request.time_bin = t;
  auto response = engine_.Diffusion(request);
  // The historical contract: callers pass in-range users/documents (the
  // evaluation harness iterates graph links), so a failure is a caller bug.
  CPD_CHECK(response.ok());
  return response->probability;
}

double DiffusionPredictor::FriendshipScore(UserId u, UserId v) const {
  return engine_.FriendshipScore(u, v);
}

DiffusionScorer DiffusionPredictor::AsDiffusionScorer() const {
  return [this](DocId i, DocId j, int32_t t) {
    const UserId u = graph_.document(i).user;
    const UserId v = graph_.document(j).user;
    return Score(u, v, j, t);
  };
}

FriendshipScorer DiffusionPredictor::AsFriendshipScorer() const {
  return [this](UserId u, UserId v) { return FriendshipScore(u, v); };
}

}  // namespace cpd
