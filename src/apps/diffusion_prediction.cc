#include "apps/diffusion_prediction.h"

#include <cmath>

#include "core/diffusion_features.h"
#include "core/model_state.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

DiffusionPredictor::DiffusionPredictor(const CpdModel& model,
                                       const SocialGraph& graph)
    : model_(model), graph_(graph) {}

double DiffusionPredictor::CommunityScore(UserId u, UserId v, int z) const {
  const auto& pi_u = model_.Membership(u);
  const auto& pi_v = model_.Membership(v);
  const int kc = model_.num_communities();
  double score = 0.0;
  for (int c = 0; c < kc; ++c) {
    const double left = pi_u[static_cast<size_t>(c)] *
                        model_.ContentProfile(c)[static_cast<size_t>(z)];
    if (left == 0.0) continue;
    double inner = 0.0;
    for (int c2 = 0; c2 < kc; ++c2) {
      inner += model_.Eta(c, c2, z) *
               model_.ContentProfile(c2)[static_cast<size_t>(z)] *
               pi_v[static_cast<size_t>(c2)];
    }
    score += left * inner;
  }
  return score;
}

std::vector<double> DiffusionPredictor::DocumentTopicPosterior(DocId j) const {
  const Document& doc = graph_.document(j);
  const int kz = model_.num_topics();
  const int kc = model_.num_communities();
  const auto& pi_v = model_.Membership(doc.user);

  std::vector<double> log_post(static_cast<size_t>(kz), 0.0);
  for (int z = 0; z < kz; ++z) {
    double prior = 0.0;
    for (int c = 0; c < kc; ++c) {
      prior += pi_v[static_cast<size_t>(c)] *
               model_.ContentProfile(c)[static_cast<size_t>(z)];
    }
    double lp = std::log(std::max(prior, 1e-300));
    const auto& phi = model_.TopicWords(z);
    for (WordId w : doc.words) {
      lp += std::log(std::max(phi[static_cast<size_t>(w)], 1e-300));
    }
    log_post[static_cast<size_t>(z)] = lp;
  }
  SoftmaxInPlace(&log_post);
  return log_post;
}

double DiffusionPredictor::Score(UserId u, UserId v, DocId j, int32_t t) const {
  if (!model_.config().ablation.heterogeneous_links) {
    // The "no heterogeneity" ablation models diffusion links exactly like
    // friendship links (Eq. 3), so it must predict with that model too.
    return FriendshipScore(u, v);
  }
  const std::vector<double> posterior = DocumentTopicPosterior(j);
  const auto& weights = model_.DiffusionWeights();
  double features[kNumUserFeatures];
  LinkCaches::ComputePairFeatures(graph_, u, v, features);
  double feature_part = weights[kWeightBias];
  for (int k = 0; k < kNumUserFeatures; ++k) {
    feature_part += weights[kWeightFeature0 + k] * features[k];
  }
  double probability = 0.0;
  for (int z = 0; z < model_.num_topics(); ++z) {
    const double w = weights[kWeightEta] * CommunityScore(u, v, z) +
                     weights[kWeightPopularity] * model_.TopicPopularity(t, z) +
                     feature_part;
    probability += Sigmoid(w) * posterior[static_cast<size_t>(z)];
  }
  return probability;
}

double DiffusionPredictor::FriendshipScore(UserId u, UserId v) const {
  const auto& pi_u = model_.Membership(u);
  const auto& pi_v = model_.Membership(v);
  double dot = 0.0;
  for (size_t c = 0; c < pi_u.size(); ++c) dot += pi_u[c] * pi_v[c];
  return Sigmoid(dot);
}

DiffusionScorer DiffusionPredictor::AsDiffusionScorer() const {
  return [this](DocId i, DocId j, int32_t t) {
    const UserId u = graph_.document(i).user;
    const UserId v = graph_.document(j).user;
    return Score(u, v, j, t);
  };
}

FriendshipScorer DiffusionPredictor::AsFriendshipScorer() const {
  return [this](UserId u, UserId v) { return FriendshipScore(u, v); };
}

}  // namespace cpd
