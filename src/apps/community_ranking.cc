#include "apps/community_ranking.h"

#include <utility>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace cpd {

namespace {
// Ranking only reads theta/phi/eta; skip the O(U·|C| log k) top-k and
// postings build when adapting a model.
serve::ProfileIndexOptions RankerIndexOptions() {
  serve::ProfileIndexOptions options;
  options.build_membership_index = false;
  return options;
}
}  // namespace

CommunityRanker::CommunityRanker(const CpdModel& model)
    : owned_index_(serve::ProfileIndex::FromModel(model, RankerIndexOptions())),
      index_(&*owned_index_),
      engine_(*index_) {}

CommunityRanker::CommunityRanker(const serve::ProfileIndex& index)
    : index_(&index), engine_(*index_) {}

std::vector<RankedCommunity> CommunityRanker::Rank(
    std::span<const WordId> query) const {
  serve::RankCommunitiesRequest request;
  request.words.assign(query.begin(), query.end());
  auto response = engine_.RankCommunities(request);
  // The historical contract: word ids must be in-vocabulary (ParseQuery
  // filters), so a failure here is a caller bug.
  CPD_CHECK(response.ok());
  std::vector<RankedCommunity> ranked;
  ranked.reserve(response->ranked.size());
  for (serve::RankedCommunityEntry& entry : response->ranked) {
    ranked.push_back({entry.community, entry.score,
                      std::move(entry.topic_distribution)});
  }
  return ranked;
}

std::vector<WordId> CommunityRanker::ParseQuery(const Vocabulary& vocabulary,
                                                const std::string& text) {
  std::vector<WordId> words;
  TokenizerOptions options;
  options.stem = true;
  for (const std::string& token : Tokenize(text, options)) {
    const WordId w = vocabulary.Find(token);
    if (w != kInvalidWord) words.push_back(w);
  }
  // Fall back to raw whitespace tokens (synthetic vocabularies are not
  // stemmed).
  if (words.empty()) {
    options.stem = false;
    options.remove_stopwords = false;
    options.remove_function_words = false;
    for (const std::string& token : Tokenize(text, options)) {
      const WordId w = vocabulary.Find(token);
      if (w != kInvalidWord) words.push_back(w);
    }
  }
  return words;
}

std::vector<std::vector<UserId>> CommunityRanker::CommunityUserSets(
    const CpdModel& model, int top_k) {
  std::vector<std::vector<UserId>> sets(
      static_cast<size_t>(model.num_communities()));
  for (size_t u = 0; u < model.num_users(); ++u) {
    for (int c : model.TopCommunities(static_cast<UserId>(u), top_k)) {
      sets[static_cast<size_t>(c)].push_back(static_cast<UserId>(u));
    }
  }
  return sets;
}

}  // namespace cpd
