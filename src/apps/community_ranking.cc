#include "apps/community_ranking.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

CommunityRanker::CommunityRanker(const CpdModel& model) : model_(model) {}

std::vector<RankedCommunity> CommunityRanker::Rank(
    std::span<const WordId> query) const {
  const int kc = model_.num_communities();
  const int kz = model_.num_topics();

  // g_z = prod_{w in q} phi_{z,w}, computed in log space and rescaled by the
  // max to avoid underflow (a global per-z factor cancels in the ranking).
  std::vector<double> log_g(static_cast<size_t>(kz), 0.0);
  for (int z = 0; z < kz; ++z) {
    const auto& phi = model_.TopicWords(z);
    double lg = 0.0;
    for (WordId w : query) {
      CPD_CHECK(w >= 0 && static_cast<size_t>(w) < phi.size());
      lg += std::log(std::max(phi[static_cast<size_t>(w)], 1e-300));
    }
    log_g[static_cast<size_t>(z)] = lg;
  }
  const double max_log = *std::max_element(log_g.begin(), log_g.end());
  std::vector<double> g(static_cast<size_t>(kz));
  for (int z = 0; z < kz; ++z) {
    g[static_cast<size_t>(z)] = std::exp(log_g[static_cast<size_t>(z)] - max_log);
  }

  std::vector<RankedCommunity> ranked(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    RankedCommunity& entry = ranked[static_cast<size_t>(c)];
    entry.community = c;
    entry.topic_distribution.assign(static_cast<size_t>(kz), 0.0);
    double score = 0.0;
    for (int z = 0; z < kz; ++z) {
      double inner = 0.0;
      for (int c2 = 0; c2 < kc; ++c2) {
        inner += model_.Eta(c, c2, z) *
                 model_.ContentProfile(c2)[static_cast<size_t>(z)];
      }
      const double term = inner * g[static_cast<size_t>(z)];
      entry.topic_distribution[static_cast<size_t>(z)] = term;
      score += term;
    }
    entry.score = score;
    NormalizeInPlace(&entry.topic_distribution);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedCommunity& a, const RankedCommunity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.community < b.community;
            });
  return ranked;
}

std::vector<WordId> CommunityRanker::ParseQuery(const Vocabulary& vocabulary,
                                                const std::string& text) {
  std::vector<WordId> words;
  TokenizerOptions options;
  options.stem = true;
  for (const std::string& token : Tokenize(text, options)) {
    const WordId w = vocabulary.Find(token);
    if (w != kInvalidWord) words.push_back(w);
  }
  // Fall back to raw whitespace tokens (synthetic vocabularies are not
  // stemmed).
  if (words.empty()) {
    options.stem = false;
    options.remove_stopwords = false;
    options.remove_function_words = false;
    for (const std::string& token : Tokenize(text, options)) {
      const WordId w = vocabulary.Find(token);
      if (w != kInvalidWord) words.push_back(w);
    }
  }
  return words;
}

std::vector<std::vector<UserId>> CommunityRanker::CommunityUserSets(
    const CpdModel& model, int top_k) {
  std::vector<std::vector<UserId>> sets(
      static_cast<size_t>(model.num_communities()));
  for (size_t u = 0; u < model.num_users(); ++u) {
    for (int c : model.TopCommunities(static_cast<UserId>(u), top_k)) {
      sets[static_cast<size_t>(c)].push_back(static_cast<UserId>(u));
    }
  }
  return sets;
}

}  // namespace cpd
