#include "apps/visualization.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace cpd {

namespace {

double EdgeStrength(const CpdModel& model, int c, int c2, int topic) {
  return topic < 0 ? model.EtaAggregated(c, c2) : model.Eta(c, c2, topic);
}

double MeanStrength(const CpdModel& model, const VisualizationOptions& options) {
  const int kc = model.num_communities();
  double total = 0.0;
  size_t count = 0;
  for (int c = 0; c < kc; ++c) {
    for (int c2 = 0; c2 < kc; ++c2) {
      if (c == c2 && !options.include_self_loops) continue;
      total += EdgeStrength(model, c, c2, options.topic);
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace

std::string CommunityLabel(const CpdModel& model, const Vocabulary& vocabulary,
                           int community, int num_words) {
  // Blend phi over the community's content profile, then take top words.
  const auto& theta = model.ContentProfile(community);
  std::vector<double> word_scores(model.vocab_size(), 0.0);
  for (int z = 0; z < model.num_topics(); ++z) {
    const double weight = theta[static_cast<size_t>(z)];
    if (weight < 1e-6) continue;
    const auto& phi = model.TopicWords(z);
    for (size_t w = 0; w < word_scores.size(); ++w) {
      word_scores[w] += weight * phi[w];
    }
  }
  std::vector<std::string> words;
  for (size_t idx : TopKIndices(word_scores, static_cast<size_t>(num_words))) {
    words.push_back(vocabulary.WordOf(static_cast<WordId>(idx)));
  }
  return Join(words, " ");
}

std::vector<DiffusionEdge> CollectDiffusionEdges(
    const CpdModel& model, const VisualizationOptions& options) {
  const int kc = model.num_communities();
  const double cutoff = MeanStrength(model, options) * options.strength_cutoff_factor;
  std::vector<DiffusionEdge> edges;
  for (int c = 0; c < kc; ++c) {
    for (int c2 = 0; c2 < kc; ++c2) {
      if (c == c2 && !options.include_self_loops) continue;
      const double strength = EdgeStrength(model, c, c2, options.topic);
      if (strength < cutoff) continue;
      edges.push_back(DiffusionEdge{c, c2, strength});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const DiffusionEdge& a, const DiffusionEdge& b) {
              return a.strength > b.strength;
            });
  return edges;
}

std::string ExportDiffusionDot(const CpdModel& model, const Vocabulary& vocabulary,
                               const VisualizationOptions& options) {
  const std::vector<DiffusionEdge> edges = CollectDiffusionEdges(model, options);
  double max_strength = 1e-12;
  for (const DiffusionEdge& edge : edges) {
    max_strength = std::max(max_strength, edge.strength);
  }
  std::ostringstream out;
  out << "digraph community_diffusion {\n";
  out << "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  for (int c = 0; c < model.num_communities(); ++c) {
    out << StrFormat("  c%02d [label=\"c%02d: %s\"];\n", c, c,
                     CommunityLabel(model, vocabulary, c, options.label_words)
                         .c_str());
  }
  for (const DiffusionEdge& edge : edges) {
    const double penwidth = 0.5 + 4.5 * edge.strength / max_strength;
    out << StrFormat("  c%02d -> c%02d [penwidth=%.2f, label=\"%.4f\"];\n",
                     edge.from, edge.to, penwidth, edge.strength);
  }
  out << "}\n";
  return out.str();
}

std::string ExportProfilesJson(const CpdModel& model, const Vocabulary& vocabulary,
                               const VisualizationOptions& options) {
  const std::vector<DiffusionEdge> edges = CollectDiffusionEdges(model, options);
  std::ostringstream out;
  out << "{\n  \"communities\": [\n";
  for (int c = 0; c < model.num_communities(); ++c) {
    out << StrFormat("    {\"id\": %d, \"label\": \"%s\", \"openness\": %.4f}",
                     c,
                     CommunityLabel(model, vocabulary, c, options.label_words)
                         .c_str(),
                     CommunityOpenness(model, c, options));
    out << (c + 1 < model.num_communities() ? ",\n" : "\n");
  }
  out << "  ],\n  \"edges\": [\n";
  for (size_t e = 0; e < edges.size(); ++e) {
    out << StrFormat("    {\"from\": %d, \"to\": %d, \"strength\": %.6f}",
                     edges[e].from, edges[e].to, edges[e].strength);
    out << (e + 1 < edges.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

double CommunityOpenness(const CpdModel& model, int community,
                         const VisualizationOptions& options) {
  const int kc = model.num_communities();
  if (kc <= 1) return 0.0;
  const double cutoff = MeanStrength(model, options) * options.strength_cutoff_factor;
  int connected = 0;
  for (int other = 0; other < kc; ++other) {
    if (other == community) continue;
    if (EdgeStrength(model, community, other, options.topic) >= cutoff ||
        EdgeStrength(model, other, community, options.topic) >= cutoff) {
      ++connected;
    }
  }
  return static_cast<double>(connected) / static_cast<double>(kc - 1);
}

}  // namespace cpd
