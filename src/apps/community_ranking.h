#ifndef CPD_APPS_COMMUNITY_RANKING_H_
#define CPD_APPS_COMMUNITY_RANKING_H_

/// \file community_ranking.h
/// Profile-driven community ranking (application 2, §5 Eq. 19): rank
/// communities by their probability of diffusing information about a query
///   p(s=1 | c, q) ∝ sum_z sum_c' eta_{c,c',z} theta_{c',z} prod_{w in q}
///   phi_{z,w},
/// e.g. "which communities should a campaign target for query iPhone".

#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "text/vocabulary.h"

namespace cpd {

/// One ranked community with its query-conditional topic distribution
/// (Table 6's last column).
struct RankedCommunity {
  int community = -1;
  double score = 0.0;
  std::vector<double> topic_distribution;  ///< p(z | q, c), normalized.
};

class CommunityRanker {
 public:
  explicit CommunityRanker(const CpdModel& model);

  /// Ranks all communities for a query of word ids (Eq. 19). Unknown words
  /// must be filtered by the caller (see ParseQuery).
  std::vector<RankedCommunity> Rank(std::span<const WordId> query) const;

  /// Tokenizes a free-text query against the vocabulary; silently drops
  /// out-of-vocabulary terms.
  static std::vector<WordId> ParseQuery(const Vocabulary& vocabulary,
                                        const std::string& text);

  /// Users assigned to each community by top-k membership (the paper's
  /// top-5 convention for ranking/conductance evaluation).
  static std::vector<std::vector<UserId>> CommunityUserSets(const CpdModel& model,
                                                            int top_k = 5);

 private:
  const CpdModel& model_;
};

}  // namespace cpd

#endif  // CPD_APPS_COMMUNITY_RANKING_H_
