#ifndef CPD_APPS_COMMUNITY_RANKING_H_
#define CPD_APPS_COMMUNITY_RANKING_H_

/// \file community_ranking.h
/// Profile-driven community ranking (application 2, §5 Eq. 19): rank
/// communities by their probability of diffusing information about a query
///   p(s=1 | c, q) ∝ sum_z sum_c' eta_{c,c',z} theta_{c',z} prod_{w in q}
///   phi_{z,w},
/// e.g. "which communities should a campaign target for query iPhone".
///
/// Thin adapter over serve::QueryEngine — the ranking math lives in
/// QueryEngine::RankCommunities so the offline app and the serving path
/// cannot diverge; this class keeps the historical convenience surface
/// (free-text query parsing, per-community user sets).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "text/vocabulary.h"

namespace cpd {

/// One ranked community with its query-conditional topic distribution
/// (Table 6's last column).
struct RankedCommunity {
  int community = -1;
  double score = 0.0;
  std::vector<double> topic_distribution;  ///< p(z | q, c), normalized.
};

class CommunityRanker {
 public:
  /// Builds a private ProfileIndex from the model (the model may be
  /// discarded afterwards).
  explicit CommunityRanker(const CpdModel& model);

  /// Serves from an existing index; it must outlive the ranker.
  explicit CommunityRanker(const serve::ProfileIndex& index);

  /// Non-copyable/movable: engine_ references the (possibly owned) index,
  /// so an implicit copy would dangle into the source object.
  CommunityRanker(const CommunityRanker&) = delete;
  CommunityRanker& operator=(const CommunityRanker&) = delete;

  /// Ranks all communities for a query of word ids (Eq. 19). Unknown words
  /// must be filtered by the caller (see ParseQuery).
  std::vector<RankedCommunity> Rank(std::span<const WordId> query) const;

  /// Tokenizes a free-text query against the vocabulary; silently drops
  /// out-of-vocabulary terms.
  static std::vector<WordId> ParseQuery(const Vocabulary& vocabulary,
                                        const std::string& text);

  /// Users assigned to each community by top-k membership (the paper's
  /// top-5 convention for ranking/conductance evaluation).
  static std::vector<std::vector<UserId>> CommunityUserSets(const CpdModel& model,
                                                            int top_k = 5);

 private:
  std::optional<serve::ProfileIndex> owned_index_;
  const serve::ProfileIndex* index_;
  serve::QueryEngine engine_;
};

}  // namespace cpd

#endif  // CPD_APPS_COMMUNITY_RANKING_H_
