#include "parallel/shard_executor.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

#include "parallel/thread_pool.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cpd {

namespace {

/// Shared machinery of both executors. A "slot" is one reusable working set
/// (private ModelState + sampler bound to it); a shard checks one out for
/// the duration of its sweep and fully restores it from the snapshot first,
/// so slot identity never affects results. The serial executor keeps a
/// single slot; the pooled executor keeps one per pool *worker* (at most
/// num_threads shards run concurrently, so memory scales with threads, not
/// shards). RNG streams attach to *shards* (split in shard order from the
/// config seed), which is what makes serial and pooled dispatch
/// bit-identical.
class ShardExecutorBase : public ShardExecutor {
 public:
  ShardExecutorBase(const SocialGraph& graph, const CpdConfig& config,
                    const LinkCaches& caches, ThreadPlan plan,
                    size_t max_concurrency)
      : graph_(graph), config_(config), plan_(std::move(plan)) {
    const size_t shards = plan_.users_per_thread.size();
    CPD_CHECK_GE(shards, 1u);
    Rng seeder(config_.seed + 7919);
    rngs_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) rngs_.push_back(seeder.Split());
    shard_seconds_.assign(shards, 0.0);
    const size_t num_slots = std::max<size_t>(
        1, std::min(shards, max_concurrency));
    slots_.reserve(num_slots);
    for (size_t i = 0; i < num_slots; ++i) {
      slots_.push_back(std::make_unique<Slot>(graph, config_, caches));
      slots_.back()->sampler.UseExternalSparseTables(&shared_tables_);
    }
  }

  int num_shards() const override {
    return static_cast<int>(plan_.users_per_thread.size());
  }

  Status SampleShards(const StateSnapshot& snapshot, const KernelFlags& flags,
                      std::vector<CounterDelta>* deltas) override {
    CPD_CHECK(snapshot.captured());
    deltas->resize(static_cast<size_t>(num_shards()));
    if (config_.sampler_mode == SamplerMode::kSparse) {
      RebuildSharedTables(snapshot);
    }
    Dispatch([&](int shard) {
      WallTimer timer;
      RunShard(shard, snapshot, flags, &(*deltas)[static_cast<size_t>(shard)]);
      shard_seconds_[static_cast<size_t>(shard)] += timer.ElapsedSeconds();
    });
    return Status::OK();
  }

  Status SweepAugmentation(GibbsSampler* master_sampler) override {
    const size_t nf = graph_.num_friendship_links();
    const size_t ne = graph_.num_diffusion_links();
    const size_t shards = static_cast<size_t>(num_shards());
    Dispatch([&](int shard) {
      WallTimer timer;
      const size_t t = static_cast<size_t>(shard);
      master_sampler->SweepFriendshipAugmentation(
          nf * t / shards, nf * (t + 1) / shards, &rngs_[t]);
      master_sampler->SweepDiffusionAugmentation(
          ne * t / shards, ne * (t + 1) / shards, &rngs_[t]);
      shard_seconds_[t] += timer.ElapsedSeconds();
    });
    return Status::OK();
  }

  const std::vector<double>& shard_seconds() const override {
    return shard_seconds_;
  }
  void ResetTimings() override {
    shard_seconds_.assign(shard_seconds_.size(), 0.0);
  }

  CollapseCacheStats ConsumeCollapseCacheStats() override {
    CollapseCacheStats total;
    for (const auto& slot : slots_) {
      const CollapseCacheStats s = slot->sampler.collapse_cache_stats();
      total.hits += s.hits;
      total.misses += s.misses;
      slot->sampler.ResetCollapseCacheStats();
    }
    return total;
  }

  MhStats ConsumeMhStats() override {
    MhStats total;
    for (const auto& slot : slots_) {
      const MhStats s = slot->sampler.mh_stats();
      total.topic_proposals += s.topic_proposals;
      total.topic_accepts += s.topic_accepts;
      total.community_proposals += s.community_proposals;
      total.community_accepts += s.community_accepts;
      slot->sampler.ResetMhStats();
    }
    return total;
  }

 protected:
  struct Slot {
    Slot(const SocialGraph& graph, const CpdConfig& config,
         const LinkCaches& caches)
        : working(graph, config), sampler(graph, config, caches, &working) {}
    ModelState working;
    GibbsSampler sampler;
    /// Last StateSnapshot::parameters_version() restored into `working`;
    /// lets RunShard skip the O(|C|^2 |Z|) parameter copy within an E-step
    /// (eta/weights/popularity only change in the M-step).
    uint64_t params_version = 0;
  };

  /// Runs fn(shard) for every shard. At most `max_concurrency` invocations
  /// may be in flight at once (that bound sizes the slot pool).
  virtual void Dispatch(const std::function<void(int)>& fn) = 0;

  /// Exclusive checkout of a working set for one shard's sweep. Acquire
  /// never blocks: the dispatch concurrency bound guarantees a free slot.
  virtual Slot* AcquireSlot() = 0;
  virtual void ReleaseSlot(Slot* slot) = 0;

  /// Rebuilds the shared stale proposal tables straight from the snapshot
  /// counts (no working state needs to be materialized for this).
  virtual void RebuildSharedTables(const StateSnapshot& snapshot) {
    shared_tables_.Rebuild(snapshot, nullptr);
  }

  void RunShard(int shard, const StateSnapshot& snapshot,
                const KernelFlags& flags, CounterDelta* delta) {
    delta->Clear();
    const std::vector<UserId>& users =
        plan_.users_per_thread[static_cast<size_t>(shard)];
    if (users.empty()) return;
    Slot* slot = AcquireSlot();
    snapshot.RestoreSweepStateTo(&slot->working);
    if (slot->params_version != snapshot.parameters_version()) {
      snapshot.RestoreParametersTo(&slot->working);
      slot->params_version = snapshot.parameters_version();
    }
    slot->sampler.set_freeze_communities(flags.freeze_communities);
    slot->sampler.set_community_uses_content(flags.community_uses_content);
    slot->sampler.set_community_uses_diffusion(flags.community_uses_diffusion);
    slot->sampler.SweepUsers(users, /*concurrent=*/false,
                             &rngs_[static_cast<size_t>(shard)]);
    for (UserId u : users) {
      for (DocId d : graph_.DocumentsOf(u)) {
        const size_t di = static_cast<size_t>(d);
        delta->RecordMove(graph_.document(d), d, snapshot.CommunityOf(d),
                          snapshot.TopicOf(d), slot->working.doc_community[di],
                          slot->working.doc_topic[di], config_.num_communities,
                          config_.num_topics, slot->working.vocab_size);
      }
    }
    ReleaseSlot(slot);
  }

  const SocialGraph& graph_;
  const CpdConfig config_;  ///< By value: slot samplers keep references.
  const ThreadPlan plan_;
  SparseSamplerTables shared_tables_;
  std::vector<Rng> rngs_;             ///< One stream per shard.
  std::vector<double> shard_seconds_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

class SerialExecutor final : public ShardExecutorBase {
 public:
  SerialExecutor(const SocialGraph& graph, const CpdConfig& config,
                 const LinkCaches& caches, ThreadPlan plan)
      : ShardExecutorBase(graph, config, caches, std::move(plan),
                          /*max_concurrency=*/1) {}

  const char* name() const override { return "serial"; }

 protected:
  void Dispatch(const std::function<void(int)>& fn) override {
    for (int s = 0; s < num_shards(); ++s) fn(s);
  }
  Slot* AcquireSlot() override { return slots_[0].get(); }
  void ReleaseSlot(Slot* /*slot*/) override {}
};

class PooledExecutor final : public ShardExecutorBase {
 public:
  PooledExecutor(const SocialGraph& graph, const CpdConfig& config,
                 const LinkCaches& caches, ThreadPlan plan)
      : ShardExecutorBase(
            graph, config, caches, std::move(plan),
            /*max_concurrency=*/static_cast<size_t>(
                std::max(1, config.num_threads))),
        pool_(static_cast<size_t>(std::max(1, config.num_threads))) {
    free_slots_.reserve(slots_.size());
    for (const auto& slot : slots_) free_slots_.push_back(slot.get());
  }

  const char* name() const override { return "pooled"; }

 protected:
  void Dispatch(const std::function<void(int)>& fn) override {
    for (int s = 0; s < num_shards(); ++s) {
      pool_.Submit([&fn, s] { fn(s); });
    }
    pool_.WaitAll();
  }
  // The pool runs at most num_threads tasks at once, so the free list can
  // never be empty at acquire time.
  Slot* AcquireSlot() override {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    CPD_CHECK(!free_slots_.empty());
    Slot* slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  void ReleaseSlot(Slot* slot) override {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    free_slots_.push_back(slot);
  }
  void RebuildSharedTables(const StateSnapshot& snapshot) override {
    shared_tables_.Rebuild(snapshot, &pool_);
  }

 private:
  ThreadPool pool_;
  std::mutex slot_mutex_;
  std::vector<Slot*> free_slots_;
};

}  // namespace

std::unique_ptr<ShardExecutor> MakeShardExecutor(const SocialGraph& graph,
                                                 const CpdConfig& config,
                                                 const LinkCaches& caches,
                                                 ThreadPlan plan) {
  switch (config.ResolvedExecutorMode()) {
    case ExecutorMode::kPooled:
      return std::make_unique<PooledExecutor>(graph, config, caches,
                                              std::move(plan));
    case ExecutorMode::kDistributed:
      // Built through MakeDistributedExecutor (src/dist) — it can fail, so
      // it returns StatusOr and cannot hide behind this factory.
      CPD_CHECK(false);
      break;
    case ExecutorMode::kAuto:
    case ExecutorMode::kSerial:
      break;
  }
  return std::make_unique<SerialExecutor>(graph, config, caches,
                                          std::move(plan));
}

}  // namespace cpd
