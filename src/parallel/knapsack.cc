#include "parallel/knapsack.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

std::vector<size_t> SolveKnapsack01(const std::vector<double>& weights,
                                    double capacity, int resolution) {
  CPD_CHECK_GT(resolution, 0);
  if (weights.empty() || capacity <= 0.0) return {};

  // Discretize weights onto [0, resolution] buckets of the capacity.
  // Round-to-nearest: the packed total can exceed the capacity by at most
  // half a bucket per item (capacity / (2 * resolution) each), which the
  // caller's leftover pass absorbs; rounding up instead would reject exact
  // fits like {6, 4} against capacity 10.
  const double scale = static_cast<double>(resolution) / capacity;
  const size_t n = weights.size();
  std::vector<int> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    CPD_CHECK_GE(weights[i], 0.0);
    scaled[i] = static_cast<int>(std::llround(weights[i] * scale));
  }

  // dp[w] = best total real weight achievable with discretized weight
  // exactly <= w; choice[i][w] tracks whether item i was taken.
  const int cap = resolution;
  std::vector<double> dp(static_cast<size_t>(cap) + 1, 0.0);
  std::vector<std::vector<bool>> taken(
      n, std::vector<bool>(static_cast<size_t>(cap) + 1, false));
  for (size_t i = 0; i < n; ++i) {
    if (scaled[i] > cap) continue;
    for (int w = cap; w >= scaled[i]; --w) {
      const double candidate =
          dp[static_cast<size_t>(w - scaled[i])] + weights[i];
      if (candidate > dp[static_cast<size_t>(w)]) {
        dp[static_cast<size_t>(w)] = candidate;
        taken[i][static_cast<size_t>(w)] = true;
      }
    }
  }

  // Backtrack from the best bucket.
  int w = cap;
  std::vector<size_t> chosen;
  for (size_t ri = n; ri-- > 0;) {
    if (w >= scaled[ri] && taken[ri][static_cast<size_t>(w)]) {
      chosen.push_back(ri);
      w -= scaled[ri];
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return chosen;
}

double SegmentAllocation::Imbalance() const {
  if (thread_workload.empty()) return 1.0;
  const double mean = Mean(thread_workload);
  if (mean <= 0.0) return 1.0;
  const double max_load =
      *std::max_element(thread_workload.begin(), thread_workload.end());
  return max_load / mean;
}

SegmentAllocation AllocateSegmentsKnapsack(const std::vector<double>& workloads,
                                           int num_threads) {
  CPD_CHECK_GT(num_threads, 0);
  SegmentAllocation result;
  result.thread_of_segment.assign(workloads.size(), -1);
  result.thread_workload.assign(static_cast<size_t>(num_threads), 0.0);

  const double total = StableSum(workloads);
  const double capacity = total / static_cast<double>(num_threads);

  std::vector<size_t> remaining(workloads.size());
  std::iota(remaining.begin(), remaining.end(), size_t{0});

  for (int t = 0; t < num_threads && !remaining.empty(); ++t) {
    std::vector<double> pool;
    pool.reserve(remaining.size());
    for (size_t idx : remaining) pool.push_back(workloads[idx]);
    const std::vector<size_t> chosen = SolveKnapsack01(pool, capacity);

    std::vector<bool> is_chosen(remaining.size(), false);
    for (size_t local : chosen) {
      is_chosen[local] = true;
      const size_t segment = remaining[local];
      result.thread_of_segment[segment] = t;
      result.thread_workload[static_cast<size_t>(t)] += workloads[segment];
    }
    std::vector<size_t> next;
    next.reserve(remaining.size() - chosen.size());
    for (size_t local = 0; local < remaining.size(); ++local) {
      if (!is_chosen[local]) next.push_back(remaining[local]);
    }
    remaining = std::move(next);
  }

  // Leftovers (knapsack capacity rounding): least-loaded thread first.
  for (size_t segment : remaining) {
    const size_t t = static_cast<size_t>(
        std::distance(result.thread_workload.begin(),
                      std::min_element(result.thread_workload.begin(),
                                       result.thread_workload.end())));
    result.thread_of_segment[segment] = static_cast<int>(t);
    result.thread_workload[t] += workloads[segment];
  }
  return result;
}

SegmentAllocation AllocateSegmentsGreedy(const std::vector<double>& workloads,
                                         int num_threads) {
  CPD_CHECK_GT(num_threads, 0);
  SegmentAllocation result;
  result.thread_of_segment.assign(workloads.size(), -1);
  result.thread_workload.assign(static_cast<size_t>(num_threads), 0.0);

  std::vector<size_t> order(workloads.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&workloads](size_t a, size_t b) {
    return workloads[a] > workloads[b];
  });
  for (size_t segment : order) {
    const size_t t = static_cast<size_t>(
        std::distance(result.thread_workload.begin(),
                      std::min_element(result.thread_workload.begin(),
                                       result.thread_workload.end())));
    result.thread_of_segment[segment] = static_cast<int>(t);
    result.thread_workload[t] += workloads[segment];
  }
  return result;
}

}  // namespace cpd
