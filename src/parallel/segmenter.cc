#include "parallel/segmenter.h"

#include "topic/lda.h"
#include "util/logging.h"

namespace cpd {

double EstimateUserWorkload(const SocialGraph& graph, UserId u,
                            const WorkloadCostModel& cost) {
  double workload = 0.0;
  const auto docs = graph.DocumentsOf(u);
  const double friend_degree =
      static_cast<double>(graph.FriendNeighbors(u).size());
  for (DocId d : docs) {
    const Document& doc = graph.document(d);
    workload += cost.per_document;
    workload += cost.per_word * static_cast<double>(doc.words.size());
    // Every document sweep touches the user's friendship links (Eq. 14)...
    workload += cost.per_friend_link * friend_degree;
    // ...and the diffusion links incident to the document (Eqs. 13-14).
    workload += cost.per_diffusion_link *
                static_cast<double>(graph.DiffusionNeighbors(d).size());
  }
  return workload;
}

StatusOr<std::vector<DataSegment>> SegmentUsersByTopic(
    const SocialGraph& graph, int num_segments, const WorkloadCostModel& cost,
    int lda_iterations, uint64_t seed) {
  if (num_segments < 1) {
    return Status::InvalidArgument("num_segments < 1");
  }
  LdaConfig lda_config;
  lda_config.num_topics = num_segments;
  lda_config.iterations = lda_iterations;
  lda_config.seed = seed;
  auto lda = LdaModel::Train(graph.corpus(), lda_config);
  if (!lda.ok()) return lda.status();

  std::vector<DataSegment> segments(static_cast<size_t>(num_segments));
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const UserId user = static_cast<UserId>(u);
    const int segment = lda->DominantTopicOfUser(graph.corpus(), user);
    CPD_DCHECK(segment >= 0 && segment < num_segments);
    segments[static_cast<size_t>(segment)].users.push_back(user);
    segments[static_cast<size_t>(segment)].estimated_workload +=
        EstimateUserWorkload(graph, user, cost);
  }
  return segments;
}

StatusOr<ThreadPlan> PlanThreads(const SocialGraph& graph, int num_segments,
                                 int num_threads, const WorkloadCostModel& cost,
                                 int lda_iterations, uint64_t seed) {
  if (num_threads < 1) return Status::InvalidArgument("num_threads < 1");
  auto segments =
      SegmentUsersByTopic(graph, num_segments, cost, lda_iterations, seed);
  if (!segments.ok()) return segments.status();

  std::vector<double> workloads;
  workloads.reserve(segments->size());
  for (const DataSegment& segment : *segments) {
    workloads.push_back(segment.estimated_workload);
  }

  ThreadPlan plan;
  plan.num_segments = segments->size();
  plan.allocation = AllocateSegmentsKnapsack(workloads, num_threads);
  plan.users_per_thread.assign(static_cast<size_t>(num_threads), {});
  for (size_t s = 0; s < segments->size(); ++s) {
    const int thread = plan.allocation.thread_of_segment[s];
    CPD_CHECK_GE(thread, 0);
    auto& users = plan.users_per_thread[static_cast<size_t>(thread)];
    users.insert(users.end(), (*segments)[s].users.begin(),
                 (*segments)[s].users.end());
  }
  return plan;
}

ThreadPlan TrivialThreadPlan(const SocialGraph& graph,
                             const WorkloadCostModel& cost) {
  ThreadPlan plan;
  plan.num_segments = 1;
  plan.users_per_thread.assign(1, {});
  auto& users = plan.users_per_thread[0];
  users.reserve(graph.num_users());
  double workload = 0.0;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    users.push_back(static_cast<UserId>(u));
    workload += EstimateUserWorkload(graph, static_cast<UserId>(u), cost);
  }
  plan.allocation.thread_of_segment = {0};
  plan.allocation.thread_workload = {workload};
  return plan;
}

}  // namespace cpd
