#ifndef CPD_PARALLEL_SHARD_EXECUTOR_H_
#define CPD_PARALLEL_SHARD_EXECUTOR_H_

/// \file shard_executor.h
/// Dispatch seam of the snapshot/delta E-step (§4.3 refactored): the trainer
/// freezes the master ModelState into a StateSnapshot, hands the executor
/// the snapshot plus kernel flags, and gets back one CounterDelta per shard
/// to merge. Implementations own everything a shard needs — private working
/// ModelStates, per-shard GibbsSamplers and RNG streams, and (in sparse
/// mode) one shared alias-proposal table set rebuilt per sweep — so the
/// kernels never see cross-shard mutation and run without atomics.
///
/// Shards are the ThreadPlan's user lists (LDA segmentation + knapsack
/// allocation, Eq. 17). Because RNG streams attach to shards, not threads,
/// SerialExecutor and PooledExecutor produce bit-identical post-merge
/// counters for the same seed and shard count; a later process or
/// parameter-server executor only has to ship StateSnapshot out and
/// CounterDeltas back — the kernels stay untouched.

#include <memory>
#include <vector>

#include "core/diffusion_features.h"
#include "core/gibbs_sampler.h"
#include "core/model_config.h"
#include "core/state_snapshot.h"
#include "graph/social_graph.h"
#include "parallel/segmenter.h"
#include "util/status.h"

namespace cpd::obs {
class TraceRecorder;
}  // namespace cpd::obs

namespace cpd {

/// Kernel switches mirrored from the master sampler into every shard
/// sampler before a sweep (the "no joint modeling" two-phase schedule flips
/// them between EM iterations).
struct KernelFlags {
  bool freeze_communities = false;
  bool community_uses_content = true;
  bool community_uses_diffusion = true;
};

/// Cumulative transport counters of a distributed executor (src/dist), null
/// for in-process executors. Folded into TrainStats after every E-step.
struct DistTransportStats {
  int workers_connected = 0;  ///< Sessions established at startup.
  int workers_lost = 0;       ///< Disconnects + deadline kills since startup.
  int64_t shards_redispatched = 0;
  int64_t sweeps = 0;
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  /// Coordinator-side encode + decode time (snapshot out, deltas in).
  double serialize_seconds = 0.0;
  /// Time the coordinator spent blocked waiting for shard results.
  double wait_seconds = 0.0;
};

class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  virtual int num_shards() const = 0;
  virtual const char* name() const = 0;

  /// Phase 1 of a sweep: every shard restores its private working state
  /// from `snapshot`, sweeps its users with the plain (non-atomic) kernels,
  /// and emits the sparse diff of its moves. `deltas` is resized to
  /// num_shards(); the master state is never touched.
  virtual Status SampleShards(const StateSnapshot& snapshot,
                              const KernelFlags& flags,
                              std::vector<CounterDelta>* deltas) = 0;

  /// Phase 2 of a sweep: Polya-Gamma augmentation, each shard resampling a
  /// disjoint contiguous range of friendship/diffusion links directly on
  /// the master sampler's (already merged) state. Disjoint per-link writes,
  /// so this is race-free without atomics.
  virtual Status SweepAugmentation(GibbsSampler* master_sampler) = 0;

  /// Per-shard wall-clock accumulated since ResetTimings() (Fig. 11 data).
  virtual const std::vector<double>& shard_seconds() const = 0;
  virtual void ResetTimings() = 0;

  /// Sums and clears the collapse-memo counters of every shard sampler.
  virtual CollapseCacheStats ConsumeCollapseCacheStats() = 0;

  /// Sums and clears the MH acceptance counters of every shard sampler (the
  /// trainer folds them into the master sampler so sparse-backend health
  /// stays observable via GibbsSampler::mh_stats()).
  virtual MhStats ConsumeMhStats() = 0;

  /// Cumulative transport counters; non-null only for the distributed
  /// executor.
  virtual const DistTransportStats* transport_stats() const { return nullptr; }

  /// Installs the trainer's trace recorder (null = tracing off, the
  /// default). Executors with per-worker structure (src/dist) emit their
  /// own rows into it; the in-process executors rely on the trainer's
  /// per-sweep spans and ignore it.
  virtual void SetTraceRecorder(obs::TraceRecorder* /*recorder*/) {}
};

/// Builds the executor selected by `config` (ResolvedExecutorMode) over the
/// given shard plan: kSerial loops shards in order on the calling thread,
/// kPooled fans them out over `config.num_threads` workers.
std::unique_ptr<ShardExecutor> MakeShardExecutor(const SocialGraph& graph,
                                                 const CpdConfig& config,
                                                 const LinkCaches& caches,
                                                 ThreadPlan plan);

}  // namespace cpd

#endif  // CPD_PARALLEL_SHARD_EXECUTOR_H_
