#include "parallel/thread_pool.h"

#include "util/logging.h"

namespace cpd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CPD_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < count; ++i) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->WaitAll();
}

}  // namespace cpd
