#ifndef CPD_PARALLEL_SEGMENTER_H_
#define CPD_PARALLEL_SEGMENTER_H_

/// \file segmenter.h
/// Data segmentation of §4.3: run LDA over all user documents with |Z|
/// topics, then partition users into |Z| segments by each user's most
/// frequent topic. A user's documents (and the links they touch) stay in one
/// segment, reducing conflicting cross-thread updates.

#include <vector>

#include "graph/social_graph.h"
#include "parallel/knapsack.h"
#include "util/status.h"

namespace cpd {

/// One user segment with its estimated workload.
struct DataSegment {
  std::vector<UserId> users;
  double estimated_workload = 0.0;
};

/// Per-item processing-cost estimates (relative units). The trainer measures
/// a serial sweep to calibrate the absolute scale; only ratios matter for
/// allocation.
struct WorkloadCostModel {
  double per_document = 1.0;
  double per_word = 0.1;
  double per_friend_link = 0.5;     ///< Cost per incident friendship link per doc.
  double per_diffusion_link = 2.0;  ///< Cost per incident diffusion link per doc.
};

/// Estimated processing workload of one user under the cost model: her
/// documents, their words, and the links her sampling sweep touches.
double EstimateUserWorkload(const SocialGraph& graph, UserId u,
                            const WorkloadCostModel& cost);

/// Segments users by dominant LDA topic into `num_segments` groups.
/// \param lda_iterations LDA pre-pass Gibbs iterations.
StatusOr<std::vector<DataSegment>> SegmentUsersByTopic(
    const SocialGraph& graph, int num_segments, const WorkloadCostModel& cost,
    int lda_iterations = 20, uint64_t seed = 11);

/// Convenience: segment, then allocate to threads via the knapsack
/// allocator (Eq. 17). Returns per-thread user lists plus the allocation.
struct ThreadPlan {
  std::vector<std::vector<UserId>> users_per_thread;
  SegmentAllocation allocation;
  size_t num_segments = 0;
};

StatusOr<ThreadPlan> PlanThreads(const SocialGraph& graph, int num_segments,
                                 int num_threads, const WorkloadCostModel& cost,
                                 int lda_iterations = 20, uint64_t seed = 11);

/// Degenerate one-shard plan: every user in graph order, no LDA pre-pass.
/// Used for single-shard (serial-equivalent) E-steps, which reproduce
/// sequential collapsed Gibbs exactly and should not pay segmentation cost.
ThreadPlan TrivialThreadPlan(const SocialGraph& graph,
                             const WorkloadCostModel& cost);

}  // namespace cpd

#endif  // CPD_PARALLEL_SEGMENTER_H_
