#ifndef CPD_PARALLEL_KNAPSACK_H_
#define CPD_PARALLEL_KNAPSACK_H_

/// \file knapsack.h
/// Workload balancing of §4.3: distributing |Z| data segments to M threads
/// by solving M standard 0-1 knapsack problems (Eq. 17) — each thread picks
/// a subset of the remaining segments whose total estimated workload is as
/// close to O/M as possible. A greedy LPT allocator is provided as a
/// baseline/fallback.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cpd {

/// Exact 0-1 knapsack by dynamic programming on discretized weights.
/// Maximizes total weight subject to total weight <= capacity. Items have
/// value == weight (Eq. 17). Returns chosen item indices.
/// \param resolution Number of DP buckets the capacity is split into
///        (time/accuracy trade-off).
std::vector<size_t> SolveKnapsack01(const std::vector<double>& weights,
                                    double capacity, int resolution = 4096);

/// Allocation result: segment -> thread, plus per-thread workload sums.
struct SegmentAllocation {
  std::vector<int> thread_of_segment;
  std::vector<double> thread_workload;

  /// max workload / mean workload (1.0 = perfectly balanced).
  double Imbalance() const;
};

/// The paper's allocator: repeatedly solve a 0-1 knapsack with capacity
/// O/M over the remaining segments (Eq. 17); leftovers after the M rounds
/// are placed greedily on the least-loaded thread.
SegmentAllocation AllocateSegmentsKnapsack(const std::vector<double>& workloads,
                                           int num_threads);

/// Greedy longest-processing-time-first baseline.
SegmentAllocation AllocateSegmentsGreedy(const std::vector<double>& workloads,
                                         int num_threads);

}  // namespace cpd

#endif  // CPD_PARALLEL_KNAPSACK_H_
