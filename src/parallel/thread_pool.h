#ifndef CPD_PARALLEL_THREAD_POOL_H_
#define CPD_PARALLEL_THREAD_POOL_H_

/// \file thread_pool.h
/// Minimal persistent worker pool. The parallel E-step (§4.3) submits one
/// task per data-segment batch and blocks until the batch drains.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpd {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitAll();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool, blocking until done.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace cpd

#endif  // CPD_PARALLEL_THREAD_POOL_H_
