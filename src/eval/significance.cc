#include "eval/significance.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

namespace {

// Lentz's continued-fraction evaluation for the incomplete beta function.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-30;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = static_cast<double>(m) * (b - m) * x /
                ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  CPD_CHECK(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                           a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(log_front);
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, int dof) {
  CPD_CHECK_GT(dof, 0);
  const double v = static_cast<double>(dof);
  const double x = v / (v + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(v / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

TTestResult PairedTTestGreater(std::span<const double> a,
                               std::span<const double> b) {
  CPD_CHECK_EQ(a.size(), b.size());
  CPD_CHECK_GE(a.size(), 2u);
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double mean = Mean(diff);
  const double sd = StdDev(diff);
  TTestResult result;
  result.degrees_of_freedom = static_cast<int>(a.size()) - 1;
  if (sd == 0.0) {
    result.t_statistic = mean > 0.0 ? 1e30 : (mean < 0.0 ? -1e30 : 0.0);
    result.p_value = mean > 0.0 ? 0.0 : 1.0;
    return result;
  }
  result.t_statistic =
      mean / (sd / std::sqrt(static_cast<double>(a.size())));
  result.p_value = 1.0 - StudentTCdf(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace cpd
