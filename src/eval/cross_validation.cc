#include "eval/cross_validation.h"

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace cpd {

LinkFolds AssignLinkFolds(const SocialGraph& graph, int num_folds, Rng* rng) {
  CPD_CHECK_GT(num_folds, 1);
  LinkFolds folds;
  folds.num_folds = num_folds;
  folds.friendship_fold.resize(graph.num_friendship_links());
  for (int& fold : folds.friendship_fold) {
    fold = static_cast<int>(rng->NextUint64(static_cast<uint64_t>(num_folds)));
  }
  folds.diffusion_fold.resize(graph.num_diffusion_links());
  for (int& fold : folds.diffusion_fold) {
    fold = static_cast<int>(rng->NextUint64(static_cast<uint64_t>(num_folds)));
  }
  return folds;
}

StatusOr<FoldData> BuildFold(const SocialGraph& graph, const LinkFolds& folds,
                             int fold) {
  CPD_CHECK(fold >= 0 && fold < folds.num_folds);
  CPD_CHECK_EQ(folds.friendship_fold.size(), graph.num_friendship_links());
  CPD_CHECK_EQ(folds.diffusion_fold.size(), graph.num_diffusion_links());

  GraphBuilder builder;
  builder.SetNumUsers(graph.num_users());
  builder.SetVocabulary(graph.corpus().vocabulary());
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    const DocId added = builder.AddTokenizedDocument(doc.user, doc.time, doc.words);
    CPD_CHECK_EQ(added, static_cast<DocId>(d));
  }

  FoldData data;
  const auto& flinks = graph.friendship_links();
  for (size_t f = 0; f < flinks.size(); ++f) {
    if (folds.friendship_fold[f] == fold) {
      data.heldout_friendship.push_back(flinks[f]);
    } else {
      builder.AddFriendship(flinks[f].u, flinks[f].v);
    }
  }
  const auto& elinks = graph.diffusion_links();
  for (size_t e = 0; e < elinks.size(); ++e) {
    if (folds.diffusion_fold[e] == fold) {
      data.heldout_diffusion.push_back(elinks[e]);
    } else {
      builder.AddDiffusion(elinks[e].i, elinks[e].j, elinks[e].time);
    }
  }

  auto built = builder.Build(/*drop_isolated_users=*/false);
  if (!built.ok()) return built.status();
  data.train_graph = std::move(*built);
  return data;
}

}  // namespace cpd
