#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

double ComputeAuc(std::span<const double> positive_scores,
                  std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Rank-sum formulation with midranks for ties.
  struct Entry {
    double score;
    bool positive;
  };
  std::vector<Entry> entries;
  entries.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) entries.push_back({s, true});
  for (double s : negative_scores) entries.push_back({s, false});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.score < b.score; });

  double rank_sum_positive = 0.0;
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    while (j < entries.size() && entries[j].score == entries[i].score) ++j;
    // Midrank of the tie group [i, j): ranks are 1-based.
    const double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (entries[k].positive) rank_sum_positive += midrank;
    }
    i = j;
  }
  const double np = static_cast<double>(positive_scores.size());
  const double nn = static_cast<double>(negative_scores.size());
  return (rank_sum_positive - np * (np + 1.0) / 2.0) / (np * nn);
}

double SetConductance(const SocialGraph& graph, std::span<const char> in_set) {
  CPD_CHECK_EQ(in_set.size(), graph.num_users());
  int64_t cut = 0;
  int64_t vol_in = 0;
  int64_t vol_out = 0;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto neighbors = graph.FriendNeighbors(static_cast<UserId>(u));
    const int64_t degree = static_cast<int64_t>(neighbors.size());
    if (in_set[u]) {
      vol_in += degree;
      for (UserId v : neighbors) {
        if (!in_set[static_cast<size_t>(v)]) ++cut;
      }
    } else {
      vol_out += degree;
    }
  }
  const int64_t denom = std::min(vol_in, vol_out);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

double AverageConductance(const SocialGraph& graph,
                          const std::vector<std::vector<double>>& memberships,
                          int top_k) {
  CPD_CHECK_EQ(memberships.size(), graph.num_users());
  if (memberships.empty()) return 1.0;
  const size_t num_communities = memberships.front().size();
  std::vector<std::vector<char>> in_set(num_communities,
                                        std::vector<char>(graph.num_users(), 0));
  for (size_t u = 0; u < graph.num_users(); ++u) {
    for (size_t c : TopKIndices(memberships[u], static_cast<size_t>(top_k))) {
      in_set[c][u] = 1;
    }
  }
  double total = 0.0;
  size_t counted = 0;
  for (size_t c = 0; c < num_communities; ++c) {
    bool non_empty = false;
    for (char flag : in_set[c]) {
      if (flag) {
        non_empty = true;
        break;
      }
    }
    if (!non_empty) continue;
    total += SetConductance(graph, in_set[c]);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 1.0;
}

std::vector<RankingPoint> EvaluateRanking(
    const std::vector<int>& ranked_communities,
    const std::vector<std::vector<UserId>>& community_users,
    const std::vector<char>& relevant_users, int max_k) {
  size_t num_relevant = 0;
  for (char flag : relevant_users) {
    if (flag) ++num_relevant;
  }
  std::vector<RankingPoint> points;
  points.reserve(static_cast<size_t>(max_k));
  std::vector<char> covered(relevant_users.size(), 0);
  size_t covered_users = 0;
  size_t covered_relevant = 0;
  for (int k = 0; k < max_k; ++k) {
    if (k < static_cast<int>(ranked_communities.size())) {
      const int c = ranked_communities[static_cast<size_t>(k)];
      for (UserId u : community_users[static_cast<size_t>(c)]) {
        if (!covered[static_cast<size_t>(u)]) {
          covered[static_cast<size_t>(u)] = 1;
          ++covered_users;
          if (relevant_users[static_cast<size_t>(u)]) ++covered_relevant;
        }
      }
    }
    RankingPoint point;
    point.precision = covered_users > 0 ? static_cast<double>(covered_relevant) /
                                              static_cast<double>(covered_users)
                                        : 0.0;
    point.recall = num_relevant > 0 ? static_cast<double>(covered_relevant) /
                                          static_cast<double>(num_relevant)
                                    : 0.0;
    point.f1 = (point.precision + point.recall) > 0.0
                   ? 2.0 * point.precision * point.recall /
                         (point.precision + point.recall)
                   : 0.0;
    points.push_back(point);
  }
  return points;
}

MeanRankingMetrics AggregateRankings(
    const std::vector<std::vector<RankingPoint>>& per_query_points, int max_k) {
  MeanRankingMetrics metrics;
  metrics.map_at_k.assign(static_cast<size_t>(max_k), 0.0);
  metrics.mar_at_k.assign(static_cast<size_t>(max_k), 0.0);
  metrics.maf_at_k.assign(static_cast<size_t>(max_k), 0.0);
  if (per_query_points.empty()) return metrics;

  const double q_inv = 1.0 / static_cast<double>(per_query_points.size());
  for (int k = 1; k <= max_k; ++k) {
    double map_sum = 0.0;
    double mar_sum = 0.0;
    for (const auto& points : per_query_points) {
      double p_sum = 0.0;
      double r_sum = 0.0;
      for (int i = 0; i < k && i < static_cast<int>(points.size()); ++i) {
        p_sum += points[static_cast<size_t>(i)].precision;
        r_sum += points[static_cast<size_t>(i)].recall;
      }
      map_sum += p_sum / static_cast<double>(k);
      mar_sum += r_sum / static_cast<double>(k);
    }
    const double map_k = map_sum * q_inv;
    const double mar_k = mar_sum * q_inv;
    metrics.map_at_k[static_cast<size_t>(k - 1)] = map_k;
    metrics.mar_at_k[static_cast<size_t>(k - 1)] = mar_k;
    metrics.maf_at_k[static_cast<size_t>(k - 1)] =
        (map_k + mar_k) > 0.0 ? 2.0 * map_k * mar_k / (map_k + mar_k) : 0.0;
  }
  return metrics;
}

double ContentPerplexity(const SocialGraph& graph, std::span<const DocId> docs,
                         const std::vector<std::vector<double>>& pi,
                         const std::vector<std::vector<double>>& theta,
                         const std::vector<std::vector<double>>& phi) {
  CPD_CHECK(!theta.empty());
  const size_t num_communities = theta.size();
  const size_t num_topics = theta.front().size();
  double log_likelihood = 0.0;
  int64_t tokens = 0;

  // Cache user mixtures over topics: m_u[z] = sum_c pi_{u,c} theta_{c,z}.
  std::unordered_map<UserId, std::vector<double>> user_topic_mix;
  for (DocId d : docs) {
    const Document& doc = graph.document(d);
    auto it = user_topic_mix.find(doc.user);
    if (it == user_topic_mix.end()) {
      std::vector<double> mix(num_topics, 0.0);
      const auto& user_pi = pi[static_cast<size_t>(doc.user)];
      for (size_t c = 0; c < num_communities; ++c) {
        const double weight = user_pi[c];
        if (weight == 0.0) continue;
        for (size_t z = 0; z < num_topics; ++z) mix[z] += weight * theta[c][z];
      }
      it = user_topic_mix.emplace(doc.user, std::move(mix)).first;
    }
    const std::vector<double>& mix = it->second;
    for (WordId w : doc.words) {
      double p = 0.0;
      for (size_t z = 0; z < num_topics; ++z) {
        p += mix[z] * phi[z][static_cast<size_t>(w)];
      }
      log_likelihood += std::log(std::max(p, 1e-300));
      ++tokens;
    }
  }
  if (tokens == 0) return 0.0;
  return std::exp(-log_likelihood / static_cast<double>(tokens));
}

double NormalizedMutualInformation(std::span<const int> labels_a,
                                   std::span<const int> labels_b) {
  CPD_CHECK_EQ(labels_a.size(), labels_b.size());
  const size_t n = labels_a.size();
  if (n == 0) return 0.0;

  std::unordered_map<int, int64_t> count_a, count_b;
  std::unordered_map<int64_t, int64_t> joint;
  for (size_t i = 0; i < n; ++i) {
    ++count_a[labels_a[i]];
    ++count_b[labels_b[i]];
    ++joint[(static_cast<int64_t>(labels_a[i]) << 32) |
            static_cast<uint32_t>(labels_b[i])];
  }
  const double dn = static_cast<double>(n);
  double mi = 0.0;
  for (const auto& [key, count] : joint) {
    const int a = static_cast<int>(key >> 32);
    const int b = static_cast<int>(key & 0xffffffff);
    const double p_ab = static_cast<double>(count) / dn;
    const double p_a = static_cast<double>(count_a[a]) / dn;
    const double p_b = static_cast<double>(count_b[b]) / dn;
    mi += p_ab * std::log(p_ab / (p_a * p_b));
  }
  double h_a = 0.0;
  for (const auto& [label, count] : count_a) {
    (void)label;
    const double p = static_cast<double>(count) / dn;
    h_a -= p * std::log(p);
  }
  double h_b = 0.0;
  for (const auto& [label, count] : count_b) {
    (void)label;
    const double p = static_cast<double>(count) / dn;
    h_b -= p * std::log(p);
  }
  if (h_a <= 0.0 || h_b <= 0.0) return (h_a == h_b) ? 1.0 : 0.0;
  return mi / std::sqrt(h_a * h_b);
}

}  // namespace cpd
