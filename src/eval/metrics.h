#ifndef CPD_EVAL_METRICS_H_
#define CPD_EVAL_METRICS_H_

/// \file metrics.h
/// Evaluation metrics of §6.1: AUC for link/diffusion prediction,
/// conductance for community quality (with the paper's top-5 membership
/// convention), MAP/MAR/MAF@K for profile-driven ranking, perplexity for
/// content profiles, and NMI for recovery against planted ground truth.

#include <span>
#include <vector>

#include "graph/social_graph.h"

namespace cpd {

/// Probability that a random positive outscores a random negative (ties
/// count half). Empty inputs yield 0.5.
double ComputeAuc(std::span<const double> positive_scores,
                  std::span<const double> negative_scores);

/// Conductance of one user set S over the undirected friendship graph:
/// cut(S) / min(vol(S), vol(V\S)); 1.0 when either side has zero volume.
double SetConductance(const SocialGraph& graph, std::span<const char> in_set);

/// Average conductance across communities where each user belongs to her
/// top-k communities (paper follows [17] with k = 5). `memberships[u]` is
/// the user's distribution over communities.
double AverageConductance(const SocialGraph& graph,
                          const std::vector<std::vector<double>>& memberships,
                          int top_k = 5);

/// Precision/recall/F1 of ranked communities for one query (§6.1):
/// P(K,q) = |U*_q cap U_K| / |U_K|, R(K,q) = |U*_q cap U_K| / |U*_q|.
struct RankingPoint {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Evaluates one query's community ranking at every K in [1, max_k].
/// \param ranked_communities Communities in ranked order.
/// \param community_users For each community, its (top-5 assigned) users.
/// \param relevant_users U*_q, users who truly diffuse about the query.
std::vector<RankingPoint> EvaluateRanking(
    const std::vector<int>& ranked_communities,
    const std::vector<std::vector<UserId>>& community_users,
    const std::vector<char>& relevant_users, int max_k);

/// MAP/MAR/MAF@K across queries: MAP@K = mean_q (sum_{i<=K} P(i,q) / K),
/// analogously MAR; MAF = harmonic mean of MAP and MAR (§6.1).
struct MeanRankingMetrics {
  std::vector<double> map_at_k;
  std::vector<double> mar_at_k;
  std::vector<double> maf_at_k;
};

MeanRankingMetrics AggregateRankings(
    const std::vector<std::vector<RankingPoint>>& per_query_points, int max_k);

/// Perplexity of user content under community content profiles:
/// exp(-sum log p(w | u) / N) with p(w|u) = sum_c pi_{u,c} sum_z theta_{c,z}
/// phi_{z,w} (the definition used for Fig. 8, following [17]).
double ContentPerplexity(const SocialGraph& graph, std::span<const DocId> docs,
                         const std::vector<std::vector<double>>& pi,
                         const std::vector<std::vector<double>>& theta,
                         const std::vector<std::vector<double>>& phi);

/// Normalized mutual information between two hard labelings (planted-truth
/// recovery diagnostic). Returns a value in [0, 1].
double NormalizedMutualInformation(std::span<const int> labels_a,
                                   std::span<const int> labels_b);

}  // namespace cpd

#endif  // CPD_EVAL_METRICS_H_
