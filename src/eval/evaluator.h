#ifndef CPD_EVAL_EVALUATOR_H_
#define CPD_EVAL_EVALUATOR_H_

/// \file evaluator.h
/// Task harnesses shared by CPD and every baseline: friendship link
/// prediction and diffusion link prediction AUC over held-out links with
/// uniformly sampled non-link negatives (one per positive, §6.1).

#include <functional>
#include <span>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace cpd {

/// Scores the likelihood of a (directed) friendship link u -> v.
using FriendshipScorer = std::function<double(UserId u, UserId v)>;

/// Scores the likelihood of document i diffusing document j at time t.
using DiffusionScorer = std::function<double(DocId i, DocId j, int32_t time)>;

/// AUC of the scorer on held-out friendship positives vs sampled negatives.
/// Negatives are user pairs absent from the *full* graph.
double EvaluateFriendshipAuc(const SocialGraph& full_graph,
                             std::span<const FriendshipLink> heldout,
                             const FriendshipScorer& scorer, Rng* rng);

/// AUC of the scorer on held-out diffusion positives vs sampled negatives.
/// Negatives are document pairs (different authors) absent from the full
/// graph; each negative inherits the source document's time bin.
double EvaluateDiffusionAuc(const SocialGraph& full_graph,
                            std::span<const DiffusionLink> heldout,
                            const DiffusionScorer& scorer, Rng* rng);

}  // namespace cpd

#endif  // CPD_EVAL_EVALUATOR_H_
