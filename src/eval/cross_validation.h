#ifndef CPD_EVAL_CROSS_VALIDATION_H_
#define CPD_EVAL_CROSS_VALIDATION_H_

/// \file cross_validation.h
/// 10-fold link holdout for the prediction tasks (§6.1): each fold removes
/// 10% of the friendship links and 10% of the diffusion links from the
/// training graph; AUC is computed on the held-out positives against an
/// equal number of sampled negatives.

#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpd {

/// Random fold assignment for both link types.
struct LinkFolds {
  int num_folds = 10;
  std::vector<int> friendship_fold;  ///< Per friendship-link index.
  std::vector<int> diffusion_fold;   ///< Per diffusion-link index.
};

LinkFolds AssignLinkFolds(const SocialGraph& graph, int num_folds, Rng* rng);

/// One fold's view: the training graph (held-out links removed) plus the
/// held-out links themselves.
struct FoldData {
  SocialGraph train_graph;
  std::vector<FriendshipLink> heldout_friendship;
  std::vector<DiffusionLink> heldout_diffusion;
};

/// Rebuilds the graph without fold `fold`'s links. Documents, users and the
/// vocabulary are preserved verbatim (doc ids are stable because documents
/// are re-added in order).
StatusOr<FoldData> BuildFold(const SocialGraph& graph, const LinkFolds& folds,
                             int fold);

}  // namespace cpd

#endif  // CPD_EVAL_CROSS_VALIDATION_H_
