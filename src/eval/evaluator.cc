#include "eval/evaluator.h"

#include "eval/metrics.h"
#include "util/logging.h"

namespace cpd {

double EvaluateFriendshipAuc(const SocialGraph& full_graph,
                             std::span<const FriendshipLink> heldout,
                             const FriendshipScorer& scorer, Rng* rng) {
  if (heldout.empty()) return 0.5;
  std::vector<double> positives;
  positives.reserve(heldout.size());
  for (const FriendshipLink& link : heldout) {
    positives.push_back(scorer(link.u, link.v));
  }
  std::vector<double> negatives;
  negatives.reserve(heldout.size());
  const size_t num_users = full_graph.num_users();
  CPD_CHECK_GE(num_users, 2u);
  size_t attempts = 0;
  while (negatives.size() < heldout.size() && attempts < heldout.size() * 50) {
    ++attempts;
    const UserId u = static_cast<UserId>(rng->NextUint64(num_users));
    const UserId v = static_cast<UserId>(rng->NextUint64(num_users));
    if (u == v || full_graph.HasFriendship(u, v)) continue;
    negatives.push_back(scorer(u, v));
  }
  return ComputeAuc(positives, negatives);
}

double EvaluateDiffusionAuc(const SocialGraph& full_graph,
                            std::span<const DiffusionLink> heldout,
                            const DiffusionScorer& scorer, Rng* rng) {
  if (heldout.empty()) return 0.5;
  std::vector<double> positives;
  positives.reserve(heldout.size());
  for (const DiffusionLink& link : heldout) {
    positives.push_back(scorer(link.i, link.j, link.time));
  }
  std::vector<double> negatives;
  negatives.reserve(heldout.size());
  const size_t num_docs = full_graph.num_documents();
  CPD_CHECK_GE(num_docs, 2u);
  size_t attempts = 0;
  while (negatives.size() < heldout.size() && attempts < heldout.size() * 50) {
    ++attempts;
    const DocId i = static_cast<DocId>(rng->NextUint64(num_docs));
    const DocId j = static_cast<DocId>(rng->NextUint64(num_docs));
    if (i == j || full_graph.HasDiffusion(i, j)) continue;
    if (full_graph.document(i).user == full_graph.document(j).user) continue;
    negatives.push_back(scorer(i, j, full_graph.document(i).time));
  }
  return ComputeAuc(positives, negatives);
}

}  // namespace cpd
