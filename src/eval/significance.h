#ifndef CPD_EVAL_SIGNIFICANCE_H_
#define CPD_EVAL_SIGNIFICANCE_H_

/// \file significance.h
/// One-tailed paired Student's t-test, used as in the paper to check that
/// CPD's per-fold improvements over a baseline are significant (p < 0.01).

#include <span>

namespace cpd {

/// Result of a paired one-tailed t-test of H1: mean(a - b) > 0.
struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;  ///< One-tailed.
  int degrees_of_freedom = 0;
};

/// Paired test over equal-length samples (e.g. per-fold AUCs). Requires at
/// least two pairs; a zero-variance difference yields p = 0 or 1 by sign.
TTestResult PairedTTestGreater(std::span<const double> a, std::span<const double> b);

/// CDF of Student's t distribution with `dof` degrees of freedom
/// (via the regularized incomplete beta function).
double StudentTCdf(double t, int dof);

/// Regularized incomplete beta function I_x(a, b) (continued fraction).
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace cpd

#endif  // CPD_EVAL_SIGNIFICANCE_H_
