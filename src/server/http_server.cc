#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/clock.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpd::server {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMicros(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

/// Splits "/a/{b}/c" into segments; the leading empty segment is dropped.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments = Split(path, '/', /*skip_empty=*/false);
  if (!segments.empty() && segments.front().empty()) {
    segments.erase(segments.begin());
  }
  // A trailing slash yields a trailing empty segment; treat "/x/" like "/x".
  if (!segments.empty() && segments.back().empty()) segments.pop_back();
  return segments;
}

}  // namespace

StatusOr<IoMode> ParseIoMode(const std::string& text) {
  if (text == "blocking") return IoMode::kBlocking;
  if (text == "epoll") return IoMode::kEpoll;
  return Status::InvalidArgument("unknown io mode '" + text +
                                 "' (expected blocking|epoll)");
}

const char* IoModeName(IoMode mode) {
  return mode == IoMode::kEpoll ? "epoll" : "blocking";
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_inflight < 1) options_.max_inflight = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& method, const std::string& pattern,
                        Handler handler) {
  CPD_CHECK(!running());
  routes_.push_back(
      Route{method, SplitPath(pattern), std::move(handler)});
}

Status HttpServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket failed: %s", strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not a numeric IPv4 host: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        StrFormat("bind to %s:%d failed: %s", options_.host.c_str(),
                  options_.port, strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // The backlog must carry a simultaneous connect storm up to the
  // connection cap (the 256/1024-connection bench levels open everything
  // at once; an overflowed SYN queue costs each victim a 1s retransmit).
  // The kernel clamps to net.core.somaxconn.
  const int backlog =
      std::max(128, options_.io_mode == IoMode::kEpoll
                        ? options_.max_connections
                        : options_.threads);
  if (::listen(listen_fd_, backlog) != 0) {
    const Status status =
        Status::IOError(StrFormat("listen failed: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(options_.threads));
  if (options_.io_mode == IoMode::kEpoll) {
    EventLoopOptions loop_options;
    loop_options.max_connections = options_.max_connections;
    loop_options.idle_timeout_ms = options_.idle_timeout_ms;
    loop_options.max_head_bytes = options_.max_head_bytes;
    loop_options.max_body_bytes = options_.max_body_bytes;
    event_loop_ = std::make_unique<EventLoop>(
        listen_fd_, loop_options, static_cast<EventLoopHandler*>(this));
    Status started = event_loop_->Start();
    if (!started.ok()) {
      event_loop_.reset();
      pool_.reset();
      running_.store(false, std::memory_order_release);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return started;
    }
  } else {
    listener_ = std::thread([this] { ListenerLoop(); });
  }
  CPD_LOG(Info) << "cpd_serve listening on " << options_.host << ":" << port_
                << " (" << IoModeName(options_.io_mode) << " io, "
                << options_.threads << " workers, max_inflight "
                << options_.max_inflight << ")";
  return Status::OK();
}

void HttpServer::ListenerLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Poll with a timeout so Stop() is noticed without racing on the fd.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.idle_timeout_ms > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.idle_timeout_ms / 1000;
      timeout.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    }

    // Bounded accept: every worker runs one connection, so a full worker
    // set means new connections would queue unboundedly behind the pool.
    // Shed them here with the same 429 the request path uses.
    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.size() <
          static_cast<size_t>(options_.threads)) {
        connections_.insert(fd);
        accepted = true;
      }
    }
    if (!accepted) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      HttpStream stream(fd);
      stream.WriteAll(
          SerializeResponse(Render429(), /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this, fd] { ConnectionLoop(fd); });
  }
}

void HttpServer::ConnectionLoop(int fd) {
  HttpStream stream(fd);
  while (true) {
    auto request = stream.ReadRequest(options_.max_head_bytes,
                                      options_.max_body_bytes);
    const int64_t received_us = obs::NowMicros();
    if (!request.ok()) {
      // Clean close / idle timeout / shutdown end the connection silently;
      // malformed framing gets its 4xx envelope before closing. The parser
      // picks the status (400 malformed, 431/413 over a cap); a mid-message
      // peer close has no parser verdict and renders as a 400.
      int http_status = stream.last_error_http_status();
      if (http_status == 0 &&
          request.status().code() == StatusCode::kInvalidArgument) {
        http_status = 400;
      }
      if (http_status != 0) {
        const HttpResponse response =
            MakeErrorResponse(http_status, request.status());
        CountResponse(response.status);
        stream.WriteAll(SerializeResponse(response, /*keep_alive=*/false));
      }
      break;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    // Blocking mode has no dispatch queue: queue_wait is read-to-dispatch
    // and ~0, recorded anyway so the stage's sample count matches the
    // request count in both io modes.
    request->timing.queue_us =
        static_cast<double>(obs::NowMicros() - received_us);
    RecordStage("queue_wait", request->timing.queue_us);
    const HttpResponse response = Dispatch(&*request);
    CountResponse(response.status);

    // Drain the connection after this response when shutting down or the
    // client's version/Connection header asks to close.
    const bool keep_alive =
        !stopping_.load(std::memory_order_acquire) && request->KeepAlive();
    LogRequest(*request, response,
               static_cast<double>(obs::NowMicros() - received_us));
    const int64_t write_start_us = obs::NowMicros();
    const bool write_ok =
        stream.WriteAll(SerializeResponse(response, keep_alive)).ok();
    if (write_ok) {
      RecordStage("write",
                  static_cast<double>(obs::NowMicros() - write_start_us));
    }
    if (!write_ok || !keep_alive) break;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.erase(fd);
  }
  connections_drained_.notify_all();
  ::close(fd);
}

HttpResponse HttpServer::Render429() const {
  HttpResponse response = MakeErrorResponse(
      429, Status::ResourceExhausted("server overloaded, retry later"),
      /*retry_after_ms=*/options_.retry_after_seconds * 1000);
  response.headers["Retry-After"] =
      std::to_string(options_.retry_after_seconds);
  return response;
}

HttpResponse HttpServer::Dispatch(HttpRequest* request) {
  // Trace id: honor the client's X-Request-Id (bounded — it lands in logs
  // and the echo header), else mint cpd-<n>. Every routed response echoes
  // it; framing errors never reach Dispatch and carry none.
  const std::string& inbound = request->Header("x-request-id");
  request->trace_id =
      inbound.empty()
          ? "cpd-" + std::to_string(
                         next_trace_id_.fetch_add(1, std::memory_order_relaxed))
          : inbound.substr(0, 128);

  // Request-level admission control: a bounded number of requests may
  // execute concurrently; everything beyond it is shed immediately instead
  // of queueing behind slow handlers.
  int inflight = inflight_.load(std::memory_order_relaxed);
  do {
    if (inflight >= options_.max_inflight) {
      rejected_429_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse shed = Render429();
      shed.headers["X-Request-Id"] = request->trace_id;
      return shed;
    }
  } while (!inflight_.compare_exchange_weak(inflight, inflight + 1,
                                            std::memory_order_acq_rel));

  const Clock::time_point start = Clock::now();
  HttpResponse response;
  std::map<std::string, std::string> params;
  const Route* route = MatchRoute(request->method, request->path, &params);
  if (route == nullptr) {
    response = MakeErrorResponse(404, Status::NotFound("no such endpoint"));
  } else {
    // Attach the captures in place: the connection loop owns the request
    // and a copy here would duplicate up to max_body_bytes on every hit.
    request->path_params = std::move(params);
    response = route->handler(*request);
  }
  if (options_.deadline_ms > 0) {
    const double elapsed_ms = ElapsedMicros(start) / 1000.0;
    if (elapsed_ms > options_.deadline_ms) {
      deadline_504_.fetch_add(1, std::memory_order_relaxed);
      response = MakeErrorResponse(
          504, Status::DeadlineExceeded(
                   StrFormat("request exceeded the %d ms deadline",
                             options_.deadline_ms)));
    }
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  response.headers["X-Request-Id"] = request->trace_id;
  return response;
}

const HttpServer::Route* HttpServer::MatchRoute(
    const std::string& method, const std::string& path,
    std::map<std::string, std::string>* params) const {
  const std::vector<std::string> segments = SplitPath(path);
  for (const Route& route : routes_) {
    if (route.method != method) continue;
    if (route.segments.size() != segments.size()) continue;
    bool matched = true;
    std::map<std::string, std::string> captured;
    for (size_t i = 0; i < segments.size(); ++i) {
      const std::string& pattern = route.segments[i];
      if (pattern.size() >= 2 && pattern.front() == '{' &&
          pattern.back() == '}') {
        captured[pattern.substr(1, pattern.size() - 2)] = segments[i];
      } else if (pattern != segments[i]) {
        matched = false;
        break;
      }
    }
    if (matched) {
      *params = std::move(captured);
      return &route;
    }
  }
  return nullptr;
}

void HttpServer::OnRequest(uint64_t token, HttpRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const int64_t received_us = obs::NowMicros();
  // The event loop must never block on a handler: route the request onto a
  // worker and post the response back to the loop when it is ready.
  pool_->Submit([this, token, received_us,
                 request = std::move(request)]() mutable {
    // Queue wait: parsed-on-the-loop to picked-up-by-a-worker.
    request.timing.queue_us =
        static_cast<double>(obs::NowMicros() - received_us);
    RecordStage("queue_wait", request.timing.queue_us);
    const HttpResponse response = Dispatch(&request);
    CountResponse(response.status);
    const bool keep_alive =
        !stopping_.load(std::memory_order_acquire) && request.KeepAlive();
    LogRequest(request, response,
               static_cast<double>(obs::NowMicros() - received_us));
    event_loop_->CompleteRequest(token, response, keep_alive);
  });
}

void HttpServer::OnResponseWritten(double micros) {
  RecordStage("write", micros);
}

void HttpServer::RecordStage(const char* stage, double micros) {
  if (stage_recorder_) stage_recorder_(stage, micros);
}

void HttpServer::LogRequest(const HttpRequest& request,
                            const HttpResponse& response, double total_us) {
  if (options_.log_requests) {
    CPD_LOG(Info) << request.method << " " << request.target << " -> "
                  << response.status << " ("
                  << StrFormat("%.0f", total_us) << " us) ["
                  << request.trace_id << "]";
  }
  if (options_.slow_request_us > 0 &&
      total_us >= static_cast<double>(options_.slow_request_us)) {
    std::string breakdown;
    const auto stage = [&breakdown](const char* name, double value) {
      if (value < 0) return;  // -1 = the stage did not happen.
      breakdown += StrFormat(" %s=%.0fus", name, value);
    };
    stage("queue_wait", request.timing.queue_us);
    stage("parse", request.timing.parse_us);
    stage("batch_wait", request.timing.batch_wait_us);
    stage("scoring", request.timing.scoring_us);
    stage("serialize", request.timing.serialize_us);
    CPD_LOG(Warning) << "slow request [" << request.trace_id << "] "
                     << request.method << " " << request.target << " -> "
                     << response.status << " total="
                     << StrFormat("%.0f", total_us) << "us" << breakdown;
  }
}

HttpResponse HttpServer::OnConnectionShed() {
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
  return Render429();
}

HttpResponse HttpServer::OnFramingError(const Status& error,
                                        int http_status) {
  const HttpResponse response = MakeErrorResponse(http_status, error);
  CountResponse(response.status);
  return response;
}

void HttpServer::OnConnectionAccepted() {
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
}

void HttpServer::CountResponse(int status) {
  if (status < 300) {
    responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status < 500) {
    responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (event_loop_ != nullptr) {
    // Epoll mode: the loop drains (in-flight worker responses still flush
    // through CompleteRequest) before the pool is joined.
    event_loop_->Stop();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    pool_.reset();
    event_loop_.reset();
    CPD_LOG(Info) << "server on port " << port_ << " stopped ("
                  << requests_.load() << " requests served)";
    return;
  }
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Nudge idle connections out of their blocking reads: SHUT_RD makes the
  // pending recv return 0 (a clean end-of-stream) while in-flight handlers
  // keep their write side to finish responding.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    if (!connections_drained_.wait_for(lock, std::chrono::seconds(10), [this] {
          return connections_.empty();
        })) {
      CPD_LOG(Warning) << "forcing " << connections_.size()
                       << " connections closed after drain timeout";
      for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
      connections_drained_.wait(lock, [this] { return connections_.empty(); });
    }
  }
  pool_.reset();  // Joins the workers; all connection loops have returned.
  CPD_LOG(Info) << "server on port " << port_ << " stopped ("
                << requests_.load() << " requests served)";
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses_2xx = responses_2xx_.load(std::memory_order_relaxed);
  stats.responses_4xx = responses_4xx_.load(std::memory_order_relaxed);
  stats.responses_5xx = responses_5xx_.load(std::memory_order_relaxed);
  stats.rejected_429 = rejected_429_.load(std::memory_order_relaxed);
  stats.deadline_504 = deadline_504_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cpd::server
