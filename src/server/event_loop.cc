#include "server/event_loop.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fcntl.h>

#include <cstring>
#include <utility>

#include "obs/clock.h"
#include "util/logging.h"

namespace cpd::server {

namespace {

// epoll user-data tokens for the two non-connection fds. Connection tokens
// start at 1 and count up; the sentinels sit at the top of the space.
constexpr uint64_t kListenToken = ~uint64_t{0};
constexpr uint64_t kWakeToken = ~uint64_t{0} - 1;

constexpr int kEpollTickMs = 50;  // Idle sweep / drain poll cadence.

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

EventLoop::EventLoop(int listen_fd, EventLoopOptions options,
                     EventLoopHandler* handler)
    : listen_fd_(listen_fd), options_(options), handler_(handler) {}

EventLoop::~EventLoop() {
  Stop();
  // The fds stay open across Stop(): a worker may still post a (dropped)
  // completion after the loop thread exits, and Wake() touching a closed
  // eventfd would race. The owner destroys the loop only once no caller
  // can reach CompleteRequest.
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

Status EventLoop::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("event loop already running");
  }
  Status nonblocking = SetNonBlocking(listen_fd_);
  if (!nonblocking.ok()) return nonblocking;

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError("epoll_create1: " +
                           std::string(std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError("eventfd: " + std::string(std::strerror(errno)));
  }

  struct epoll_event event {};
  event.events = EPOLLIN;
  event.data.u64 = kListenToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) < 0) {
    return Status::IOError("epoll_ctl(listen): " +
                           std::string(std::strerror(errno)));
  }
  event.events = EPOLLIN;
  event.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) < 0) {
    return Status::IOError("epoll_ctl(wake): " +
                           std::string(std::strerror(errno)));
  }

  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::CompleteRequest(uint64_t token, HttpResponse response,
                                bool keep_alive) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(
        Completion{token, std::move(response), keep_alive});
  }
  Wake();
}

void EventLoop::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the value is irrelevant.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Loop() {
  bool draining = false;
  constexpr int kMaxEvents = 128;
  struct epoll_event events[kMaxEvents];

  for (;;) {
    const int num_events =
        ::epoll_wait(epoll_fd_, events, kMaxEvents, kEpollTickMs);
    if (num_events < 0) {
      if (errno == EINTR) continue;
      CPD_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }

    DrainCompletions();

    for (int i = 0; i < num_events; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kListenToken) {
        AcceptAll();
        continue;
      }
      if (token == kWakeToken) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(token);
      if (it == connections_.end()) continue;  // Closed earlier this tick.
      Connection* connection = &it->second;
      const uint32_t mask = events[i].events;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        // Peer reset / socket error. If a request is in flight the token
        // must stay valid for its completion, which will observe
        // peer_closed and drop the connection; otherwise close now.
        connection->peer_closed = true;
        if (!connection->in_flight) CloseConnection(token);
        continue;
      }
      if ((mask & EPOLLIN) != 0) {
        HandleReadable(connection);
        it = connections_.find(token);
        if (it == connections_.end()) continue;
        connection = &it->second;
      }
      if ((mask & EPOLLOUT) != 0) HandleWritable(connection);
    }

    const bool stop_requested = stopping_.load(std::memory_order_acquire);
    if (stop_requested && !draining) {
      draining = true;
      drain_deadline_ = Clock::now() + std::chrono::milliseconds(
                                           options_.drain_timeout_ms);
      // Stop accepting: the listener leaves the epoll set; unaccepted
      // backlog entries are reset when the caller closes the fd.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      CloseIdleForDrain();
    }
    if (draining) {
      CloseIdleForDrain();
      if (connections_.empty()) break;
      if (Clock::now() >= drain_deadline_) {
        CPD_LOG(Warning) << "event loop drain timed out with "
                         << connections_.size()
                         << " connection(s); force-closing";
        while (!connections_.empty()) {
          CloseConnection(connections_.begin()->first);
        }
        break;
      }
    } else {
      SweepIdle();
    }
  }

  // Completions posted after the force-close find no connection and are
  // dropped by DrainCompletions on the next Stop(); clear what is queued.
  std::lock_guard<std::mutex> lock(completions_mutex_);
  completions_.clear();
}

void EventLoop::AcceptAll() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient accept error.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (stopping_.load(std::memory_order_acquire) ||
        connections_.size() >=
            static_cast<size_t>(options_.max_connections)) {
      // Same shed the blocking listener performs at its thread cap:
      // best-effort 429, then close.
      const std::string shed =
          SerializeResponse(handler_->OnConnectionShed(), false);
      [[maybe_unused]] ssize_t n =
          ::send(fd, shed.data(), shed.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }

    Status nonblocking = SetNonBlocking(fd);
    if (!nonblocking.ok()) {
      ::close(fd);
      continue;
    }
    handler_->OnConnectionAccepted();
    const uint64_t token = next_token_++;
    auto [it, inserted] =
        connections_.try_emplace(token, fd, token, options_);
    (void)inserted;
    struct epoll_event event {};
    event.events = EPOLLIN;
    event.data.u64 = token;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      ::close(fd);
      connections_.erase(it);
      continue;
    }
    it->second.interest = EPOLLIN;
  }
}

void EventLoop::HandleReadable(Connection* connection) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      connection->last_activity = Clock::now();
      connection->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (!connection->parser.NeedsMore()) break;
      continue;
    }
    if (n == 0) {
      connection->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(connection->token);
    return;
  }
  ProcessParsed(connection);
}

void EventLoop::ProcessParsed(Connection* connection) {
  if (connection->in_flight || !connection->out.empty()) return;

  switch (connection->parser.state()) {
    case RequestParser::State::kComplete: {
      HttpRequest request = connection->parser.TakeRequest();
      connection->in_flight = true;
      connection->last_activity = Clock::now();
      // One request in flight per connection: reads pause until the
      // response is written (responses stay ordered; a pipelining client
      // just sees its later requests answered sequentially).
      SetInterest(connection, 0);
      handler_->OnRequest(connection->token, std::move(request));
      return;
    }
    case RequestParser::State::kError: {
      const HttpResponse response = handler_->OnFramingError(
          connection->parser.error(),
          connection->parser.error_http_status());
      connection->close_after_write = true;
      SetInterest(connection, 0);  // The framing is broken; stop reading.
      QueueWrite(connection, SerializeResponse(response, false));
      return;
    }
    case RequestParser::State::kHead:
    case RequestParser::State::kBody:
      if (connection->peer_closed) {
        if (connection->parser.HasPartialData()) {
          // Mid-message close: answer the malformed framing (parity with
          // the blocking loop's 400) even though the write is best-effort.
          const bool mid_body =
              connection->parser.state() == RequestParser::State::kBody;
          const HttpResponse response = handler_->OnFramingError(
              Status::InvalidArgument(mid_body
                                          ? "connection closed mid-body"
                                          : "connection closed mid-head"),
              400);
          connection->close_after_write = true;
          QueueWrite(connection, SerializeResponse(response, false));
        } else {
          CloseConnection(connection->token);  // Clean end-of-stream.
        }
      }
      return;
  }
}

void EventLoop::QueueWrite(Connection* connection, std::string bytes) {
  if (connection->out.empty()) {
    connection->out = std::move(bytes);
    connection->out_offset = 0;
  } else {
    connection->out.append(bytes);
  }
  FlushWrites(connection);
}

void EventLoop::HandleWritable(Connection* connection) {
  FlushWrites(connection);
}

void EventLoop::FlushWrites(Connection* connection) {
  while (connection->out_offset < connection->out.size()) {
    const ssize_t n = ::send(connection->fd,
                             connection->out.data() + connection->out_offset,
                             connection->out.size() - connection->out_offset,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      connection->out_offset += static_cast<size_t>(n);
      connection->last_activity = Clock::now();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SetInterest(connection, connection->interest | EPOLLOUT);
      return;
    }
    if (errno == EINTR) continue;
    CloseConnection(connection->token);  // Peer gone mid-write.
    return;
  }

  // Fully written.
  connection->out.clear();
  connection->out_offset = 0;
  if (connection->write_start_us >= 0) {
    handler_->OnResponseWritten(static_cast<double>(
        obs::NowMicros() - connection->write_start_us));
    connection->write_start_us = -1;
  }
  if (connection->close_after_write) {
    CloseConnection(connection->token);
    return;
  }
  if (!connection->in_flight) {
    SetInterest(connection, EPOLLIN);
    // Pipelined bytes may already hold the next complete request.
    ProcessParsed(connection);
  }
}

void EventLoop::DrainCompletions() {
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions.swap(completions_);
  }
  for (Completion& completion : completions) {
    auto it = connections_.find(completion.token);
    if (it == connections_.end()) continue;  // Connection died mid-handler.
    Connection* connection = &it->second;
    connection->in_flight = false;
    if (connection->peer_closed && !connection->parser.HasPartialData() &&
        connection->parser.state() != RequestParser::State::kComplete) {
      // Peer reset while the handler ran and left nothing to answer into.
      CloseConnection(completion.token);
      continue;
    }
    if (!completion.keep_alive) connection->close_after_write = true;
    // Only completion responses time the write stage (framing/shed writes
    // do not), matching the blocking path's per-dispatched-request sample.
    connection->write_start_us = obs::NowMicros();
    QueueWrite(connection,
               SerializeResponse(completion.response, completion.keep_alive));
  }
}

void EventLoop::SetInterest(Connection* connection, uint32_t events) {
  if (connection->interest == events) return;
  struct epoll_event event {};
  event.events = events;
  event.data.u64 = connection->token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &event) == 0) {
    connection->interest = events;
  }
}

void EventLoop::CloseConnection(uint64_t token) {
  auto it = connections_.find(token);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  connections_.erase(it);
}

void EventLoop::SweepIdle() {
  if (options_.idle_timeout_ms <= 0) return;
  const auto cutoff =
      Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> idle;
  for (const auto& [token, connection] : connections_) {
    if (!connection.in_flight && connection.out.empty() &&
        connection.last_activity < cutoff) {
      idle.push_back(token);
    }
  }
  for (uint64_t token : idle) CloseConnection(token);
}

void EventLoop::CloseIdleForDrain() {
  // Keep-alive connections with no request in flight and nothing queued to
  // write are closed outright — parity with the blocking path's SHUT_RD
  // nudging idle readers to observe EOF.
  std::vector<uint64_t> idle;
  for (const auto& [token, connection] : connections_) {
    if (!connection.in_flight && connection.out.empty()) {
      idle.push_back(token);
    }
  }
  for (uint64_t token : idle) CloseConnection(token);
}

}  // namespace cpd::server
