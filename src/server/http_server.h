#ifndef CPD_SERVER_HTTP_SERVER_H_
#define CPD_SERVER_HTTP_SERVER_H_

/// \file http_server.h
/// Embedded HTTP/1.1 server with two interchangeable I/O backends behind
/// one routing/admission/deadline layer (`io_mode`):
///
///   - kBlocking: one listener thread accepting into a bounded connection
///     set, worker threads (the existing ThreadPool) running one keep-alive
///     connection loop each. Connection capacity equals the worker count.
///   - kEpoll: a single event-loop thread multiplexes up to
///     `max_connections` non-blocking connections (src/server/event_loop);
///     fully-parsed requests are submitted to the same ThreadPool as work
///     items, and workers post responses back to the loop. Capacity is
///     decoupled from the worker count, which is what lets 256+ mostly-idle
///     keep-alive connections share a handful of workers.
///
/// Both backends frame requests through the same incremental RequestParser
/// and run the same Dispatch(), so responses are byte-identical between io
/// modes (tests/io_mode_differential_test.cc pins this).
///
/// Admission control is two-level and never blocks a client unboundedly:
///   - connection level: over capacity (worker slots in blocking mode,
///     `max_connections` in epoll mode) the accept edge replies
///     429 + Retry-After inline and closes (nothing waits);
///   - request level: at most `max_inflight` requests execute at once;
///     excess requests on live connections get 429 + Retry-After without
///     tying up the handler path.
/// A per-request deadline (`deadline_ms`) turns over-budget handlers into
/// 504s. Stop() is graceful: in-flight requests finish and their responses
/// are written before the workers are joined (the hot-reload test drives
/// traffic through a swap and a drain and expects zero failed requests).
/// Every non-2xx body this layer renders is the unified error envelope
/// (MakeErrorResponse in server/http.h).
///
/// Routing: exact segments or "{param}" captures ("/v1/membership/{user}"),
/// matched per-method; handlers run on worker threads and must be
/// thread-safe. This layer knows nothing about models — src/server/json_api
/// registers the CPD endpoints on top.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/event_loop.h"
#include "server/http.h"
#include "util/status.h"

namespace cpd {
class ThreadPool;
}  // namespace cpd

namespace cpd::server {

/// Which I/O backend drives connections. Blocking is the PR-4 thread-per-
/// connection path (default here for drop-in compatibility; cpd_serve
/// defaults to epoll); epoll is the readiness-driven event loop.
enum class IoMode {
  kBlocking,
  kEpoll,
};

/// Parses "blocking" / "epoll" (the --io_mode flag values).
StatusOr<IoMode> ParseIoMode(const std::string& text);
const char* IoModeName(IoMode mode);

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;             ///< 0 = ephemeral (tests/bench read port()).
  IoMode io_mode = IoMode::kBlocking;
  int threads = 4;          ///< Workers (= connection cap in blocking mode).
  int max_connections = 1024;    ///< Connection cap in epoll mode.
  int max_inflight = 64;    ///< Requests executing at once (excess -> 429).
  int deadline_ms = 0;      ///< Per-request budget (0 = none; over -> 504).
  int retry_after_seconds = 1;   ///< Advertised on every 429.
  int idle_timeout_ms = 30000;   ///< Per-read socket timeout (0 = none).
  size_t max_head_bytes = 64 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
  bool log_requests = true;  ///< One CPD_LOG(Info) line per request.
  /// Requests slower than this (read-to-dispatch-done, microseconds) also
  /// log one Warning line with the per-stage breakdown (request.timing).
  /// 0 disables the slow-request log.
  int64_t slow_request_us = 0;
};

/// Monotonic counters, readable while serving (statsz).
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< 429 at the accept edge.
  uint64_t requests = 0;              ///< Requests parsed off a connection.
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;         ///< Includes admission 429s.
  uint64_t responses_5xx = 0;         ///< Includes deadline 504s.
  uint64_t rejected_429 = 0;          ///< Request-level admission rejections.
  uint64_t deadline_504 = 0;
};

class HttpServer : private EventLoopHandler {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options);
  ~HttpServer();  ///< Calls Stop().

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for `method` + `pattern`. Pattern segments are
  /// literal or "{name}" captures bound into request.path_params. First
  /// registered match wins; call before Start().
  void Handle(const std::string& method, const std::string& pattern,
              Handler handler);

  /// Binds, listens, and spawns the listener + worker pool.
  Status Start();

  /// Port actually bound (after Start; useful with options.port = 0).
  int port() const { return port_; }

  /// Graceful shutdown: stops accepting, lets in-flight requests finish and
  /// write their responses, then joins everything. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  HttpServerStats stats() const;

  /// Sink for transport-side stage durations ("queue_wait", "write" — see
  /// ServiceStats::kRequestStageNames), microseconds. json_api wires this
  /// to the metrics registry; null (the default) drops the samples. Call
  /// before Start(); the callback must be thread-safe.
  void SetStageRecorder(std::function<void(const char*, double)> recorder) {
    stage_recorder_ = std::move(recorder);
  }

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  ///< "{name}" segments capture.
    Handler handler;
  };

  void ListenerLoop();
  void ConnectionLoop(int fd);
  /// Routes + admission + deadline around one parsed request (mutated only
  /// to attach path_params). Returns the response to write (always exactly
  /// one response per request). Shared by both io modes.
  HttpResponse Dispatch(HttpRequest* request);
  const Route* MatchRoute(const std::string& method, const std::string& path,
                          std::map<std::string, std::string>* params) const;
  HttpResponse Render429() const;
  void CountResponse(int status);

  // EventLoopHandler (epoll mode): requests hop from the loop thread onto
  // the worker pool and their responses hop back via CompleteRequest.
  void OnRequest(uint64_t token, HttpRequest request) override;
  HttpResponse OnConnectionShed() override;
  HttpResponse OnFramingError(const Status& error, int http_status) override;
  void OnConnectionAccepted() override;
  void OnResponseWritten(double micros) override;

  /// Records one transport stage sample if a recorder is set.
  void RecordStage(const char* stage, double micros);
  /// The shared access-log line (+ slow-request Warning when the request
  /// exceeded options_.slow_request_us), identical across io modes.
  void LogRequest(const HttpRequest& request, const HttpResponse& response,
                  double total_us);

  HttpServerOptions options_;
  std::vector<Route> routes_;
  std::function<void(const char*, double)> stage_recorder_;
  std::atomic<uint64_t> next_trace_id_{0};

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<EventLoop> event_loop_;  ///< Null in blocking mode.

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};

  mutable std::mutex connections_mutex_;
  std::condition_variable connections_drained_;
  std::set<int> connections_;  ///< Open connection fds (for Stop()).

  // Counters (relaxed atomics; stats() snapshots them).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_2xx_{0};
  std::atomic<uint64_t> responses_4xx_{0};
  std::atomic<uint64_t> responses_5xx_{0};
  std::atomic<uint64_t> rejected_429_{0};
  std::atomic<uint64_t> deadline_504_{0};
};

}  // namespace cpd::server

#endif  // CPD_SERVER_HTTP_SERVER_H_
