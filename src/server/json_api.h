#ifndef CPD_SERVER_JSON_API_H_
#define CPD_SERVER_JSON_API_H_

/// \file json_api.h
/// The JSON wire format of the serving endpoints, and the route table that
/// binds it to an HttpServer + ModelRegistry. The mapping is 1:1 with the
/// in-process serve::QueryEngine API — the loopback tests assert that an
/// HTTP response body is byte-identical to serializing the in-process
/// response with these functions.
///
/// Requests (`"type"` selects the variant):
///   {"type":"membership","user":3,"top_k":5,"include_distribution":false}
///   {"type":"rank","words":[1,2],"top_k":5}            // ids, or
///   {"type":"rank","query":"solar panels","top_k":5}   // vocab required
///   {"type":"diffusion","source":1,"target":2,"document":7,"time_bin":3}
///   {"type":"top_users","community":2,"top_k":10}
/// A batch posts {"batch":[request,...]} and gets {"responses":[...]},
/// positionally aligned, each slot a response or an {"error":...} object.
///
/// Errors anywhere render as the unified envelope
///   {"error":{"code":"<StatusCodeToString>","message":"...",
///             "retry_after_ms":N?}}
/// with the HTTP status from HttpStatusForCode (retry_after_ms only on
/// load-shed 429s, rendered by the transport).
///
/// Endpoints registered by RegisterCpdRoutes (the registry serves a *named
/// set* of models; `{model}` routes address one by name, and the bare
/// routes are aliases for the "default" model):
///   POST /v1/query              single or batch query (above), default model
///   GET  /v1/membership/{user}  ?k=N&distribution=1 shortcut, default model
///   GET  /v1/models             every loaded model: name, generation,
///                               loaded_unix_ms, path
///   POST /v1/models/{model}/query             query a named model
///   GET  /v1/models/{model}/membership/{user} shortcut on a named model
///   GET  /healthz               serving generation + model liveness
///   GET  /statsz                transport + service + per-model counters,
///                               per-query-type latency p50/p99
///                               (+ "coalescer" when micro-batching is on)
///   POST /admin/reload          hot-swap: re-read the artifact (optional
///                               body {"path":"other.cpdb"} switches files,
///                               {"model":"name"} addresses/registers a
///                               named model)
///   POST /admin/ingest          streaming ingest: body = UpdateBatch JSON
///                               (src/ingest/update_batch.h), optional
///                               "model" field picks the swap target;
///                               warm-starts the model, writes a fresh
///                               artifact, and swaps it in with zero
///                               downtime. 409 when the server runs without
///                               an ingest pipeline.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/query_engine.h"
#include "server/coalescer.h"
#include "server/http_server.h"
#include "server/model_registry.h"
#include "util/json.h"
#include "util/status.h"

namespace cpd::ingest {
class IngestPipeline;
}  // namespace cpd::ingest

namespace cpd::server {

/// Service-level counters (the transport ones live in HttpServerStats).
/// The global atomics aggregate across every model; the per-model
/// breakdown behind `models_mutex` feeds the statsz "models" section.
struct ServiceStats {
  std::atomic<uint64_t> queries{0};        ///< Single queries answered OK.
  std::atomic<uint64_t> batch_queries{0};  ///< Requests inside batches.
  std::atomic<uint64_t> query_errors{0};   ///< Typed per-query failures.
  // Streaming-ingest counters (POST /admin/ingest).
  std::atomic<uint64_t> ingests{0};            ///< Batches applied + swapped.
  std::atomic<uint64_t> ingest_failures{0};    ///< Rejected or failed batches.
  std::atomic<uint64_t> ingested_documents{0};
  std::atomic<uint64_t> ingested_users{0};
  std::atomic<uint64_t> ingested_links{0};     ///< Friendships + diffusions.

  /// Per-model query counters, keyed by registry name.
  struct ModelCounters {
    uint64_t queries = 0;
    uint64_t batch_queries = 0;
    uint64_t query_errors = 0;
  };

  /// Bumps the aggregate atomics and the named model's row together.
  void CountQuery(const std::string& model);
  void CountBatchQuery(const std::string& model);
  void CountQueryError(const std::string& model);

  /// Snapshot of the per-model rows (name-sorted).
  std::map<std::string, ModelCounters> PerModel() const;

  // ----- per-query-type service latency (statsz "latency" section) -----
  /// Type index = the QueryRequest variant index (membership, rank,
  /// diffusion, top_users).
  static constexpr size_t kNumQueryTypes = 4;
  /// Retained samples per type; percentiles describe the most recent
  /// window, counts are lifetime totals.
  static constexpr size_t kLatencyWindow = 2048;

  struct LatencySummary {
    uint64_t count = 0;   ///< Samples ever recorded for the type.
    double p50_us = 0.0;  ///< Median over the retained window.
    double p99_us = 0.0;  ///< p99 over the retained window.
  };

  /// Records one successful query's service time (handler-side, excludes
  /// transport). `type` out of range is ignored.
  void RecordLatency(size_t type, double micros);

  /// Percentile snapshot for one query type (sorts a copy of the window;
  /// statsz-scrape frequency, not hot-path frequency).
  LatencySummary LatencyFor(size_t type) const;

 private:
  mutable std::mutex models_mutex_;
  std::map<std::string, ModelCounters> models_;

  struct LatencyRing {
    std::vector<double> samples;  ///< Capped at kLatencyWindow.
    size_t next = 0;              ///< Overwrite cursor once full.
    uint64_t count = 0;
  };
  mutable std::mutex latency_mutex_;
  std::array<LatencyRing, kNumQueryTypes> latency_;
};

/// HTTP status for a typed error (InvalidArgument -> 400, NotFound /
/// OutOfRange -> 404, FailedPrecondition -> 409, ResourceExhausted -> 429,
/// Unimplemented -> 501, Unavailable -> 503, DeadlineExceeded -> 504,
/// everything else -> 500).
int HttpStatusForCode(StatusCode code);

/// {"error":{"code":...,"message":...}}.
Json StatusToJson(const Status& status);

/// Decodes one typed request. `vocab` may be null (textual "query" fields
/// then fail with FailedPrecondition).
StatusOr<serve::QueryRequest> QueryRequestFromJson(const Json& json,
                                                   const Vocabulary* vocab);

/// Encodes a typed request (load generator / client side of the wire).
Json QueryRequestToJson(const serve::QueryRequest& request);

/// Encodes a typed response exactly as the HTTP endpoints do.
Json QueryResponseToJson(const serve::QueryResponse& response);

/// Registers every CPD endpoint on `server`. The registry, stats, and (when
/// given) pipeline and coalescer must outlive the server; the registry must
/// already hold a model (handlers answer 503 otherwise). `pipeline` enables
/// POST /admin/ingest — null keeps the route registered but answering 409
/// (the server was started without the training graph). `coalescer` (when
/// non-null and enabled) micro-batches single queries through the
/// QueryBatch path; batch requests and GET shortcuts bypass it.
void RegisterCpdRoutes(HttpServer* server, ModelRegistry* registry,
                       ServiceStats* stats,
                       ingest::IngestPipeline* pipeline = nullptr,
                       Coalescer* coalescer = nullptr);

}  // namespace cpd::server

#endif  // CPD_SERVER_JSON_API_H_
