#ifndef CPD_SERVER_JSON_API_H_
#define CPD_SERVER_JSON_API_H_

/// \file json_api.h
/// The JSON wire format of the serving endpoints, and the route table that
/// binds it to an HttpServer + ModelRegistry. The mapping is 1:1 with the
/// in-process serve::QueryEngine API — the loopback tests assert that an
/// HTTP response body is byte-identical to serializing the in-process
/// response with these functions.
///
/// Requests (`"type"` selects the variant):
///   {"type":"membership","user":3,"top_k":5,"include_distribution":false}
///   {"type":"rank","words":[1,2],"top_k":5}            // ids, or
///   {"type":"rank","query":"solar panels","top_k":5}   // vocab required
///   {"type":"diffusion","source":1,"target":2,"document":7,"time_bin":3}
///   {"type":"top_users","community":2,"top_k":10}
/// A batch posts {"batch":[request,...]} and gets {"responses":[...]},
/// positionally aligned, each slot a response or an {"error":...} object.
///
/// Errors anywhere render as
///   {"error":{"code":"<StatusCodeToString>","message":"..."}}
/// with the HTTP status from HttpStatusForCode.
///
/// Endpoints registered by RegisterCpdRoutes:
///   POST /v1/query              single or batch query (above)
///   GET  /v1/membership/{user}  ?k=N&distribution=1 shortcut
///   GET  /healthz               serving generation + model liveness
///   GET  /statsz                transport + service + model counters
///   POST /admin/reload          hot-swap: re-read the artifact (optional
///                               body {"path":"other.cpdb"} switches files)
///   POST /admin/ingest          streaming ingest: body = UpdateBatch JSON
///                               (src/ingest/update_batch.h); warm-starts
///                               the model, writes a fresh artifact, and
///                               swaps it in with zero downtime. 409 when
///                               the server runs without an ingest pipeline.

#include <atomic>
#include <cstdint>

#include "serve/query_engine.h"
#include "server/http_server.h"
#include "server/model_registry.h"
#include "util/json.h"
#include "util/status.h"

namespace cpd::ingest {
class IngestPipeline;
}  // namespace cpd::ingest

namespace cpd::server {

/// Service-level counters (the transport ones live in HttpServerStats).
struct ServiceStats {
  std::atomic<uint64_t> queries{0};        ///< Single queries answered OK.
  std::atomic<uint64_t> batch_queries{0};  ///< Requests inside batches.
  std::atomic<uint64_t> query_errors{0};   ///< Typed per-query failures.
  // Streaming-ingest counters (POST /admin/ingest).
  std::atomic<uint64_t> ingests{0};            ///< Batches applied + swapped.
  std::atomic<uint64_t> ingest_failures{0};    ///< Rejected or failed batches.
  std::atomic<uint64_t> ingested_documents{0};
  std::atomic<uint64_t> ingested_users{0};
  std::atomic<uint64_t> ingested_links{0};     ///< Friendships + diffusions.
};

/// HTTP status for a typed error (InvalidArgument -> 400, NotFound /
/// OutOfRange -> 404, FailedPrecondition -> 409, Unimplemented -> 501,
/// everything else -> 500).
int HttpStatusForCode(StatusCode code);

/// {"error":{"code":...,"message":...}}.
Json StatusToJson(const Status& status);

/// Decodes one typed request. `vocab` may be null (textual "query" fields
/// then fail with FailedPrecondition).
StatusOr<serve::QueryRequest> QueryRequestFromJson(const Json& json,
                                                   const Vocabulary* vocab);

/// Encodes a typed request (load generator / client side of the wire).
Json QueryRequestToJson(const serve::QueryRequest& request);

/// Encodes a typed response exactly as the HTTP endpoints do.
Json QueryResponseToJson(const serve::QueryResponse& response);

/// Registers every CPD endpoint on `server`. The registry, stats, and (when
/// given) pipeline must outlive the server; the registry must already hold
/// a model (handlers answer 503 otherwise). `pipeline` enables POST
/// /admin/ingest — null keeps the route registered but answering 409 (the
/// server was started without the training graph).
void RegisterCpdRoutes(HttpServer* server, ModelRegistry* registry,
                       ServiceStats* stats,
                       ingest::IngestPipeline* pipeline = nullptr);

}  // namespace cpd::server

#endif  // CPD_SERVER_JSON_API_H_
