#ifndef CPD_SERVER_JSON_API_H_
#define CPD_SERVER_JSON_API_H_

/// \file json_api.h
/// The JSON wire format of the serving endpoints, and the route table that
/// binds it to an HttpServer + ModelRegistry. The mapping is 1:1 with the
/// in-process serve::QueryEngine API — the loopback tests assert that an
/// HTTP response body is byte-identical to serializing the in-process
/// response with these functions.
///
/// Requests (`"type"` selects the variant):
///   {"type":"membership","user":3,"top_k":5,"include_distribution":false}
///   {"type":"rank","words":[1,2],"top_k":5}            // ids, or
///   {"type":"rank","query":"solar panels","top_k":5}   // vocab required
///   {"type":"diffusion","source":1,"target":2,"document":7,"time_bin":3}
///   {"type":"top_users","community":2,"top_k":10}
/// A batch posts {"batch":[request,...]} and gets {"responses":[...]},
/// positionally aligned, each slot a response or an {"error":...} object.
///
/// Errors anywhere render as the unified envelope
///   {"error":{"code":"<StatusCodeToString>","message":"...",
///             "retry_after_ms":N?}}
/// with the HTTP status from HttpStatusForCode (retry_after_ms only on
/// load-shed 429s, rendered by the transport).
///
/// Endpoints registered by RegisterCpdRoutes (the registry serves a *named
/// set* of models; `{model}` routes address one by name, and the bare
/// routes are aliases for the "default" model):
///   POST /v1/query              single or batch query (above), default model
///   GET  /v1/membership/{user}  ?k=N&distribution=1 shortcut, default model
///   GET  /v1/models             every loaded model: name, generation,
///                               loaded_unix_ms, path
///   POST /v1/models/{model}/query             query a named model
///   GET  /v1/models/{model}/membership/{user} shortcut on a named model
///   GET  /healthz               serving generation + model liveness
///   GET  /statsz                transport + service + per-model counters,
///                               per-query-type latency p50/p99
///                               (+ "coalescer" when micro-batching is on)
///   GET  /metricsz              the same numbers (plus per-stage latency
///                               histograms) as Prometheus text exposition
///                               (docs/OBSERVABILITY.md is the catalog)
///   POST /admin/reload          hot-swap: re-read the artifact (optional
///                               body {"path":"other.cpdb"} switches files,
///                               {"model":"name"} addresses/registers a
///                               named model)
///   POST /admin/ingest          streaming ingest: body = UpdateBatch JSON
///                               (src/ingest/update_batch.h), optional
///                               "model" field picks the swap target;
///                               warm-starts the model, writes a fresh
///                               artifact, and swaps it in with zero
///                               downtime. 409 when the server runs without
///                               an ingest pipeline.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "server/coalescer.h"
#include "server/http_server.h"
#include "server/model_registry.h"
#include "util/json.h"
#include "util/status.h"

namespace cpd::ingest {
class IngestPipeline;
}  // namespace cpd::ingest

namespace cpd::server {

/// Service-level counters and latency/stage histograms, all backed by an
/// owned obs::MetricsRegistry (the transport counters live in
/// HttpServerStats and are folded into /metricsz at scrape time). The
/// registry is per-stats-object, not process-global, so two server stacks
/// in one process (io_mode_differential_test) scrape independently.
///
/// /statsz renders these through the accessors below with its original
/// field names; /metricsz renders registry->ExpositionText() directly.
/// Latency percentiles come from fixed log-bucket histograms (<= ~5%
/// relative error, see obs/metrics.h) instead of the old 2048-sample ring:
/// the ring's racy window sampling made scrapes nondeterministic, the
/// histogram's relaxed bucket counts are exact and, under a frozen
/// obs::Clock, byte-deterministic.
class ServiceStats {
 public:
  /// Type index = the QueryRequest variant index.
  static constexpr size_t kNumQueryTypes = 4;
  static constexpr const char* kQueryTypeNames[kNumQueryTypes] = {
      "membership", "rank", "diffusion", "top_users"};

  /// Handler-side stages of one query, recorded with the resolved query
  /// type (cpd_query_stage_us{query_type,stage}).
  enum class QueryStage { kParse = 0, kBatchWait = 1, kScoring = 2,
                          kSerialize = 3 };
  static constexpr size_t kNumQueryStages = 4;
  static constexpr const char* kQueryStageNames[kNumQueryStages] = {
      "parse", "batch_wait", "scoring", "serialize"};

  /// Transport-side stages recorded by HttpServer's stage-recorder hook,
  /// where the query type is unknown (cpd_request_stage_us{stage}).
  static constexpr size_t kNumRequestStages = 2;
  static constexpr const char* kRequestStageNames[kNumRequestStages] = {
      "queue_wait", "write"};

  ServiceStats();
  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  obs::MetricsRegistry* registry() { return &registry_; }
  const obs::MetricsRegistry* registry() const { return &registry_; }

  /// --metrics off: every Count*/Record* becomes a no-op (scrapes render
  /// zeros). bench_obs pins the instrumented-vs-off throughput delta.
  void set_metrics_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool metrics_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-model query counters, keyed by registry name.
  struct ModelCounters {
    uint64_t queries = 0;
    uint64_t batch_queries = 0;
    uint64_t query_errors = 0;
  };

  /// Bumps the {model}-labeled counter child (aggregates are computed at
  /// scrape by summing children).
  void CountQuery(const std::string& model);
  void CountBatchQuery(const std::string& model);
  void CountQueryError(const std::string& model);

  // Streaming-ingest counters (POST /admin/ingest).
  void CountIngestSuccess(uint64_t documents, uint64_t users, uint64_t links);
  void CountIngestFailure();

  // ----- statsz aggregate reads (wire field names unchanged) -----
  uint64_t queries() const;        ///< Single queries answered OK.
  uint64_t batch_queries() const;  ///< Requests inside batches.
  uint64_t query_errors() const;   ///< Typed per-query failures.
  uint64_t ingests() const;        ///< Batches applied + swapped.
  uint64_t ingest_failures() const;
  uint64_t ingested_documents() const;
  uint64_t ingested_users() const;
  uint64_t ingested_links() const;  ///< Friendships + diffusions.

  /// Snapshot of the per-model rows (name-sorted).
  std::map<std::string, ModelCounters> PerModel() const;

  struct LatencySummary {
    uint64_t count = 0;   ///< Samples ever recorded for the type.
    double p50_us = 0.0;  ///< Histogram-reconstructed (<= ~5% rel. error).
    double p99_us = 0.0;
  };

  /// Records one successful query's service time (handler-side, excludes
  /// transport). `type` out of range is ignored.
  void RecordLatency(size_t type, double micros);
  LatencySummary LatencyFor(size_t type) const;

  void RecordQueryStage(size_t type, QueryStage stage, double micros);
  /// `stage` must be one of kRequestStageNames (unknown names are dropped).
  void RecordRequestStage(const char* stage, double micros);

 private:
  obs::MetricsRegistry registry_;
  std::atomic<bool> enabled_{true};
  // Handles registered once in the constructor; Record* is lock-free.
  obs::Counter* ingests_;
  obs::Counter* ingest_failures_;
  obs::Counter* ingested_documents_;
  obs::Counter* ingested_users_;
  obs::Counter* ingested_links_;
  obs::Histogram* latency_[kNumQueryTypes];
  obs::Histogram* query_stage_[kNumQueryTypes][kNumQueryStages];
  obs::Histogram* request_stage_[kNumRequestStages];
};

/// HTTP status for a typed error (InvalidArgument -> 400, NotFound /
/// OutOfRange -> 404, FailedPrecondition -> 409, ResourceExhausted -> 429,
/// Unimplemented -> 501, Unavailable -> 503, DeadlineExceeded -> 504,
/// everything else -> 500).
int HttpStatusForCode(StatusCode code);

/// {"error":{"code":...,"message":...}}.
Json StatusToJson(const Status& status);

/// Decodes one typed request. `vocab` may be null (textual "query" fields
/// then fail with FailedPrecondition).
StatusOr<serve::QueryRequest> QueryRequestFromJson(const Json& json,
                                                   const Vocabulary* vocab);

/// Encodes a typed request (load generator / client side of the wire).
Json QueryRequestToJson(const serve::QueryRequest& request);

/// Encodes a typed response exactly as the HTTP endpoints do.
Json QueryResponseToJson(const serve::QueryResponse& response);

/// Registers every CPD endpoint on `server`. The registry, stats, and (when
/// given) pipeline and coalescer must outlive the server; the registry must
/// already hold a model (handlers answer 503 otherwise). `pipeline` enables
/// POST /admin/ingest — null keeps the route registered but answering 409
/// (the server was started without the training graph). `coalescer` (when
/// non-null and enabled) micro-batches single queries through the
/// QueryBatch path; batch requests and GET shortcuts bypass it.
void RegisterCpdRoutes(HttpServer* server, ModelRegistry* registry,
                       ServiceStats* stats,
                       ingest::IngestPipeline* pipeline = nullptr,
                       Coalescer* coalescer = nullptr);

}  // namespace cpd::server

#endif  // CPD_SERVER_JSON_API_H_
