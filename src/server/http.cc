#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/json.h"
#include "util/string_util.h"

namespace cpd::server {

namespace {

constexpr std::string_view kHeadTerminator = "\r\n\r\n";

/// Lowercases ASCII in place (header names are case-insensitive).
std::string AsciiLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// %xx-decodes a query component ('+' is a space).
std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  static const std::string kEmpty;
  const auto it = headers.find(AsciiLower(name));
  return it == headers.end() ? kEmpty : it->second;
}

bool HttpRequest::KeepAlive() const {
  const std::string connection = AsciiLower(Header("Connection"));
  if (version == "HTTP/1.0") return connection == "keep-alive";
  return connection != "close";
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              HttpStatusReason(response.status));
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const HttpRequest& request,
                             const std::string& host) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  if (!request.body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", request.body.size());
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

StatusOr<HttpRequest> ParseRequestHead(std::string_view head) {
  HttpRequest request;
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("missing request line terminator");
  }
  const std::string_view line = head.substr(0, line_end);
  const size_t method_end = line.find(' ');
  const size_t target_end =
      method_end == std::string_view::npos ? std::string_view::npos
                                           : line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  request.method = std::string(line.substr(0, method_end));
  request.target =
      std::string(line.substr(method_end + 1, target_end - method_end - 1));
  request.version = std::string(line.substr(target_end + 1));
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version '" +
                                   request.version + "'");
  }
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/') {
    return Status::InvalidArgument("malformed request line");
  }

  // Headers: "Name: value" lines until the blank line.
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t next = head.find("\r\n", pos);
    const std::string_view header_line =
        head.substr(pos, next == std::string_view::npos ? head.size() - pos
                                                        : next - pos);
    if (header_line.empty()) break;
    const size_t colon = header_line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    const std::string name = AsciiLower(Trim(header_line.substr(0, colon)));
    request.headers[name] =
        std::string(Trim(header_line.substr(colon + 1)));
    if (next == std::string_view::npos) break;
    pos = next + 2;
  }

  // Split the target into path + query parameters.
  const size_t question = request.target.find('?');
  request.path = request.target.substr(0, question);
  if (question != std::string::npos) {
    for (const std::string& pair :
         Split(request.target.substr(question + 1), '&', /*skip_empty=*/true)) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[UrlDecode(pair)] = "";
      } else {
        request.query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  return request;
}

HttpResponse MakeErrorResponse(int http_status, const Status& status,
                               int retry_after_ms) {
  Json error = Json::MakeObject();
  error.Set("code", Json(StatusCodeToString(status.code())));
  error.Set("message", Json(status.message()));
  if (retry_after_ms > 0) error.Set("retry_after_ms", Json(retry_after_ms));
  Json body = Json::MakeObject();
  body.Set("error", std::move(error));
  HttpResponse response;
  response.status = http_status;
  response.body = body.Dump();
  return response;
}

// ----- RequestParser -----

RequestParser::State RequestParser::Feed(std::string_view bytes) {
  if (!NeedsMore()) return state_;  // Completed/errored; bytes would be lost.
  buffer_.append(bytes);
  return Advance();
}

RequestParser::State RequestParser::Fail(int http_status, Status status) {
  state_ = State::kError;
  error_ = std::move(status);
  error_http_status_ = http_status;
  return state_;
}

RequestParser::State RequestParser::Advance() {
  if (state_ == State::kHead) {
    const size_t terminator = buffer_.find(kHeadTerminator);
    if (terminator == std::string::npos) {
      if (buffer_.size() > max_head_bytes_) {
        return Fail(431,
                    Status::OutOfRange("message head exceeds the size cap"));
      }
      return state_;
    }
    head_size_ = terminator + kHeadTerminator.size();
    // The cap binds the head itself, not just the unterminated prefix: a
    // complete oversized head arriving in one read is equally over budget.
    if (head_size_ > max_head_bytes_) {
      return Fail(431,
                  Status::OutOfRange("message head exceeds the size cap"));
    }
    auto request =
        ParseRequestHead(std::string_view(buffer_).substr(0, head_size_));
    if (!request.ok()) return Fail(400, request.status());
    request_ = std::move(*request);

    body_size_ = 0;
    const std::string& length = request_.Header("Content-Length");
    if (!length.empty()) {
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(length.c_str(), &end, 10);
      if (end != length.c_str() + length.size()) {
        return Fail(400, Status::InvalidArgument("malformed Content-Length"));
      }
      // The declared length is checked here, before a single body byte is
      // buffered: an oversized upload costs the server one head, never
      // max_body_bytes of memory.
      if (parsed > max_body_bytes_) {
        return Fail(
            413, Status::OutOfRange("request body exceeds the size cap"));
      }
      body_size_ = static_cast<size_t>(parsed);
    } else if (!request_.Header("Transfer-Encoding").empty()) {
      return Fail(400, Status::InvalidArgument(
                           "chunked transfer encoding not supported"));
    }
    state_ = State::kBody;
  }
  if (state_ == State::kBody && buffer_.size() >= head_size_ + body_size_) {
    request_.body = buffer_.substr(head_size_, body_size_);
    state_ = State::kComplete;
  }
  return state_;
}

HttpRequest RequestParser::TakeRequest() {
  HttpRequest request = std::move(request_);
  request_ = HttpRequest{};
  buffer_.erase(0, head_size_ + body_size_);
  head_size_ = 0;
  body_size_ = 0;
  state_ = State::kHead;
  Advance();  // Pipelined bytes may already complete the next request.
  return request;
}

// ----- HttpStream -----

StatusOr<size_t> HttpStream::BufferHead(size_t max_head_bytes) {
  while (true) {
    const size_t terminator = buffer_.find(kHeadTerminator);
    if (terminator != std::string::npos) {
      return terminator + kHeadTerminator.size();
    }
    if (buffer_.size() > max_head_bytes) {
      return Status::OutOfRange("message head exceeds the size cap");
    }
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (buffer_.empty()) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::InvalidArgument("connection closed mid-head");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv failed: %s", strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status HttpStream::BufferBody(size_t total) {
  while (buffer_.size() < total) {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::InvalidArgument("connection closed mid-body");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv failed: %s", strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  return Status::OK();
}

StatusOr<HttpRequest> HttpStream::ReadRequest(size_t max_head_bytes,
                                              size_t max_body_bytes) {
  last_error_http_status_ = 0;
  if (parser_ == nullptr) {
    parser_ = std::make_unique<RequestParser>(max_head_bytes, max_body_bytes);
  }
  while (parser_->NeedsMore()) {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (!parser_->HasPartialData()) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::InvalidArgument(
          parser_->state() == RequestParser::State::kBody
              ? "connection closed mid-body"
              : "connection closed mid-head");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv failed: %s", strerror(errno)));
    }
    parser_->Feed(std::string_view(chunk, static_cast<size_t>(n)));
  }
  if (parser_->state() == RequestParser::State::kError) {
    last_error_http_status_ = parser_->error_http_status();
    return parser_->error();
  }
  return parser_->TakeRequest();
}

StatusOr<HttpResponse> HttpStream::ReadResponse(size_t max_body_bytes) {
  auto head_size = BufferHead(/*max_head_bytes=*/64 * 1024);
  if (!head_size.ok()) return head_size.status();
  const std::string_view head =
      std::string_view(buffer_).substr(0, *head_size);

  HttpResponse response;
  const size_t line_end = head.find("\r\n");
  const std::string_view line = head.substr(0, line_end);
  if (line.size() < 12 || line.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("malformed status line");
  }
  response.status = std::atoi(std::string(line.substr(9, 3)).c_str());
  if (response.status < 100 || response.status > 599) {
    return Status::InvalidArgument("malformed status code");
  }

  size_t body_size = 0;
  bool saw_length = false;
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t next = head.find("\r\n", pos);
    const std::string_view header_line = head.substr(pos, next - pos);
    if (header_line.empty()) break;
    const size_t colon = header_line.find(':');
    if (colon != std::string_view::npos) {
      const std::string name = AsciiLower(Trim(header_line.substr(0, colon)));
      const std::string value(Trim(header_line.substr(colon + 1)));
      if (name == "content-length") {
        body_size = static_cast<size_t>(
            std::strtoull(value.c_str(), nullptr, 10));
        saw_length = true;
      }
      response.headers[name] = value;
      if (name == "content-type") response.content_type = value;
    }
    pos = next + 2;
  }
  if (!saw_length) {
    return Status::InvalidArgument("response without Content-Length");
  }
  if (body_size > max_body_bytes) {
    return Status::OutOfRange("response body exceeds the size cap");
  }
  CPD_RETURN_IF_ERROR(BufferBody(*head_size + body_size));
  response.body = buffer_.substr(*head_size, body_size);
  buffer_.erase(0, *head_size + body_size);
  return response;
}

Status HttpStream::WriteAll(std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send failed: %s", strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

// ----- HttpClient -----

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_), host_(std::move(other.host_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<HttpClient> HttpClient::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket failed: %s", strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not a numeric IPv4 host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError(StrFormat("connect to %s:%d failed: %s", host.c_str(),
                                  port, strerror(errno)));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  HttpClient client;
  client.fd_ = fd;
  client.host_ = StrFormat("%s:%d", host.c_str(), port);
  return client;
}

StatusOr<HttpResponse> HttpClient::RoundTrip(const std::string& method,
                                             const std::string& target,
                                             const std::string& body) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  HttpStream stream(fd_);
  Status written = stream.WriteAll(SerializeRequest(request, host_));
  if (!written.ok()) {
    Close();
    return written;
  }
  auto response = stream.ReadResponse(/*max_body_bytes=*/64 * 1024 * 1024);
  if (!response.ok()) {
    Close();
    return response.status();
  }
  const auto connection = response->headers.find("connection");
  if (connection != response->headers.end() &&
      AsciiLower(connection->second) == "close") {
    Close();
  }
  return response;
}

}  // namespace cpd::server
