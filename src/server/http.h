#ifndef CPD_SERVER_HTTP_H_
#define CPD_SERVER_HTTP_H_

/// \file http.h
/// HTTP/1.1 message types, framing, and blocking socket I/O — the transport
/// vocabulary of the embedded serving layer (no third-party dependency; the
/// subset the serving endpoints need: one request line, headers, an
/// optional Content-Length body, keep-alive connections).
///
/// Three layers live here:
///   - HttpRequest / HttpResponse: plain structs plus serializers;
///   - HttpStream: buffered blocking reader/writer over a connected socket
///     fd, used by both the server's connection loop and the client
///     (typed errors: InvalidArgument = malformed framing -> 400,
///     OutOfRange = over a size cap -> 431/413, NotFound = peer closed
///     cleanly between messages, IOError = socket error/timeout);
///   - HttpClient: a blocking keep-alive loopback client for tests and the
///     closed-loop load generator (bench/server_load.cc).
///
/// Chunked transfer encoding, TLS, and HTTP/2 are out of scope: the server
/// fronts an in-process QueryEngine on a trusted network edge, and every
/// payload it speaks is a small JSON document.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cpd::server {

/// Per-request stage durations (microseconds), filled progressively as a
/// request moves through the transport and the handler. -1 marks a stage
/// that did not happen (e.g. batch_wait without a coalescer); the slow-
/// request log prints only the stages that did. Durations measured with
/// obs::NowMicros() so a frozen test clock zeroes them deterministically.
struct RequestTiming {
  double queue_us = -1.0;      ///< Accept/read to dispatch (epoll: pool wait).
  double parse_us = -1.0;      ///< JSON body decode + request validation.
  double batch_wait_us = -1.0; ///< Time blocked in the coalescing window.
  double scoring_us = -1.0;    ///< Engine query time (minus batch wait).
  double serialize_us = -1.0;  ///< Response JSON encode.
};

/// One parsed request. Header names are lowercased on parse; `path` is the
/// target with the query string stripped, `query` holds the decoded
/// key=value parameters, and `path_params` is filled by the router for
/// patterns like "/v1/membership/{user}".
struct HttpRequest {
  std::string method;   ///< Uppercase ("GET", "POST").
  std::string target;   ///< Raw request target ("/v1/query?k=5").
  std::string path;     ///< Target without the query string.
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0".
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  std::map<std::string, std::string> path_params;
  std::string body;

  /// Trace id assigned by HttpServer::Dispatch (inbound X-Request-Id, or a
  /// generated cpd-<n>), echoed on the response and in access/slow logs.
  std::string trace_id;
  /// Stage timeline; mutable so handlers taking `const HttpRequest&` can
  /// record stages without widening the Handler signature.
  mutable RequestTiming timing;

  /// Lowercased header lookup; empty string when absent.
  const std::string& Header(const std::string& name) const;

  /// Connection semantics the client asked for: HTTP/1.1 defaults to
  /// keep-alive unless "Connection: close"; HTTP/1.0 defaults to close
  /// unless "Connection: keep-alive". Header values compared
  /// case-insensitively.
  bool KeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::map<std::string, std::string> headers;  ///< Extra headers.
  std::string body;
};

/// Canonical reason phrase ("OK", "Too Many Requests", ...).
const char* HttpStatusReason(int status);

/// Serializes a response (adds Content-Type, Content-Length and the
/// Connection header implied by `keep_alive`).
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Serializes a client request (adds Host, Content-Length).
std::string SerializeRequest(const HttpRequest& request,
                             const std::string& host);

/// Parses a request head (request line + headers, no body); used by
/// RequestParser and directly by the framing tests.
StatusOr<HttpRequest> ParseRequestHead(std::string_view head);

/// The one error body every non-2xx response uses (docs/HTTP_API.md pins
/// it): {"error":{"code":"<StatusCode name>","message":...}} with an
/// optional "retry_after_ms" (only load-shed 429s carry one). Defined here
/// — below the routes — so the transport's framing/admission errors and
/// json_api's typed errors are the same shape by construction.
HttpResponse MakeErrorResponse(int http_status, const Status& status,
                               int retry_after_ms = 0);

/// Incremental (resumable) HTTP/1.1 request parser — the request framing
/// shared by the blocking connection loop and the epoll event loop. Feed()
/// bytes as they arrive; the parser buffers a head, validates the framing
/// (including the Content-Length body cap *before* a single body byte is
/// buffered, so an oversized upload is rejected by its declared length,
/// never stored), then buffers the body. Pipelined bytes beyond one
/// request are retained for the next TakeRequest() cycle.
class RequestParser {
 public:
  enum class State {
    kHead,      ///< Collecting request line + headers.
    kBody,      ///< Head parsed; collecting Content-Length bytes.
    kComplete,  ///< One full request ready (TakeRequest()).
    kError,     ///< Framing error; connection must close after the 4xx.
  };

  RequestParser(size_t max_head_bytes, size_t max_body_bytes)
      : max_head_bytes_(max_head_bytes), max_body_bytes_(max_body_bytes) {}

  /// Appends bytes and advances the state machine as far as possible.
  State Feed(std::string_view bytes);

  State state() const { return state_; }
  bool NeedsMore() const {
    return state_ == State::kHead || state_ == State::kBody;
  }

  /// True when a partial message is buffered (a mid-message peer close is
  /// then malformed framing, not a clean end-of-stream).
  bool HasPartialData() const { return NeedsMore() && !buffer_.empty(); }

  /// Moves the completed request out and resumes parsing any pipelined
  /// bytes already buffered (state() afterwards may be kComplete again).
  /// Only valid in kComplete.
  HttpRequest TakeRequest();

  /// Typed framing error (kError only): InvalidArgument = malformed,
  /// OutOfRange = over a size cap.
  const Status& error() const { return error_; }

  /// HTTP status for the framing error: 400 malformed, 431 head over cap,
  /// 413 declared body over cap. 0 unless state() == kError.
  int error_http_status() const { return error_http_status_; }

 private:
  State Advance();
  State Fail(int http_status, Status status);

  size_t max_head_bytes_;
  size_t max_body_bytes_;
  State state_ = State::kHead;
  std::string buffer_;
  size_t head_size_ = 0;  ///< Bytes of buffer_ holding the parsed head.
  size_t body_size_ = 0;  ///< Declared Content-Length.
  HttpRequest request_;   ///< Head fields while in kBody/kComplete.
  Status error_;
  int error_http_status_ = 0;
};

/// Buffered blocking reader/writer over a connected socket. Does not own
/// the fd's lifetime policy (caller closes); Read* calls block until a full
/// message, a size cap, or the peer closes.
class HttpStream {
 public:
  explicit HttpStream(int fd) : fd_(fd) {}

  /// Reads one full request (head + Content-Length body) through a
  /// RequestParser, so the blocking path frames requests byte-identically
  /// to the epoll event loop (including rejecting an over-cap
  /// Content-Length before buffering the body).
  StatusOr<HttpRequest> ReadRequest(size_t max_head_bytes,
                                    size_t max_body_bytes);

  /// HTTP status of the last ReadRequest framing failure (400/413/431),
  /// or 0 when the last error was not a framing error (clean close, IO).
  int last_error_http_status() const { return last_error_http_status_; }

  /// Reads one full response (client side).
  StatusOr<HttpResponse> ReadResponse(size_t max_body_bytes);

  /// Writes the whole buffer (MSG_NOSIGNAL; EPIPE is an IOError, never a
  /// process signal).
  Status WriteAll(std::string_view bytes);

  int fd() const { return fd_; }

 private:
  /// Ensures buffer_ holds a full "\r\n\r\n"-terminated head; returns its
  /// length including the terminator. (Client-side response framing; the
  /// request side lives in RequestParser.)
  StatusOr<size_t> BufferHead(size_t max_head_bytes);
  /// Ensures buffer_ holds >= `total` bytes.
  Status BufferBody(size_t total);

  int fd_;
  std::string buffer_;                      ///< Response-side read buffer.
  std::unique_ptr<RequestParser> parser_;   ///< Request-side, lazily made.
  int last_error_http_status_ = 0;
};

/// Blocking keep-alive HTTP client (tests + load generator). One in-flight
/// request at a time; reconnects are the caller's job (connected() turns
/// false once the server closes or errors).
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static StatusOr<HttpClient> Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and blocks for the response. After an error or a
  /// "Connection: close" response the socket is closed.
  StatusOr<HttpResponse> RoundTrip(const std::string& method,
                                   const std::string& target,
                                   const std::string& body = "");

 private:
  int fd_ = -1;
  std::string host_;
};

}  // namespace cpd::server

#endif  // CPD_SERVER_HTTP_H_
