#ifndef CPD_SERVER_EVENT_LOOP_H_
#define CPD_SERVER_EVENT_LOOP_H_

/// \file event_loop.h
/// Epoll-based I/O backend of HttpServer (--io_mode epoll): one loop thread
/// multiplexes every connection through readiness-driven state machines
/// (read -> parse -> dispatch -> write), so 16 -> 10k keep-alive
/// connections stop costing a blocked thread each. The loop never runs
/// request handlers: a fully-parsed request is handed to the
/// EventLoopHandler (HttpServer routes it onto the worker ThreadPool) with
/// an opaque token, and the worker posts the response back with
/// CompleteRequest(token, ...) — a wake via eventfd, demultiplexed to the
/// right connection on the loop thread. Tokens outlive their connection
/// safely: a completion for a connection that died mid-handler is dropped.
///
/// Connection state machine (per fd, loop thread only):
///   reading   — EPOLLIN armed; bytes feed an incremental RequestParser.
///               A framing error queues the 4xx envelope and closes after
///               the write; a complete request disarms EPOLLIN (no
///               pipelined execution: one request in flight per
///               connection, responses in order) and dispatches.
///   in flight — awaiting CompleteRequest; reads stay disarmed, peer
///               close/reset is remembered and handled at completion.
///   writing   — serialized response drains via EPOLLOUT on short writes;
///               when it empties, either close (Connection: close,
///               framing error, draining) or re-arm EPOLLIN — buffered
///               pipelined bytes are parsed immediately.
///
/// Graceful drain mirrors the blocking path: Stop() stops accepting,
/// closes idle connections, lets in-flight requests finish and write their
/// responses, and force-closes stragglers after 10 s.
///
/// Admission at the accept edge is capacity-based (max_connections — the
/// loop does not spend a thread per connection, so the bound is a memory
/// cap, not the pool size); over-cap accepts get the same serialized 429
/// the blocking path sheds with.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http.h"
#include "util/status.h"

namespace cpd::server {

/// HttpServer's side of the seam: routing, admission, counters, and the
/// worker pool. All methods are invoked on the loop thread.
class EventLoopHandler {
 public:
  virtual ~EventLoopHandler() = default;

  /// One fully-parsed request. The implementation must eventually call
  /// EventLoop::CompleteRequest(token, ...) exactly once, from any thread.
  virtual void OnRequest(uint64_t token, HttpRequest request) = 0;

  /// Renders the accept-edge shed response (429 + Retry-After) and counts
  /// the rejection.
  virtual HttpResponse OnConnectionShed() = 0;

  /// Renders the response for a framing error (400/413/431) and counts it.
  virtual HttpResponse OnFramingError(const Status& error,
                                      int http_status) = 0;

  /// Counts an accepted connection.
  virtual void OnConnectionAccepted() = 0;

  /// One completion response fully flushed to the socket; `micros` is
  /// queued-for-write to last-byte-written (the "write" request stage).
  /// Framing-error and shed writes are not reported, so the sample count
  /// matches the blocking path's one-sample-per-dispatched-request.
  virtual void OnResponseWritten(double /*micros*/) {}
};

struct EventLoopOptions {
  int max_connections = 1024;   ///< Accept-edge cap (excess -> 429).
  int idle_timeout_ms = 30000;  ///< Close idle reading connections (0 = off).
  size_t max_head_bytes = 64 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
  int drain_timeout_ms = 10000;  ///< Stop(): force-close stragglers after.
};

class EventLoop {
 public:
  /// `listen_fd` must already be bound + listening; the loop makes it
  /// non-blocking and owns its epoll registration (the caller still closes
  /// it after Stop()). `handler` must outlive the loop.
  EventLoop(int listen_fd, EventLoopOptions options,
            EventLoopHandler* handler);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and spawns the loop thread.
  Status Start();

  /// Graceful shutdown: stops accepting, drains in-flight requests and
  /// their response writes, force-closes after drain_timeout_ms, joins the
  /// loop thread. Idempotent.
  void Stop();

  /// Posts a response for `token` (thread-safe, any thread). `keep_alive`
  /// is the dispatch layer's verdict (client semantics + server drain);
  /// the loop still closes if the peer vanished meanwhile.
  void CompleteRequest(uint64_t token, HttpResponse response,
                       bool keep_alive);

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-connection state machine; touched only by the loop thread.
  struct Connection {
    int fd = -1;
    uint64_t token = 0;
    RequestParser parser;
    std::string out;          ///< Serialized bytes not yet written.
    size_t out_offset = 0;
    uint32_t interest = 0;    ///< Currently-registered epoll events.
    bool in_flight = false;   ///< Dispatched, awaiting CompleteRequest.
    bool peer_closed = false; ///< Read side saw EOF/reset.
    bool close_after_write = false;
    int64_t write_start_us = -1;  ///< obs::NowMicros() at completion queue.
    Clock::time_point last_activity;

    Connection(int fd, uint64_t token, const EventLoopOptions& options)
        : fd(fd),
          token(token),
          parser(options.max_head_bytes, options.max_body_bytes),
          last_activity(Clock::now()) {}
  };

  struct Completion {
    uint64_t token = 0;
    HttpResponse response;
    bool keep_alive = false;
  };

  void Loop();
  void AcceptAll();
  void HandleReadable(Connection* connection);
  void HandleWritable(Connection* connection);
  void ProcessParsed(Connection* connection);
  void QueueWrite(Connection* connection, std::string bytes);
  void FlushWrites(Connection* connection);
  void DrainCompletions();
  void SetInterest(Connection* connection, uint32_t events);
  void CloseConnection(uint64_t token);
  void SweepIdle();
  void CloseIdleForDrain();
  void Wake();

  int listen_fd_;
  EventLoopOptions options_;
  EventLoopHandler* handler_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  Clock::time_point drain_deadline_{};  ///< Loop thread only.

  uint64_t next_token_ = 1;
  std::map<uint64_t, Connection> connections_;  ///< Loop thread only.

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
};

}  // namespace cpd::server

#endif  // CPD_SERVER_EVENT_LOOP_H_
