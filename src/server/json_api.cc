#include "server/json_api.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "apps/community_ranking.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_batch.h"
#include "obs/clock.h"
#include "util/string_util.h"

namespace cpd::server {

namespace {

/// Every integer the wire carries (ids, counts, time bins) fits int32; a
/// JSON number outside this window is a client error, and bounding the
/// double *before* the cast keeps hostile values (1e300) away from
/// undefined float-to-int conversions and silent int64→int32 truncation
/// (user 2^32+3 must be a 400, never user 3's profile).
constexpr double kMinWireInt = -2147483648.0;
constexpr double kMaxWireInt = 2147483647.0;

/// Decodes a JSON number field into an integer id, rejecting fractions
/// and out-of-range magnitudes.
StatusOr<int64_t> GetIntField(const Json& json, std::string_view key,
                              int64_t fallback, bool required = false) {
  const Json* field = json.Find(key);
  if (field == nullptr) {
    if (required) {
      return Status::InvalidArgument("missing field '" + std::string(key) +
                                     "'");
    }
    return fallback;
  }
  if (!field->is_number() || field->number() != std::floor(field->number())) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be an integer");
  }
  if (field->number() < kMinWireInt || field->number() > kMaxWireInt) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' is outside the 32-bit integer range");
  }
  return static_cast<int64_t>(field->number());
}

Json DoubleArrayToJson(const std::vector<double>& values) {
  Json array = Json::MakeArray();
  for (const double v : values) array.Append(Json(v));
  return array;
}

StatusOr<serve::MembershipRequest> MembershipFromJson(const Json& json) {
  serve::MembershipRequest request;
  auto user = GetIntField(json, "user", -1, /*required=*/true);
  if (!user.ok()) return user.status();
  request.user = static_cast<UserId>(*user);
  auto top_k = GetIntField(json, "top_k", request.top_k);
  if (!top_k.ok()) return top_k.status();
  request.top_k = static_cast<int>(*top_k);
  auto include = json.GetBool("include_distribution", false);
  if (!include.ok()) return include.status();
  request.include_distribution = *include;
  return request;
}

StatusOr<serve::RankCommunitiesRequest> RankFromJson(const Json& json,
                                                     const Vocabulary* vocab) {
  serve::RankCommunitiesRequest request;
  const Json* words = json.Find("words");
  const Json* query = json.Find("query");
  if (words != nullptr && query != nullptr) {
    return Status::InvalidArgument(
        "rank request takes 'words' or 'query', not both");
  }
  if (words != nullptr) {
    if (!words->is_array()) {
      return Status::InvalidArgument("field 'words' must be an array");
    }
    for (const Json& word : words->items()) {
      if (!word.is_number() || word.number() != std::floor(word.number()) ||
          word.number() < kMinWireInt || word.number() > kMaxWireInt) {
        return Status::InvalidArgument("'words' entries must be integer ids");
      }
      request.words.push_back(static_cast<WordId>(word.number()));
    }
  } else if (query != nullptr) {
    if (!query->is_string()) {
      return Status::InvalidArgument("field 'query' must be a string");
    }
    if (vocab == nullptr) {
      return Status::FailedPrecondition(
          "textual 'query' needs a vocabulary (serve a v2 artifact with a "
          "bundled vocabulary or pass --vocab); send word ids via 'words'");
    }
    request.words = CommunityRanker::ParseQuery(*vocab, query->string_value());
    if (request.words.empty()) {
      return Status::NotFound("no query term is in the vocabulary: " +
                              query->string_value());
    }
  } else {
    return Status::InvalidArgument("rank request needs 'words' or 'query'");
  }
  auto top_k = GetIntField(json, "top_k", request.top_k);
  if (!top_k.ok()) return top_k.status();
  request.top_k = static_cast<int>(*top_k);
  auto include = json.GetBool("include_topic_distribution",
                              request.include_topic_distribution);
  if (!include.ok()) return include.status();
  request.include_topic_distribution = *include;
  return request;
}

StatusOr<serve::DiffusionRequest> DiffusionFromJson(const Json& json) {
  serve::DiffusionRequest request;
  auto source = GetIntField(json, "source", -1, /*required=*/true);
  if (!source.ok()) return source.status();
  auto target = GetIntField(json, "target", -1, /*required=*/true);
  if (!target.ok()) return target.status();
  auto document = GetIntField(json, "document", -1, /*required=*/true);
  if (!document.ok()) return document.status();
  auto time_bin = GetIntField(json, "time_bin", 0);
  if (!time_bin.ok()) return time_bin.status();
  request.source = static_cast<UserId>(*source);
  request.target = static_cast<UserId>(*target);
  request.document = static_cast<DocId>(*document);
  request.time_bin = static_cast<int32_t>(*time_bin);
  return request;
}

StatusOr<serve::TopUsersRequest> TopUsersFromJson(const Json& json) {
  serve::TopUsersRequest request;
  auto community = GetIntField(json, "community", -1, /*required=*/true);
  if (!community.ok()) return community.status();
  request.community = static_cast<int>(*community);
  auto top_k = GetIntField(json, "top_k", request.top_k);
  if (!top_k.ok()) return top_k.status();
  request.top_k = static_cast<int>(*top_k);
  return request;
}

}  // namespace

namespace {

// Registry-owned family names + help text (statsz reads back through these;
// docs/OBSERVABILITY.md catalogs every name — check_docs.sh enforces it).
constexpr char kQueriesFamily[] = "cpd_service_queries_total";
constexpr char kQueriesHelp[] = "Single queries answered OK, per model.";
constexpr char kBatchQueriesFamily[] = "cpd_service_batch_queries_total";
constexpr char kBatchQueriesHelp[] =
    "Requests answered inside client batches, per model.";
constexpr char kQueryErrorsFamily[] = "cpd_service_query_errors_total";
constexpr char kQueryErrorsHelp[] = "Typed per-query failures, per model.";

}  // namespace

ServiceStats::ServiceStats() {
  // Pre-create the default model's children so a fresh scrape shows the
  // full catalog at zero instead of omitting untouched families.
  registry_.GetCounter(kQueriesFamily, kQueriesHelp,
                       {{"model", kDefaultModel}});
  registry_.GetCounter(kBatchQueriesFamily, kBatchQueriesHelp,
                       {{"model", kDefaultModel}});
  registry_.GetCounter(kQueryErrorsFamily, kQueryErrorsHelp,
                       {{"model", kDefaultModel}});
  ingests_ = registry_.GetCounter("cpd_service_ingests_total",
                                  "Ingest batches applied and swapped in.");
  ingest_failures_ =
      registry_.GetCounter("cpd_service_ingest_failures_total",
                           "Rejected or failed ingest batches.");
  ingested_documents_ = registry_.GetCounter(
      "cpd_service_ingested_documents_total", "Documents added by ingest.");
  ingested_users_ = registry_.GetCounter("cpd_service_ingested_users_total",
                                         "Users added by ingest.");
  ingested_links_ =
      registry_.GetCounter("cpd_service_ingested_links_total",
                           "Friendships plus diffusion links added by ingest.");
  for (size_t type = 0; type < kNumQueryTypes; ++type) {
    latency_[type] = registry_.GetHistogram(
        "cpd_query_latency_us",
        "Handler-side service time of one successful query, microseconds.",
        {{"query_type", kQueryTypeNames[type]}});
    for (size_t stage = 0; stage < kNumQueryStages; ++stage) {
      query_stage_[type][stage] = registry_.GetHistogram(
          "cpd_query_stage_us",
          "Per-stage breakdown of one query, microseconds.",
          {{"query_type", kQueryTypeNames[type]},
           {"stage", kQueryStageNames[stage]}});
    }
  }
  for (size_t stage = 0; stage < kNumRequestStages; ++stage) {
    request_stage_[stage] = registry_.GetHistogram(
        "cpd_request_stage_us",
        "Transport-side request stages (no query type), microseconds.",
        {{"stage", kRequestStageNames[stage]}});
  }
}

void ServiceStats::CountQuery(const std::string& model) {
  if (!metrics_enabled()) return;
  registry_.GetCounter(kQueriesFamily, kQueriesHelp, {{"model", model}})
      ->Increment();
}

void ServiceStats::CountBatchQuery(const std::string& model) {
  if (!metrics_enabled()) return;
  registry_
      .GetCounter(kBatchQueriesFamily, kBatchQueriesHelp, {{"model", model}})
      ->Increment();
}

void ServiceStats::CountQueryError(const std::string& model) {
  if (!metrics_enabled()) return;
  registry_
      .GetCounter(kQueryErrorsFamily, kQueryErrorsHelp, {{"model", model}})
      ->Increment();
}

void ServiceStats::CountIngestSuccess(uint64_t documents, uint64_t users,
                                      uint64_t links) {
  if (!metrics_enabled()) return;
  ingests_->Increment();
  ingested_documents_->Increment(documents);
  ingested_users_->Increment(users);
  ingested_links_->Increment(links);
}

void ServiceStats::CountIngestFailure() {
  if (!metrics_enabled()) return;
  ingest_failures_->Increment();
}

uint64_t ServiceStats::queries() const {
  return registry_.CounterTotal(kQueriesFamily);
}
uint64_t ServiceStats::batch_queries() const {
  return registry_.CounterTotal(kBatchQueriesFamily);
}
uint64_t ServiceStats::query_errors() const {
  return registry_.CounterTotal(kQueryErrorsFamily);
}
uint64_t ServiceStats::ingests() const { return ingests_->value(); }
uint64_t ServiceStats::ingest_failures() const {
  return ingest_failures_->value();
}
uint64_t ServiceStats::ingested_documents() const {
  return ingested_documents_->value();
}
uint64_t ServiceStats::ingested_users() const {
  return ingested_users_->value();
}
uint64_t ServiceStats::ingested_links() const {
  return ingested_links_->value();
}

std::map<std::string, ServiceStats::ModelCounters> ServiceStats::PerModel()
    const {
  std::map<std::string, ModelCounters> out;
  for (const auto& [model, value] : registry_.CounterByLabel(kQueriesFamily)) {
    out[model].queries = value;
  }
  for (const auto& [model, value] :
       registry_.CounterByLabel(kBatchQueriesFamily)) {
    out[model].batch_queries = value;
  }
  for (const auto& [model, value] :
       registry_.CounterByLabel(kQueryErrorsFamily)) {
    out[model].query_errors = value;
  }
  return out;
}

void ServiceStats::RecordLatency(size_t type, double micros) {
  if (type >= kNumQueryTypes || !metrics_enabled()) return;
  latency_[type]->Record(micros);
}

ServiceStats::LatencySummary ServiceStats::LatencyFor(size_t type) const {
  LatencySummary summary;
  if (type >= kNumQueryTypes) return summary;
  const obs::Histogram::Snapshot snapshot = latency_[type]->Snap();
  summary.count = snapshot.count;
  summary.p50_us = snapshot.Percentile(0.5);
  summary.p99_us = snapshot.Percentile(0.99);
  return summary;
}

void ServiceStats::RecordQueryStage(size_t type, QueryStage stage,
                                    double micros) {
  if (type >= kNumQueryTypes || !metrics_enabled()) return;
  query_stage_[type][static_cast<size_t>(stage)]->Record(micros);
}

void ServiceStats::RecordRequestStage(const char* stage, double micros) {
  if (!metrics_enabled()) return;
  for (size_t s = 0; s < kNumRequestStages; ++s) {
    if (std::string_view(stage) == kRequestStageNames[s]) {
      request_stage_[s]->Record(micros);
      return;
    }
  }
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

Json StatusToJson(const Status& status) {
  Json error = Json::MakeObject();
  error.Set("code", Json(StatusCodeToString(status.code())));
  error.Set("message", Json(status.message()));
  Json out = Json::MakeObject();
  out.Set("error", std::move(error));
  return out;
}

StatusOr<serve::QueryRequest> QueryRequestFromJson(const Json& json,
                                                   const Vocabulary* vocab) {
  if (!json.is_object()) {
    return Status::InvalidArgument("query request must be a JSON object");
  }
  if (json.Find("type") == nullptr) {
    // A missing selector is a malformed request (400), not a missing
    // resource (the NotFound that GetString would report maps to 404).
    return Status::InvalidArgument(
        "missing field 'type' (membership|rank|diffusion|top_users)");
  }
  auto type = json.GetString("type", "");
  if (!type.ok()) return type.status();
  if (*type == "membership") {
    auto request = MembershipFromJson(json);
    if (!request.ok()) return request.status();
    return serve::QueryRequest(std::move(*request));
  }
  if (*type == "rank") {
    auto request = RankFromJson(json, vocab);
    if (!request.ok()) return request.status();
    return serve::QueryRequest(std::move(*request));
  }
  if (*type == "diffusion") {
    auto request = DiffusionFromJson(json);
    if (!request.ok()) return request.status();
    return serve::QueryRequest(std::move(*request));
  }
  if (*type == "top_users") {
    auto request = TopUsersFromJson(json);
    if (!request.ok()) return request.status();
    return serve::QueryRequest(std::move(*request));
  }
  return Status::InvalidArgument(
      "unknown query type '" + *type +
      "' (membership|rank|diffusion|top_users)");
}

Json QueryRequestToJson(const serve::QueryRequest& request) {
  Json out = Json::MakeObject();
  if (const auto* membership =
          std::get_if<serve::MembershipRequest>(&request)) {
    out.Set("type", Json("membership"));
    out.Set("user", Json(static_cast<int64_t>(membership->user)));
    out.Set("top_k", Json(membership->top_k));
    out.Set("include_distribution", Json(membership->include_distribution));
  } else if (const auto* rank =
                 std::get_if<serve::RankCommunitiesRequest>(&request)) {
    out.Set("type", Json("rank"));
    Json words = Json::MakeArray();
    for (const WordId w : rank->words) {
      words.Append(Json(static_cast<int64_t>(w)));
    }
    out.Set("words", std::move(words));
    out.Set("top_k", Json(rank->top_k));
    out.Set("include_topic_distribution",
            Json(rank->include_topic_distribution));
  } else if (const auto* diffusion =
                 std::get_if<serve::DiffusionRequest>(&request)) {
    out.Set("type", Json("diffusion"));
    out.Set("source", Json(static_cast<int64_t>(diffusion->source)));
    out.Set("target", Json(static_cast<int64_t>(diffusion->target)));
    out.Set("document", Json(static_cast<int64_t>(diffusion->document)));
    out.Set("time_bin", Json(static_cast<int64_t>(diffusion->time_bin)));
  } else {
    const auto& top_users = std::get<serve::TopUsersRequest>(request);
    out.Set("type", Json("top_users"));
    out.Set("community", Json(top_users.community));
    out.Set("top_k", Json(top_users.top_k));
  }
  return out;
}

Json QueryResponseToJson(const serve::QueryResponse& response) {
  Json out = Json::MakeObject();
  if (const auto* membership =
          std::get_if<serve::MembershipResponse>(&response)) {
    out.Set("type", Json("membership"));
    Json top = Json::MakeArray();
    for (const serve::TopMembership& entry : membership->top) {
      Json item = Json::MakeObject();
      item.Set("community", Json(entry.community));
      item.Set("weight", Json(entry.weight));
      top.Append(std::move(item));
    }
    out.Set("top", std::move(top));
    if (!membership->distribution.empty()) {
      out.Set("distribution", DoubleArrayToJson(membership->distribution));
    }
  } else if (const auto* ranked =
                 std::get_if<serve::RankCommunitiesResponse>(&response)) {
    out.Set("type", Json("rank"));
    Json entries = Json::MakeArray();
    for (const serve::RankedCommunityEntry& entry : ranked->ranked) {
      Json item = Json::MakeObject();
      item.Set("community", Json(entry.community));
      item.Set("score", Json(entry.score));
      if (!entry.topic_distribution.empty()) {
        item.Set("topic_distribution",
                 DoubleArrayToJson(entry.topic_distribution));
      }
      entries.Append(std::move(item));
    }
    out.Set("ranked", std::move(entries));
  } else if (const auto* diffusion =
                 std::get_if<serve::DiffusionResponse>(&response)) {
    out.Set("type", Json("diffusion"));
    out.Set("probability", Json(diffusion->probability));
    out.Set("friendship_score", Json(diffusion->friendship_score));
  } else {
    const auto& top_users = std::get<serve::TopUsersResponse>(response);
    out.Set("type", Json("top_users"));
    Json users = Json::MakeArray();
    for (const UserId u : top_users.users) {
      users.Append(Json(static_cast<int64_t>(u)));
    }
    out.Set("users", std::move(users));
    out.Set("weights", DoubleArrayToJson(top_users.weights));
  }
  return out;
}

namespace {

HttpResponse JsonResponse(int status, const Json& json) {
  HttpResponse response;
  response.status = status;
  response.body = json.Dump();
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForCode(status.code()), StatusToJson(status));
}

/// Registry name the request addresses: the {model} capture, or the
/// default-model alias.
std::string ModelNameFromRequest(const HttpRequest& http_request) {
  const auto it = http_request.path_params.find("model");
  return it == http_request.path_params.end() ? kDefaultModel : it->second;
}

HttpResponse NoModelResponse(const std::string& name) {
  return ErrorResponse(Status::Unavailable(
      name == kDefaultModel ? "no model loaded"
                            : "no model named '" + name + "' loaded"));
}

/// POST /v1/query and /v1/models/{model}/query: one typed request, or
/// {"batch":[...]}.
HttpResponse HandleQuery(const HttpRequest& http_request,
                         ModelRegistry* registry, ServiceStats* stats,
                         Coalescer* coalescer) {
  const std::string name = ModelNameFromRequest(http_request);
  const std::shared_ptr<const ServingModel> model = registry->Snapshot(name);
  if (model == nullptr) return NoModelResponse(name);
  const int64_t parse_start_us = obs::NowMicros();
  auto json = Json::Parse(http_request.body);
  if (!json.ok()) return ErrorResponse(json.status());
  const Vocabulary* vocab = model->vocabulary.get();

  const Json* batch = json->is_object() ? json->Find("batch") : nullptr;
  if (batch != nullptr) {
    if (!batch->is_array()) {
      return ErrorResponse(
          Status::InvalidArgument("field 'batch' must be an array"));
    }
    Json responses = Json::MakeArray();
    for (const Json& entry : batch->items()) {
      auto request = QueryRequestFromJson(entry, vocab);
      if (!request.ok()) {
        stats->CountQueryError(name);
        responses.Append(StatusToJson(request.status()));
        continue;
      }
      const int64_t slot_start_us = obs::NowMicros();
      auto response = model->engine->Query(*request);
      if (!response.ok()) {
        stats->CountQueryError(name);
        responses.Append(StatusToJson(response.status()));
        continue;
      }
      const double slot_us =
          static_cast<double>(obs::NowMicros() - slot_start_us);
      stats->CountBatchQuery(name);
      stats->RecordLatency(request->index(), slot_us);
      stats->RecordQueryStage(request->index(),
                              ServiceStats::QueryStage::kScoring, slot_us);
      responses.Append(QueryResponseToJson(*response));
    }
    Json out = Json::MakeObject();
    out.Set("responses", std::move(responses));
    return JsonResponse(200, out);
  }

  auto request = QueryRequestFromJson(*json, vocab);
  if (!request.ok()) {
    stats->CountQueryError(name);
    return ErrorResponse(request.status());
  }
  const size_t type = request->index();
  const int64_t parsed_us = obs::NowMicros();
  // Single queries are where concurrency hides batchability: route them
  // through the coalescer (explicit client batches are already batched).
  // The latency sample covers the scoring path a client waits on (incl.
  // any coalescing window), not JSON encode/decode; batch_wait splits the
  // coalescing window out of it again for the stage histograms.
  double batch_wait_us = 0.0;
  auto response = coalescer != nullptr
                      ? coalescer->Execute(model, *request, &batch_wait_us)
                      : model->engine->Query(*request);
  if (!response.ok()) {
    stats->CountQueryError(name);
    return ErrorResponse(response.status());
  }
  const int64_t scored_us = obs::NowMicros();
  stats->CountQuery(name);
  stats->RecordLatency(type, static_cast<double>(scored_us - parsed_us));
  HttpResponse http_response = JsonResponse(200, QueryResponseToJson(*response));
  const int64_t serialized_us = obs::NowMicros();

  RequestTiming& timing = http_request.timing;
  timing.parse_us = static_cast<double>(parsed_us - parse_start_us);
  timing.batch_wait_us = batch_wait_us;
  timing.scoring_us =
      static_cast<double>(scored_us - parsed_us) - batch_wait_us;
  timing.serialize_us = static_cast<double>(serialized_us - scored_us);
  stats->RecordQueryStage(type, ServiceStats::QueryStage::kParse,
                          timing.parse_us);
  stats->RecordQueryStage(type, ServiceStats::QueryStage::kBatchWait,
                          timing.batch_wait_us);
  stats->RecordQueryStage(type, ServiceStats::QueryStage::kScoring,
                          timing.scoring_us);
  stats->RecordQueryStage(type, ServiceStats::QueryStage::kSerialize,
                          timing.serialize_us);
  return http_response;
}

/// Strict base-10 int32 parse for path/query components; mirrors the POST
/// body's validation so the GET shortcut cannot accept what the body
/// rejects (trailing junk, overflow).
StatusOr<int32_t> ParseWireInt(const std::string& text,
                               std::string_view what) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE ||
      value < static_cast<long long>(kMinWireInt) ||
      value > static_cast<long long>(kMaxWireInt)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a 32-bit integer: " + text);
  }
  return static_cast<int32_t>(value);
}

/// GET /v1/membership/{user}?k=N&distribution=1 (bare or under a named
/// model).
HttpResponse HandleMembershipGet(const HttpRequest& http_request,
                                 ModelRegistry* registry,
                                 ServiceStats* stats) {
  const std::string name = ModelNameFromRequest(http_request);
  const std::shared_ptr<const ServingModel> model = registry->Snapshot(name);
  if (model == nullptr) return NoModelResponse(name);
  serve::MembershipRequest request;
  auto user = ParseWireInt(http_request.path_params.at("user"),
                           "user path segment");
  if (!user.ok()) return ErrorResponse(user.status());
  request.user = *user;
  const auto k = http_request.query.find("k");
  if (k != http_request.query.end()) {
    auto top_k = ParseWireInt(k->second, "query parameter 'k'");
    if (!top_k.ok()) return ErrorResponse(top_k.status());
    request.top_k = *top_k;
  }
  const auto distribution = http_request.query.find("distribution");
  request.include_distribution = distribution != http_request.query.end() &&
                                 distribution->second != "0";
  constexpr size_t kType = 0;  // MembershipRequest's variant index.
  const int64_t parsed_us = obs::NowMicros();
  auto response = model->engine->Membership(request);
  if (!response.ok()) {
    stats->CountQueryError(name);
    return ErrorResponse(response.status());
  }
  const int64_t scored_us = obs::NowMicros();
  stats->CountQuery(name);
  stats->RecordLatency(kType, static_cast<double>(scored_us - parsed_us));
  HttpResponse http_response = JsonResponse(
      200, QueryResponseToJson(serve::QueryResponse(std::move(*response))));
  RequestTiming& timing = http_request.timing;
  timing.scoring_us = static_cast<double>(scored_us - parsed_us);
  timing.serialize_us = static_cast<double>(obs::NowMicros() - scored_us);
  stats->RecordQueryStage(kType, ServiceStats::QueryStage::kScoring,
                          timing.scoring_us);
  stats->RecordQueryStage(kType, ServiceStats::QueryStage::kSerialize,
                          timing.serialize_us);
  return http_response;
}

/// GET /v1/models: every loaded model, name-sorted.
HttpResponse HandleListModels(ModelRegistry* registry) {
  Json models = Json::MakeArray();
  for (const ModelInfo& info : registry->ListModels()) {
    Json item = Json::MakeObject();
    item.Set("name", Json(info.name));
    item.Set("generation", Json(info.generation));
    item.Set("loaded_unix_ms", Json(info.loaded_unix_ms));
    item.Set("path", Json(info.path));
    models.Append(std::move(item));
  }
  Json out = Json::MakeObject();
  out.Set("models", std::move(models));
  return JsonResponse(200, out);
}

HttpResponse HandleHealthz(ModelRegistry* registry) {
  const std::shared_ptr<const ServingModel> model = registry->Snapshot();
  if (model == nullptr) {
    // The unified envelope, like every other non-2xx (a health prober only
    // needs the status code anyway).
    return NoModelResponse(kDefaultModel);
  }
  Json out = Json::MakeObject();
  out.Set("status", Json("serving"));
  out.Set("generation", Json(model->generation));
  out.Set("model", Json(model->source_path));
  return JsonResponse(200, out);
}

HttpResponse HandleStatsz(const HttpServer* server, ModelRegistry* registry,
                          const ServiceStats* stats,
                          const Coalescer* coalescer) {
  const HttpServerStats transport = server->stats();
  Json server_json = Json::MakeObject();
  server_json.Set("connections_accepted", Json(transport.connections_accepted));
  server_json.Set("connections_rejected", Json(transport.connections_rejected));
  server_json.Set("requests", Json(transport.requests));
  server_json.Set("responses_2xx", Json(transport.responses_2xx));
  server_json.Set("responses_4xx", Json(transport.responses_4xx));
  server_json.Set("responses_5xx", Json(transport.responses_5xx));
  server_json.Set("rejected_429", Json(transport.rejected_429));
  server_json.Set("deadline_504", Json(transport.deadline_504));

  Json service_json = Json::MakeObject();
  service_json.Set("queries", Json(stats->queries()));
  service_json.Set("batch_queries", Json(stats->batch_queries()));
  service_json.Set("query_errors", Json(stats->query_errors()));
  service_json.Set("reloads", Json(registry->reload_count()));
  service_json.Set("reload_failures", Json(registry->reload_failures()));

  service_json.Set("ingests", Json(stats->ingests()));
  service_json.Set("ingest_failures", Json(stats->ingest_failures()));
  service_json.Set("ingested_documents", Json(stats->ingested_documents()));
  service_json.Set("ingested_users", Json(stats->ingested_users()));
  service_json.Set("ingested_links", Json(stats->ingested_links()));

  // Per-query-type service latency (what bench_query measures client-side):
  // lifetime counts, histogram-reconstructed p50/p99 microseconds (same
  // buckets /metricsz exposes; <= ~5% relative error).
  Json latency_json = Json::MakeObject();
  for (size_t type = 0; type < ServiceStats::kNumQueryTypes; ++type) {
    const ServiceStats::LatencySummary summary = stats->LatencyFor(type);
    Json row = Json::MakeObject();
    row.Set("count", Json(summary.count));
    row.Set("p50_us", Json(summary.p50_us));
    row.Set("p99_us", Json(summary.p99_us));
    latency_json.Set(ServiceStats::kQueryTypeNames[type], std::move(row));
  }
  service_json.Set("latency", std::move(latency_json));

  Json out = Json::MakeObject();
  out.Set("server", std::move(server_json));
  out.Set("service", std::move(service_json));
  const std::shared_ptr<const ServingModel> model = registry->Snapshot();
  if (model != nullptr) {
    // Kept as the default model's summary (pre-/v1/models consumers).
    Json model_json = Json::MakeObject();
    model_json.Set("generation", Json(model->generation));
    model_json.Set("path", Json(model->source_path));
    model_json.Set("loaded_unix_ms", Json(model->loaded_unix_ms));
    model_json.Set("communities", Json(model->index.num_communities()));
    model_json.Set("topics", Json(model->index.num_topics()));
    model_json.Set("users", Json(static_cast<uint64_t>(model->index.num_users())));
    model_json.Set("vocab",
                   Json(static_cast<uint64_t>(model->index.vocab_size())));
    model_json.Set("vocabulary_bundled", Json(model->vocabulary != nullptr));
    model_json.Set("precompute_scoring",
                   Json(model->index.has_scoring_tables()));
    out.Set("model", std::move(model_json));
  }

  // Per-model counters: one row per registered model, joined with the
  // per-name query counters.
  const std::map<std::string, ServiceStats::ModelCounters> counters =
      stats->PerModel();
  Json models_json = Json::MakeObject();
  for (const ModelInfo& info : registry->ListModels()) {
    Json row = Json::MakeObject();
    row.Set("generation", Json(info.generation));
    row.Set("path", Json(info.path));
    row.Set("loaded_unix_ms", Json(info.loaded_unix_ms));
    const auto it = counters.find(info.name);
    const ServiceStats::ModelCounters row_counts =
        it == counters.end() ? ServiceStats::ModelCounters{} : it->second;
    row.Set("queries", Json(row_counts.queries));
    row.Set("batch_queries", Json(row_counts.batch_queries));
    row.Set("query_errors", Json(row_counts.query_errors));
    models_json.Set(info.name, std::move(row));
  }
  out.Set("models", std::move(models_json));

  if (coalescer != nullptr) {
    const CoalescerStats batching = coalescer->stats();
    Json coalescer_json = Json::MakeObject();
    coalescer_json.Set("enabled", Json(coalescer->enabled()));
    coalescer_json.Set("window_us", Json(coalescer->options().window_us));
    coalescer_json.Set("max_batch", Json(coalescer->options().max_batch));
    coalescer_json.Set("requests", Json(batching.requests));
    coalescer_json.Set("batches", Json(batching.batches));
    coalescer_json.Set("coalesced", Json(batching.coalesced));
    coalescer_json.Set("flush_full", Json(batching.flush_full));
    coalescer_json.Set("flush_timeout", Json(batching.flush_timeout));
    coalescer_json.Set("flush_mismatch", Json(batching.flush_mismatch));
    out.Set("coalescer", std::move(coalescer_json));
  }
  return JsonResponse(200, out);
}

/// GET /metricsz: Prometheus text exposition. The ServiceStats registry
/// renders itself; transport (HttpServerStats), model-registry, and
/// coalescer numbers live in their own structs and are synthesized into
/// families here at scrape time — same sources /statsz reads, same scrape
/// consistency (counters are independently relaxed either way).
HttpResponse HandleMetricsz(const HttpServer* server, ModelRegistry* registry,
                            const ServiceStats* stats,
                            const Coalescer* coalescer) {
  std::string out = stats->registry()->ExpositionText();

  const HttpServerStats transport = server->stats();
  obs::AppendExpositionHeader(&out, "cpd_http_connections_accepted_total",
                              "Connections accepted by the listener.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_http_connections_accepted_total", {},
                        static_cast<double>(transport.connections_accepted));
  obs::AppendExpositionHeader(&out, "cpd_http_connections_rejected_total",
                              "Connections shed at the max_connections cap.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_http_connections_rejected_total", {},
                        static_cast<double>(transport.connections_rejected));
  obs::AppendExpositionHeader(&out, "cpd_http_requests_total",
                              "Well-framed requests read off connections.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_http_requests_total", {},
                        static_cast<double>(transport.requests));
  obs::AppendExpositionHeader(&out, "cpd_http_responses_total",
                              "Responses written, by status class.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_http_responses_total", {{"class", "2xx"}},
                        static_cast<double>(transport.responses_2xx));
  obs::AppendSampleLine(&out, "cpd_http_responses_total", {{"class", "4xx"}},
                        static_cast<double>(transport.responses_4xx));
  obs::AppendSampleLine(&out, "cpd_http_responses_total", {{"class", "5xx"}},
                        static_cast<double>(transport.responses_5xx));
  obs::AppendExpositionHeader(&out, "cpd_http_rejected_429_total",
                              "Requests shed by the inflight admission cap.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_http_rejected_429_total", {},
                        static_cast<double>(transport.rejected_429));
  obs::AppendExpositionHeader(&out, "cpd_http_deadline_504_total",
                              "Requests failed by the server deadline.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_http_deadline_504_total", {},
                        static_cast<double>(transport.deadline_504));

  obs::AppendExpositionHeader(&out, "cpd_model_reloads_total",
                              "Successful model loads and hot-swaps.",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_model_reloads_total", {},
                        static_cast<double>(registry->reload_count()));
  obs::AppendExpositionHeader(&out, "cpd_model_reload_failures_total",
                              "Failed model loads (old generation kept).",
                              "counter");
  obs::AppendSampleLine(&out, "cpd_model_reload_failures_total", {},
                        static_cast<double>(registry->reload_failures()));
  obs::AppendExpositionHeader(&out, "cpd_model_generation",
                              "Serving generation per loaded model.", "gauge");
  for (const ModelInfo& info : registry->ListModels()) {
    obs::AppendSampleLine(&out, "cpd_model_generation",
                          {{"model", info.name}},
                          static_cast<double>(info.generation));
  }

  if (coalescer != nullptr) {
    const CoalescerStats batching = coalescer->stats();
    obs::AppendExpositionHeader(&out, "cpd_coalescer_requests_total",
                                "Single queries routed via the coalescer.",
                                "counter");
    obs::AppendSampleLine(&out, "cpd_coalescer_requests_total", {},
                          static_cast<double>(batching.requests));
    obs::AppendExpositionHeader(&out, "cpd_coalescer_batches_total",
                                "Engine batches the coalescer executed.",
                                "counter");
    obs::AppendSampleLine(&out, "cpd_coalescer_batches_total", {},
                          static_cast<double>(batching.batches));
    obs::AppendExpositionHeader(&out, "cpd_coalescer_coalesced_total",
                                "Queries that shared a batch with others.",
                                "counter");
    obs::AppendSampleLine(&out, "cpd_coalescer_coalesced_total", {},
                          static_cast<double>(batching.coalesced));
    obs::AppendExpositionHeader(&out, "cpd_coalescer_flush_total",
                                "Batch flushes, by trigger.", "counter");
    obs::AppendSampleLine(&out, "cpd_coalescer_flush_total",
                          {{"reason", "full"}},
                          static_cast<double>(batching.flush_full));
    obs::AppendSampleLine(&out, "cpd_coalescer_flush_total",
                          {{"reason", "timeout"}},
                          static_cast<double>(batching.flush_timeout));
    obs::AppendSampleLine(&out, "cpd_coalescer_flush_total",
                          {{"reason", "mismatch"}},
                          static_cast<double>(batching.flush_mismatch));
  }

  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = std::move(out);
  return response;
}

/// POST /admin/reload: re-read the current artifact, switch to the "path"
/// in the body, or patch the serving model with a ".cpdd" via "delta"
/// (mutually exclusive with "path"); an optional "model" field addresses
/// (or registers) a named model. In-flight requests keep their pre-swap
/// snapshot.
HttpResponse HandleReload(const HttpRequest& http_request,
                          ModelRegistry* registry) {
  std::string path;
  std::string delta_path;
  std::string name = kDefaultModel;
  if (!http_request.body.empty()) {
    auto json = Json::Parse(http_request.body);
    if (!json.ok()) return ErrorResponse(json.status());
    auto parsed = json->GetString("path", "");
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    path = *parsed;
    auto delta = json->GetString("delta", "");
    if (!delta.ok()) return ErrorResponse(delta.status());
    delta_path = *delta;
    if (!path.empty() && !delta_path.empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "fields 'path' and 'delta' are mutually exclusive (a delta "
          "patches the model already serving)"));
    }
    auto model = json->GetString("model", kDefaultModel);
    if (!model.ok()) return ErrorResponse(model.status());
    name = *model;
    if (name.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("field 'model' must not be empty"));
    }
  }
  if (path.empty() && registry->path(name).empty()) {
    // Addressing a name that was never loaded is a client error, not a
    // server-side load failure (a delta also needs a base to patch).
    return ErrorResponse(Status::FailedPrecondition("no model named '" +
                                                    name + "' loaded yet"));
  }
  const Status status =
      !delta_path.empty() ? registry->LoadDeltaFrom(name, delta_path)
      : path.empty()      ? registry->Reload(name)
                          : registry->LoadFrom(name, path);
  if (!status.ok()) {
    // A failed reload is a server-side problem and the old model keeps
    // serving; surface it as 500 regardless of the typed code.
    return JsonResponse(500, StatusToJson(status));
  }
  Json out = Json::MakeObject();
  out.Set("status", Json("ok"));
  out.Set("name", Json(name));
  out.Set("generation", Json(registry->generation(name)));
  out.Set("model", Json(registry->path(name)));
  if (!delta_path.empty()) out.Set("delta", Json(delta_path));
  return JsonResponse(200, out);
}

/// POST /admin/ingest: apply an UpdateBatch to the live training state,
/// warm-start, write a fresh artifact, and swap it in. The merged graph is
/// published to the registry *before* the artifact load so the new
/// generation binds it (in-flight requests keep the old generation's graph).
HttpResponse HandleIngest(const HttpRequest& http_request,
                          ModelRegistry* registry, ServiceStats* stats,
                          ingest::IngestPipeline* pipeline) {
  if (pipeline == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "ingest disabled: cpd_serve was started without the training graph "
        "(--users/--docs/--friends/--diffusion)"));
  }
  // The pipeline serializes Ingest() itself, but the SetGraph + LoadFrom
  // publication below must not interleave between two concurrent batches
  // (a stale generation could land last); one lock covers the whole
  // apply-train-publish sequence.
  static std::mutex ingest_mutex;
  std::lock_guard<std::mutex> ingest_lock(ingest_mutex);
  auto json = Json::Parse(http_request.body);
  if (!json.ok()) {
    stats->CountIngestFailure();
    return ErrorResponse(json.status());
  }
  // Optional swap target; the batch decoder ignores unknown fields, so the
  // selector rides in the same body as the update rows.
  std::string name = kDefaultModel;
  if (json->is_object()) {
    auto model = json->GetString("model", kDefaultModel);
    if (!model.ok()) {
      stats->CountIngestFailure();
      return ErrorResponse(model.status());
    }
    name = *model;
    if (name.empty()) {
      stats->CountIngestFailure();
      return ErrorResponse(
          Status::InvalidArgument("field 'model' must not be empty"));
    }
  }
  auto batch = ingest::UpdateBatchFromJson(*json);
  if (!batch.ok()) {
    stats->CountIngestFailure();
    return ErrorResponse(batch.status());
  }
  auto result = pipeline->Ingest(*batch);
  if (!result.ok()) {
    stats->CountIngestFailure();
    // Client-caused failures (bad ids, malformed rows) keep their typed
    // status; pipeline-internal ones surface as the mapped 5xx/4xx code.
    return ErrorResponse(result.status());
  }
  const std::shared_ptr<const SocialGraph> previous_graph = registry->graph();
  registry->SetGraph(pipeline->graph());
  // Prefer shipping the delta when the pipeline wrote one and the serving
  // model is exactly the generation it patches (an mmap-backed model then
  // swaps copy-on-write instead of rebuilding); anything else — no delta,
  // lineage drift, a failed patch — falls back to the full artifact.
  Status swapped = Status::InvalidArgument("delta not applicable");
  bool via_delta = false;
  if (!result->delta_path.empty()) {
    const auto snapshot = registry->Snapshot(name);
    if (snapshot != nullptr &&
        snapshot->index.artifact_generation() + 1 == result->generation) {
      swapped = registry->LoadDeltaFrom(name, result->delta_path);
      via_delta = swapped.ok();
    }
  }
  if (!via_delta) swapped = registry->LoadFrom(name, result->artifact_path);
  if (!swapped.ok()) {
    // The artifact was produced but could not be served; the previous
    // generation keeps serving (same contract as a failed /admin/reload),
    // and the merged graph must not leak into a later reload of the old
    // artifact (old index + bigger graph would mismatch).
    registry->SetGraph(previous_graph);
    stats->CountIngestFailure();
    return JsonResponse(500, StatusToJson(swapped));
  }
  stats->CountIngestSuccess(
      result->counts.new_documents, result->counts.new_users,
      result->counts.new_friendships + result->counts.new_diffusions);

  Json ingested = Json::MakeObject();
  ingested.Set("documents",
               Json(static_cast<uint64_t>(result->counts.new_documents)));
  ingested.Set("dropped_documents",
               Json(static_cast<uint64_t>(result->counts.dropped_documents)));
  ingested.Set("users", Json(static_cast<uint64_t>(result->counts.new_users)));
  ingested.Set("friendships",
               Json(static_cast<uint64_t>(result->counts.new_friendships)));
  ingested.Set("diffusions",
               Json(static_cast<uint64_t>(result->counts.new_diffusions)));
  ingested.Set("words", Json(static_cast<uint64_t>(result->counts.new_words)));
  Json out = Json::MakeObject();
  out.Set("status", Json("ok"));
  out.Set("name", Json(name));
  out.Set("generation", Json(registry->generation(name)));
  out.Set("model", Json(result->artifact_path));
  if (!result->delta_path.empty()) {
    out.Set("delta", Json(result->delta_path));
    out.Set("swapped_via_delta", Json(via_delta));
  }
  out.Set("sequence", Json(result->sequence));
  out.Set("ingested", std::move(ingested));
  out.Set("warm_seconds", Json(result->warm_seconds));
  out.Set("total_seconds", Json(result->total_seconds));
  return JsonResponse(200, out);
}

}  // namespace

void RegisterCpdRoutes(HttpServer* server, ModelRegistry* registry,
                       ServiceStats* stats, ingest::IngestPipeline* pipeline,
                       Coalescer* coalescer) {
  server->Handle("POST", "/v1/query",
                 [registry, stats, coalescer](const HttpRequest& request) {
                   return HandleQuery(request, registry, stats, coalescer);
                 });
  server->Handle("POST", "/v1/models/{model}/query",
                 [registry, stats, coalescer](const HttpRequest& request) {
                   return HandleQuery(request, registry, stats, coalescer);
                 });
  server->Handle("GET", "/v1/membership/{user}",
                 [registry, stats](const HttpRequest& request) {
                   return HandleMembershipGet(request, registry, stats);
                 });
  server->Handle("GET", "/v1/models/{model}/membership/{user}",
                 [registry, stats](const HttpRequest& request) {
                   return HandleMembershipGet(request, registry, stats);
                 });
  server->Handle("GET", "/v1/models", [registry](const HttpRequest&) {
    return HandleListModels(registry);
  });
  server->Handle("GET", "/healthz", [registry](const HttpRequest&) {
    return HandleHealthz(registry);
  });
  server->Handle("GET", "/statsz",
                 [server, registry, stats, coalescer](const HttpRequest&) {
                   return HandleStatsz(server, registry, stats, coalescer);
                 });
  server->Handle("GET", "/metricsz",
                 [server, registry, stats, coalescer](const HttpRequest&) {
                   return HandleMetricsz(server, registry, stats, coalescer);
                 });
  server->Handle("POST", "/admin/reload",
                 [registry](const HttpRequest& request) {
                   return HandleReload(request, registry);
                 });
  server->Handle("POST", "/admin/ingest",
                 [registry, stats, pipeline](const HttpRequest& request) {
                   return HandleIngest(request, registry, stats, pipeline);
                 });
  // Transport-side stage samples (queue_wait, write) land in the same
  // registry the handlers record into.
  server->SetStageRecorder([stats](const char* stage, double micros) {
    stats->RecordRequestStage(stage, micros);
  });
}

}  // namespace cpd::server
