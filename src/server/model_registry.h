#ifndef CPD_SERVER_MODEL_REGISTRY_H_
#define CPD_SERVER_MODEL_REGISTRY_H_

/// \file model_registry.h
/// Zero-downtime hot-swap for a *named set* of serving models. The registry
/// maps model names to generations of ServingModel (ProfileIndex + bundled
/// vocabulary + a QueryEngine over them), each behind an atomically-
/// swappable shared_ptr:
///
///   - request handlers call Snapshot(name) (one shared_ptr copy under a
///     pointer-sized critical section) and hold the snapshot for the
///     request's lifetime, so a concurrent Reload() can never free
///     estimates a request is still reading — an old generation dies when
///     its last in-flight request drops the reference;
///   - LoadFrom(name, path) re-reads the artifact from disk off to the
///     side, builds the whole new ServingModel, then publishes it with one
///     pointer swap. A failed load leaves the serving model untouched
///     (load-then-swap, never swap-then-load). Loading into a new name
///     registers it — that is how a second artifact gets A/B'd behind one
///     server (`/v1/models/{name}/...`).
///
/// The name "default" (kDefaultModel) is what the bare `/v1/query` and
/// `/v1/membership/{user}` aliases resolve to; the single-model overloads
/// below operate on it so single-model callers read exactly as before.
///
/// The swap cell is a mutex-guarded shared_ptr rather than
/// std::atomic<std::shared_ptr>: libstdc++ implements the latter with a
/// hand-rolled lock bit TSan cannot see through (gcc PR101761), and the
/// hot-swap path is exactly what CI's TSan job must be able to prove
/// race-free. The critical section is a refcount bump — tens of ns against
/// microsecond-scale queries. Loads are serialized by a separate mutex
/// that readers never touch. The optional SocialGraph (diffusion queries)
/// is shared_ptr state pinned per generation: streaming ingest replaces the
/// graph for *future* generations via SetGraph(), while every in-flight
/// generation keeps the graph it was built over alive.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/profile_index.h"
#include "serve/query_engine.h"

namespace cpd {
class SocialGraph;
}  // namespace cpd

namespace cpd::server {

/// The model every unqualified route alias resolves to.
inline constexpr const char* kDefaultModel = "default";

/// One immutable generation of everything a request handler needs. The
/// engine references the index and (optionally) the graph; both outlive it
/// (the index lives in this struct, the graph is pinned by this struct's
/// shared_ptr).
struct ServingModel {
  /// ProfileIndex has no public default constructor, so a ServingModel is
  /// born around a fully-built index (the engine is attached afterwards,
  /// once the index has its final address).
  explicit ServingModel(serve::ProfileIndex built_index)
      : index(std::move(built_index)) {}

  serve::ProfileIndex index;
  std::shared_ptr<const Vocabulary> vocabulary;  ///< Null when not bundled.
  std::shared_ptr<const SocialGraph> graph;      ///< Null = no diffusion.
  std::unique_ptr<const serve::QueryEngine> engine;
  std::string name;            ///< Registry name this generation serves as.
  uint64_t generation = 0;     ///< Per-name load counter (first load = 1).
  std::string source_path;
  int64_t loaded_unix_ms = 0;  ///< Registry clock at load time (statsz).

  /// Last ".cpdd" applied by LoadDeltaFrom ("" for full loads).
  std::string delta_path;
  /// The composed delta chain between the base artifact at source_path and
  /// this generation's estimates (null for full loads). The next
  /// LoadDeltaFrom composes onto it, so one mapped base artifact serves an
  /// arbitrarily long delta chain copy-on-write.
  std::shared_ptr<const ModelDelta> applied_delta;
};

/// One row of GET /v1/models (name-sorted).
struct ModelInfo {
  std::string name;
  uint64_t generation = 0;
  int64_t loaded_unix_ms = 0;
  std::string path;
};

class ModelRegistry {
 public:
  /// Milliseconds since the Unix epoch; injectable so tests (and replays)
  /// control the loaded_unix_ms stamped on each generation.
  using Clock = std::function<int64_t()>;

  /// `graph` may be null (diffusion queries then FailedPrecondition); each
  /// generation pins the graph it was loaded with.
  explicit ModelRegistry(serve::ProfileIndexOptions options,
                         std::shared_ptr<const SocialGraph> graph = nullptr);

  /// Loads `path` into `name` and makes it that name's serving model
  /// (initial load, an admin-driven artifact switch, or the registration
  /// of a brand-new name). On failure the previous model (if any) keeps
  /// serving.
  Status LoadFrom(const std::string& name, const std::string& path);
  Status LoadFrom(const std::string& path) {
    return LoadFrom(kDefaultModel, path);
  }

  /// Re-reads `name`'s current path (artifact replaced in place on disk).
  Status Reload(const std::string& name);
  Status Reload() { return Reload(kDefaultModel); }

  /// Patches `name`'s serving model with a ".cpdd" delta artifact. The
  /// delta must name the serving generation's lineage stamp
  /// (index.artifact_generation()) as its base. When the current model is
  /// mmap-backed the new generation shares the mapped base — only touched
  /// pi rows and the refreshed globals are copied — else the base artifact
  /// is re-read from source_path and patched on the heap. Same
  /// load-then-swap guarantee as LoadFrom: a failed delta leaves the
  /// previous model serving.
  Status LoadDeltaFrom(const std::string& name, const std::string& delta_path);
  Status LoadDeltaFrom(const std::string& delta_path) {
    return LoadDeltaFrom(kDefaultModel, delta_path);
  }

  /// Snapshot for one request; null when the name has never loaded.
  std::shared_ptr<const ServingModel> Snapshot(const std::string& name) const;
  std::shared_ptr<const ServingModel> Snapshot() const {
    return Snapshot(kDefaultModel);
  }

  /// Every registered model, name-sorted (GET /v1/models).
  std::vector<ModelInfo> ListModels() const;

  /// Overrides the vocabulary used by future generations (a --vocab side
  /// file beats the bundled one). Takes effect on the next LoadFrom/Reload.
  void SetVocabularyOverride(std::shared_ptr<const Vocabulary> vocab);

  /// Replaces the graph bound into *future* generations (streaming ingest
  /// publishes the merged graph before swapping in the fresh artifact).
  /// Generations already serving keep their original graph alive.
  void SetGraph(std::shared_ptr<const SocialGraph> graph);

  /// The graph future generations will bind (rollback support: a caller
  /// that publishes a new graph and then fails its LoadFrom restores this).
  std::shared_ptr<const SocialGraph> graph() const;

  /// Replaces the wall clock used for loaded_unix_ms (tests).
  void SetClock(Clock clock);

  /// Generation of the default model (0 before its first load).
  uint64_t generation() const { return generation(kDefaultModel); }
  uint64_t generation(const std::string& name) const;

  uint64_t reload_count() const {
    return reload_count_.load(std::memory_order_acquire);
  }
  uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_acquire);
  }

  /// Artifact path of the default model ("" before its first load).
  std::string path() const { return path(kDefaultModel); }
  std::string path(const std::string& name) const;

 private:
  /// Reads, composes, and applies the delta; fills index, vocabulary,
  /// delta_path, and applied_delta (the caller binds graph/engine/name and
  /// swaps). Caller holds reload_mutex_.
  StatusOr<std::shared_ptr<ServingModel>> BuildPatchedModel(
      const ServingModel& prev, const std::string& delta_path);

  serve::ProfileIndexOptions options_;

  mutable std::mutex reload_mutex_;  ///< Serializes loads; readers skip it.
  std::shared_ptr<const Vocabulary> vocab_override_;  ///< Guarded by it.
  std::shared_ptr<const SocialGraph> graph_;          ///< Guarded too.
  Clock clock_;                                       ///< Guarded too.

  std::atomic<uint64_t> reload_count_{0};
  std::atomic<uint64_t> reload_failures_{0};

  /// Guards the name map and every entry's pointer swap. Readers hold it
  /// for one map lookup + refcount bump.
  mutable std::mutex current_mutex_;
  std::map<std::string, std::shared_ptr<const ServingModel>> current_;
};

}  // namespace cpd::server

#endif  // CPD_SERVER_MODEL_REGISTRY_H_
