#ifndef CPD_SERVER_MODEL_REGISTRY_H_
#define CPD_SERVER_MODEL_REGISTRY_H_

/// \file model_registry.h
/// Zero-downtime model hot-swap for the serving layer. The registry owns
/// the current ServingModel (ProfileIndex + bundled vocabulary + a
/// QueryEngine over them) behind an atomically-swappable shared_ptr:
///
///   - request handlers call Snapshot() (one shared_ptr copy under a
///     pointer-sized critical section) and hold the snapshot for the
///     request's lifetime, so a concurrent Reload() can never free
///     estimates a request is still reading — the old model dies when its
///     last in-flight request drops the reference;
///   - Reload() re-reads the artifact from disk off to the side, builds the
///     whole new ServingModel, then publishes it with one pointer swap.
///     A failed reload leaves the serving model untouched (load-then-swap,
///     never swap-then-load).
///
/// The swap cell is a mutex-guarded shared_ptr rather than
/// std::atomic<std::shared_ptr>: libstdc++ implements the latter with a
/// hand-rolled lock bit TSan cannot see through (gcc PR101761), and the
/// hot-swap path is exactly what CI's TSan job must be able to prove
/// race-free. The critical section is a refcount bump — tens of ns against
/// microsecond-scale queries. Reloads are serialized by a separate mutex
/// that readers never touch. The optional SocialGraph (diffusion queries)
/// is shared_ptr state pinned per generation: streaming ingest replaces the
/// graph for *future* generations via SetGraph(), while every in-flight
/// generation keeps the graph it was built over alive.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "serve/profile_index.h"
#include "serve/query_engine.h"

namespace cpd {
class SocialGraph;
}  // namespace cpd

namespace cpd::server {

/// One immutable generation of everything a request handler needs. The
/// engine references the index and (optionally) the graph; both outlive it
/// (the index lives in this struct, the graph is pinned by this struct's
/// shared_ptr).
struct ServingModel {
  /// ProfileIndex has no public default constructor, so a ServingModel is
  /// born around a fully-built index (the engine is attached afterwards,
  /// once the index has its final address).
  explicit ServingModel(serve::ProfileIndex built_index)
      : index(std::move(built_index)) {}

  serve::ProfileIndex index;
  std::shared_ptr<const Vocabulary> vocabulary;  ///< Null when not bundled.
  std::shared_ptr<const SocialGraph> graph;      ///< Null = no diffusion.
  std::unique_ptr<const serve::QueryEngine> engine;
  uint64_t generation = 0;
  std::string source_path;
  int64_t loaded_unix_ms = 0;  ///< Registry clock at load time (statsz).
};

class ModelRegistry {
 public:
  /// Milliseconds since the Unix epoch; injectable so tests (and replays)
  /// control the loaded_unix_ms stamped on each generation.
  using Clock = std::function<int64_t()>;

  /// `graph` may be null (diffusion queries then FailedPrecondition); each
  /// generation pins the graph it was loaded with.
  explicit ModelRegistry(serve::ProfileIndexOptions options,
                         std::shared_ptr<const SocialGraph> graph = nullptr);

  /// Loads `path` and makes it the serving model (initial load, or an
  /// admin-driven switch to a different artifact). On failure the previous
  /// model (if any) keeps serving.
  Status LoadFrom(const std::string& path);

  /// Re-reads the current path (artifact replaced in place on disk).
  Status Reload();

  /// Snapshot for one request; null before the first LoadFrom.
  std::shared_ptr<const ServingModel> Snapshot() const {
    std::lock_guard<std::mutex> lock(current_mutex_);
    return current_;
  }

  /// Overrides the vocabulary used by future generations (a --vocab side
  /// file beats the bundled one). Takes effect on the next LoadFrom/Reload
  /// and retroactively applies to the current model on LoadFrom.
  void SetVocabularyOverride(std::shared_ptr<const Vocabulary> vocab);

  /// Replaces the graph bound into *future* generations (streaming ingest
  /// publishes the merged graph before swapping in the fresh artifact).
  /// Generations already serving keep their original graph alive.
  void SetGraph(std::shared_ptr<const SocialGraph> graph);

  /// The graph future generations will bind (rollback support: a caller
  /// that publishes a new graph and then fails its LoadFrom restores this).
  std::shared_ptr<const SocialGraph> graph() const;

  /// Replaces the wall clock used for loaded_unix_ms (tests).
  void SetClock(Clock clock);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  uint64_t reload_count() const {
    return reload_count_.load(std::memory_order_acquire);
  }
  uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_acquire);
  }
  std::string path() const;

 private:
  serve::ProfileIndexOptions options_;

  mutable std::mutex reload_mutex_;  ///< Serializes loads; readers skip it.
  std::string path_;                 ///< Guarded by reload_mutex_.
  std::shared_ptr<const Vocabulary> vocab_override_;  ///< Guarded too.
  std::shared_ptr<const SocialGraph> graph_;          ///< Guarded too.
  Clock clock_;                                       ///< Guarded too.

  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> reload_count_{0};
  std::atomic<uint64_t> reload_failures_{0};

  mutable std::mutex current_mutex_;  ///< Guards only the pointer swap.
  std::shared_ptr<const ServingModel> current_;
};

}  // namespace cpd::server

#endif  // CPD_SERVER_MODEL_REGISTRY_H_
