#include "server/model_registry.h"

#include <chrono>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cpd::server {

namespace {
int64_t SystemClockMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ModelRegistry::ModelRegistry(serve::ProfileIndexOptions options,
                             std::shared_ptr<const SocialGraph> graph)
    : options_(options), graph_(std::move(graph)), clock_(SystemClockMillis) {}

void ModelRegistry::SetVocabularyOverride(
    std::shared_ptr<const Vocabulary> vocab) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  vocab_override_ = std::move(vocab);
}

void ModelRegistry::SetGraph(std::shared_ptr<const SocialGraph> graph) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  graph_ = std::move(graph);
}

std::shared_ptr<const SocialGraph> ModelRegistry::graph() const {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  return graph_;
}

void ModelRegistry::SetClock(Clock clock) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  clock_ = std::move(clock);
}

std::string ModelRegistry::path() const {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  return path_;
}

Status ModelRegistry::LoadFrom(const std::string& path) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  WallTimer timer;
  auto bundle = serve::LoadModelBundle(path, options_);
  if (!bundle.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_acq_rel);
    CPD_LOG(Error) << "model load from " << path
                   << " failed: " << bundle.status().ToString()
                   << (Snapshot() != nullptr ? " (previous model keeps serving)"
                                             : "");
    return bundle.status();
  }
  auto model = std::make_shared<ServingModel>(std::move(bundle->index));
  model->vocabulary =
      vocab_override_ != nullptr ? vocab_override_ : bundle->vocabulary;
  model->graph = graph_;  // Pinned: this generation owns a reference.
  // The engine binds references into this very ServingModel, so it is
  // created only after the index has reached its final address.
  model->engine = std::make_unique<const serve::QueryEngine>(
      model->index, model->graph.get());
  model->generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  model->source_path = path;
  model->loaded_unix_ms = clock_();
  path_ = path;
  {
    std::lock_guard<std::mutex> swap_lock(current_mutex_);
    current_ = std::move(model);
  }
  reload_count_.fetch_add(1, std::memory_order_acq_rel);
  CPD_LOG(Info) << "serving model generation " << generation() << " from "
                << path << " (" << StrFormat("%.0f", timer.ElapsedMillis())
                << " ms: |C|=" << Snapshot()->index.num_communities()
                << " |Z|=" << Snapshot()->index.num_topics()
                << " users=" << Snapshot()->index.num_users() << " vocab "
                << (Snapshot()->vocabulary != nullptr ? "bundled" : "absent")
                << ")";
  return Status::OK();
}

Status ModelRegistry::Reload() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(reload_mutex_);
    path = path_;
  }
  if (path.empty()) {
    return Status::FailedPrecondition("no model loaded yet");
  }
  return LoadFrom(path);
}

}  // namespace cpd::server
