#include "server/model_registry.h"

#include <chrono>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cpd::server {

namespace {
int64_t SystemClockMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ModelRegistry::ModelRegistry(serve::ProfileIndexOptions options,
                             std::shared_ptr<const SocialGraph> graph)
    : options_(options), graph_(std::move(graph)), clock_(SystemClockMillis) {}

void ModelRegistry::SetVocabularyOverride(
    std::shared_ptr<const Vocabulary> vocab) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  vocab_override_ = std::move(vocab);
}

void ModelRegistry::SetGraph(std::shared_ptr<const SocialGraph> graph) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  graph_ = std::move(graph);
}

std::shared_ptr<const SocialGraph> ModelRegistry::graph() const {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  return graph_;
}

void ModelRegistry::SetClock(Clock clock) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  clock_ = std::move(clock);
}

std::shared_ptr<const ServingModel> ModelRegistry::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(current_mutex_);
  const auto it = current_.find(name);
  return it == current_.end() ? nullptr : it->second;
}

uint64_t ModelRegistry::generation(const std::string& name) const {
  const auto snapshot = Snapshot(name);
  return snapshot == nullptr ? 0 : snapshot->generation;
}

std::string ModelRegistry::path(const std::string& name) const {
  const auto snapshot = Snapshot(name);
  return snapshot == nullptr ? std::string() : snapshot->source_path;
}

std::vector<ModelInfo> ModelRegistry::ListModels() const {
  std::vector<ModelInfo> models;
  std::lock_guard<std::mutex> lock(current_mutex_);
  models.reserve(current_.size());
  for (const auto& [name, model] : current_) {  // std::map: name-sorted.
    models.push_back(ModelInfo{name, model->generation, model->loaded_unix_ms,
                               model->source_path});
  }
  return models;
}

Status ModelRegistry::LoadFrom(const std::string& name,
                               const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  std::lock_guard<std::mutex> lock(reload_mutex_);
  WallTimer timer;
  auto bundle = serve::LoadModelBundle(path, options_);
  if (!bundle.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_acq_rel);
    CPD_LOG(Error) << "model load from " << path << " into '" << name
                   << "' failed: " << bundle.status().ToString()
                   << (Snapshot(name) != nullptr
                           ? " (previous model keeps serving)"
                           : "");
    return bundle.status();
  }
  auto model = std::make_shared<ServingModel>(std::move(bundle->index));
  model->vocabulary =
      vocab_override_ != nullptr ? vocab_override_ : bundle->vocabulary;
  model->graph = graph_;  // Pinned: this generation owns a reference.
  // The engine binds references into this very ServingModel, so it is
  // created only after the index has reached its final address.
  model->engine = std::make_unique<const serve::QueryEngine>(
      model->index, model->graph.get());
  model->name = name;
  model->source_path = path;
  model->loaded_unix_ms = clock_();
  {
    std::lock_guard<std::mutex> swap_lock(current_mutex_);
    auto& cell = current_[name];
    model->generation = (cell == nullptr ? 0 : cell->generation) + 1;
    cell = std::move(model);
  }
  reload_count_.fetch_add(1, std::memory_order_acq_rel);
  const auto loaded = Snapshot(name);
  CPD_LOG(Info) << "serving model '" << name << "' generation "
                << loaded->generation << " from " << path << " ("
                << StrFormat("%.0f", timer.ElapsedMillis())
                << " ms: |C|=" << loaded->index.num_communities()
                << " |Z|=" << loaded->index.num_topics()
                << " users=" << loaded->index.num_users() << " vocab "
                << (loaded->vocabulary != nullptr ? "bundled" : "absent")
                << ")";
  return Status::OK();
}

StatusOr<std::shared_ptr<ServingModel>> ModelRegistry::BuildPatchedModel(
    const ServingModel& prev, const std::string& delta_path) {
  auto decoded = ReadModelDelta(delta_path);
  if (!decoded.ok()) return decoded.status();
  if (decoded->base_generation != prev.index.artifact_generation()) {
    return Status::FailedPrecondition(StrFormat(
        "delta %s patches generation %llu but model '%s' serves generation "
        "%llu",
        delta_path.c_str(),
        static_cast<unsigned long long>(decoded->base_generation),
        prev.name.c_str(),
        static_cast<unsigned long long>(prev.index.artifact_generation())));
  }
  ModelDelta composed;
  if (prev.applied_delta != nullptr) {
    auto merged = ComposeModelDeltas(*prev.applied_delta, *decoded);
    if (!merged.ok()) return merged.status();
    composed = std::move(*merged);
  } else {
    composed = std::move(*decoded);
  }

  std::shared_ptr<ServingModel> model;
  const auto& mapped = prev.index.mapped_artifact();
  if (mapped != nullptr && mapped->generation() == composed.base_generation) {
    // Copy-on-write over the shared mapping: untouched pi rows stay in the
    // page cache, only touched rows + the (|U|-independent) globals copy.
    auto index =
        serve::ProfileIndex::FromMappedWithDelta(mapped, composed, options_);
    if (!index.ok()) return index.status();
    model = std::make_shared<ServingModel>(std::move(*index));
    if (composed.has_vocabulary()) {
      Vocabulary base_vocab;
      CPD_RETURN_IF_ERROR(mapped->BuildVocabulary(&base_vocab));
      auto vocab = std::make_shared<Vocabulary>();
      for (size_t w = 0; w < base_vocab.size(); ++w) {
        vocab->GetOrAdd(base_vocab.WordOf(static_cast<WordId>(w)));
      }
      for (const std::string& word : composed.appended_words) {
        vocab->GetOrAdd(word);
      }
      if (vocab->size() != composed.vocab_size) {
        return Status::InvalidArgument(
            "model delta: an appended word collides with the base "
            "vocabulary");
      }
      for (size_t w = 0; w < composed.vocab_frequencies.size(); ++w) {
        vocab->CountOccurrence(static_cast<WordId>(w),
                               composed.vocab_frequencies[w]);
      }
      model->vocabulary = std::move(vocab);
    }
  } else {
    // Heap fallback: re-read the base artifact and patch it whole. Reached
    // when the base was heap-loaded (load_mode=heap, v1/v2, text model).
    auto base = ReadModelArtifact(prev.source_path);
    if (!base.ok()) return base.status();
    auto patched = ApplyModelDelta(*base, composed);
    if (!patched.ok()) return patched.status();
    std::shared_ptr<Vocabulary> vocab;
    if (patched->has_vocabulary()) {
      vocab = std::make_shared<Vocabulary>();
      CPD_RETURN_IF_ERROR(patched->BuildVocabulary(vocab.get()));
    }
    auto index =
        serve::ProfileIndex::FromArtifact(std::move(*patched), options_);
    if (!index.ok()) return index.status();
    model = std::make_shared<ServingModel>(std::move(*index));
    model->vocabulary = std::move(vocab);
  }
  model->delta_path = delta_path;
  model->applied_delta =
      std::make_shared<const ModelDelta>(std::move(composed));
  return model;
}

Status ModelRegistry::LoadDeltaFrom(const std::string& name,
                                    const std::string& delta_path) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  std::lock_guard<std::mutex> lock(reload_mutex_);
  const auto prev = Snapshot(name);
  if (prev == nullptr) {
    reload_failures_.fetch_add(1, std::memory_order_acq_rel);
    return Status::FailedPrecondition("no model named '" + name +
                                      "' loaded yet (a delta needs a base)");
  }
  WallTimer timer;
  auto built = BuildPatchedModel(*prev, delta_path);
  if (!built.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_acq_rel);
    CPD_LOG(Error) << "delta load from " << delta_path << " into '" << name
                   << "' failed: " << built.status().ToString()
                   << " (previous model keeps serving)";
    return built.status();
  }
  auto model = std::move(*built);
  if (vocab_override_ != nullptr) model->vocabulary = vocab_override_;
  model->graph = graph_;  // Pinned: this generation owns a reference.
  model->engine = std::make_unique<const serve::QueryEngine>(
      model->index, model->graph.get());
  model->name = name;
  model->source_path = prev->source_path;
  model->loaded_unix_ms = clock_();
  {
    std::lock_guard<std::mutex> swap_lock(current_mutex_);
    auto& cell = current_[name];
    model->generation = (cell == nullptr ? 0 : cell->generation) + 1;
    cell = std::move(model);
  }
  reload_count_.fetch_add(1, std::memory_order_acq_rel);
  const auto loaded = Snapshot(name);
  CPD_LOG(Info) << "serving model '" << name << "' generation "
                << loaded->generation << " from " << loaded->source_path
                << " + delta " << delta_path << " ("
                << StrFormat("%.0f", timer.ElapsedMillis()) << " ms: "
                << (loaded->index.is_mmap_backed() ? "copy-on-write"
                                                   : "heap rebuild")
                << ", touched "
                << loaded->applied_delta->touched_users.size() << "/"
                << loaded->index.num_users() << " users, lineage generation "
                << loaded->index.artifact_generation() << ")";
  return Status::OK();
}

Status ModelRegistry::Reload(const std::string& name) {
  const std::string current_path = path(name);
  if (current_path.empty()) {
    return Status::FailedPrecondition("no model named '" + name +
                                      "' loaded yet");
  }
  return LoadFrom(name, current_path);
}

}  // namespace cpd::server
