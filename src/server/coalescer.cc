#include "server/coalescer.h"

#include <chrono>
#include <span>
#include <utility>

#include "obs/clock.h"

namespace cpd::server {

Coalescer::Coalescer(CoalescerOptions options) : options_(options) {
  if (options_.max_batch < 1) options_.max_batch = 1;
}

void Coalescer::Seal(Batch* batch, std::atomic<uint64_t>* reason) {
  // Caller holds mutex_.
  if (batch->sealed) return;
  batch->sealed = true;
  if (reason != nullptr) reason->fetch_add(1, std::memory_order_relaxed);
  if (open_.get() == batch) open_.reset();
  batch->cv.notify_all();  // Wake the leader out of its window sleep.
}

StatusOr<serve::QueryResponse> Coalescer::Execute(
    const std::shared_ptr<const ServingModel>& model,
    serve::QueryRequest request, double* batch_wait_us) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!enabled() || options_.max_batch == 1) {
    return model->engine->Query(request);
  }

  std::shared_ptr<Batch> batch;
  size_t slot = 0;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (open_ != nullptr && open_->model.get() != model.get()) {
      // A hot swap landed mid-window: flush the stale-generation batch and
      // open a fresh one rather than mixing generations.
      Seal(open_.get(), &flush_mismatch_);
    }
    if (open_ == nullptr) {
      batch = std::make_shared<Batch>();
      batch->model = model;
      open_ = batch;
      leader = true;
    } else {
      batch = open_;
    }
    slot = batch->requests.size();
    batch->requests.push_back(std::move(request));
    if (static_cast<int>(batch->requests.size()) >= options_.max_batch) {
      Seal(batch.get(), &flush_full_);
    }

    if (leader) {
      // Sleep out the window (or until a join seals the batch early).
      const int64_t wait_start_us = obs::NowMicros();
      const bool sealed_early = batch->cv.wait_for(
          lock, std::chrono::microseconds(options_.window_us),
          [&] { return batch->sealed; });
      if (batch_wait_us != nullptr) {
        *batch_wait_us =
            static_cast<double>(obs::NowMicros() - wait_start_us);
      }
      if (!sealed_early) Seal(batch.get(), &flush_timeout_);
    } else {
      const int64_t wait_start_us = obs::NowMicros();
      batch->cv.wait(lock, [&] { return batch->done; });
      if (batch_wait_us != nullptr) {
        *batch_wait_us =
            static_cast<double>(obs::NowMicros() - wait_start_us);
      }
      return std::move(batch->results[slot]);
    }
  }

  // Leader, outside the lock: run the sealed batch through the one batched
  // scoring path and publish per-slot results.
  std::vector<StatusOr<serve::QueryResponse>> results =
      batch->model->engine->QueryBatch(
          std::span<const serve::QueryRequest>(batch->requests),
          /*pool=*/nullptr);
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (results.size() >= 2) {
    coalesced_.fetch_add(results.size(), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch->results = std::move(results);
    batch->done = true;
  }
  batch->cv.notify_all();
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(batch->results[slot]);
}

CoalescerStats Coalescer::stats() const {
  CoalescerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.flush_full = flush_full_.load(std::memory_order_relaxed);
  stats.flush_timeout = flush_timeout_.load(std::memory_order_relaxed);
  stats.flush_mismatch = flush_mismatch_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cpd::server
