#ifndef CPD_SERVER_COALESCER_H_
#define CPD_SERVER_COALESCER_H_

/// \file coalescer.h
/// Request-level micro-batching for single /v1/query requests. Concurrent
/// single queries accumulate in a bounded window and are fanned through the
/// existing QueryEngine::QueryBatch path, amortizing index walks and
/// heap-based top-k across requests; per-slot responses are handed back to
/// their waiting handler threads.
///
/// Protocol: the first request to arrive opens a batch and becomes its
/// *leader*; it sleeps up to `window_us` while followers join. The batch
/// seals when it reaches `max_batch` slots, when the window expires, or
/// when a request arrives holding a different model generation (a hot swap
/// mid-window: batches never mix generations, so the newcomer opens a
/// fresh batch and the old one flushes). The leader then runs QueryBatch
/// over the sealed slots and wakes the followers, each of which takes its
/// own positionally-aligned StatusOr — QueryBatch executes exactly
/// `Query(request)` per slot, so a coalesced response is byte-identical to
/// an uncoalesced one (the io-mode differential suite pins this).
///
/// Handler threads block at most ~window_us + batch execution; the leader
/// executes inline on its own worker thread (never re-entering the server
/// pool, which could deadlock when every worker is a waiting follower).
/// window_us == 0 disables coalescing: Execute() degenerates to a direct
/// engine->Query() call with zero locking.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/query_engine.h"
#include "server/model_registry.h"
#include "util/status.h"

namespace cpd::server {

struct CoalescerOptions {
  int window_us = 0;   ///< Micro-batch window; 0 disables coalescing.
  int max_batch = 16;  ///< Slots per batch; full batches flush early.
};

/// Monotonic counters (statsz "coalescer" section).
struct CoalescerStats {
  uint64_t requests = 0;        ///< Requests routed through Execute().
  uint64_t batches = 0;         ///< Batches flushed.
  uint64_t coalesced = 0;       ///< Requests sharing a batch of size >= 2.
  uint64_t flush_full = 0;      ///< Batches sealed by max_batch.
  uint64_t flush_timeout = 0;   ///< Batches sealed by the window expiring.
  uint64_t flush_mismatch = 0;  ///< Batches sealed by a generation change.
};

class Coalescer {
 public:
  explicit Coalescer(CoalescerOptions options);

  /// Answers one single query against `model`'s engine, possibly batched
  /// with concurrent callers holding the same snapshot. Blocks up to the
  /// window plus batch execution; the caller renders the StatusOr exactly
  /// as it would an inline engine->Query() result.
  ///
  /// `batch_wait_us` (optional) receives the microseconds this call spent
  /// blocked on the batching protocol (the leader's window sleep, or a
  /// follower's wait — which spans the leader's batch execution too, since
  /// that is what the follower is blocked on). Untouched on the disabled
  /// direct path, so callers can pre-set it to 0.
  StatusOr<serve::QueryResponse> Execute(
      const std::shared_ptr<const ServingModel>& model,
      serve::QueryRequest request, double* batch_wait_us = nullptr);

  bool enabled() const { return options_.window_us > 0; }
  const CoalescerOptions& options() const { return options_; }
  CoalescerStats stats() const;

 private:
  /// One in-flight micro-batch. Lifetime is shared by the leader and every
  /// follower; slots are positionally aligned requests/results.
  struct Batch {
    std::shared_ptr<const ServingModel> model;
    std::vector<serve::QueryRequest> requests;
    std::vector<StatusOr<serve::QueryResponse>> results;
    bool sealed = false;  ///< No more joins; the leader may flush.
    bool done = false;    ///< Results are populated; followers may take.
    std::condition_variable cv;
  };

  /// Seals `batch` (idempotent) under mutex_ and detaches it from open_.
  void Seal(Batch* batch, std::atomic<uint64_t>* reason);

  CoalescerOptions options_;

  std::mutex mutex_;
  std::shared_ptr<Batch> open_;  ///< Joinable batch, null between windows.

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> flush_full_{0};
  std::atomic<uint64_t> flush_timeout_{0};
  std::atomic<uint64_t> flush_mismatch_{0};
};

}  // namespace cpd::server

#endif  // CPD_SERVER_COALESCER_H_
