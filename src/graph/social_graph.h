#ifndef CPD_GRAPH_SOCIAL_GRAPH_H_
#define CPD_GRAPH_SOCIAL_GRAPH_H_

/// \file social_graph.h
/// The paper's problem input (Definition 1): a social graph
/// G = (U, D, F, E) of users, user-published documents, directed friendship
/// links F (follow / co-author) and directed, timestamped diffusion links E
/// between documents (retweet / citation). Immutable once built; construct
/// via GraphBuilder.

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "text/corpus.h"

namespace cpd {

/// Directed friendship link: u follows / co-authors-with v.
struct FriendshipLink {
  UserId u = -1;
  UserId v = -1;
  bool operator==(const FriendshipLink&) const = default;
};

/// Directed diffusion link: document i diffuses (retweets / cites)
/// document j, at discrete time bin `time`.
struct DiffusionLink {
  DocId i = -1;
  DocId j = -1;
  int32_t time = 0;
  bool operator==(const DiffusionLink&) const = default;
};

/// Raw per-user behavioural counts from which the individual-preference
/// features of §3.1 are derived.
struct UserActivity {
  int64_t followers = 0;   ///< In-degree in F.
  int64_t followees = 0;   ///< Out-degree in F.
  int64_t documents = 0;   ///< |D_u| ("tweets"/"papers").
  int64_t diffusions = 0;  ///< Documents of u that diffuse another document.

  /// |Followers(u)| / |Followees(u)|, smoothed to avoid division by zero.
  double Popularity() const {
    return static_cast<double>(followers + 1) / static_cast<double>(followees + 1);
  }
  /// |Retweets(u)| / |Tweets(u)|, smoothed.
  double Activeness() const {
    return static_cast<double>(diffusions + 1) / static_cast<double>(documents + 1);
  }
};

/// Immutable social graph. All adjacency is precomputed:
///  - FriendNeighbors(u): Lambda_u, users adjacent to u in F (either direction);
///  - DiffusionNeighbors(i): Lambda_i, diffusion links incident to document i.
class SocialGraph {
 public:
  /// An empty graph; populate via GraphBuilder::Build.
  SocialGraph() = default;

  size_t num_users() const { return num_users_; }
  size_t num_documents() const { return corpus_.num_documents(); }
  size_t num_friendship_links() const { return friendship_links_.size(); }
  size_t num_diffusion_links() const { return diffusion_links_.size(); }
  size_t vocabulary_size() const { return corpus_.vocabulary().size(); }

  const Corpus& corpus() const { return corpus_; }
  const std::vector<FriendshipLink>& friendship_links() const {
    return friendship_links_;
  }
  const std::vector<DiffusionLink>& diffusion_links() const {
    return diffusion_links_;
  }

  const Document& document(DocId d) const { return corpus_.document(d); }

  /// Documents published by user u.
  std::span<const DocId> DocumentsOf(UserId u) const;

  /// Lambda_u: users v with (u,v) in F or (v,u) in F (deduplicated).
  std::span<const UserId> FriendNeighbors(UserId u) const;

  /// Lambda_i: indices into diffusion_links() incident to document i
  /// (as source or target).
  std::span<const int32_t> DiffusionNeighbors(DocId i) const;

  /// True if the directed friendship link (u, v) exists.
  bool HasFriendship(UserId u, UserId v) const;

  /// True if the directed diffusion link (i, j) exists.
  bool HasDiffusion(DocId i, DocId j) const;

  const UserActivity& activity(UserId u) const;

  /// Number of discrete time bins covered by diffusion links:
  /// 1 + max link time (at least 1).
  int32_t num_time_bins() const { return num_time_bins_; }

 private:
  friend class GraphBuilder;

  size_t num_users_ = 0;
  Corpus corpus_;
  std::vector<FriendshipLink> friendship_links_;
  std::vector<DiffusionLink> diffusion_links_;

  // CSR adjacency.
  std::vector<int64_t> friend_offsets_;
  std::vector<UserId> friend_neighbors_;
  std::vector<int64_t> diffusion_offsets_;
  std::vector<int32_t> diffusion_incident_;
  std::vector<std::vector<DocId>> documents_by_user_;

  std::unordered_set<int64_t> friendship_set_;  // u * num_users + v
  std::unordered_set<int64_t> diffusion_set_;   // i * num_docs + j

  std::vector<UserActivity> activity_;
  int32_t num_time_bins_ = 1;
};

}  // namespace cpd

#endif  // CPD_GRAPH_SOCIAL_GRAPH_H_
