#ifndef CPD_GRAPH_GRAPH_BUILDER_H_
#define CPD_GRAPH_GRAPH_BUILDER_H_

/// \file graph_builder.h
/// Mutable accumulator that validates and freezes a SocialGraph: deduplicates
/// links, optionally drops users left without documents (paper §6.1),
/// computes CSR adjacency and the per-user activity counts.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Declares n users with ids [0, n). Must be called before adding data.
  void SetNumUsers(size_t n) { num_users_ = n; }
  size_t num_users() const { return num_users_; }

  /// Pre-seeds the vocabulary (before any document is added) so word ids
  /// stay aligned with a source corpus, e.g. for cross-validation rebuilds.
  void SetVocabulary(Vocabulary vocabulary) {
    corpus_.SetVocabulary(std::move(vocabulary));
  }

  /// Tokenizes and adds a raw-text document. Returns the DocId, or
  /// Corpus::kInvalidDoc if it fails the min-length filter.
  DocId AddDocument(UserId user, int32_t time, std::string_view text,
                    const TokenizerOptions& options = {});

  /// Adds an already-tokenized document (synthetic generator path).
  DocId AddTokenizedDocument(UserId user, int32_t time,
                             std::span<const WordId> words);

  /// Adds a document given as verbatim vocabulary terms: each term is
  /// GetOrAdd'ed (growing the vocabulary), bypassing the tokenizer's
  /// filters. Used by the ingest path for pre-tokenized update batches.
  DocId AddTermDocument(UserId user, int32_t time,
                        std::span<const std::string> terms);

  /// Adds a directed friendship link u -> v. Self-loops and duplicates are
  /// silently ignored.
  void AddFriendship(UserId u, UserId v);

  /// Adds a directed diffusion link: doc i diffuses doc j at time >= 0.
  /// Self-loops and duplicates are silently ignored.
  void AddDiffusion(DocId i, DocId j, int32_t time);

  /// Validates and freezes the graph.
  /// \param drop_isolated_users Remove users with no documents, remapping
  ///        user ids densely and dropping their friendship links (§6.1).
  StatusOr<SocialGraph> Build(bool drop_isolated_users = false);

 private:
  size_t num_users_ = 0;
  Corpus corpus_;
  std::vector<FriendshipLink> friendship_links_;
  std::vector<DiffusionLink> diffusion_links_;
  std::unordered_set<int64_t> friendship_keys_;
  std::unordered_set<int64_t> diffusion_keys_;
};

}  // namespace cpd

#endif  // CPD_GRAPH_GRAPH_BUILDER_H_
