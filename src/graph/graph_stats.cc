#include "graph/graph_stats.h"

#include "util/string_util.h"

namespace cpd {

GraphStats ComputeGraphStats(const SocialGraph& graph) {
  GraphStats stats;
  stats.num_users = graph.num_users();
  stats.num_friendship_links = graph.num_friendship_links();
  stats.num_diffusion_links = graph.num_diffusion_links();
  stats.num_documents = graph.num_documents();
  stats.num_words = graph.vocabulary_size();
  stats.num_time_bins = graph.num_time_bins();

  if (stats.num_users > 0) {
    stats.avg_documents_per_user =
        static_cast<double>(stats.num_documents) / static_cast<double>(stats.num_users);
    int64_t total_degree = 0;
    for (size_t u = 0; u < stats.num_users; ++u) {
      total_degree +=
          static_cast<int64_t>(graph.FriendNeighbors(static_cast<UserId>(u)).size());
    }
    stats.avg_friend_degree =
        static_cast<double>(total_degree) / static_cast<double>(stats.num_users);
  }
  if (stats.num_documents > 0) {
    stats.avg_words_per_document =
        static_cast<double>(graph.corpus().total_tokens()) /
        static_cast<double>(stats.num_documents);
    stats.avg_diffusions_per_doc =
        2.0 * static_cast<double>(stats.num_diffusion_links) /
        static_cast<double>(stats.num_documents);
  }
  return stats;
}

std::string GraphStatsToString(const GraphStats& stats) {
  return StrFormat(
      "users=%zu friend_links=%zu diff_links=%zu docs=%zu words=%zu "
      "docs/user=%.2f words/doc=%.2f degree=%.2f time_bins=%d",
      stats.num_users, stats.num_friendship_links, stats.num_diffusion_links,
      stats.num_documents, stats.num_words, stats.avg_documents_per_user,
      stats.avg_words_per_document, stats.avg_friend_degree, stats.num_time_bins);
}

}  // namespace cpd
