#include "graph/social_graph.h"

#include "util/logging.h"

namespace cpd {

namespace {
// Packs an ordered id pair into a single set key (ids are < 2^31).
inline int64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}
}  // namespace

std::span<const DocId> SocialGraph::DocumentsOf(UserId u) const {
  CPD_DCHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
  const auto& docs = documents_by_user_[static_cast<size_t>(u)];
  return {docs.data(), docs.size()};
}

std::span<const UserId> SocialGraph::FriendNeighbors(UserId u) const {
  CPD_DCHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
  const auto begin = friend_offsets_[static_cast<size_t>(u)];
  const auto end = friend_offsets_[static_cast<size_t>(u) + 1];
  return {friend_neighbors_.data() + begin, static_cast<size_t>(end - begin)};
}

std::span<const int32_t> SocialGraph::DiffusionNeighbors(DocId i) const {
  CPD_DCHECK(i >= 0 && static_cast<size_t>(i) < num_documents());
  const auto begin = diffusion_offsets_[static_cast<size_t>(i)];
  const auto end = diffusion_offsets_[static_cast<size_t>(i) + 1];
  return {diffusion_incident_.data() + begin, static_cast<size_t>(end - begin)};
}

bool SocialGraph::HasFriendship(UserId u, UserId v) const {
  return friendship_set_.count(PairKey(u, v)) > 0;
}

bool SocialGraph::HasDiffusion(DocId i, DocId j) const {
  return diffusion_set_.count(PairKey(i, j)) > 0;
}

const UserActivity& SocialGraph::activity(UserId u) const {
  CPD_DCHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
  return activity_[static_cast<size_t>(u)];
}

}  // namespace cpd
