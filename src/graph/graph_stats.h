#ifndef CPD_GRAPH_GRAPH_STATS_H_
#define CPD_GRAPH_GRAPH_STATS_H_

/// \file graph_stats.h
/// Dataset statistics in the shape of the paper's Table 3, plus degree
/// summaries used to sanity-check the synthetic generators.

#include <string>

#include "graph/social_graph.h"

namespace cpd {

/// Table-3 row: #(user), #(friend. link), #(diff. link), #(doc.), #(word).
struct GraphStats {
  size_t num_users = 0;
  size_t num_friendship_links = 0;
  size_t num_diffusion_links = 0;
  size_t num_documents = 0;
  size_t num_words = 0;  ///< Vocabulary size.

  double avg_documents_per_user = 0.0;
  double avg_words_per_document = 0.0;
  double avg_friend_degree = 0.0;       ///< Undirected neighbor count.
  double avg_diffusions_per_doc = 0.0;  ///< Incident diffusion links.
  int32_t num_time_bins = 1;
};

/// Computes all statistics in one pass.
GraphStats ComputeGraphStats(const SocialGraph& graph);

/// One-line summary, e.g. for logging.
std::string GraphStatsToString(const GraphStats& stats);

}  // namespace cpd

#endif  // CPD_GRAPH_GRAPH_STATS_H_
