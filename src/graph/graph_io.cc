#include "graph/graph_io.h"

#include <sstream>

#include "util/file_util.h"
#include "util/string_util.h"

namespace cpd {

namespace {

StatusOr<int64_t> ParseInt(const std::string& text, const char* what) {
  try {
    size_t pos = 0;
    const int64_t value = std::stoll(text, &pos);
    if (pos != text.size()) {
      return Status::InvalidArgument(StrFormat("trailing junk in %s: %s", what,
                                               text.c_str()));
    }
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument(StrFormat("cannot parse %s: %s", what,
                                             text.c_str()));
  }
}

}  // namespace

StatusOr<SocialGraph> LoadSocialGraph(size_t num_users,
                                      const std::string& documents_path,
                                      const std::string& friendship_path,
                                      const std::string& diffusion_path,
                                      const GraphIoOptions& options) {
  GraphBuilder builder;
  builder.SetNumUsers(num_users);

  auto doc_lines = ReadLines(documents_path);
  if (!doc_lines.ok()) return doc_lines.status();
  // Maps file row -> builder DocId (kInvalidDoc for filtered rows).
  std::vector<DocId> row_to_doc;
  row_to_doc.reserve(doc_lines->size());
  for (const std::string& line : *doc_lines) {
    if (line.empty()) continue;
    const auto parts = Split(line, '\t');
    if (parts.size() < 3) {
      return Status::InvalidArgument("documents row needs 3 fields: " + line);
    }
    auto user = ParseInt(parts[0], "user id");
    if (!user.ok()) return user.status();
    auto time = ParseInt(parts[1], "document time");
    if (!time.ok()) return time.status();
    if (*user < 0 || static_cast<size_t>(*user) >= num_users) {
      return Status::OutOfRange("user id out of range: " + parts[0]);
    }
    row_to_doc.push_back(builder.AddDocument(static_cast<UserId>(*user),
                                             static_cast<int32_t>(*time), parts[2],
                                             options.tokenizer));
  }

  auto friend_lines = ReadLines(friendship_path);
  if (!friend_lines.ok()) return friend_lines.status();
  for (const std::string& line : *friend_lines) {
    if (line.empty()) continue;
    const auto parts = Split(line, '\t');
    if (parts.size() < 2) {
      return Status::InvalidArgument("friendship row needs 2 fields: " + line);
    }
    auto u = ParseInt(parts[0], "friendship source");
    if (!u.ok()) return u.status();
    auto v = ParseInt(parts[1], "friendship target");
    if (!v.ok()) return v.status();
    if (*u < 0 || static_cast<size_t>(*u) >= num_users || *v < 0 ||
        static_cast<size_t>(*v) >= num_users) {
      return Status::OutOfRange("friendship user id out of range: " + line);
    }
    builder.AddFriendship(static_cast<UserId>(*u), static_cast<UserId>(*v));
  }

  auto diff_lines = ReadLines(diffusion_path);
  if (!diff_lines.ok()) return diff_lines.status();
  for (const std::string& line : *diff_lines) {
    if (line.empty()) continue;
    const auto parts = Split(line, '\t');
    if (parts.size() < 3) {
      return Status::InvalidArgument("diffusion row needs 3 fields: " + line);
    }
    auto i = ParseInt(parts[0], "diffusion source doc");
    if (!i.ok()) return i.status();
    auto j = ParseInt(parts[1], "diffusion target doc");
    if (!j.ok()) return j.status();
    auto t = ParseInt(parts[2], "diffusion time");
    if (!t.ok()) return t.status();
    if (*i < 0 || static_cast<size_t>(*i) >= row_to_doc.size() || *j < 0 ||
        static_cast<size_t>(*j) >= row_to_doc.size()) {
      return Status::OutOfRange("diffusion doc row out of range: " + line);
    }
    const DocId di = row_to_doc[static_cast<size_t>(*i)];
    const DocId dj = row_to_doc[static_cast<size_t>(*j)];
    if (di == Corpus::kInvalidDoc || dj == Corpus::kInvalidDoc) continue;
    if (*t < 0) return Status::OutOfRange("negative diffusion time: " + line);
    builder.AddDiffusion(di, dj, static_cast<int32_t>(*t));
  }

  return builder.Build(options.drop_isolated_users);
}

Status SaveSocialGraph(const SocialGraph& graph, const std::string& documents_path,
                       const std::string& friendship_path,
                       const std::string& diffusion_path) {
  std::ostringstream docs;
  const Vocabulary& vocab = graph.corpus().vocabulary();
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    docs << doc.user << '\t' << doc.time << '\t';
    for (size_t k = 0; k < doc.words.size(); ++k) {
      if (k > 0) docs << ' ';
      docs << vocab.WordOf(doc.words[k]);
    }
    docs << '\n';
  }
  CPD_RETURN_IF_ERROR(WriteStringToFile(documents_path, docs.str()));

  std::ostringstream friends;
  for (const FriendshipLink& link : graph.friendship_links()) {
    friends << link.u << '\t' << link.v << '\n';
  }
  CPD_RETURN_IF_ERROR(WriteStringToFile(friendship_path, friends.str()));

  std::ostringstream diffusion;
  for (const DiffusionLink& link : graph.diffusion_links()) {
    diffusion << link.i << '\t' << link.j << '\t' << link.time << '\n';
  }
  return WriteStringToFile(diffusion_path, diffusion.str());
}

}  // namespace cpd
