#include "graph/graph_builder.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpd {

namespace {
inline int64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}
}  // namespace

DocId GraphBuilder::AddDocument(UserId user, int32_t time, std::string_view text,
                                const TokenizerOptions& options) {
  CPD_CHECK(user >= 0 && static_cast<size_t>(user) < num_users_);
  return corpus_.AddRawDocument(user, time, text, options);
}

DocId GraphBuilder::AddTokenizedDocument(UserId user, int32_t time,
                                         std::span<const WordId> words) {
  CPD_CHECK(user >= 0 && static_cast<size_t>(user) < num_users_);
  return corpus_.AddTokenizedDocument(user, time, words);
}

DocId GraphBuilder::AddTermDocument(UserId user, int32_t time,
                                    std::span<const std::string> terms) {
  CPD_CHECK(user >= 0 && static_cast<size_t>(user) < num_users_);
  std::vector<WordId> words;
  words.reserve(terms.size());
  for (const std::string& term : terms) {
    words.push_back(corpus_.vocabulary().GetOrAdd(term));
  }
  return corpus_.AddTokenizedDocument(user, time, words);
}

void GraphBuilder::AddFriendship(UserId u, UserId v) {
  CPD_CHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
  CPD_CHECK(v >= 0 && static_cast<size_t>(v) < num_users_);
  if (u == v) return;
  if (!friendship_keys_.insert(PairKey(u, v)).second) return;
  friendship_links_.push_back(FriendshipLink{u, v});
}

void GraphBuilder::AddDiffusion(DocId i, DocId j, int32_t time) {
  CPD_CHECK(i >= 0 && static_cast<size_t>(i) < corpus_.num_documents());
  CPD_CHECK(j >= 0 && static_cast<size_t>(j) < corpus_.num_documents());
  CPD_CHECK_GE(time, 0);
  if (i == j) return;
  if (!diffusion_keys_.insert(PairKey(i, j)).second) return;
  diffusion_links_.push_back(DiffusionLink{i, j, time});
}

StatusOr<SocialGraph> GraphBuilder::Build(bool drop_isolated_users) {
  if (num_users_ == 0) {
    return Status::FailedPrecondition("GraphBuilder: no users declared");
  }

  // Optionally drop users that ended up without documents.
  std::vector<UserId> remap(num_users_);
  size_t kept_users = num_users_;
  const auto& by_user = corpus_.documents_by_user();
  auto user_has_docs = [&](size_t u) {
    return u < by_user.size() && !by_user[u].empty();
  };
  if (drop_isolated_users) {
    kept_users = 0;
    for (size_t u = 0; u < num_users_; ++u) {
      remap[u] = user_has_docs(u) ? static_cast<UserId>(kept_users++) : -1;
    }
  } else {
    std::iota(remap.begin(), remap.end(), 0);
  }

  SocialGraph graph;
  graph.num_users_ = kept_users;
  corpus_.RemapUsers(remap, kept_users);
  graph.corpus_ = std::move(corpus_);

  graph.friendship_links_.reserve(friendship_links_.size());
  for (const FriendshipLink& link : friendship_links_) {
    const UserId u = remap[static_cast<size_t>(link.u)];
    const UserId v = remap[static_cast<size_t>(link.v)];
    if (u < 0 || v < 0) continue;
    graph.friendship_links_.push_back(FriendshipLink{u, v});
  }
  graph.diffusion_links_ = std::move(diffusion_links_);

  // Existence sets over remapped ids.
  graph.friendship_set_.reserve(graph.friendship_links_.size() * 2);
  for (const FriendshipLink& link : graph.friendship_links_) {
    graph.friendship_set_.insert(PairKey(link.u, link.v));
  }
  graph.diffusion_set_.reserve(graph.diffusion_links_.size() * 2);
  for (const DiffusionLink& link : graph.diffusion_links_) {
    graph.diffusion_set_.insert(PairKey(link.i, link.j));
  }

  // Friend adjacency Lambda_u: undirected, deduplicated CSR.
  const size_t n = graph.num_users_;
  std::vector<std::unordered_set<UserId>> neighbor_sets(n);
  for (const FriendshipLink& link : graph.friendship_links_) {
    neighbor_sets[static_cast<size_t>(link.u)].insert(link.v);
    neighbor_sets[static_cast<size_t>(link.v)].insert(link.u);
  }
  graph.friend_offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    graph.friend_offsets_[u + 1] =
        graph.friend_offsets_[u] + static_cast<int64_t>(neighbor_sets[u].size());
  }
  graph.friend_neighbors_.resize(static_cast<size_t>(graph.friend_offsets_[n]));
  for (size_t u = 0; u < n; ++u) {
    auto out = graph.friend_neighbors_.begin() + graph.friend_offsets_[u];
    std::copy(neighbor_sets[u].begin(), neighbor_sets[u].end(), out);
    std::sort(graph.friend_neighbors_.begin() + graph.friend_offsets_[u],
              graph.friend_neighbors_.begin() + graph.friend_offsets_[u + 1]);
  }

  // Diffusion incidence Lambda_i (CSR over documents; stores link indices).
  const size_t nd = graph.corpus_.num_documents();
  std::vector<int32_t> degree(nd, 0);
  for (const DiffusionLink& link : graph.diffusion_links_) {
    ++degree[static_cast<size_t>(link.i)];
    ++degree[static_cast<size_t>(link.j)];
  }
  graph.diffusion_offsets_.assign(nd + 1, 0);
  for (size_t d = 0; d < nd; ++d) {
    graph.diffusion_offsets_[d + 1] = graph.diffusion_offsets_[d] + degree[d];
  }
  graph.diffusion_incident_.resize(
      static_cast<size_t>(graph.diffusion_offsets_[nd]));
  std::vector<int64_t> cursor(graph.diffusion_offsets_.begin(),
                              graph.diffusion_offsets_.end() - 1);
  for (size_t e = 0; e < graph.diffusion_links_.size(); ++e) {
    const DiffusionLink& link = graph.diffusion_links_[e];
    graph.diffusion_incident_[static_cast<size_t>(
        cursor[static_cast<size_t>(link.i)]++)] = static_cast<int32_t>(e);
    graph.diffusion_incident_[static_cast<size_t>(
        cursor[static_cast<size_t>(link.j)]++)] = static_cast<int32_t>(e);
  }

  // Per-user document index (copy from the corpus view).
  graph.documents_by_user_.assign(n, {});
  const auto& corpus_by_user = graph.corpus_.documents_by_user();
  for (size_t u = 0; u < n && u < corpus_by_user.size(); ++u) {
    graph.documents_by_user_[u] = corpus_by_user[u];
  }

  // Activity counts for the individual-preference features.
  graph.activity_.assign(n, UserActivity{});
  for (const FriendshipLink& link : graph.friendship_links_) {
    ++graph.activity_[static_cast<size_t>(link.u)].followees;
    ++graph.activity_[static_cast<size_t>(link.v)].followers;
  }
  for (size_t u = 0; u < n; ++u) {
    graph.activity_[u].documents =
        static_cast<int64_t>(graph.documents_by_user_[u].size());
  }
  int32_t max_time = 0;
  for (const DiffusionLink& link : graph.diffusion_links_) {
    const UserId u = graph.corpus_.document(link.i).user;
    ++graph.activity_[static_cast<size_t>(u)].diffusions;
    max_time = std::max(max_time, link.time);
  }
  graph.num_time_bins_ = max_time + 1;

  return graph;
}

}  // namespace cpd
