#ifndef CPD_GRAPH_GRAPH_IO_H_
#define CPD_GRAPH_GRAPH_IO_H_

/// \file graph_io.h
/// TSV import/export for social graphs, so users can run CPD on their own
/// Twitter/DBLP-style dumps. Formats:
///   documents file:  user_id <TAB> time <TAB> raw text
///   friendship file: u <TAB> v                       (directed)
///   diffusion file:  doc_i <TAB> doc_j <TAB> time    (doc ids = document row
///                                                     numbers, 0-based,
///                                                     counting kept docs only)

#include <string>

#include "graph/graph_builder.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

/// Options for LoadSocialGraph.
struct GraphIoOptions {
  TokenizerOptions tokenizer;
  bool drop_isolated_users = true;  ///< Paper §6.1 preprocessing.
};

/// Loads a graph from the three TSV files. `num_users` must cover every user
/// id referenced. Diffusion rows referencing documents that were dropped by
/// preprocessing are skipped.
StatusOr<SocialGraph> LoadSocialGraph(size_t num_users,
                                      const std::string& documents_path,
                                      const std::string& friendship_path,
                                      const std::string& diffusion_path,
                                      const GraphIoOptions& options = {});

/// Writes the graph back to the three TSV files (documents are emitted as
/// space-joined tokens; ids are post-preprocessing).
Status SaveSocialGraph(const SocialGraph& graph, const std::string& documents_path,
                       const std::string& friendship_path,
                       const std::string& diffusion_path);

}  // namespace cpd

#endif  // CPD_GRAPH_GRAPH_IO_H_
