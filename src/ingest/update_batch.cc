#include "ingest/update_batch.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "graph/graph_builder.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpd::ingest {

namespace {

/// Wire integers are bounded like the HTTP layer's (json_api): a fraction or
/// an out-of-range magnitude is a client error, never a truncation.
constexpr double kMinWireInt = -2147483648.0;
constexpr double kMaxWireInt = 2147483647.0;

StatusOr<int64_t> IntField(const Json& json, std::string_view key,
                           int64_t fallback, bool required) {
  const Json* field = json.Find(key);
  if (field == nullptr) {
    if (required) {
      return Status::InvalidArgument("missing field '" + std::string(key) +
                                     "'");
    }
    return fallback;
  }
  if (!field->is_number() || field->number() != std::floor(field->number())) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be an integer");
  }
  if (field->number() < kMinWireInt || field->number() > kMaxWireInt) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' is outside the 32-bit integer range");
  }
  return static_cast<int64_t>(field->number());
}

StatusOr<NewDocument> DocumentFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("'documents' entries must be objects");
  }
  NewDocument doc;
  auto user = IntField(json, "user", -1, /*required=*/true);
  if (!user.ok()) return user.status();
  doc.user = static_cast<UserId>(*user);
  auto time = IntField(json, "time", 0, /*required=*/false);
  if (!time.ok()) return time.status();
  doc.time = static_cast<int32_t>(*time);
  const Json* text = json.Find("text");
  const Json* tokens = json.Find("tokens");
  if ((text != nullptr) == (tokens != nullptr)) {
    return Status::InvalidArgument(
        "document needs exactly one of 'text' or 'tokens'");
  }
  if (text != nullptr) {
    if (!text->is_string()) {
      return Status::InvalidArgument("field 'text' must be a string");
    }
    doc.text = text->string_value();
  } else {
    if (!tokens->is_array()) {
      return Status::InvalidArgument("field 'tokens' must be an array");
    }
    for (const Json& token : tokens->items()) {
      if (!token.is_string() || token.string_value().empty()) {
        return Status::InvalidArgument(
            "'tokens' entries must be non-empty strings");
      }
      doc.tokens.push_back(token.string_value());
    }
  }
  return doc;
}

}  // namespace

StatusOr<UpdateBatch> UpdateBatchFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("update batch must be a JSON object");
  }
  UpdateBatch batch;
  auto num_users = IntField(json, "num_users", 0, /*required=*/false);
  if (!num_users.ok()) return num_users.status();
  if (*num_users < 0) {
    return Status::InvalidArgument("'num_users' must be non-negative");
  }
  batch.num_users = static_cast<size_t>(*num_users);

  if (const Json* documents = json.Find("documents")) {
    if (!documents->is_array()) {
      return Status::InvalidArgument("field 'documents' must be an array");
    }
    for (const Json& entry : documents->items()) {
      auto doc = DocumentFromJson(entry);
      if (!doc.ok()) return doc.status();
      batch.documents.push_back(std::move(*doc));
    }
  }
  if (const Json* friendships = json.Find("friendships")) {
    if (!friendships->is_array()) {
      return Status::InvalidArgument("field 'friendships' must be an array");
    }
    for (const Json& entry : friendships->items()) {
      if (!entry.is_object()) {
        return Status::InvalidArgument("'friendships' entries must be objects");
      }
      auto u = IntField(entry, "u", -1, /*required=*/true);
      if (!u.ok()) return u.status();
      auto v = IntField(entry, "v", -1, /*required=*/true);
      if (!v.ok()) return v.status();
      batch.friendships.push_back(
          {static_cast<UserId>(*u), static_cast<UserId>(*v)});
    }
  }
  if (const Json* diffusions = json.Find("diffusions")) {
    if (!diffusions->is_array()) {
      return Status::InvalidArgument("field 'diffusions' must be an array");
    }
    for (const Json& entry : diffusions->items()) {
      if (!entry.is_object()) {
        return Status::InvalidArgument("'diffusions' entries must be objects");
      }
      auto i = IntField(entry, "i", -1, /*required=*/true);
      if (!i.ok()) return i.status();
      auto j = IntField(entry, "j", -1, /*required=*/true);
      if (!j.ok()) return j.status();
      auto time = IntField(entry, "time", 0, /*required=*/false);
      if (!time.ok()) return time.status();
      batch.diffusions.push_back({*i, *j, static_cast<int32_t>(*time)});
    }
  }
  return batch;
}

Json UpdateBatchToJson(const UpdateBatch& batch) {
  Json out = Json::MakeObject();
  if (batch.num_users > 0) {
    out.Set("num_users", Json(static_cast<uint64_t>(batch.num_users)));
  }
  Json documents = Json::MakeArray();
  for (const NewDocument& doc : batch.documents) {
    Json entry = Json::MakeObject();
    entry.Set("user", Json(static_cast<int64_t>(doc.user)));
    entry.Set("time", Json(static_cast<int64_t>(doc.time)));
    if (!doc.tokens.empty()) {
      Json tokens = Json::MakeArray();
      for (const std::string& token : doc.tokens) tokens.Append(Json(token));
      entry.Set("tokens", std::move(tokens));
    } else {
      entry.Set("text", Json(doc.text));
    }
    documents.Append(std::move(entry));
  }
  out.Set("documents", std::move(documents));
  Json friendships = Json::MakeArray();
  for (const FriendshipLink& link : batch.friendships) {
    Json entry = Json::MakeObject();
    entry.Set("u", Json(static_cast<int64_t>(link.u)));
    entry.Set("v", Json(static_cast<int64_t>(link.v)));
    friendships.Append(std::move(entry));
  }
  out.Set("friendships", std::move(friendships));
  Json diffusions = Json::MakeArray();
  for (const NewDiffusion& link : batch.diffusions) {
    Json entry = Json::MakeObject();
    entry.Set("i", Json(link.i));
    entry.Set("j", Json(link.j));
    entry.Set("time", Json(static_cast<int64_t>(link.time)));
    diffusions.Append(std::move(entry));
  }
  out.Set("diffusions", std::move(diffusions));
  return out;
}

StatusOr<UpdateBatch> LoadUpdateBatch(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  auto json = Json::Parse(*content);
  if (!json.ok()) {
    return Status::InvalidArgument("update file " + path + ": " +
                                   json.status().message());
  }
  return UpdateBatchFromJson(*json);
}

StatusOr<AppliedUpdate> ApplyUpdate(const SocialGraph& base,
                                    const UpdateBatch& batch,
                                    const TokenizerOptions& tokenizer) {
  const size_t base_users = base.num_users();
  const size_t base_docs = base.num_documents();
  const size_t merged_users =
      batch.num_users == 0 ? base_users : batch.num_users;
  if (merged_users < base_users) {
    return Status::InvalidArgument(StrFormat(
        "'num_users' (%zu) shrinks the base graph's %zu users; ids are "
        "append-only",
        merged_users, base_users));
  }

  // ----- validation against the merged id space -----
  for (size_t k = 0; k < batch.documents.size(); ++k) {
    const NewDocument& doc = batch.documents[k];
    if (doc.user < 0 || static_cast<size_t>(doc.user) >= merged_users) {
      return Status::OutOfRange(
          StrFormat("document row %zu: user %d out of range [0, %zu)", k,
                    doc.user, merged_users));
    }
    if (doc.text.empty() == doc.tokens.empty()) {
      return Status::InvalidArgument(StrFormat(
          "document row %zu needs exactly one of 'text' or 'tokens'", k));
    }
    if (doc.time < 0) {
      return Status::OutOfRange(
          StrFormat("document row %zu: time must be non-negative", k));
    }
  }
  for (const FriendshipLink& link : batch.friendships) {
    if (link.u < 0 || static_cast<size_t>(link.u) >= merged_users ||
        link.v < 0 || static_cast<size_t>(link.v) >= merged_users) {
      return Status::OutOfRange(StrFormat(
          "friendship (%d, %d): user out of range [0, %zu)", link.u, link.v,
          merged_users));
    }
  }
  const int64_t max_doc_ref =
      static_cast<int64_t>(base_docs + batch.documents.size());
  for (const NewDiffusion& link : batch.diffusions) {
    if (link.i < 0 || link.i >= max_doc_ref || link.j < 0 ||
        link.j >= max_doc_ref) {
      return Status::OutOfRange(StrFormat(
          "diffusion (%lld, %lld): endpoint out of range [0, %lld)",
          static_cast<long long>(link.i), static_cast<long long>(link.j),
          static_cast<long long>(max_doc_ref)));
    }
    if (link.time < 0) {
      return Status::OutOfRange("diffusion time must be non-negative");
    }
  }

  // ----- merged rebuild: base ids stay stable -----
  GraphBuilder builder;
  builder.SetNumUsers(merged_users);
  builder.SetVocabulary(base.corpus().vocabulary());
  const size_t base_words = base.corpus().vocabulary().size();
  for (size_t d = 0; d < base_docs; ++d) {
    const Document& doc = base.document(static_cast<DocId>(d));
    // Already past the min-length filter, so re-adding cannot drop or
    // renumber: merged DocId == base DocId.
    const DocId id = builder.AddTokenizedDocument(doc.user, doc.time, doc.words);
    CPD_CHECK_EQ(id, static_cast<DocId>(d));
  }
  for (const FriendshipLink& link : base.friendship_links()) {
    builder.AddFriendship(link.u, link.v);
  }
  for (const DiffusionLink& link : base.diffusion_links()) {
    builder.AddDiffusion(link.i, link.j, link.time);
  }

  AppliedUpdate applied;
  applied.batch_doc_ids.reserve(batch.documents.size());
  std::unordered_set<UserId> touched;
  for (const NewDocument& doc : batch.documents) {
    const DocId id =
        doc.tokens.empty()
            ? builder.AddDocument(doc.user, doc.time, doc.text, tokenizer)
            : builder.AddTermDocument(doc.user, doc.time, doc.tokens);
    applied.batch_doc_ids.push_back(id);
    if (id == Corpus::kInvalidDoc) {
      ++applied.counts.dropped_documents;
    } else {
      ++applied.counts.new_documents;
      touched.insert(doc.user);
    }
  }
  const size_t base_friendships = base.num_friendship_links();
  for (const FriendshipLink& link : batch.friendships) {
    builder.AddFriendship(link.u, link.v);
    touched.insert(link.u);
    touched.insert(link.v);
  }

  // Translate batch-row diffusion references to merged DocIds; links to
  // dropped rows are skipped, like graph_io's dropped-document rows.
  const size_t base_diffusions = base.num_diffusion_links();
  auto resolve_doc = [&](int64_t ref) -> DocId {
    if (ref < static_cast<int64_t>(base_docs)) return static_cast<DocId>(ref);
    return applied.batch_doc_ids[static_cast<size_t>(
        ref - static_cast<int64_t>(base_docs))];
  };
  std::vector<std::pair<DocId, DocId>> added_diffusions;
  for (const NewDiffusion& link : batch.diffusions) {
    const DocId i = resolve_doc(link.i);
    const DocId j = resolve_doc(link.j);
    if (i == Corpus::kInvalidDoc || j == Corpus::kInvalidDoc) continue;
    builder.AddDiffusion(i, j, link.time);
    added_diffusions.emplace_back(i, j);
  }

  // Keep every declared user: a new user may arrive with links before its
  // first document, and base user ids must never be renumbered.
  auto graph = builder.Build(/*drop_isolated_users=*/false);
  if (!graph.ok()) return graph.status();
  applied.graph = std::move(*graph);

  applied.counts.new_users = merged_users - base_users;
  applied.counts.new_friendships =
      applied.graph.num_friendship_links() - base_friendships;
  applied.counts.new_diffusions =
      applied.graph.num_diffusion_links() - base_diffusions;
  applied.counts.new_words =
      applied.graph.corpus().vocabulary().size() - base_words;
  for (const auto& [i, j] : added_diffusions) {
    touched.insert(applied.graph.document(i).user);
    touched.insert(applied.graph.document(j).user);
  }
  applied.touched_users.assign(touched.begin(), touched.end());
  std::sort(applied.touched_users.begin(), applied.touched_users.end());
  return applied;
}

UpdateBatch SampleUpdateBatch(const SocialGraph& base,
                              const SampleUpdateOptions& options, Rng* rng) {
  UpdateBatch batch;
  const size_t base_users = base.num_users();
  const size_t base_docs = base.num_documents();
  batch.num_users = base_users + options.new_users;
  const Vocabulary& vocab = base.corpus().vocabulary();
  size_t novel_serial = 0;
  for (size_t n = 0; n < options.new_users; ++n) {
    const UserId user = static_cast<UserId>(base_users + n);
    for (int k = 0; k < options.docs_per_user; ++k) {
      NewDocument doc;
      doc.user = user;
      doc.time = options.time;
      // Replay a random base document's tokens so the planted topical
      // structure carries into the batch.
      const DocId source =
          base_docs > 0 ? static_cast<DocId>(rng->NextUint64(base_docs)) : -1;
      if (source >= 0) {
        for (const WordId w : base.document(source).words) {
          doc.tokens.push_back(vocab.WordOf(w));
        }
      }
      for (int w = 0; w < options.novel_words_per_doc; ++w) {
        doc.tokens.push_back("ingestw" + std::to_string(novel_serial++));
      }
      if (doc.tokens.size() < Corpus::kMinWordsPerDocument) {
        doc.tokens.push_back("ingestpad");
      }
      batch.documents.push_back(std::move(doc));
    }
    for (int f = 0; f < options.friends_per_user && base_users > 0; ++f) {
      const UserId peer = static_cast<UserId>(rng->NextUint64(base_users));
      batch.friendships.push_back({user, peer});
      batch.friendships.push_back({peer, user});
    }
  }
  for (size_t e = 0; e < options.diffusions && !batch.documents.empty() &&
                     base_docs > 0;
       ++e) {
    NewDiffusion link;
    link.i = static_cast<int64_t>(base_docs +
                                  rng->NextUint64(batch.documents.size()));
    link.j = static_cast<int64_t>(rng->NextUint64(base_docs));
    link.time = options.time;
    batch.diffusions.push_back(link);
  }
  return batch;
}

}  // namespace cpd::ingest
