#ifndef CPD_INGEST_UPDATE_BATCH_H_
#define CPD_INGEST_UPDATE_BATCH_H_

/// \file update_batch.h
/// The write side of streaming ingest: an UpdateBatch is one atomic unit of
/// graph growth — new users, new documents (raw text or explicit tokens,
/// growing the vocabulary), new friendship links, and new diffusion links —
/// expressed against an existing immutable SocialGraph.
///
/// Id conventions (docs/HTTP_API.md pins the wire form):
///  - user ids < base num_users reference existing users; the batch may
///    raise `num_users` to mint new dense ids [base, num_users);
///  - diffusion endpoints < base num_documents reference existing documents;
///    endpoints >= base num_documents reference batch *rows* by
///    `base_num_documents + row_index`. Rows dropped by the min-length
///    filter skip their diffusion links (same semantics as graph_io).
///
/// ApplyUpdate() rebuilds a merged SocialGraph with every base id stable:
/// documents are re-added in order (already-tokenized, so none can be
/// re-dropped), the vocabulary is pre-seeded so word ids stay aligned, and
/// isolated users are NOT re-dropped (new users may start with links only).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/social_graph.h"
#include "text/tokenizer.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpd::ingest {

/// One new document. Exactly one of `text` (tokenized on apply, vocabulary
/// grows through the tokenizer) or `tokens` (verbatim vocabulary terms, no
/// tokenizer filtering) must be non-empty.
struct NewDocument {
  UserId user = -1;
  int32_t time = 0;
  std::string text;
  std::vector<std::string> tokens;
};

/// One new diffusion link; endpoints follow the id convention above.
struct NewDiffusion {
  int64_t i = -1;  ///< Diffusing (new) side.
  int64_t j = -1;  ///< Diffused (old) side.
  int32_t time = 0;
};

struct UpdateBatch {
  /// Total user count after the batch; 0 keeps the base count. Must be
  /// >= the base graph's num_users when set.
  size_t num_users = 0;
  std::vector<NewDocument> documents;
  std::vector<FriendshipLink> friendships;
  std::vector<NewDiffusion> diffusions;

  bool Empty() const {
    return documents.empty() && friendships.empty() && diffusions.empty() &&
           num_users == 0;
  }
};

/// Wire codec. The JSON form (also accepted by POST /admin/ingest):
///   {"num_users": 70,
///    "documents":   [{"user":65,"time":9,"text":"solar panels ..."},
///                    {"user":66,"time":9,"tokens":["solar","roof"]}],
///    "friendships": [{"u":65,"v":3}],
///    "diffusions":  [{"i":412,"j":7,"time":9}]}
/// Every section is optional; unknown fields are rejected nowhere (forward
/// compatibility), malformed fields are typed InvalidArgument errors.
StatusOr<UpdateBatch> UpdateBatchFromJson(const Json& json);
Json UpdateBatchToJson(const UpdateBatch& batch);

/// Reads and parses one JSON update file (offline cpd_ingest path).
StatusOr<UpdateBatch> LoadUpdateBatch(const std::string& path);

/// Volume record of one applied batch (reported by the pipeline, the tool,
/// and /statsz).
struct IngestCounts {
  size_t new_users = 0;
  size_t new_documents = 0;
  size_t dropped_documents = 0;  ///< Batch rows under the min-length filter.
  size_t new_friendships = 0;    ///< Post-dedup.
  size_t new_diffusions = 0;     ///< Post-dedup, post-dropped-row skip.
  size_t new_words = 0;          ///< Vocabulary growth.
};

/// A merged graph plus everything the warm start needs to know about what
/// changed.
struct AppliedUpdate {
  SocialGraph graph;
  IngestCounts counts;
  /// Per batch document row: its merged DocId, or Corpus::kInvalidDoc for
  /// rows dropped by the min-length filter.
  std::vector<DocId> batch_doc_ids;
  /// Sorted, deduplicated users whose evidence changed (authors of new
  /// documents, endpoints of new friendships, authors of both endpoint
  /// documents of new diffusions). The warm start resamples only these.
  std::vector<UserId> touched_users;
};

/// Validates `batch` against `base` and rebuilds the merged graph. Base ids
/// (users, documents, words) are stable in the result.
StatusOr<AppliedUpdate> ApplyUpdate(const SocialGraph& base,
                                    const UpdateBatch& batch,
                                    const TokenizerOptions& tokenizer = {});

/// Deterministic synthetic batch against an existing graph (tests/bench):
/// mints `new_users` users, each publishing `docs_per_user` documents whose
/// tokens replay a random base document (so planted topic structure carries
/// over) plus `novel_words_per_doc` previously-unseen words (vocabulary
/// growth), wires each new user to `friends_per_user` random base users
/// (both directions), and adds `diffusions` links from new documents to
/// random base documents.
struct SampleUpdateOptions {
  size_t new_users = 4;
  int docs_per_user = 3;
  int novel_words_per_doc = 1;
  int friends_per_user = 3;
  size_t diffusions = 4;
  int32_t time = 0;  ///< Time bin stamped on new documents/links.
};
UpdateBatch SampleUpdateBatch(const SocialGraph& base,
                              const SampleUpdateOptions& options, Rng* rng);

}  // namespace cpd::ingest

#endif  // CPD_INGEST_UPDATE_BATCH_H_
