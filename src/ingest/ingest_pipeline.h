#ifndef CPD_INGEST_INGEST_PIPELINE_H_
#define CPD_INGEST_INGEST_PIPELINE_H_

/// \file ingest_pipeline.h
/// End-to-end streaming ingest: UpdateBatch -> merged SocialGraph ->
/// warm-started EM sweeps over the touched shards -> fresh versioned .cpdb
/// artifact. The pipeline is the stateful trainer-side twin of
/// server::ModelRegistry: it owns the *live* training state (current graph,
/// current model, and the Gibbs assignments that make warm starts possible)
/// and advances it one batch at a time; the caller pushes each produced
/// artifact through the registry for a zero-downtime swap.
///
///   cold train (cpd_train) ──► artifact v2 ──► ModelRegistry (serving)
///            │                                     ▲
///            ▼                                     │ LoadFrom(fresh)
///   IngestPipeline::Create ◄── UpdateBatch ──► Ingest(): ApplyUpdate
///            (reconstructs      (cpd_ingest        + EmTrainer::WarmStart
///             assignments)       or HTTP)          + SaveBinary
///
/// Ingest() is serialized by an internal mutex (concurrent POST
/// /admin/ingest calls queue); graph()/model() return shared_ptr snapshots
/// so readers never see a half-committed generation.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "core/model_config.h"
#include "graph/social_graph.h"
#include "ingest/update_batch.h"
#include "util/status.h"

namespace cpd::ingest {

struct IngestOptions {
  /// Training configuration for the warm sweeps. num_communities/num_topics
  /// must match the model the pipeline was created from; seed, sampler,
  /// executor, threads and shards are honored like a cold train.
  CpdConfig config;

  /// Bounded EM iterations per batch (each = gibbs_sweeps_per_em sweeps).
  int warm_iterations = 2;

  /// Tokenizer for raw-text batch documents.
  TokenizerOptions tokenizer;

  /// When non-empty, Ingest(batch) writes its artifact to
  /// "<artifact_base>.g<sequence>.cpdb"; the two-argument overload with an
  /// explicit path ignores this.
  std::string artifact_base;

  /// Layout of the written artifact (wire version, derived top-k, section
  /// alignment). The default writes mmap-ready v3.
  ArtifactWriteOptions artifact;

  /// Lineage stamp of the artifact the pipeline was created from; batch N
  /// writes its artifact with generation base_generation + N, so deltas
  /// chain off the cold artifact a server already maps.
  uint64_t base_generation = 0;

  /// Also diff each batch against the previous generation and write the
  /// ".cpdd" delta (model_delta.h) next to the full artifact — same path
  /// with the ".cpdb" suffix swapped for ".cpdd" (appended when the path
  /// has some other suffix). A server then ships O(touched users) bytes
  /// per generation instead of the whole pi matrix.
  bool write_delta = false;
};

/// Outcome of one applied batch.
struct IngestResult {
  std::string artifact_path;
  uint64_t sequence = 0;  ///< 1 for the first batch, monotonically rising.
  /// Lineage stamp written into the artifact (base_generation + sequence).
  uint64_t generation = 0;
  /// "" unless IngestOptions::write_delta; then the ".cpdd" written
  /// alongside, and its size (vs. the full artifact's bytes, for the
  /// shipped-bytes win of delta publication).
  std::string delta_path;
  size_t delta_bytes = 0;
  size_t artifact_bytes = 0;
  IngestCounts counts;
  size_t num_users = 0;      ///< Merged graph totals after the batch.
  size_t num_documents = 0;
  size_t vocab_size = 0;
  /// Warm-sweep scope: users whose evidence changed and the token mass of
  /// their documents on the merged graph (what the warm E-steps resampled).
  size_t touched_users = 0;
  size_t touched_tokens = 0;
  double apply_seconds = 0.0;  ///< Graph merge + validation.
  double warm_seconds = 0.0;   ///< Warm-started EM sweeps.
  double save_seconds = 0.0;   ///< Artifact serialization.
  double total_seconds = 0.0;  ///< Time to fresh artifact.
  double link_log_likelihood = 0.0;  ///< After the last warm iteration.
};

/// Reconstructed Gibbs assignments for every document of `graph` under the
/// estimates of `model`: (c, z) sampled jointly from
///   p(c, z | d, u) ∝ pi_u(c) theta_c(z) prod_{w in d} phi_z(w)
/// with a deterministic seed. This is how a pipeline created from a cold
/// artifact (which stores estimates, not assignments) re-enters the
/// assignment space; a few warm sweeps re-mix the chain afterwards.
struct ReconstructedAssignments {
  std::vector<int32_t> doc_topic;
  std::vector<int32_t> doc_community;
};
ReconstructedAssignments ReconstructAssignments(const SocialGraph& graph,
                                                const CpdModel& model,
                                                uint64_t seed);

class IngestPipeline {
 public:
  /// Validates that `model` matches `graph` (user count, vocabulary) and
  /// `options.config` (|C|, |Z|), then reconstructs the live assignments.
  /// The graph must be the one the model was trained on.
  static StatusOr<std::unique_ptr<IngestPipeline>> Create(
      std::shared_ptr<const SocialGraph> graph, const CpdModel& model,
      IngestOptions options);

  /// Applies one batch: merged graph, warm-started sweeps over the touched
  /// shards, artifact written to `artifact_path` (v2, vocabulary bundled).
  /// On success the pipeline's live state advances; on failure it is
  /// untouched (apply-then-commit). Serialized: concurrent calls queue.
  StatusOr<IngestResult> Ingest(const UpdateBatch& batch,
                                const std::string& artifact_path);

  /// Same, writing to "<options.artifact_base>.g<sequence>.cpdb".
  StatusOr<IngestResult> Ingest(const UpdateBatch& batch);

  /// Snapshots of the live state (safe to hold across later ingests).
  std::shared_ptr<const SocialGraph> graph() const;
  std::shared_ptr<const CpdModel> model() const;

  /// Batches successfully applied so far.
  uint64_t sequence() const;

 private:
  IngestPipeline(std::shared_ptr<const SocialGraph> graph,
                 std::shared_ptr<const CpdModel> model, IngestOptions options,
                 ReconstructedAssignments assignments);

  /// The ingest body; mutex_ must be held (both public overloads take it,
  /// the one-argument form also derives the .gN path under the same hold so
  /// concurrent callers can never compute the same name).
  StatusOr<IngestResult> IngestLocked(const UpdateBatch& batch,
                                      const std::string& artifact_path);

  const IngestOptions options_;

  mutable std::mutex mutex_;  ///< Guards every live-state member below.
  std::shared_ptr<const SocialGraph> graph_;
  std::shared_ptr<const CpdModel> model_;
  std::vector<int32_t> doc_topic_;      ///< Live Gibbs assignments.
  std::vector<int32_t> doc_community_;
  uint64_t sequence_ = 0;
};

}  // namespace cpd::ingest

#endif  // CPD_INGEST_INGEST_PIPELINE_H_
