#include "ingest/ingest_pipeline.h"

#include <cmath>
#include <string_view>
#include <utility>

#include "core/em_trainer.h"
#include "core/model_delta.h"
#include "sampling/distributions.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cpd::ingest {

ReconstructedAssignments ReconstructAssignments(const SocialGraph& graph,
                                                const CpdModel& model,
                                                uint64_t seed) {
  const int kc = model.num_communities();
  const int kz = model.num_topics();
  const size_t num_docs = graph.num_documents();
  ReconstructedAssignments out;
  out.doc_topic.resize(num_docs);
  out.doc_community.resize(num_docs);
  Rng rng(seed);
  std::vector<double> word_ll(static_cast<size_t>(kz));
  std::vector<double> log_weights(static_cast<size_t>(kc) *
                                  static_cast<size_t>(kz));
  for (size_t d = 0; d < num_docs; ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    for (int z = 0; z < kz; ++z) {
      const std::span<const double> phi = model.TopicWords(z);
      double ll = 0.0;
      for (const WordId w : doc.words) {
        ll += std::log(phi[static_cast<size_t>(w)]);
      }
      word_ll[static_cast<size_t>(z)] = ll;
    }
    const std::span<const double> pi = model.Membership(doc.user);
    for (int c = 0; c < kc; ++c) {
      const std::span<const double> theta = model.ContentProfile(c);
      const double log_pi = std::log(pi[static_cast<size_t>(c)]);
      for (int z = 0; z < kz; ++z) {
        log_weights[static_cast<size_t>(c) * static_cast<size_t>(kz) +
                    static_cast<size_t>(z)] =
            log_pi + std::log(theta[static_cast<size_t>(z)]) +
            word_ll[static_cast<size_t>(z)];
      }
    }
    const size_t pick = SampleCategoricalFromLog(log_weights, &rng);
    out.doc_community[d] = static_cast<int32_t>(pick / static_cast<size_t>(kz));
    out.doc_topic[d] = static_cast<int32_t>(pick % static_cast<size_t>(kz));
  }
  return out;
}

IngestPipeline::IngestPipeline(std::shared_ptr<const SocialGraph> graph,
                               std::shared_ptr<const CpdModel> model,
                               IngestOptions options,
                               ReconstructedAssignments assignments)
    : options_(std::move(options)),
      graph_(std::move(graph)),
      model_(std::move(model)),
      doc_topic_(std::move(assignments.doc_topic)),
      doc_community_(std::move(assignments.doc_community)) {}

StatusOr<std::unique_ptr<IngestPipeline>> IngestPipeline::Create(
    std::shared_ptr<const SocialGraph> graph, const CpdModel& model,
    IngestOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("ingest pipeline needs a graph");
  }
  CPD_RETURN_IF_ERROR(options.config.Validate());
  if (model.num_users() != graph->num_users()) {
    return Status::FailedPrecondition(StrFormat(
        "model/graph mismatch: model has %zu users, graph %zu (the pipeline "
        "needs the graph the model was trained on)",
        model.num_users(), graph->num_users()));
  }
  if (model.vocab_size() != graph->vocabulary_size()) {
    return Status::FailedPrecondition(StrFormat(
        "model/graph mismatch: model has %zu words, graph %zu",
        model.vocab_size(), graph->vocabulary_size()));
  }
  if (model.num_communities() != options.config.num_communities ||
      model.num_topics() != options.config.num_topics) {
    return Status::FailedPrecondition(StrFormat(
        "config mismatch: model is |C|=%d |Z|=%d but the ingest config says "
        "|C|=%d |Z|=%d",
        model.num_communities(), model.num_topics(),
        options.config.num_communities, options.config.num_topics));
  }
  if (options.warm_iterations < 1) {
    return Status::InvalidArgument("warm_iterations < 1");
  }
  ReconstructedAssignments assignments =
      ReconstructAssignments(*graph, model, options.config.seed + 977);
  auto model_copy = std::make_shared<const CpdModel>(model);
  return std::unique_ptr<IngestPipeline>(
      new IngestPipeline(std::move(graph), std::move(model_copy),
                         std::move(options), std::move(assignments)));
}

StatusOr<IngestResult> IngestPipeline::Ingest(const UpdateBatch& batch) {
  if (options_.artifact_base.empty()) {
    return Status::FailedPrecondition(
        "no artifact_base configured; pass an explicit artifact path");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return IngestLocked(batch, options_.artifact_base + ".g" +
                                 std::to_string(sequence_ + 1) + ".cpdb");
}

StatusOr<IngestResult> IngestPipeline::Ingest(
    const UpdateBatch& batch, const std::string& artifact_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return IngestLocked(batch, artifact_path);
}

namespace {

/// "<base>.cpdb" -> "<base>.cpdd"; any other suffix just gains ".cpdd".
std::string DeltaPathFor(const std::string& artifact_path) {
  constexpr std::string_view kSuffix = ".cpdb";
  if (artifact_path.size() >= kSuffix.size() &&
      artifact_path.compare(artifact_path.size() - kSuffix.size(),
                            kSuffix.size(), kSuffix) == 0) {
    return artifact_path.substr(0, artifact_path.size() - kSuffix.size()) +
           ".cpdd";
  }
  return artifact_path + ".cpdd";
}

/// Copies `vocab` into the artifact's bundled-vocabulary fields (the delta
/// diff needs in-memory artifacts shaped exactly like the files on disk).
Status BundleVocabulary(const Vocabulary& vocab, ModelArtifact* artifact) {
  if (vocab.size() != artifact->vocab_size) {
    return Status::Internal(
        StrFormat("ingest delta: vocabulary has %zu words, artifact expects "
                  "%llu",
                  vocab.size(),
                  static_cast<unsigned long long>(artifact->vocab_size)));
  }
  artifact->vocab_words.reserve(vocab.size());
  artifact->vocab_frequencies.reserve(vocab.size());
  for (size_t w = 0; w < vocab.size(); ++w) {
    artifact->vocab_words.push_back(vocab.WordOf(static_cast<WordId>(w)));
    artifact->vocab_frequencies.push_back(
        vocab.Frequency(static_cast<WordId>(w)));
  }
  return Status::OK();
}

}  // namespace

StatusOr<IngestResult> IngestPipeline::IngestLocked(
    const UpdateBatch& batch, const std::string& artifact_path) {
  WallTimer total_timer;
  IngestResult result;

  WallTimer apply_timer;
  auto applied = ApplyUpdate(*graph_, batch, options_.tokenizer);
  if (!applied.ok()) return applied.status();
  result.apply_seconds = apply_timer.ElapsedSeconds();
  result.counts = applied->counts;
  result.touched_users = applied->touched_users.size();
  for (const UserId u : applied->touched_users) {
    for (const DocId d : applied->graph.DocumentsOf(u)) {
      result.touched_tokens += applied->graph.document(d).words.size();
    }
  }

  WallTimer warm_timer;
  EmTrainer trainer(applied->graph, options_.config);
  WarmStartOptions warm;
  warm.prev_doc_topic = doc_topic_;
  warm.prev_doc_community = doc_community_;
  warm.touched_users = applied->touched_users;
  warm.prev_eta = model_->EtaTensor();
  warm.prev_weights = model_->DiffusionWeights();
  warm.warm_iterations = options_.warm_iterations;
  CPD_RETURN_IF_ERROR(trainer.WarmStart(warm));
  result.warm_seconds = warm_timer.ElapsedSeconds();

  CpdModel model = CpdModel::FromState(applied->graph, options_.config,
                                       trainer.state(), trainer.stats());
  const uint64_t generation = options_.base_generation + sequence_ + 1;
  WallTimer save_timer;
  {
    ModelArtifact target = model.ToArtifact();
    target.generation = generation;
    CPD_RETURN_IF_ERROR(
        BundleVocabulary(applied->graph.corpus().vocabulary(), &target));
    auto encoded = EncodeModelArtifact(target, options_.artifact);
    if (!encoded.ok()) return encoded.status();
    CPD_RETURN_IF_ERROR(WriteStringToFile(artifact_path, *encoded));
    result.artifact_bytes = encoded->size();
    if (options_.write_delta) {
      ModelArtifact base = model_->ToArtifact();
      base.generation = options_.base_generation + sequence_;
      CPD_RETURN_IF_ERROR(
          BundleVocabulary(graph_->corpus().vocabulary(), &base));
      auto delta = BuildModelDelta(base, target);
      if (!delta.ok()) return delta.status();
      auto delta_bytes = EncodeModelDelta(*delta);
      if (!delta_bytes.ok()) return delta_bytes.status();
      result.delta_path = DeltaPathFor(artifact_path);
      CPD_RETURN_IF_ERROR(
          WriteStringToFile(result.delta_path, *delta_bytes));
      result.delta_bytes = delta_bytes->size();
    }
  }
  result.save_seconds = save_timer.ElapsedSeconds();

  // Commit: only now does the live state advance (a failed apply, warm
  // start, or save leaves the pipeline exactly as before).
  doc_topic_ = trainer.state().doc_topic;
  doc_community_ = trainer.state().doc_community;
  graph_ = std::make_shared<const SocialGraph>(std::move(applied->graph));
  model_ = std::make_shared<const CpdModel>(std::move(model));
  ++sequence_;

  result.artifact_path = artifact_path;
  result.sequence = sequence_;
  result.generation = generation;
  result.num_users = graph_->num_users();
  result.num_documents = graph_->num_documents();
  result.vocab_size = graph_->vocabulary_size();
  if (!trainer.stats().link_log_likelihood.empty()) {
    result.link_log_likelihood = trainer.stats().link_log_likelihood.back();
  }
  result.total_seconds = total_timer.ElapsedSeconds();
  CPD_LOG(Info) << "ingest #" << sequence_ << ": +"
                << result.counts.new_documents << " docs, +"
                << result.counts.new_users << " users, +"
                << result.counts.new_friendships << " friendships, +"
                << result.counts.new_diffusions << " diffusions, +"
                << result.counts.new_words << " words -> " << artifact_path
                << " (" << StrFormat("%.2f", result.total_seconds) << " s)";
  return result;
}

std::shared_ptr<const SocialGraph> IngestPipeline::graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_;
}

std::shared_ptr<const CpdModel> IngestPipeline::model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

uint64_t IngestPipeline::sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_;
}

}  // namespace cpd::ingest
