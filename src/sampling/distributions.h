#ifndef CPD_SAMPLING_DISTRIBUTIONS_H_
#define CPD_SAMPLING_DISTRIBUTIONS_H_

/// \file distributions.h
/// Samplers for the standard distributions used by the generative models:
/// gamma, beta, Dirichlet, and categorical (from linear or log weights).

#include <span>
#include <vector>

#include "util/rng.h"

namespace cpd {

/// Gamma(shape, 1) via Marsaglia-Tsang squeeze; handles shape < 1 with the
/// boosting trick. Requires shape > 0.
double SampleGamma(double shape, Rng* rng);

/// Gamma(shape, scale). Requires shape > 0, scale > 0.
double SampleGamma(double shape, double scale, Rng* rng);

/// Beta(a, b) via two gammas. Requires a > 0, b > 0.
double SampleBeta(double a, double b, Rng* rng);

/// Symmetric Dirichlet(alpha, ..., alpha) draw of the given dimension.
std::vector<double> SampleSymmetricDirichlet(size_t dimension, double alpha,
                                             Rng* rng);

/// Dirichlet(alpha) draw for an arbitrary concentration vector.
std::vector<double> SampleDirichlet(std::span<const double> alpha, Rng* rng);

/// Draws an index proportional to non-negative weights (not necessarily
/// normalized). Requires a positive total weight.
size_t SampleCategorical(std::span<const double> weights, Rng* rng);

/// Draws an index proportional to exp(log_weights[i]); stable for widely
/// ranging magnitudes. Requires non-empty input.
size_t SampleCategoricalFromLog(std::span<const double> log_weights, Rng* rng);

}  // namespace cpd

#endif  // CPD_SAMPLING_DISTRIBUTIONS_H_
