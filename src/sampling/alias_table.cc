#include "sampling/alias_table.h"

#include "util/logging.h"

namespace cpd {

void AliasTable::Rebuild(std::span<const double> weights) {
  CPD_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CPD_CHECK_GE(w, 0.0);
    total += w;
  }
  CPD_CHECK_GT(total, 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's stable partition into small/large buckets. The scratch is
  // thread_local rather than per-instance: with one AliasTable per
  // vocabulary word, instance scratch would roughly double the resident
  // size of the proposal tables for data that is never read after Rebuild.
  static thread_local std::vector<double> scaled;
  static thread_local std::vector<size_t> small, large;
  scaled.resize(n);
  small.clear();
  large.clear();
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t l : large) probability_[l] = 1.0;
  for (size_t s : small) probability_[s] = 1.0;  // Numerical leftovers.
}

size_t AliasTable::Sample(Rng* rng) const {
  const size_t bucket = static_cast<size_t>(rng->NextUint64(probability_.size()));
  return rng->NextDouble() < probability_[bucket] ? bucket : alias_[bucket];
}

}  // namespace cpd
