#ifndef CPD_SAMPLING_ALIAS_TABLE_H_
#define CPD_SAMPLING_ALIAS_TABLE_H_

/// \file alias_table.h
/// Walker/Vose alias method: O(n) construction, O(1) categorical sampling.
/// The synthetic-data generator draws millions of words from fixed topic-word
/// distributions, where the alias table is the right tool.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace cpd {

/// Immutable sampler over a fixed discrete distribution.
class AliasTable {
 public:
  /// Builds the table from non-negative weights (not necessarily normalized).
  /// Requires at least one strictly positive weight.
  explicit AliasTable(std::span<const double> weights);

  /// Draws one index with probability proportional to its weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return probability_.size(); }

  /// Normalized probability of index i (for testing).
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> probability_;  // Acceptance threshold per bucket.
  std::vector<size_t> alias_;        // Fallback index per bucket.
  std::vector<double> normalized_;   // Kept for introspection/testing.
};

}  // namespace cpd

#endif  // CPD_SAMPLING_ALIAS_TABLE_H_
