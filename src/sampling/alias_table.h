#ifndef CPD_SAMPLING_ALIAS_TABLE_H_
#define CPD_SAMPLING_ALIAS_TABLE_H_

/// \file alias_table.h
/// Walker/Vose alias method: O(n) construction, O(1) categorical sampling.
/// Used by the synthetic-data generator (millions of draws from fixed
/// topic-word distributions) and by the sparse Gibbs E-step, where tables are
/// rebuilt once per sweep and then serve as *stale* Metropolis-Hastings
/// proposals: Probability() reports the build-time distribution so callers
/// can compute exact proposal ratios even after the underlying counts move.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace cpd {

/// Sampler over a discrete distribution frozen at build/rebuild time.
class AliasTable {
 public:
  /// An empty table; Rebuild() before sampling.
  AliasTable() = default;

  /// Builds the table from non-negative weights (not necessarily normalized).
  /// Requires at least one strictly positive weight.
  explicit AliasTable(std::span<const double> weights) { Rebuild(weights); }

  /// Rebuilds in place from new weights, reusing internal buffers. This is
  /// the bulk-rebuild entry point for the sparse sampler: one call per
  /// community/word per sweep, no per-call allocation once warmed up.
  void Rebuild(std::span<const double> weights);

  /// Draws one index with probability proportional to the build-time weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return probability_.size(); }
  bool empty() const { return probability_.empty(); }

  /// Normalized build-time probability of index i. Deliberately *stale*: it
  /// reflects the weights passed to the last Rebuild(), which is exactly what
  /// a Metropolis-Hastings correction against this proposal must use.
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> probability_;  // Acceptance threshold per bucket.
  std::vector<size_t> alias_;        // Fallback index per bucket.
  std::vector<double> normalized_;   // Build-time probabilities (stale API).
};

}  // namespace cpd

#endif  // CPD_SAMPLING_ALIAS_TABLE_H_
