#ifndef CPD_SAMPLING_POLYA_GAMMA_H_
#define CPD_SAMPLING_POLYA_GAMMA_H_

/// \file polya_gamma.h
/// Exact Polya-Gamma PG(1, c) sampling via Devroye's exponentially tilted
/// Jacobi method, following Polson, Scott & Windle (JASA 2013). CPD augments
/// every friendship link (lambda_uv) and diffusion link (delta_ij) with a
/// PG(1, psi) variable to turn the sigmoid link likelihoods into Gaussians
/// (paper Eqs. 7-11, 15-16).

#include "util/rng.h"

namespace cpd {

/// Sampler for PG(1, c). Stateless apart from scratch constants; thread-safe
/// as long as each thread passes its own Rng.
class PolyaGammaSampler {
 public:
  PolyaGammaSampler() = default;

  /// Draws one PG(1, c) variate. c may be any real (the distribution depends
  /// on |c|).
  double Sample(double c, Rng* rng) const;

  /// E[PG(1, c)] = tanh(c/2) / (2c), with the c -> 0 limit 1/4.
  static double Mean(double c);

  /// Var[PG(1, c)] = (sinh(c) - c) / (4 c^3 cosh^2(c/2)), limit 1/24 at c=0.
  static double Variance(double c);

 private:
  /// Samples Devroye's J*(1, z) for z >= 0; PG(1, c) = J*(1, |c|/2) / 4.
  double SampleJacobi(double z, Rng* rng) const;

  /// Inverse-Gaussian(mu = 1/z, lambda = 1) truncated to (0, t].
  double SampleTruncatedInverseGaussian(double z, double t, Rng* rng) const;
};

/// Standard normal CDF (used by the sampler's left/right mass split and
/// exposed for tests).
double StandardNormalCdf(double x);

/// CDF of InverseGaussian(mu = 1/z, lambda = 1) at x > 0; handles z = 0 as
/// the Levy limit.
double InverseGaussianCdf(double x, double z);

}  // namespace cpd

#endif  // CPD_SAMPLING_POLYA_GAMMA_H_
