#include "sampling/polya_gamma.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace cpd {

namespace {
// Devroye's optimal truncation point between the inverse-Gaussian (left) and
// exponential (right) pieces of the J*(1, z) proposal.
constexpr double kTruncation = 0.64;
constexpr double kPi = 3.14159265358979323846;

// Piecewise series coefficients a_n(x) of the Jacobi density (PSW Eq. 16).
double SeriesCoefficient(int n, double x) {
  const double np = static_cast<double>(n) + 0.5;
  if (x <= kTruncation) {
    const double base = 2.0 / (kPi * x);
    return kPi * np * base * std::sqrt(base) * std::exp(-2.0 * np * np / x);
  }
  return kPi * np * std::exp(-np * np * kPi * kPi * x / 2.0);
}
}  // namespace

double StandardNormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double InverseGaussianCdf(double x, double z) {
  CPD_DCHECK(x > 0.0);
  // Standard IG(mu, lambda) CDF with mu = 1/z, lambda = 1:
  //   Phi(sqrt(1/x) (x z - 1)) + exp(2 z) Phi(-sqrt(1/x) (x z + 1)).
  // Continuous at z = 0 (the Levy limit gives 2 Phi(-1/sqrt(x))).
  const double rsx = 1.0 / std::sqrt(x);
  const double first = StandardNormalCdf(rsx * (x * z - 1.0));
  double second = 0.0;
  const double log_second =
      2.0 * z + std::log(StandardNormalCdf(-rsx * (x * z + 1.0)));
  if (std::isfinite(log_second)) second = std::exp(log_second);
  return first + second;
}

double PolyaGammaSampler::SampleTruncatedInverseGaussian(double z, double t,
                                                         Rng* rng) const {
  const double mu = (z > 0.0) ? 1.0 / z : std::numeric_limits<double>::infinity();
  double x = t + 1.0;
  if (mu > t) {
    // Small-z regime: rejection against the Levy-like proposal (PSW Alg. 3).
    while (true) {
      double e1 = rng->NextExp();
      double e2 = rng->NextExp();
      while (e1 * e1 > 2.0 * e2 / t) {
        e1 = rng->NextExp();
        e2 = rng->NextExp();
      }
      x = t / ((1.0 + t * e1) * (1.0 + t * e1));
      const double alpha = std::exp(-0.5 * z * z * x);
      if (rng->NextDouble() <= alpha) break;
    }
    return x;
  }
  // Large-z regime: Michael-Schucany-Haas IG sampling, retried until <= t.
  while (x > t) {
    const double y = rng->NextGaussian();
    const double y2 = y * y;
    const double mu_y2 = mu * y2;
    x = mu + 0.5 * mu * mu_y2 -
        0.5 * mu * std::sqrt(4.0 * mu_y2 + mu_y2 * mu_y2);
    if (rng->NextDouble() > mu / (mu + x)) x = mu * mu / x;
  }
  return x;
}

double PolyaGammaSampler::SampleJacobi(double z, Rng* rng) const {
  CPD_DCHECK(z >= 0.0);
  const double t = kTruncation;
  const double k = kPi * kPi / 8.0 + z * z / 2.0;
  // Mass of the exponential (right) and inverse-Gaussian (left) pieces.
  const double p = (kPi / (2.0 * k)) * std::exp(-k * t);
  const double q = 2.0 * std::exp(-z) * InverseGaussianCdf(t, z);
  const double right_prob = p / (p + q);

  while (true) {
    double x;
    if (rng->NextDouble() < right_prob) {
      x = t + rng->NextExp() / k;
    } else {
      x = SampleTruncatedInverseGaussian(z, t, rng);
    }
    // Alternating-series accept/reject (squeeze) on the Jacobi density.
    double s = SeriesCoefficient(0, x);
    const double y = rng->NextDouble() * s;
    int n = 0;
    bool accepted = false;
    while (true) {
      ++n;
      if (n % 2 == 1) {
        s -= SeriesCoefficient(n, x);
        if (y <= s) {
          accepted = true;
          break;
        }
      } else {
        s += SeriesCoefficient(n, x);
        if (y > s) break;
      }
    }
    if (accepted) return x;
  }
}

double PolyaGammaSampler::Sample(double c, Rng* rng) const {
  const double z = std::fabs(c) / 2.0;
  return SampleJacobi(z, rng) / 4.0;
}

double PolyaGammaSampler::Mean(double c) {
  const double a = std::fabs(c);
  if (a < 1e-8) return 0.25 - a * a / 48.0;  // Series expansion near 0.
  return std::tanh(a / 2.0) / (2.0 * a);
}

double PolyaGammaSampler::Variance(double c) {
  const double a = std::fabs(c);
  if (a < 1e-4) return 1.0 / 24.0;
  const double cosh_half = std::cosh(a / 2.0);
  return (std::sinh(a) - a) / (4.0 * a * a * a * cosh_half * cosh_half);
}

}  // namespace cpd
