#include "sampling/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

double SampleGamma(double shape, Rng* rng) {
  CPD_DCHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = rng->NextDoubleOpen();
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = rng->NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDoubleOpen();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double SampleGamma(double shape, double scale, Rng* rng) {
  CPD_DCHECK(scale > 0.0);
  return SampleGamma(shape, rng) * scale;
}

double SampleBeta(double a, double b, Rng* rng) {
  const double x = SampleGamma(a, rng);
  const double y = SampleGamma(b, rng);
  return x / (x + y);
}

std::vector<double> SampleSymmetricDirichlet(size_t dimension, double alpha,
                                             Rng* rng) {
  CPD_DCHECK(dimension > 0);
  std::vector<double> sample(dimension);
  for (double& v : sample) v = SampleGamma(alpha, rng);
  NormalizeInPlace(&sample);
  return sample;
}

std::vector<double> SampleDirichlet(std::span<const double> alpha, Rng* rng) {
  CPD_DCHECK(!alpha.empty());
  std::vector<double> sample(alpha.size());
  for (size_t i = 0; i < alpha.size(); ++i) sample[i] = SampleGamma(alpha[i], rng);
  NormalizeInPlace(&sample);
  return sample;
}

size_t SampleCategorical(std::span<const double> weights, Rng* rng) {
  CPD_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CPD_DCHECK(w >= 0.0);
    total += w;
  }
  CPD_DCHECK(total > 0.0);
  double draw = rng->NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bucket.
}

size_t SampleCategoricalFromLog(std::span<const double> log_weights, Rng* rng) {
  CPD_DCHECK(!log_weights.empty());
  const double max_log =
      *std::max_element(log_weights.begin(), log_weights.end());
  double total = 0.0;
  for (double lw : log_weights) total += std::exp(lw - max_log);
  double draw = rng->NextDouble() * total;
  for (size_t i = 0; i < log_weights.size(); ++i) {
    draw -= std::exp(log_weights[i] - max_log);
    if (draw < 0.0) return i;
  }
  return log_weights.size() - 1;
}

}  // namespace cpd
