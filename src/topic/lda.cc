#include "topic/lda.h"

#include <cmath>

#include "sampling/distributions.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

Status LdaConfig::Validate() const {
  if (num_topics < 1) return Status::InvalidArgument("LDA: num_topics < 1");
  if (beta <= 0.0) return Status::InvalidArgument("LDA: beta <= 0");
  if (iterations < 1) return Status::InvalidArgument("LDA: iterations < 1");
  return Status::OK();
}

StatusOr<LdaModel> LdaModel::Train(const Corpus& corpus, const LdaConfig& config) {
  CPD_RETURN_IF_ERROR(config.Validate());
  if (corpus.num_documents() == 0) {
    return Status::FailedPrecondition("LDA: empty corpus");
  }

  LdaModel model;
  model.num_topics_ = config.num_topics;
  model.vocab_size_ = corpus.vocabulary().size();
  model.alpha_ = config.alpha > 0.0 ? config.alpha : 0.1;
  model.beta_ = config.beta;

  const size_t num_docs = corpus.num_documents();
  const int kz = config.num_topics;
  const size_t vocab = model.vocab_size_;

  model.doc_topic_counts_.assign(num_docs, std::vector<int32_t>(kz, 0));
  model.doc_lengths_.assign(num_docs, 0);
  model.topic_word_counts_.assign(static_cast<size_t>(kz) * vocab, 0);
  model.topic_totals_.assign(kz, 0);

  // Token-level topic assignments.
  std::vector<std::vector<int32_t>> assignments(num_docs);
  Rng rng(config.seed);

  for (size_t d = 0; d < num_docs; ++d) {
    const Document& doc = corpus.document(static_cast<DocId>(d));
    assignments[d].resize(doc.words.size());
    model.doc_lengths_[d] = static_cast<int64_t>(doc.words.size());
    for (size_t k = 0; k < doc.words.size(); ++k) {
      const int z = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(kz)));
      assignments[d][k] = z;
      ++model.doc_topic_counts_[d][static_cast<size_t>(z)];
      ++model.topic_word_counts_[static_cast<size_t>(z) * vocab +
                                 static_cast<size_t>(doc.words[k])];
      ++model.topic_totals_[static_cast<size_t>(z)];
    }
  }

  std::vector<double> weights(static_cast<size_t>(kz));
  const double v_beta = static_cast<double>(vocab) * model.beta_;
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (size_t d = 0; d < num_docs; ++d) {
      const Document& doc = corpus.document(static_cast<DocId>(d));
      for (size_t k = 0; k < doc.words.size(); ++k) {
        const WordId w = doc.words[k];
        const int old_z = assignments[d][k];
        --model.doc_topic_counts_[d][static_cast<size_t>(old_z)];
        --model.topic_word_counts_[static_cast<size_t>(old_z) * vocab +
                                   static_cast<size_t>(w)];
        --model.topic_totals_[static_cast<size_t>(old_z)];

        for (int z = 0; z < kz; ++z) {
          const double doc_part =
              static_cast<double>(model.doc_topic_counts_[d][static_cast<size_t>(z)]) +
              model.alpha_;
          const double word_part =
              (static_cast<double>(
                   model.topic_word_counts_[static_cast<size_t>(z) * vocab +
                                            static_cast<size_t>(w)]) +
               model.beta_) /
              (static_cast<double>(model.topic_totals_[static_cast<size_t>(z)]) +
               v_beta);
          weights[static_cast<size_t>(z)] = doc_part * word_part;
        }
        const int new_z = static_cast<int>(SampleCategorical(weights, &rng));
        assignments[d][k] = new_z;
        ++model.doc_topic_counts_[d][static_cast<size_t>(new_z)];
        ++model.topic_word_counts_[static_cast<size_t>(new_z) * vocab +
                                   static_cast<size_t>(w)];
        ++model.topic_totals_[static_cast<size_t>(new_z)];
      }
    }
  }
  return model;
}

std::vector<double> LdaModel::DocumentTopics(DocId d) const {
  CPD_CHECK_GE(d, 0);
  CPD_CHECK_LT(static_cast<size_t>(d), doc_topic_counts_.size());
  const auto& counts = doc_topic_counts_[static_cast<size_t>(d)];
  const double denom = static_cast<double>(doc_lengths_[static_cast<size_t>(d)]) +
                       static_cast<double>(num_topics_) * alpha_;
  std::vector<double> theta(static_cast<size_t>(num_topics_));
  for (int z = 0; z < num_topics_; ++z) {
    theta[static_cast<size_t>(z)] =
        (static_cast<double>(counts[static_cast<size_t>(z)]) + alpha_) / denom;
  }
  return theta;
}

std::vector<double> LdaModel::TopicWords(int z) const {
  CPD_CHECK(z >= 0 && z < num_topics_);
  std::vector<double> phi(vocab_size_);
  const double denom = static_cast<double>(topic_totals_[static_cast<size_t>(z)]) +
                       static_cast<double>(vocab_size_) * beta_;
  for (size_t w = 0; w < vocab_size_; ++w) {
    phi[w] = (static_cast<double>(
                  topic_word_counts_[static_cast<size_t>(z) * vocab_size_ + w]) +
              beta_) /
             denom;
  }
  return phi;
}

double LdaModel::TopicWordProbability(int z, WordId w) const {
  CPD_DCHECK(z >= 0 && z < num_topics_);
  CPD_DCHECK(w >= 0 && static_cast<size_t>(w) < vocab_size_);
  const double denom = static_cast<double>(topic_totals_[static_cast<size_t>(z)]) +
                       static_cast<double>(vocab_size_) * beta_;
  return (static_cast<double>(
              topic_word_counts_[static_cast<size_t>(z) * vocab_size_ +
                                 static_cast<size_t>(w)]) +
          beta_) /
         denom;
}

int LdaModel::DominantTopicOfUser(const Corpus& corpus, UserId u) const {
  const auto& by_user = corpus.documents_by_user();
  if (u < 0 || static_cast<size_t>(u) >= by_user.size()) return 0;
  std::vector<int64_t> totals(static_cast<size_t>(num_topics_), 0);
  for (DocId d : by_user[static_cast<size_t>(u)]) {
    const auto& counts = doc_topic_counts_[static_cast<size_t>(d)];
    for (int z = 0; z < num_topics_; ++z) {
      totals[static_cast<size_t>(z)] += counts[static_cast<size_t>(z)];
    }
  }
  int best = 0;
  for (int z = 1; z < num_topics_; ++z) {
    if (totals[static_cast<size_t>(z)] > totals[static_cast<size_t>(best)]) best = z;
  }
  return best;
}

double LdaModel::Perplexity(const Corpus& corpus, std::span<const DocId> docs) const {
  double log_likelihood = 0.0;
  int64_t token_count = 0;
  for (DocId d : docs) {
    const Document& doc = corpus.document(d);
    const std::vector<double> theta = DocumentTopics(d);
    for (WordId w : doc.words) {
      double p = 0.0;
      for (int z = 0; z < num_topics_; ++z) {
        p += theta[static_cast<size_t>(z)] * TopicWordProbability(z, w);
      }
      log_likelihood += std::log(std::max(p, 1e-300));
      ++token_count;
    }
  }
  if (token_count == 0) return 0.0;
  return std::exp(-log_likelihood / static_cast<double>(token_count));
}

std::vector<WordId> LdaModel::TopWords(int z, size_t k) const {
  const std::vector<double> phi = TopicWords(z);
  const std::vector<size_t> top = TopKIndices(phi, k);
  std::vector<WordId> words;
  words.reserve(top.size());
  for (size_t idx : top) words.push_back(static_cast<WordId>(idx));
  return words;
}

}  // namespace cpd
