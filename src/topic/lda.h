#ifndef CPD_TOPIC_LDA_H_
#define CPD_TOPIC_LDA_H_

/// \file lda.h
/// Collapsed-Gibbs Latent Dirichlet Allocation (Blei et al., 2003 [3]).
/// CPD uses LDA in three places, exactly as the paper does:
///  1. the parallel E-step segments users by their dominant LDA topic (§4.3);
///  2. the "+Agg" baselines aggregate LDA document topics into community
///     content/diffusion profiles (Eqs. 20-21);
///  3. perplexity evaluation of content profiles (§6.1).

#include <cstdint>
#include <span>
#include <vector>

#include "text/corpus.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpd {

struct LdaConfig {
  int num_topics = 20;
  /// Doc-topic prior; <0 selects 0.1. (The 50/K convention of [13] assumes
  /// long documents; the short tweets/titles this library models need a
  /// sparse doc-topic prior or the prior swamps the 5-10 word likelihood.)
  double alpha = -1.0;
  double beta = 0.1;  ///< Topic-word prior (paper convention).
  int iterations = 50;
  uint64_t seed = 7;

  /// Validates field ranges.
  Status Validate() const;
};

/// Trained LDA model over a corpus.
class LdaModel {
 public:
  /// Runs collapsed Gibbs sampling over the corpus's documents.
  static StatusOr<LdaModel> Train(const Corpus& corpus, const LdaConfig& config);

  int num_topics() const { return num_topics_; }
  size_t num_documents() const { return doc_topic_counts_.size(); }
  size_t vocabulary_size() const { return vocab_size_; }

  /// Smoothed document-topic distribution theta_d (length num_topics).
  std::vector<double> DocumentTopics(DocId d) const;

  /// Smoothed topic-word distribution phi_z (length vocabulary size).
  std::vector<double> TopicWords(int z) const;

  /// phi_{z,w} for a single word.
  double TopicWordProbability(int z, WordId w) const;

  /// The most frequently assigned topic among the user's document tokens;
  /// drives the data segmentation of §4.3. Users without documents get
  /// topic 0.
  int DominantTopicOfUser(const Corpus& corpus, UserId u) const;

  /// Per-token log-likelihood-based perplexity over the given documents
  /// (lower is better). Documents must share this model's vocabulary.
  double Perplexity(const Corpus& corpus, std::span<const DocId> docs) const;

  /// Ids of the top-k most probable words of topic z.
  std::vector<WordId> TopWords(int z, size_t k) const;

 private:
  LdaModel() = default;

  int num_topics_ = 0;
  size_t vocab_size_ = 0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
  // Final-sample counts (collapsed estimator).
  std::vector<std::vector<int32_t>> doc_topic_counts_;  // [doc][topic]
  std::vector<int64_t> doc_lengths_;
  std::vector<int32_t> topic_word_counts_;  // [topic * V + word]
  std::vector<int64_t> topic_totals_;       // [topic]
};

}  // namespace cpd

#endif  // CPD_TOPIC_LDA_H_
