#ifndef CPD_DIST_DISTRIBUTED_EXECUTOR_H_
#define CPD_DIST_DISTRIBUTED_EXECUTOR_H_

/// \file distributed_executor.h
/// The coordinator half of the distributed E-step: a ShardExecutor that
/// ships the per-sweep StateSnapshot to cpd_worker processes over the
/// src/dist wire protocol and merges their CounterDeltas back in canonical
/// shard order. Because every shard's RNG stream travels with the shard
/// (out in kRunShard, back advanced in kShardResult) and Polya-Gamma
/// augmentation runs locally on the coordinator with those same streams,
/// a distributed run is bit-identical to a serial or pooled run with the
/// same seed and shard count — including after a worker death, since
/// re-dispatch resends the shard's original RNG state to a survivor.
///
/// Robustness: per-worker handshake (protocol version + model dimensions),
/// a per-sweep deadline after which pending shards are re-dispatched to
/// surviving workers (stragglers are declared dead), and a clean kShutdown
/// drain on destruction. Only when every worker is gone does a sweep fail
/// (Status::Unavailable).

#include <memory>
#include <string>
#include <vector>

#include "core/diffusion_features.h"
#include "core/model_config.h"
#include "graph/social_graph.h"
#include "parallel/segmenter.h"
#include "parallel/shard_executor.h"
#include "util/status.h"

namespace cpd::dist {

/// Connection plan for MakeDistributedExecutor. Exactly one of
/// spawn_workers / worker_addrs / connected_fds must be set.
struct DistributedOptions {
  /// Fork+exec this many local cpd_worker processes on loopback.
  int spawn_workers = 0;

  /// Pre-started workers to connect to, as numeric "HOST:PORT" strings.
  std::vector<std::string> worker_addrs;

  /// Already-connected sockets (test injection: in-process socketpair
  /// workers). The executor takes ownership of the fds.
  std::vector<int> connected_fds;

  /// Worker binary for spawn_workers; empty = "cpd_worker" next to the
  /// running executable.
  std::string worker_binary;

  /// Extra argv appended to spawned workers (fault-injection test flags).
  std::vector<std::string> spawn_extra_args;

  int sweep_deadline_ms = 30000;
  int handshake_timeout_ms = 15000;
};

/// Connects/spawns and handshakes every worker; fails (closing everything
/// it opened) if any session cannot be established — a missing worker at
/// startup is a configuration error, not a fault to tolerate.
StatusOr<std::unique_ptr<ShardExecutor>> MakeDistributedExecutor(
    const SocialGraph& graph, const CpdConfig& config, const LinkCaches& caches,
    ThreadPlan plan, DistributedOptions options);

/// Convenience overload deriving DistributedOptions from config.dist_*.
StatusOr<std::unique_ptr<ShardExecutor>> MakeDistributedExecutor(
    const SocialGraph& graph, const CpdConfig& config, const LinkCaches& caches,
    ThreadPlan plan);

}  // namespace cpd::dist

#endif  // CPD_DIST_DISTRIBUTED_EXECUTOR_H_
