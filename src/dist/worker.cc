#include "dist/worker.h"

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/diffusion_features.h"
#include "core/gibbs_sampler.h"
#include "core/model_state.h"
#include "core/state_snapshot.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cpd::dist {

namespace {

/// Everything a session materializes from kSetup: the rebuilt graph plus one
/// working slot (state + sampler + shared-table set), mirroring the
/// in-process executors' Slot.
struct Session {
  Session(SetupMsg setup_msg)
      : setup(std::move(setup_msg)),
        caches(setup.graph),
        working(setup.graph, setup.config),
        sampler(setup.graph, setup.config, caches, &working) {
    sampler.UseExternalSparseTables(&tables);
  }

  SetupMsg setup;
  LinkCaches caches;
  ModelState working;
  GibbsSampler sampler;
  SparseSamplerTables tables;
  StateSnapshot snapshot;
  KernelFlags flags;
  uint64_t sweep = 0;
  uint64_t restored_params_version = 0;
  bool have_sweep = false;
};

void SendErrorBestEffort(int fd, const Status& status) {
  (void)SendFrame(fd, MsgType::kError, EncodeErrorBody(status.ToString()));
}

/// Reads and discards until the peer hangs up; the "hang" fault mode. The
/// coordinator's deadline handler shuts the socket down, which unblocks this
/// recv — so a hung worker thread never outlives its test.
void DrainUntilEof(int fd) {
  char buf[4096];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
}

Status Serve(int fd, const WorkerHooks& hooks) {
  // --- handshake: echo Hello back verbatim, then expect Setup. ---
  auto hello_frame = RecvFrame(fd);
  if (!hello_frame.ok()) return hello_frame.status();
  if (hello_frame->type != MsgType::kHello) {
    return Status::InvalidArgument(
        std::string("worker: expected Hello, got ") +
        MsgTypeName(hello_frame->type));
  }
  auto hello = HelloMsg::Decode(hello_frame->body);
  if (!hello.ok()) return hello.status();
  CPD_RETURN_IF_ERROR(SendFrame(fd, MsgType::kHelloAck, hello_frame->body));

  auto setup_frame = RecvFrame(fd);
  if (!setup_frame.ok()) return setup_frame.status();
  if (setup_frame->type != MsgType::kSetup) {
    return Status::InvalidArgument(
        std::string("worker: expected Setup, got ") +
        MsgTypeName(setup_frame->type));
  }
  auto setup = SetupMsg::Decode(setup_frame->body);
  if (!setup.ok()) return setup.status();
  if (setup->graph.num_users() != hello->num_users ||
      setup->graph.num_documents() != hello->num_documents ||
      setup->graph.vocabulary_size() != hello->vocab_size ||
      setup->config.num_communities != hello->num_communities ||
      setup->config.num_topics != hello->num_topics ||
      setup->shard_users.size() != hello->num_shards) {
    return Status::InvalidArgument(
        "worker: Setup does not match the Hello dimensions");
  }
  Session session(std::move(*setup));
  CPD_RETURN_IF_ERROR(SendFrame(fd, MsgType::kReady, std::string_view()));

  // --- sweep/shard loop. ---
  int completed_shards = 0;
  for (;;) {
    auto frame = RecvFrame(fd);
    if (!frame.ok()) {
      // EOF / reset after the handshake is the coordinator going away;
      // drain cleanly rather than report an error.
      return Status::OK();
    }
    switch (frame->type) {
      case MsgType::kShutdown:
        return Status::OK();

      case MsgType::kSweepBegin: {
        auto msg = SweepBeginMsg::Decode(frame->body, &session.snapshot);
        if (!msg.ok()) return msg.status();
        session.sweep = msg->sweep;
        session.flags = msg->flags;
        session.have_sweep = true;
        if (session.setup.config.sampler_mode == SamplerMode::kSparse) {
          session.tables.Rebuild(session.snapshot, nullptr);
        }
        break;
      }

      case MsgType::kRunShard: {
        auto msg = RunShardMsg::Decode(frame->body);
        if (!msg.ok()) return msg.status();
        if (!session.have_sweep || msg->sweep != session.sweep) {
          return Status::FailedPrecondition(
              "worker: RunShard for a sweep that was never begun");
        }
        if (msg->shard >= session.setup.shard_users.size()) {
          return Status::InvalidArgument("worker: shard index out of range");
        }
        if (hooks.fail_after_shards >= 0 &&
            completed_shards >= hooks.fail_after_shards) {
          if (hooks.hang_instead) {
            DrainUntilEof(fd);
            return Status::OK();
          }
          ::shutdown(fd, SHUT_RDWR);
          return Status::OK();
        }

        const std::vector<UserId>& users =
            session.setup.shard_users[msg->shard];
        Rng rng(1);
        rng.LoadState(msg->rng);
        CounterDelta delta;
        WallTimer timer;
        // Mirrors ShardExecutorBase::RunShard: full sweep-state restore per
        // shard (each shard starts from the snapshot, not from the previous
        // shard's private state), parameter restore only on version change.
        if (!users.empty()) {
          session.snapshot.RestoreSweepStateTo(&session.working);
          if (session.restored_params_version !=
              session.snapshot.parameters_version()) {
            session.snapshot.RestoreParametersTo(&session.working);
            session.restored_params_version =
                session.snapshot.parameters_version();
          }
          session.sampler.set_freeze_communities(
              session.flags.freeze_communities);
          session.sampler.set_community_uses_content(
              session.flags.community_uses_content);
          session.sampler.set_community_uses_diffusion(
              session.flags.community_uses_diffusion);
          session.sampler.SweepUsers(users, /*concurrent=*/false, &rng);
          const SocialGraph& graph = session.setup.graph;
          for (UserId u : users) {
            for (DocId d : graph.DocumentsOf(u)) {
              const size_t di = static_cast<size_t>(d);
              delta.RecordMove(graph.document(d), d,
                               session.snapshot.CommunityOf(d),
                               session.snapshot.TopicOf(d),
                               session.working.doc_community[di],
                               session.working.doc_topic[di],
                               session.setup.config.num_communities,
                               session.setup.config.num_topics,
                               session.working.vocab_size);
            }
          }
        }

        ShardResultMsg result;
        result.sweep = msg->sweep;
        result.shard = msg->shard;
        result.rng = rng.SaveState();
        result.shard_seconds = timer.ElapsedSeconds();
        result.mh = session.sampler.mh_stats();
        result.collapse = session.sampler.collapse_cache_stats();
        session.sampler.ResetMhStats();
        session.sampler.ResetCollapseCacheStats();
        CPD_RETURN_IF_ERROR(
            SendFrame(fd, MsgType::kShardResult, result.Encode(delta)));
        ++completed_shards;
        break;
      }

      default:
        return Status::InvalidArgument(
            std::string("worker: unexpected message ") +
            MsgTypeName(frame->type));
    }
  }
}

}  // namespace

Status ServeWorker(int fd, const WorkerHooks& hooks) {
  const Status status = Serve(fd, hooks);
  if (!status.ok()) SendErrorBestEffort(fd, status);
  ::close(fd);
  return status;
}

}  // namespace cpd::dist
