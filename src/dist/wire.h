#ifndef CPD_DIST_WIRE_H_
#define CPD_DIST_WIRE_H_

/// \file wire.h
/// The distributed E-step's wire protocol (see docs/ARCHITECTURE.md,
/// "Distributed E-step"): length-prefixed binary frames carrying the
/// snapshot/delta messages between the coordinator (DistributedExecutor) and
/// cpd_worker processes. Framing is versioned exactly like the .cpdb model
/// artifact —
///
///   magic "CPDBWIRE" | u32 version | u32 endian tag 0x01020304 |
///   u32 message type | u64 body length | body
///
/// — and decoding fails with the same typed Status vocabulary: wrong magic /
/// endianness / malformed structure is InvalidArgument, a newer version is
/// Unimplemented, truncated or trailing bytes are OutOfRange.
///
/// Session shape (coordinator -> worker unless noted):
///   kHello / kHelloAck (echo, worker -> coordinator): protocol + model-dim
///     handshake; the coordinator verifies the echo byte-for-byte.
///   kSetup / kReady: the sampling config subset, the full social graph and
///     the per-shard user lists — sent once per session.
///   kSweepBegin: per sweep, broadcast to every live worker: sweep sequence
///     number, kernel flags, the sweep-state snapshot blob, and (only when
///     the M-step advanced them) the parameter blob.
///   kRunShard: one shard assignment — shard index plus that shard's RNG
///     stream state. Shipping the stream is what makes re-dispatch after a
///     worker death bit-deterministic: any worker continues the exact draws.
///   kShardResult (worker -> coordinator): the shard's CounterDelta, its
///     advanced RNG state, wall seconds, and MH/collapse-memo counters.
///   kShutdown: clean drain; the worker exits its serve loop.
///   kError (worker -> coordinator): best-effort failure report.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/model_config.h"
#include "core/state_snapshot.h"
#include "graph/social_graph.h"
#include "parallel/shard_executor.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/wire_format.h"

namespace cpd::dist {

inline constexpr char kWireMagic[8] = {'C', 'P', 'D', 'B', 'W', 'I', 'R', 'E'};
inline constexpr uint32_t kWireVersion = 1;
inline constexpr uint32_t kWireEndianTag = 0x01020304u;
inline constexpr size_t kFrameHeaderBytes = 8 + 4 + 4 + 4 + 8;

enum class MsgType : uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kSetup = 3,
  kReady = 4,
  kSweepBegin = 5,
  kRunShard = 6,
  kShardResult = 7,
  kShutdown = 8,
  kError = 9,
};

const char* MsgTypeName(MsgType type);

struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

/// Appends one framed message to *out. `version` is overridable only so
/// tests can forge mismatching frames.
void AppendFrame(std::string* out, MsgType type, std::string_view body,
                 uint32_t version = kWireVersion);

/// Decodes the fixed-size header (exactly kFrameHeaderBytes). Typed errors
/// mirror the model artifact reader: InvalidArgument for bad magic / endian
/// tag / unknown message type, Unimplemented for a newer version.
struct FrameHeader {
  MsgType type = MsgType::kError;
  uint64_t body_length = 0;
};
StatusOr<FrameHeader> DecodeFrameHeader(std::string_view header);

/// Decodes one complete frame from a whole buffer: OutOfRange when the body
/// is truncated or trailing bytes follow it.
StatusOr<Frame> DecodeFrame(std::string_view bytes);

// ----- message payloads -----

/// Handshake: protocol + the model dimensions both sides must agree on.
/// The worker echoes the coordinator's Hello verbatim as its HelloAck.
struct HelloMsg {
  uint32_t protocol_version = kWireVersion;
  int32_t num_communities = 0;
  int32_t num_topics = 0;
  uint64_t num_users = 0;
  uint64_t num_documents = 0;
  uint64_t vocab_size = 0;
  uint32_t num_shards = 0;
  uint64_t seed = 0;

  bool operator==(const HelloMsg&) const = default;

  std::string Encode() const;
  static StatusOr<HelloMsg> Decode(std::string_view body);
};

/// The sampling-relevant CpdConfig subset a worker needs to reproduce the
/// shard kernels (trainer-only knobs like em_iterations stay home).
void EncodeConfig(const CpdConfig& config, WireWriter* writer);
Status DecodeConfig(WireReader* reader, CpdConfig* config);

/// The social graph, re-buildable on the worker: documents as token ids over
/// an anonymous vocabulary of the same size (word strings never matter to
/// the kernels), plus both link sets. Ids round-trip unchanged.
void EncodeGraph(const SocialGraph& graph, WireWriter* writer);
StatusOr<SocialGraph> DecodeGraph(WireReader* reader);

/// kSetup body: config + graph + the plan's per-shard user lists.
struct SetupMsg {
  CpdConfig config;
  SocialGraph graph;
  std::vector<std::vector<UserId>> shard_users;

  static std::string Encode(const CpdConfig& config, const SocialGraph& graph,
                            const std::vector<std::vector<UserId>>& shard_users);
  static StatusOr<SetupMsg> Decode(std::string_view body);
};

void EncodeRngState(const Rng::State& state, WireWriter* writer);
Rng::State DecodeRngState(WireReader* reader);

/// kSweepBegin body. The snapshot blobs are encoded/decoded through the
/// StateSnapshot codec; `has_parameters` marks whether the parameter blob
/// (eta/weights/popularity) precedes the sweep-state blob.
struct SweepBeginMsg {
  uint64_t sweep = 0;
  KernelFlags flags;
  bool has_parameters = false;

  static std::string Encode(uint64_t sweep, const KernelFlags& flags,
                            const StateSnapshot& snapshot,
                            bool include_parameters);
  /// Decodes header fields and the blobs into *snapshot (parameters only
  /// when present).
  static StatusOr<SweepBeginMsg> Decode(std::string_view body,
                                        StateSnapshot* snapshot);
};

struct RunShardMsg {
  uint64_t sweep = 0;
  uint32_t shard = 0;
  Rng::State rng;

  std::string Encode() const;
  static StatusOr<RunShardMsg> Decode(std::string_view body);
};

struct ShardResultMsg {
  uint64_t sweep = 0;
  uint32_t shard = 0;
  Rng::State rng;  ///< The stream state after the shard's sweep.
  double shard_seconds = 0.0;
  MhStats mh;
  CollapseCacheStats collapse;

  /// The delta is passed separately so the coordinator can decode straight
  /// into its per-shard slot without an intermediate copy.
  std::string Encode(const CounterDelta& delta) const;
  static StatusOr<ShardResultMsg> Decode(std::string_view body,
                                         CounterDelta* delta);
};

/// kError body: a bare message string.
std::string EncodeErrorBody(const std::string& message);
StatusOr<std::string> DecodeErrorBody(std::string_view body);

}  // namespace cpd::dist

#endif  // CPD_DIST_WIRE_H_
