#include "dist/wire.h"

#include <cstring>

#include "graph/graph_builder.h"

namespace cpd::dist {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloAck: return "HelloAck";
    case MsgType::kSetup: return "Setup";
    case MsgType::kReady: return "Ready";
    case MsgType::kSweepBegin: return "SweepBegin";
    case MsgType::kRunShard: return "RunShard";
    case MsgType::kShardResult: return "ShardResult";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kError: return "Error";
  }
  return "Unknown";
}

namespace {

bool IsKnownMsgType(uint32_t raw) {
  return raw >= static_cast<uint32_t>(MsgType::kHello) &&
         raw <= static_cast<uint32_t>(MsgType::kError);
}

}  // namespace

void AppendFrame(std::string* out, MsgType type, std::string_view body,
                 uint32_t version) {
  WireWriter writer(out);
  out->append(kWireMagic, sizeof(kWireMagic));
  writer.U32(version);
  writer.U32(kWireEndianTag);
  writer.U32(static_cast<uint32_t>(type));
  writer.U64(body.size());
  out->append(body.data(), body.size());
}

StatusOr<FrameHeader> DecodeFrameHeader(std::string_view header) {
  if (header.size() < kFrameHeaderBytes) {
    return Status::OutOfRange("wire: truncated frame header");
  }
  if (std::memcmp(header.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    return Status::InvalidArgument("wire: bad magic (not a CPDBWIRE frame)");
  }
  WireReader reader(header.substr(sizeof(kWireMagic), kFrameHeaderBytes - 8));
  const uint32_t version = reader.U32();
  const uint32_t endian = reader.U32();
  const uint32_t raw_type = reader.U32();
  const uint64_t body_length = reader.U64();
  if (version > kWireVersion) {
    return Status::Unimplemented("wire: frame version " +
                                 std::to_string(version) +
                                 " is newer than this build (" +
                                 std::to_string(kWireVersion) + ")");
  }
  if (version < 1) {
    return Status::InvalidArgument("wire: frame version 0");
  }
  if (endian != kWireEndianTag) {
    return Status::InvalidArgument("wire: foreign byte order");
  }
  if (!IsKnownMsgType(raw_type)) {
    return Status::InvalidArgument("wire: unknown message type " +
                                   std::to_string(raw_type));
  }
  FrameHeader out;
  out.type = static_cast<MsgType>(raw_type);
  out.body_length = body_length;
  return out;
}

StatusOr<Frame> DecodeFrame(std::string_view bytes) {
  auto header = DecodeFrameHeader(bytes);
  if (!header.ok()) return header.status();
  const std::string_view body = bytes.substr(
      std::min(bytes.size(), kFrameHeaderBytes));
  if (body.size() < header->body_length) {
    return Status::OutOfRange("wire: truncated frame body");
  }
  if (body.size() > header->body_length) {
    return Status::OutOfRange("wire: trailing bytes after frame body");
  }
  Frame frame;
  frame.type = header->type;
  frame.body.assign(body.data(), body.size());
  return frame;
}

// ----- Hello -----

std::string HelloMsg::Encode() const {
  std::string out;
  WireWriter writer(&out);
  writer.U32(protocol_version);
  writer.I32(num_communities);
  writer.I32(num_topics);
  writer.U64(num_users);
  writer.U64(num_documents);
  writer.U64(vocab_size);
  writer.U32(num_shards);
  writer.U64(seed);
  return out;
}

StatusOr<HelloMsg> HelloMsg::Decode(std::string_view body) {
  WireReader reader(body);
  HelloMsg msg;
  msg.protocol_version = reader.U32();
  msg.num_communities = reader.I32();
  msg.num_topics = reader.I32();
  msg.num_users = reader.U64();
  msg.num_documents = reader.U64();
  msg.vocab_size = reader.U64();
  msg.num_shards = reader.U32();
  msg.seed = reader.U64();
  CPD_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

// ----- config -----

void EncodeConfig(const CpdConfig& config, WireWriter* writer) {
  writer->I32(config.num_communities);
  writer->I32(config.num_topics);
  writer->F64(config.alpha);
  writer->F64(config.rho);
  writer->F64(config.beta);
  writer->U8(static_cast<uint8_t>(config.popularity_mode));
  writer->U8(static_cast<uint8_t>(config.sampler_mode));
  writer->I32(config.mh_steps);
  writer->Bool(config.cache_eta_collapse);
  writer->Bool(config.ablation.joint_profiling);
  writer->Bool(config.ablation.heterogeneous_links);
  writer->Bool(config.ablation.individual_factor);
  writer->Bool(config.ablation.topic_factor);
  writer->Bool(config.ablation.model_friendship);
  writer->Bool(config.ablation.model_diffusion);
  writer->U64(config.seed);
}

Status DecodeConfig(WireReader* reader, CpdConfig* config) {
  config->num_communities = reader->I32();
  config->num_topics = reader->I32();
  config->alpha = reader->F64();
  config->rho = reader->F64();
  config->beta = reader->F64();
  const uint8_t popularity = reader->U8();
  const uint8_t sampler = reader->U8();
  config->mh_steps = reader->I32();
  config->cache_eta_collapse = reader->Bool();
  config->ablation.joint_profiling = reader->Bool();
  config->ablation.heterogeneous_links = reader->Bool();
  config->ablation.individual_factor = reader->Bool();
  config->ablation.topic_factor = reader->Bool();
  config->ablation.model_friendship = reader->Bool();
  config->ablation.model_diffusion = reader->Bool();
  config->seed = reader->U64();
  CPD_RETURN_IF_ERROR(reader->status());
  if (popularity > static_cast<uint8_t>(PopularityMode::kLog1p)) {
    return Status::InvalidArgument("wire config: bad popularity mode");
  }
  if (sampler > static_cast<uint8_t>(SamplerMode::kSparse)) {
    return Status::InvalidArgument("wire config: bad sampler mode");
  }
  config->popularity_mode = static_cast<PopularityMode>(popularity);
  config->sampler_mode = static_cast<SamplerMode>(sampler);
  // Worker-side execution is always one serial slot; threading/sharding
  // decisions live on the coordinator.
  config->num_threads = 1;
  config->executor_mode = ExecutorMode::kSerial;
  return Status::OK();
}

// ----- graph -----

void EncodeGraph(const SocialGraph& graph, WireWriter* writer) {
  writer->U64(graph.num_users());
  writer->U64(graph.vocabulary_size());
  writer->U64(graph.num_documents());
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    writer->I32(doc.user);
    writer->I32(doc.time);
    writer->Vec(doc.words);
  }
  writer->U64(graph.num_friendship_links());
  for (const FriendshipLink& link : graph.friendship_links()) {
    writer->I32(link.u);
    writer->I32(link.v);
  }
  writer->U64(graph.num_diffusion_links());
  for (const DiffusionLink& link : graph.diffusion_links()) {
    writer->I32(link.i);
    writer->I32(link.j);
    writer->I32(link.time);
  }
}

StatusOr<SocialGraph> DecodeGraph(WireReader* reader) {
  const uint64_t num_users = reader->U64();
  const uint64_t vocab_size = reader->U64();
  const uint64_t num_docs = reader->U64();
  CPD_RETURN_IF_ERROR(reader->status());
  if (num_docs > reader->remaining() / 8) {
    return Status::OutOfRange("wire graph: truncated document section");
  }

  GraphBuilder builder;
  builder.SetNumUsers(static_cast<size_t>(num_users));
  // The kernels only ever see word *ids*, so the rebuilt vocabulary is an
  // anonymous one of the same size — the ids (and the token counters the
  // corpus maintains) line up with the coordinator's exactly.
  Vocabulary vocab;
  for (uint64_t w = 0; w < vocab_size; ++w) {
    vocab.GetOrAdd("w" + std::to_string(w));
  }
  builder.SetVocabulary(std::move(vocab));

  std::vector<WordId> words;
  for (uint64_t d = 0; d < num_docs; ++d) {
    const int32_t user = reader->I32();
    const int32_t time = reader->I32();
    reader->Vec(&words);
    CPD_RETURN_IF_ERROR(reader->status());
    if (user < 0 || static_cast<uint64_t>(user) >= num_users) {
      return Status::InvalidArgument("wire graph: document user out of range");
    }
    for (const WordId w : words) {
      if (w < 0 || static_cast<uint64_t>(w) >= vocab_size) {
        return Status::InvalidArgument("wire graph: word id out of range");
      }
    }
    const DocId id = builder.AddTokenizedDocument(user, time, words);
    if (id != static_cast<DocId>(d)) {
      return Status::InvalidArgument(
          "wire graph: document ids did not round-trip (min-length filter?)");
    }
  }

  const uint64_t num_friend = reader->U64();
  CPD_RETURN_IF_ERROR(reader->status());
  if (num_friend > reader->remaining() / 8) {
    return Status::OutOfRange("wire graph: truncated friendship section");
  }
  for (uint64_t f = 0; f < num_friend; ++f) {
    const int32_t u = reader->I32();
    const int32_t v = reader->I32();
    if (!reader->ok()) break;
    if (u < 0 || v < 0 || static_cast<uint64_t>(u) >= num_users ||
        static_cast<uint64_t>(v) >= num_users) {
      return Status::InvalidArgument("wire graph: friendship out of range");
    }
    builder.AddFriendship(u, v);
  }

  const uint64_t num_diffusion = reader->U64();
  CPD_RETURN_IF_ERROR(reader->status());
  if (num_diffusion > reader->remaining() / 12) {
    return Status::OutOfRange("wire graph: truncated diffusion section");
  }
  for (uint64_t e = 0; e < num_diffusion; ++e) {
    const int32_t i = reader->I32();
    const int32_t j = reader->I32();
    const int32_t time = reader->I32();
    if (!reader->ok()) break;
    if (i < 0 || j < 0 || static_cast<uint64_t>(i) >= num_docs ||
        static_cast<uint64_t>(j) >= num_docs || time < 0) {
      return Status::InvalidArgument("wire graph: diffusion out of range");
    }
    builder.AddDiffusion(i, j, time);
  }
  CPD_RETURN_IF_ERROR(reader->status());

  // The encoded graph was already built once, so every id is final: a
  // dropping rebuild could only corrupt the mapping.
  auto graph = builder.Build(/*drop_isolated_users=*/false);
  if (!graph.ok()) return graph.status();
  if (graph->num_friendship_links() != num_friend ||
      graph->num_diffusion_links() != num_diffusion) {
    return Status::InvalidArgument(
        "wire graph: links did not round-trip (duplicates or self-loops)");
  }
  return graph;
}

// ----- Setup -----

std::string SetupMsg::Encode(
    const CpdConfig& config, const SocialGraph& graph,
    const std::vector<std::vector<UserId>>& shard_users) {
  std::string out;
  WireWriter writer(&out);
  EncodeConfig(config, &writer);
  EncodeGraph(graph, &writer);
  writer.U64(shard_users.size());
  for (const std::vector<UserId>& users : shard_users) {
    writer.Vec(users);
  }
  return out;
}

StatusOr<SetupMsg> SetupMsg::Decode(std::string_view body) {
  WireReader reader(body);
  SetupMsg msg;
  CPD_RETURN_IF_ERROR(DecodeConfig(&reader, &msg.config));
  auto graph = DecodeGraph(&reader);
  if (!graph.ok()) return graph.status();
  msg.graph = std::move(*graph);
  const uint64_t num_shards = reader.U64();
  CPD_RETURN_IF_ERROR(reader.status());
  if (num_shards < 1 || num_shards > reader.remaining() + 1) {
    return Status::InvalidArgument("wire setup: bad shard count");
  }
  msg.shard_users.resize(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    reader.Vec(&msg.shard_users[s]);
    CPD_RETURN_IF_ERROR(reader.status());
    for (const UserId u : msg.shard_users[s]) {
      if (u < 0 || static_cast<size_t>(u) >= msg.graph.num_users()) {
        return Status::InvalidArgument("wire setup: plan user out of range");
      }
    }
  }
  CPD_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

// ----- RNG state -----

void EncodeRngState(const Rng::State& state, WireWriter* writer) {
  for (int i = 0; i < 4; ++i) writer->U64(state.s[i]);
  writer->Bool(state.has_cached_gaussian);
  writer->F64(state.cached_gaussian);
}

Rng::State DecodeRngState(WireReader* reader) {
  Rng::State state;
  for (int i = 0; i < 4; ++i) state.s[i] = reader->U64();
  state.has_cached_gaussian = reader->Bool();
  state.cached_gaussian = reader->F64();
  return state;
}

// ----- SweepBegin -----

std::string SweepBeginMsg::Encode(uint64_t sweep, const KernelFlags& flags,
                                  const StateSnapshot& snapshot,
                                  bool include_parameters) {
  std::string out;
  WireWriter writer(&out);
  writer.U64(sweep);
  writer.Bool(flags.freeze_communities);
  writer.Bool(flags.community_uses_content);
  writer.Bool(flags.community_uses_diffusion);
  writer.Bool(include_parameters);
  if (include_parameters) snapshot.EncodeParameters(&writer);
  snapshot.EncodeSweepState(&writer);
  return out;
}

StatusOr<SweepBeginMsg> SweepBeginMsg::Decode(std::string_view body,
                                              StateSnapshot* snapshot) {
  WireReader reader(body);
  SweepBeginMsg msg;
  msg.sweep = reader.U64();
  msg.flags.freeze_communities = reader.Bool();
  msg.flags.community_uses_content = reader.Bool();
  msg.flags.community_uses_diffusion = reader.Bool();
  msg.has_parameters = reader.Bool();
  CPD_RETURN_IF_ERROR(reader.status());
  if (msg.has_parameters) {
    CPD_RETURN_IF_ERROR(snapshot->DecodeParameters(&reader));
  }
  CPD_RETURN_IF_ERROR(snapshot->DecodeSweepState(&reader));
  CPD_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

// ----- RunShard / ShardResult -----

std::string RunShardMsg::Encode() const {
  std::string out;
  WireWriter writer(&out);
  writer.U64(sweep);
  writer.U32(shard);
  EncodeRngState(rng, &writer);
  return out;
}

StatusOr<RunShardMsg> RunShardMsg::Decode(std::string_view body) {
  WireReader reader(body);
  RunShardMsg msg;
  msg.sweep = reader.U64();
  msg.shard = reader.U32();
  msg.rng = DecodeRngState(&reader);
  CPD_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string ShardResultMsg::Encode(const CounterDelta& delta) const {
  std::string out;
  WireWriter writer(&out);
  writer.U64(sweep);
  writer.U32(shard);
  EncodeRngState(rng, &writer);
  writer.F64(shard_seconds);
  writer.I64(mh.topic_proposals);
  writer.I64(mh.topic_accepts);
  writer.I64(mh.community_proposals);
  writer.I64(mh.community_accepts);
  writer.I64(collapse.hits);
  writer.I64(collapse.misses);
  delta.EncodeTo(&writer);
  return out;
}

StatusOr<ShardResultMsg> ShardResultMsg::Decode(std::string_view body,
                                                CounterDelta* delta) {
  WireReader reader(body);
  ShardResultMsg msg;
  msg.sweep = reader.U64();
  msg.shard = reader.U32();
  msg.rng = DecodeRngState(&reader);
  msg.shard_seconds = reader.F64();
  msg.mh.topic_proposals = reader.I64();
  msg.mh.topic_accepts = reader.I64();
  msg.mh.community_proposals = reader.I64();
  msg.mh.community_accepts = reader.I64();
  msg.collapse.hits = reader.I64();
  msg.collapse.misses = reader.I64();
  CPD_RETURN_IF_ERROR(reader.status());
  CPD_RETURN_IF_ERROR(delta->DecodeFrom(&reader));
  CPD_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

// ----- Error -----

std::string EncodeErrorBody(const std::string& message) {
  std::string out;
  WireWriter writer(&out);
  writer.Str(message);
  return out;
}

StatusOr<std::string> DecodeErrorBody(std::string_view body) {
  WireReader reader(body);
  std::string message = reader.Str();
  CPD_RETURN_IF_ERROR(reader.ExpectDone());
  return message;
}

}  // namespace cpd::dist
