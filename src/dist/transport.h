#ifndef CPD_DIST_TRANSPORT_H_
#define CPD_DIST_TRANSPORT_H_

/// \file transport.h
/// Thin POSIX socket layer under the distributed E-step: framed send/recv
/// over connected stream sockets, loopback listen/accept/connect helpers,
/// and local worker-process spawning. Connection loss surfaces as
/// Status::Unavailable so the coordinator can tell "peer died" (re-dispatch)
/// apart from "peer sent garbage" (protocol error, InvalidArgument /
/// OutOfRange from the wire codec).

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/wire.h"
#include "util/status.h"

namespace cpd::dist {

/// Writes exactly n bytes; Unavailable on EPIPE/reset.
Status SendAll(int fd, const void* data, size_t n);

/// Reads exactly n bytes; Unavailable on EOF or reset.
Status RecvAll(int fd, void* data, size_t n);

/// Frames `body` as `type` and writes it. On success adds the full frame
/// size to *bytes_out (may be null).
Status SendFrame(int fd, MsgType type, std::string_view body,
                 uint64_t* bytes_out = nullptr);

/// Reads one complete frame (header, then body). Adds the bytes read to
/// *bytes_in (may be null). Unavailable on connection loss, wire-codec
/// errors on malformed headers.
StatusOr<Frame> RecvFrame(int fd, uint64_t* bytes_in = nullptr);

/// Binds + listens on 127.0.0.1 with an OS-assigned port, returned through
/// *port. Returns the listening fd.
StatusOr<int> ListenOnLoopback(uint16_t* port);

/// Binds + listens on the given fixed port, all interfaces (the pre-started
/// cpd_worker --listen mode). Returns the listening fd.
StatusOr<int> ListenOnPort(uint16_t port);

/// Accepts one connection, waiting at most timeout_ms (DeadlineExceeded on
/// timeout; negative waits forever). The accepted socket has TCP_NODELAY
/// set.
StatusOr<int> AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Connects to "host:port" (numeric host). TCP_NODELAY is set.
StatusOr<int> ConnectTo(const std::string& addr);

/// fork+exec of `binary --connect 127.0.0.1:<port> <extra_args...>`.
/// Returns the child pid; the child's stdin is /dev/null.
StatusOr<pid_t> SpawnWorkerProcess(const std::string& binary, uint16_t port,
                                   const std::vector<std::string>& extra_args);

}  // namespace cpd::dist

#endif  // CPD_DIST_TRANSPORT_H_
