#ifndef CPD_DIST_WORKER_H_
#define CPD_DIST_WORKER_H_

/// \file worker.h
/// The worker half of the distributed E-step: a serve loop that speaks the
/// src/dist/wire.h protocol over one connected socket. It rebuilds the graph
/// and a single working-state slot from the kSetup message, then answers
/// kRunShard requests by running the exact shard-local sweep the in-process
/// executors run (restore snapshot -> SweepUsers with the shipped RNG stream
/// -> RecordMove diff) and streaming the CounterDelta back. Runs inside the
/// cpd_worker tool and, for tests, on in-process socketpair threads.

#include "util/status.h"

namespace cpd::dist {

/// Fault-injection knobs for the coordinator's re-dispatch tests. Inert by
/// default; cpd_worker exposes them behind hidden flags so the e2e test can
/// kill a real process mid-sweep deterministically.
struct WorkerHooks {
  /// After completing this many kRunShard requests, fail on the next one:
  /// close the connection without replying (or hang, below). -1 = never.
  int fail_after_shards = -1;

  /// Fail by going silent (stop reading, hold the socket open) instead of
  /// closing — exercises the coordinator's per-sweep deadline rather than
  /// its disconnect path.
  bool hang_instead = false;
};

/// Serves one coordinator session on `fd` (takes ownership; the socket is
/// closed on return). Returns OK on a clean drain — a kShutdown message or
/// the coordinator closing the connection — and the underlying error for
/// protocol violations or malformed payloads (after best-effort sending a
/// kError frame back).
Status ServeWorker(int fd, const WorkerHooks& hooks = {});

}  // namespace cpd::dist

#endif  // CPD_DIST_WORKER_H_
