#include "dist/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace cpd::dist {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Hard ceiling on a frame body; the largest legitimate message (the Setup
/// graph) is far below this, so anything bigger is a corrupt or hostile
/// length prefix, not data.
constexpr uint64_t kMaxFrameBody = uint64_t{1} << 33;  // 8 GiB

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Status SendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as a Status, not SIGPIPE.
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("send"));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("recv"));
    }
    if (got == 0) return Status::Unavailable("connection closed by peer");
    p += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status SendFrame(int fd, MsgType type, std::string_view body,
                 uint64_t* bytes_out) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  AppendFrame(&frame, type, body);
  CPD_RETURN_IF_ERROR(SendAll(fd, frame.data(), frame.size()));
  if (bytes_out != nullptr) *bytes_out += frame.size();
  return Status::OK();
}

StatusOr<Frame> RecvFrame(int fd, uint64_t* bytes_in) {
  char header[kFrameHeaderBytes];
  CPD_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header)));
  auto decoded = DecodeFrameHeader(std::string_view(header, sizeof(header)));
  if (!decoded.ok()) return decoded.status();
  if (decoded->body_length > kMaxFrameBody) {
    return Status::InvalidArgument("wire: implausible frame body length " +
                                   std::to_string(decoded->body_length));
  }
  Frame frame;
  frame.type = decoded->type;
  frame.body.resize(decoded->body_length);
  if (decoded->body_length > 0) {
    CPD_RETURN_IF_ERROR(RecvAll(fd, frame.body.data(), frame.body.size()));
  }
  if (bytes_in != nullptr) {
    *bytes_in += kFrameHeaderBytes + frame.body.size();
  }
  return frame;
}

namespace {

StatusOr<int> ListenOn(uint32_t host_order_addr, uint16_t port,
                       uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(host_order_addr);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::Unavailable(Errno("bind"));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Status::Unavailable(Errno("getsockname"));
    ::close(fd);
    return s;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status s = Status::Unavailable(Errno("listen"));
    ::close(fd);
    return s;
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

StatusOr<int> ListenOnLoopback(uint16_t* port) {
  return ListenOn(INADDR_LOOPBACK, 0, port);
}

StatusOr<int> ListenOnPort(uint16_t port) {
  return ListenOn(INADDR_ANY, port, nullptr);
}

StatusOr<int> AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("poll"));
    }
    if (r == 0) {
      return Status::DeadlineExceeded("timed out waiting for a worker to connect");
    }
    break;
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return Status::Unavailable(Errno("accept"));
  SetNoDelay(fd);
  return fd;
}

StatusOr<int> ConnectTo(const std::string& addr) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return Status::InvalidArgument("worker address must be HOST:PORT, got '" +
                                   addr + "'");
  }
  const std::string host = addr.substr(0, colon);
  int port = 0;
  for (size_t i = colon + 1; i < addr.size(); ++i) {
    const char c = addr[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in worker address '" + addr + "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + addr + "'");
    }
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("worker host must be a numeric IPv4 address, got '" +
                                   host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket"));
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) break;
    if (errno == EINTR) continue;
    const Status s = Status::Unavailable(Errno("connect " + addr));
    ::close(fd);
    return s;
  }
  SetNoDelay(fd);
  return fd;
}

StatusOr<pid_t> SpawnWorkerProcess(const std::string& binary, uint16_t port,
                                   const std::vector<std::string>& extra_args) {
  if (::access(binary.c_str(), X_OK) != 0) {
    return Status::NotFound("worker binary not executable: " + binary);
  }
  const std::string connect_arg = "127.0.0.1:" + std::to_string(port);
  const pid_t pid = ::fork();
  if (pid < 0) return Status::Unavailable(Errno("fork"));
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::close(devnull);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    static const char kConnect[] = "--connect";
    argv.push_back(const_cast<char*>(kConnect));
    argv.push_back(const_cast<char*>(connect_arg.c_str()));
    for (const std::string& a : extra_args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

}  // namespace cpd::dist
