#include "dist/distributed_executor.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "dist/transport.h"
#include "dist/wire.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cpd::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Trace-row layout: the coordinator's serialize/wait/decode spans live on
/// tid 1 (the trainer owns tid 0) and each worker's in-flight shards on tid
/// 100 + worker index, so Perfetto shows per-worker occupancy.
constexpr int kCoordinatorTid = 1;
constexpr int kWorkerTidBase = 100;

void SetRecvTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

class DistributedExecutor final : public ShardExecutor {
 public:
  DistributedExecutor(const SocialGraph& graph, const CpdConfig& config,
                      ThreadPlan plan)
      : graph_(graph), config_(config), plan_(std::move(plan)) {
    const size_t shards = plan_.users_per_thread.size();
    CPD_CHECK_GE(shards, 1u);
    // Identical shard-stream derivation to ShardExecutorBase: that seeding
    // is the bit-identity contract between the execution modes.
    Rng seeder(config_.seed + 7919);
    rngs_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) rngs_.push_back(seeder.Split());
    shard_seconds_.assign(shards, 0.0);
  }

  ~DistributedExecutor() override {
    for (WorkerConn& w : workers_) {
      if (w.alive) {
        (void)SendFrame(w.fd, MsgType::kShutdown, std::string_view());
      }
    }
    for (WorkerConn& w : workers_) {
      if (w.fd >= 0) ::shutdown(w.fd, SHUT_RDWR);
    }
    for (WorkerConn& w : workers_) {
      if (w.reader.joinable()) w.reader.join();
      if (w.fd >= 0) ::close(w.fd);
    }
    ReapChildren();
  }

  /// Establishes every worker session (connect/spawn + handshake) and
  /// starts the reader threads. Called exactly once, before any sweep.
  Status Start(const DistributedOptions& options) {
    sweep_deadline_ms_ = options.sweep_deadline_ms;
    const HelloMsg hello = MakeHello();
    const std::string hello_body = hello.Encode();
    const std::string setup_body =
        SetupMsg::Encode(config_, graph_, plan_.users_per_thread);

    int listen_fd = -1;
    uint16_t port = 0;
    Status status = Status::OK();
    if (!options.connected_fds.empty()) {
      for (const int fd : options.connected_fds) {
        AddWorker(fd);
      }
    } else if (!options.worker_addrs.empty()) {
      for (const std::string& addr : options.worker_addrs) {
        auto fd = ConnectTo(addr);
        if (!fd.ok()) {
          status = fd.status();
          break;
        }
        AddWorker(*fd);
      }
    } else if (options.spawn_workers > 0) {
      std::string binary = options.worker_binary;
      if (binary.empty()) binary = CurrentExecutableDir() + "/cpd_worker";
      auto listening = ListenOnLoopback(&port);
      if (!listening.ok()) return listening.status();
      listen_fd = *listening;
      for (int i = 0; i < options.spawn_workers && status.ok(); ++i) {
        auto pid = SpawnWorkerProcess(binary, port, options.spawn_extra_args);
        if (!pid.ok()) {
          status = pid.status();
          break;
        }
        child_pids_.push_back(*pid);
        auto fd = AcceptWithTimeout(listen_fd, options.handshake_timeout_ms);
        if (!fd.ok()) {
          status = fd.status();
          break;
        }
        AddWorker(*fd);
      }
    } else {
      return Status::InvalidArgument(
          "distributed executor: no workers configured");
    }
    if (listen_fd >= 0) ::close(listen_fd);

    for (size_t w = 0; status.ok() && w < workers_.size(); ++w) {
      status = Handshake(&workers_[w], hello_body, setup_body,
                         options.handshake_timeout_ms);
    }
    // Startup is all-or-nothing; the destructor tears down whatever was
    // already connected or spawned.
    CPD_RETURN_IF_ERROR(status);

    stats_.workers_connected = static_cast<int>(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
      workers_[w].alive = true;
      workers_[w].reader = std::thread([this, w] { ReaderLoop(w); });
    }
    return Status::OK();
  }

  int num_shards() const override {
    return static_cast<int>(plan_.users_per_thread.size());
  }
  const char* name() const override { return "distributed"; }

  Status SampleShards(const StateSnapshot& snapshot, const KernelFlags& flags,
                      std::vector<CounterDelta>* deltas) override {
    CPD_CHECK(snapshot.captured());
    const size_t shards = static_cast<size_t>(num_shards());
    deltas->resize(shards);
    ++sweep_seq_;
    ++stats_.sweeps;
    if (trace_ != nullptr) dispatch_us_.assign(shards, -1);

    // Serialize phase: the broadcast sweep body (parameters ride along only
    // when the M-step advanced them) and one kRunShard body per non-empty
    // shard. The rng state captured here is the re-dispatch token: a
    // survivor receiving the identical body redraws the identical stream.
    const int64_t serialize_start_us = obs::NowMicros();
    WallTimer serialize_timer;
    const bool send_params =
        snapshot.parameters_version() != last_sent_params_version_;
    const std::string sweep_body =
        SweepBeginMsg::Encode(sweep_seq_, flags, snapshot, send_params);
    std::vector<std::string> run_bodies(shards);
    std::vector<bool> completed(shards, false);
    size_t outstanding = 0;
    for (size_t s = 0; s < shards; ++s) {
      (*deltas)[s].Clear();
      if (plan_.users_per_thread[s].empty()) {
        // Empty shards never touch their RNG stream locally either
        // (ShardExecutorBase::RunShard returns before sampling), so
        // skipping the round trip preserves bit-identity.
        completed[s] = true;
        continue;
      }
      RunShardMsg msg;
      msg.sweep = sweep_seq_;
      msg.shard = static_cast<uint32_t>(s);
      msg.rng = rngs_[s].SaveState();
      run_bodies[s] = msg.Encode();
      ++outstanding;
    }
    stats_.serialize_seconds += serialize_timer.ElapsedSeconds();
    if (trace_ != nullptr) {
      Json args = Json::MakeObject();
      args.Set("sweep", Json(static_cast<int64_t>(sweep_seq_)));
      trace_->AddSpan("serialize", kCoordinatorTid, serialize_start_us,
                      obs::NowMicros() - serialize_start_us, std::move(args));
    }

    // Broadcast the sweep, then deal shards round-robin.
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].alive) continue;
      if (!SendFrame(workers_[w].fd, MsgType::kSweepBegin, sweep_body,
                     &stats_.bytes_out)
               .ok()) {
        MarkDead(w);
      }
    }
    if (send_params) last_sent_params_version_ = snapshot.parameters_version();
    std::vector<int> owner(shards, -1);
    {
      size_t next = 0;
      for (size_t s = 0; s < shards; ++s) {
        if (completed[s]) continue;
        const int w = NextLiveWorker(&next);
        if (w < 0) return AllWorkersLost();
        DispatchShard(s, static_cast<size_t>(w), run_bodies, &owner);
      }
    }

    // Collect. The deadline restarts after every successful re-dispatch so
    // a survivor gets a full window for the extra work.
    auto deadline = Clock::now() + std::chrono::milliseconds(sweep_deadline_ms_);
    std::unique_lock<std::mutex> lock(mu_);
    while (outstanding > 0) {
      if (events_.empty()) {
        const int64_t wait_start_us = obs::NowMicros();
        WallTimer wait_timer;
        const bool timed_out =
            !cv_.wait_until(lock, deadline, [this] { return !events_.empty(); });
        stats_.wait_seconds += wait_timer.ElapsedSeconds();
        if (trace_ != nullptr) {
          trace_->AddSpan("wait", kCoordinatorTid, wait_start_us,
                          obs::NowMicros() - wait_start_us);
        }
        if (timed_out) {
          // Declare every worker still sitting on pending shards dead (the
          // stragglers), then hand their shards to survivors.
          lock.unlock();
          for (size_t w = 0; w < workers_.size(); ++w) {
            if (workers_[w].alive && HasPending(owner, completed, w)) {
              MarkDead(w);
            }
          }
          if (!RecoverOrphans(run_bodies, completed, &owner)) {
            return AllWorkersLost();
          }
          deadline =
              Clock::now() + std::chrono::milliseconds(sweep_deadline_ms_);
          lock.lock();
          continue;
        }
      }
      Event ev = std::move(events_.front());
      events_.pop_front();
      lock.unlock();
      stats_.bytes_in += ev.bytes;

      if (ev.disconnect) {
        // Recover even when the worker was already marked dead: a failed
        // DispatchShard send marks its target dead synchronously, and this
        // (later) disconnect event is where its orphans get rehomed.
        MarkDead(ev.worker);
        if (!RecoverOrphans(run_bodies, completed, &owner)) {
          return AllWorkersLost();
        }
        deadline =
            Clock::now() + std::chrono::milliseconds(sweep_deadline_ms_);
      } else if (ev.type == MsgType::kShardResult) {
        const int64_t decode_start_us = obs::NowMicros();
        WallTimer decode_timer;
        CounterDelta decoded;
        auto msg = ShardResultMsg::Decode(ev.body, &decoded);
        stats_.serialize_seconds += decode_timer.ElapsedSeconds();
        if (trace_ != nullptr) {
          trace_->AddSpan("merge", kCoordinatorTid, decode_start_us,
                          obs::NowMicros() - decode_start_us);
        }
        if (!msg.ok()) return msg.status();
        const size_t s = msg->shard;
        // A result can arrive twice after a deadline re-dispatch (the
        // "dead" straggler was merely slow); first-in wins, both are the
        // same deterministic computation anyway.
        if (msg->sweep == sweep_seq_ && s < shards && !completed[s]) {
          if (trace_ != nullptr && dispatch_us_[s] >= 0) {
            // Dispatch-to-result on the sender's row: per-worker occupancy,
            // including any deadline re-dispatch that rehomed the shard.
            Json args = Json::MakeObject();
            args.Set("sweep", Json(static_cast<int64_t>(sweep_seq_)));
            args.Set("shard", Json(static_cast<int64_t>(s)));
            trace_->AddSpan("shard " + std::to_string(s),
                            kWorkerTidBase + static_cast<int>(ev.worker),
                            dispatch_us_[s],
                            obs::NowMicros() - dispatch_us_[s],
                            std::move(args));
          }
          (*deltas)[s] = std::move(decoded);
          rngs_[s].LoadState(msg->rng);
          shard_seconds_[s] += msg->shard_seconds;
          AccumulateStats(msg->mh, msg->collapse);
          completed[s] = true;
          --outstanding;
        }
      } else if (ev.type == MsgType::kError) {
        auto message = DecodeErrorBody(ev.body);
        CPD_LOG(Warning) << "dist: worker " << ev.worker << " error: "
                         << (message.ok() ? *message : std::string("?"));
        MarkDead(ev.worker);
        if (!RecoverOrphans(run_bodies, completed, &owner)) {
          return AllWorkersLost();
        }
      }
      // Any other message type from a worker is ignored.
      lock.lock();
    }
    return Status::OK();
  }

  Status SweepAugmentation(GibbsSampler* master_sampler) override {
    // Identical to the in-process executors — augmentation is cheap and
    // race-free on the merged master state, and running it locally with the
    // same per-shard streams keeps the RNG sequences aligned with a serial
    // run without another network round trip.
    const size_t nf = graph_.num_friendship_links();
    const size_t ne = graph_.num_diffusion_links();
    const size_t shards = static_cast<size_t>(num_shards());
    for (size_t t = 0; t < shards; ++t) {
      WallTimer timer;
      master_sampler->SweepFriendshipAugmentation(nf * t / shards,
                                                  nf * (t + 1) / shards,
                                                  &rngs_[t]);
      master_sampler->SweepDiffusionAugmentation(ne * t / shards,
                                                 ne * (t + 1) / shards,
                                                 &rngs_[t]);
      shard_seconds_[t] += timer.ElapsedSeconds();
    }
    return Status::OK();
  }

  const std::vector<double>& shard_seconds() const override {
    return shard_seconds_;
  }
  void ResetTimings() override {
    shard_seconds_.assign(shard_seconds_.size(), 0.0);
  }

  CollapseCacheStats ConsumeCollapseCacheStats() override {
    const CollapseCacheStats out = collapse_;
    collapse_ = CollapseCacheStats();
    return out;
  }

  MhStats ConsumeMhStats() override {
    const MhStats out = mh_;
    mh_ = MhStats();
    return out;
  }

  const DistTransportStats* transport_stats() const override {
    return &stats_;
  }

  void SetTraceRecorder(obs::TraceRecorder* recorder) override {
    trace_ = recorder;
    if (trace_ == nullptr) return;
    trace_->SetThreadName(kCoordinatorTid, "dist coordinator");
    for (size_t w = 0; w < workers_.size(); ++w) {
      trace_->SetThreadName(kWorkerTidBase + static_cast<int>(w),
                            "worker " + std::to_string(w));
    }
  }

 private:
  struct WorkerConn {
    int fd = -1;
    bool alive = false;
    std::thread reader;
  };

  void AddWorker(int fd) {
    workers_.emplace_back();
    workers_.back().fd = fd;
  }

  /// One received frame (or a disconnect) from a worker's reader thread.
  struct Event {
    size_t worker = 0;
    bool disconnect = false;
    MsgType type = MsgType::kError;
    std::string body;
    uint64_t bytes = 0;
  };

  HelloMsg MakeHello() const {
    HelloMsg hello;
    hello.num_communities = config_.num_communities;
    hello.num_topics = config_.num_topics;
    hello.num_users = graph_.num_users();
    hello.num_documents = graph_.num_documents();
    hello.vocab_size = graph_.vocabulary_size();
    hello.num_shards = static_cast<uint32_t>(plan_.users_per_thread.size());
    hello.seed = config_.seed;
    return hello;
  }

  Status Handshake(WorkerConn* worker, const std::string& hello_body,
                   const std::string& setup_body, int timeout_ms) {
    SetRecvTimeout(worker->fd, timeout_ms);
    CPD_RETURN_IF_ERROR(SendFrame(worker->fd, MsgType::kHello, hello_body,
                                  &stats_.bytes_out));
    auto ack = RecvFrame(worker->fd, &stats_.bytes_in);
    if (!ack.ok()) return ack.status();
    if (ack->type == MsgType::kError) {
      auto message = DecodeErrorBody(ack->body);
      return Status::InvalidArgument(
          "worker rejected handshake: " +
          (message.ok() ? *message : std::string("unreadable error")));
    }
    if (ack->type != MsgType::kHelloAck || ack->body != hello_body) {
      return Status::InvalidArgument(
          "worker handshake: HelloAck does not echo the Hello (protocol or "
          "model-dimension mismatch)");
    }
    CPD_RETURN_IF_ERROR(SendFrame(worker->fd, MsgType::kSetup, setup_body,
                                  &stats_.bytes_out));
    auto ready = RecvFrame(worker->fd, &stats_.bytes_in);
    if (!ready.ok()) return ready.status();
    if (ready->type == MsgType::kError) {
      auto message = DecodeErrorBody(ready->body);
      return Status::InvalidArgument(
          "worker rejected setup: " +
          (message.ok() ? *message : std::string("unreadable error")));
    }
    if (ready->type != MsgType::kReady) {
      return Status::InvalidArgument("worker handshake: expected Ready");
    }
    SetRecvTimeout(worker->fd, 0);  // Back to blocking for the reader thread.
    return Status::OK();
  }

  void ReaderLoop(size_t w) {
    const int fd = workers_[w].fd;
    for (;;) {
      uint64_t bytes = 0;
      auto frame = RecvFrame(fd, &bytes);
      std::lock_guard<std::mutex> lock(mu_);
      Event ev;
      ev.worker = w;
      ev.bytes = bytes;
      if (!frame.ok()) {
        ev.disconnect = true;
        events_.push_back(std::move(ev));
        cv_.notify_all();
        return;
      }
      ev.type = frame->type;
      ev.body = std::move(frame->body);
      events_.push_back(std::move(ev));
      cv_.notify_all();
    }
  }

  /// Main-thread only. Shutting the socket down unblocks the reader thread,
  /// which then posts its (ignored) disconnect event and exits.
  void MarkDead(size_t w) {
    if (!workers_[w].alive) return;
    workers_[w].alive = false;
    ++stats_.workers_lost;
    ::shutdown(workers_[w].fd, SHUT_RDWR);
  }

  int NextLiveWorker(size_t* cursor) {
    for (size_t i = 0; i < workers_.size(); ++i) {
      const size_t w = (*cursor + i) % workers_.size();
      if (workers_[w].alive) {
        *cursor = w + 1;
        return static_cast<int>(w);
      }
    }
    return -1;
  }

  void DispatchShard(size_t shard, size_t w,
                     const std::vector<std::string>& run_bodies,
                     std::vector<int>* owner) {
    (*owner)[shard] = static_cast<int>(w);
    if (trace_ != nullptr) dispatch_us_[shard] = obs::NowMicros();
    if (!SendFrame(workers_[w].fd, MsgType::kRunShard, run_bodies[shard],
                   &stats_.bytes_out)
             .ok()) {
      // The disconnect event from the reader thread re-dispatches it.
      MarkDead(w);
    }
  }

  bool HasPending(const std::vector<int>& owner,
                  const std::vector<bool>& completed, size_t w) const {
    for (size_t s = 0; s < owner.size(); ++s) {
      if (!completed[s] && owner[s] == static_cast<int>(w)) return true;
    }
    return false;
  }

  /// Re-sends every orphaned shard's original kRunShard body (original RNG
  /// state — determinism) to surviving workers, looping until every
  /// incomplete shard is owned by a live worker. A dispatch that fails kills
  /// its target and the next scan rehomes the shard, so each outer iteration
  /// either converges or strictly shrinks the live set. False when no worker
  /// survives.
  bool RecoverOrphans(const std::vector<std::string>& run_bodies,
                      const std::vector<bool>& completed,
                      std::vector<int>* owner) {
    size_t cursor = 0;
    for (;;) {
      std::vector<size_t> orphans;
      for (size_t s = 0; s < owner->size(); ++s) {
        const int o = (*owner)[s];
        if (!completed[s] &&
            (o < 0 || !workers_[static_cast<size_t>(o)].alive)) {
          orphans.push_back(s);
        }
      }
      if (orphans.empty()) return true;
      if (NextLiveWorker(&cursor) < 0) return false;
      for (const size_t s : orphans) {
        const int w = NextLiveWorker(&cursor);
        if (w < 0) break;
        ++stats_.shards_redispatched;
        DispatchShard(s, static_cast<size_t>(w), run_bodies, owner);
      }
    }
  }

  Status AllWorkersLost() {
    return Status::Unavailable(
        "distributed executor: all workers lost mid-sweep");
  }

  void AccumulateStats(const MhStats& mh, const CollapseCacheStats& collapse) {
    mh_.topic_proposals += mh.topic_proposals;
    mh_.topic_accepts += mh.topic_accepts;
    mh_.community_proposals += mh.community_proposals;
    mh_.community_accepts += mh.community_accepts;
    collapse_.hits += collapse.hits;
    collapse_.misses += collapse.misses;
  }

  void ReapChildren() {
    // Workers exit on kShutdown/EOF; give them a moment, then escalate.
    for (const pid_t pid : child_pids_) {
      int status = 0;
      bool reaped = false;
      for (int i = 0; i < 200; ++i) {  // ~2 s
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid || r < 0) {
          reaped = true;
          break;
        }
        ::usleep(10 * 1000);
      }
      if (!reaped) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
      }
    }
  }

  const SocialGraph& graph_;
  const CpdConfig config_;
  const ThreadPlan plan_;
  int sweep_deadline_ms_ = 30000;

  std::vector<WorkerConn> workers_;
  std::vector<pid_t> child_pids_;

  std::vector<Rng> rngs_;  ///< Canonical per-shard streams, coordinator-owned.
  std::vector<double> shard_seconds_;
  uint64_t sweep_seq_ = 0;
  uint64_t last_sent_params_version_ = 0;
  MhStats mh_;
  CollapseCacheStats collapse_;
  DistTransportStats stats_;

  obs::TraceRecorder* trace_ = nullptr;  ///< Null = tracing off.
  std::vector<int64_t> dispatch_us_;     ///< Per-shard dispatch stamps.

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> events_;
};

}  // namespace

StatusOr<std::unique_ptr<ShardExecutor>> MakeDistributedExecutor(
    const SocialGraph& graph, const CpdConfig& config, const LinkCaches& caches,
    ThreadPlan plan, DistributedOptions options) {
  (void)caches;  // Shards sample on the workers; the coordinator needs none.
  auto executor =
      std::make_unique<DistributedExecutor>(graph, config, std::move(plan));
  CPD_RETURN_IF_ERROR(executor->Start(options));
  return std::unique_ptr<ShardExecutor>(std::move(executor));
}

StatusOr<std::unique_ptr<ShardExecutor>> MakeDistributedExecutor(
    const SocialGraph& graph, const CpdConfig& config, const LinkCaches& caches,
    ThreadPlan plan) {
  DistributedOptions options;
  options.spawn_workers = config.dist_workers;
  options.worker_binary = config.dist_worker_binary;
  options.sweep_deadline_ms = config.dist_sweep_deadline_ms;
  if (!config.dist_worker_addrs.empty()) {
    std::string addr;
    for (const char c : config.dist_worker_addrs + ",") {
      if (c == ',') {
        if (!addr.empty()) options.worker_addrs.push_back(addr);
        addr.clear();
      } else {
        addr.push_back(c);
      }
    }
  }
  return MakeDistributedExecutor(graph, config, caches, std::move(plan),
                                 std::move(options));
}

}  // namespace cpd::dist
