#ifndef CPD_CORE_MODEL_ARTIFACT_H_
#define CPD_CORE_MODEL_ARTIFACT_H_

/// \file model_artifact.h
/// The versioned binary model artifact (".cpdb"): the serving-grade
/// counterpart of CpdModel's readable text format. One artifact holds the
/// trained estimates as raw little-endian doubles behind a fixed header
///
///   magic "CPDBMODL" | u32 version | u32 endian tag 0x01020304 |
///   i32 |C| | i32 |Z| | u64 |U| | u64 |W| | i32 T | u64 #weights |
///   pi (U*C) | theta (C*Z) | phi (Z*W) | eta (C*C*Z) | weights |
///   popularity (T*Z)
///   [v2+] u64 vocab_count | vocab_count x (u32 len | bytes | i64 freq)
///
/// so a ProfileIndex can be mapped straight into flat row-major arrays
/// without parsing text. Version 2 appends an optional bundled vocabulary
/// section (vocab_count is 0 or |W|) so serving front ends need no side
/// --vocab file; version-1 artifacts still load (no vocabulary). Readers
/// reject wrong magic, unknown versions, foreign byte order, and truncated
/// or oversized payloads with typed Status errors. Both
/// CpdModel::{Save,Load}Binary and ProfileIndex::LoadFromFile speak this
/// format through the functions here.

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace cpd {

inline constexpr char kModelArtifactMagic[8] = {'C', 'P', 'D', 'B',
                                                'M', 'O', 'D', 'L'};
inline constexpr uint32_t kModelArtifactVersion = 2;
/// Oldest version the reader still accepts (v1 = no vocabulary section).
inline constexpr uint32_t kModelArtifactMinVersion = 1;
inline constexpr uint32_t kModelArtifactEndianTag = 0x01020304u;

/// Decoded (or to-be-encoded) contents of one .cpdb artifact. Plain data;
/// dimension/consistency checks happen in the codec.
struct ModelArtifact {
  int32_t num_communities = 0;
  int32_t num_topics = 0;
  uint64_t num_users = 0;
  uint64_t vocab_size = 0;
  int32_t num_time_bins = 1;

  std::vector<double> pi;          ///< U x C, row-major.
  std::vector<double> theta;       ///< C x Z, row-major.
  std::vector<double> phi;         ///< Z x W, row-major.
  std::vector<double> eta;         ///< C x C x Z.
  std::vector<double> weights;     ///< kNumDiffusionWeights.
  std::vector<double> popularity;  ///< T x Z.

  /// Bundled vocabulary (v2 section): empty, or exactly vocab_size words
  /// with parallel occurrence counts. Word id == position.
  std::vector<std::string> vocab_words;
  std::vector<int64_t> vocab_frequencies;

  bool has_vocabulary() const { return !vocab_words.empty(); }

  /// Reconstructs a Vocabulary from the bundled section into `out`.
  /// FailedPrecondition when none is bundled; InvalidArgument on duplicate
  /// words (ids would not be dense).
  Status BuildVocabulary(Vocabulary* out) const;

  /// InvalidArgument when any matrix size disagrees with the header dims.
  Status Validate() const;
};

/// Serializes the artifact (header + matrices) into a byte string.
StatusOr<std::string> EncodeModelArtifact(const ModelArtifact& artifact);

/// Parses a byte string produced by EncodeModelArtifact. Typed failures:
/// InvalidArgument for bad magic/endianness/dims, Unimplemented for a newer
/// version, OutOfRange for truncated or trailing bytes.
StatusOr<ModelArtifact> DecodeModelArtifact(const std::string& bytes);

/// Whole-file convenience wrappers around the codec.
Status WriteModelArtifact(const std::string& path,
                          const ModelArtifact& artifact);
StatusOr<ModelArtifact> ReadModelArtifact(const std::string& path);

/// True if the byte string begins with the .cpdb magic (used by loaders
/// that sniff binary vs text model files).
bool LooksLikeModelArtifact(const std::string& bytes);

}  // namespace cpd

#endif  // CPD_CORE_MODEL_ARTIFACT_H_
