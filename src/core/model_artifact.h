#ifndef CPD_CORE_MODEL_ARTIFACT_H_
#define CPD_CORE_MODEL_ARTIFACT_H_

/// \file model_artifact.h
/// The versioned binary model artifact (".cpdb"): the serving-grade
/// counterpart of CpdModel's readable text format. Three wire versions are
/// understood; all share the 8-byte magic, a little-endian u32 version, and
/// the endianness tag 0x01020304.
///
/// v1/v2 — the sequential heap format:
///
///   magic "CPDBMODL" | u32 version | u32 endian tag 0x01020304 |
///   i32 |C| | i32 |Z| | u64 |U| | u64 |W| | i32 T | u64 #weights |
///   pi (U*C) | theta (C*Z) | phi (Z*W) | eta (C*C*Z) | weights |
///   popularity (T*Z)
///   [v2+] u64 vocab_count | vocab_count x (u32 len | bytes | i64 freq)
///
/// v3 — the same estimates laid out for mmap: a fixed header carrying the
/// dims plus a section table, then page-aligned sections so a reader can
/// map the file and serve std::span rows straight off the page cache with
/// zero deserialization:
///
///   magic | u32 version=3 | u32 endian tag |
///   i32 |C| | i32 |Z| | u64 |U| | u64 |W| | i32 T | u64 #weights |
///   u32 section_alignment | u32 section_count | u32 derived_top_k |
///   u32 header_checksum (FNV-1a over header+table, field zeroed) |
///   u64 model_generation |
///   section_count x { u32 section id | u32 reserved=0 | u64 offset |
///                     u64 byte length } |
///   zero padding | sections, each at an offset multiple of
///   section_alignment, in ascending-id order, zero-padded between
///
/// v3 also stores the *derived* read-side structures (eta_agg, per-user
/// top-k membership lists, per-community postings as padding-free parallel
/// arrays) computed by core/artifact_derived.h, so an mmap load skips the
/// O(U |C| log k) build entirely and a reload is O(1) in the model size.
/// The encoder is deterministic (fixed section order, zero fill), so
/// encode -> decode -> encode round-trips byte-identically.
///
/// Readers reject wrong magic, unknown versions, foreign byte order,
/// truncated or oversized payloads, and (v3) any corrupt header/table bit,
/// misaligned, overlapping, or out-of-bounds section with typed Status
/// errors that name the offending section. Both CpdModel::{Save,Load}Binary
/// and ProfileIndex/LoadModelBundle speak this format through the functions
/// here; MappedModelArtifact is the zero-copy mmap reader.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace cpd {

inline constexpr char kModelArtifactMagic[8] = {'C', 'P', 'D', 'B',
                                                'M', 'O', 'D', 'L'};
inline constexpr uint32_t kModelArtifactVersion = 3;
/// Oldest version the reader still accepts (v1 = no vocabulary section).
inline constexpr uint32_t kModelArtifactMinVersion = 1;
inline constexpr uint32_t kModelArtifactEndianTag = 0x01020304u;

/// v3 section identifiers, in file order. 1..8 are mandatory; 9..13 (the
/// derived read-side structures) are present iff derived_top_k > 0.
enum class ArtifactSection : uint32_t {
  kPi = 1,
  kTheta = 2,
  kPhi = 3,
  kEta = 4,
  kWeights = 5,
  kPopularity = 6,
  kVocab = 7,
  kEtaAgg = 8,
  kTopkCommunities = 9,
  kTopkWeights = 10,
  kMemberOffsets = 11,
  kMembers = 12,
  kMemberWeights = 13,
};
inline constexpr uint32_t kArtifactSectionMax = 13;

/// Human-readable section name for error messages ("pi", "member_offsets",
/// ...); "unknown" for an id outside the enum.
const char* ArtifactSectionName(uint32_t id);

/// Decoded (or to-be-encoded) contents of one .cpdb artifact. Plain data;
/// dimension/consistency checks happen in the codec.
struct ModelArtifact {
  int32_t num_communities = 0;
  int32_t num_topics = 0;
  uint64_t num_users = 0;
  uint64_t vocab_size = 0;
  int32_t num_time_bins = 1;
  /// Lineage stamp (v3 header field; 0 for v1/v2 files and cold trains).
  /// Ingest generation N artifacts carry N so a delta can name its base.
  uint64_t generation = 0;

  std::vector<double> pi;          ///< U x C, row-major.
  std::vector<double> theta;       ///< C x Z, row-major.
  std::vector<double> phi;         ///< Z x W, row-major.
  std::vector<double> eta;         ///< C x C x Z.
  std::vector<double> weights;     ///< kNumDiffusionWeights.
  std::vector<double> popularity;  ///< T x Z.

  /// Bundled vocabulary (v2+ section): empty, or exactly vocab_size words
  /// with parallel occurrence counts. Word id == position.
  std::vector<std::string> vocab_words;
  std::vector<int64_t> vocab_frequencies;

  bool has_vocabulary() const { return !vocab_words.empty(); }

  /// Reconstructs a Vocabulary from the bundled section into `out`.
  /// FailedPrecondition when none is bundled; InvalidArgument on duplicate
  /// words (ids would not be dense).
  Status BuildVocabulary(Vocabulary* out) const;

  /// InvalidArgument when any matrix size disagrees with the header dims.
  Status Validate() const;
};

/// Encoder knobs. The defaults produce the canonical serving artifact.
struct ArtifactWriteOptions {
  /// Wire version to emit (kModelArtifactMinVersion..kModelArtifactVersion).
  uint32_t version = kModelArtifactVersion;
  /// k of the stored top-k membership/posting sections (v3 only; the
  /// paper's top-5 convention matches ProfileIndexOptions' default). 0
  /// omits the membership sections (eta_agg is always stored).
  uint32_t derived_top_k = 5;
  /// v3 section alignment in bytes (power of two >= 8; 4096 = page size).
  uint32_t section_alignment = 4096;
};

/// Serializes the artifact into a byte string (version per options).
StatusOr<std::string> EncodeModelArtifact(
    const ModelArtifact& artifact, const ArtifactWriteOptions& options = {});

/// Parses a byte string produced by EncodeModelArtifact (any supported
/// version). Typed failures: InvalidArgument for bad magic/endianness/dims/
/// corrupt section table, Unimplemented for a newer version, OutOfRange for
/// truncated, out-of-bounds, or trailing bytes. v3 errors name the
/// offending section.
StatusOr<ModelArtifact> DecodeModelArtifact(const std::string& bytes);

/// Whole-file convenience wrappers around the codec.
Status WriteModelArtifact(const std::string& path,
                          const ModelArtifact& artifact,
                          const ArtifactWriteOptions& options = {});
StatusOr<ModelArtifact> ReadModelArtifact(const std::string& path);

/// True if the byte string begins with the .cpdb magic (used by loaders
/// that sniff binary vs text model files).
bool LooksLikeModelArtifact(const std::string& bytes);

/// Parsed v3 geometry: where every section lives inside the raw bytes.
/// Produced by ParseV3Layout after full validation (alignment, bounds,
/// overlap, checksum, size-vs-dims), shared by the heap decoder and the
/// mmap reader so the two cannot disagree on what a valid file is.
struct ArtifactV3Layout {
  int32_t num_communities = 0;
  int32_t num_topics = 0;
  uint64_t num_users = 0;
  uint64_t vocab_size = 0;
  int32_t num_time_bins = 1;
  uint64_t num_weights = 0;
  uint32_t section_alignment = 0;
  uint32_t derived_top_k = 0;  ///< As written; effective k = min(k, |C|).
  uint64_t generation = 0;
  uint64_t vocab_count = 0;  ///< Bundled words (0 or vocab_size).

  struct Extent {
    uint64_t offset = 0;  ///< 0 = section absent.
    uint64_t length = 0;
  };
  /// Indexed by ArtifactSection id (entry 0 unused).
  Extent sections[kArtifactSectionMax + 1];

  int32_t effective_top_k() const;
  bool has_derived() const { return derived_top_k > 0; }
};

/// Validates `data[0..size)` as a v3 artifact and fills `layout`. The
/// caller guarantees the magic matched; everything else (version, endian,
/// checksum, table, section geometry, vocab/posting internals) is checked
/// here with section-named typed errors.
Status ParseV3Layout(const char* data, size_t size, ArtifactV3Layout* layout);

/// A v3 artifact mapped read-only into the address space: the zero-copy
/// counterpart of DecodeModelArtifact. Open() validates the whole layout
/// up front (same checks as the heap decoder), then the accessors are raw
/// spans into the mapping — no rows are copied, the kernel pages the file
/// in on demand and N concurrent generations share clean pages. Immutable
/// and safe to share across threads; the mapping lives until the last
/// shared_ptr drops.
class MappedModelArtifact {
 public:
  /// mmaps and validates `path`. InvalidArgument when the file is not a
  /// .cpdb; FailedPrecondition when it is an older (v1/v2) artifact that
  /// has no mmap layout; otherwise the ParseV3Layout taxonomy.
  static StatusOr<std::shared_ptr<const MappedModelArtifact>> Open(
      const std::string& path);

  ~MappedModelArtifact();
  MappedModelArtifact(const MappedModelArtifact&) = delete;
  MappedModelArtifact& operator=(const MappedModelArtifact&) = delete;

  // ----- header -----
  int32_t num_communities() const { return layout_.num_communities; }
  int32_t num_topics() const { return layout_.num_topics; }
  uint64_t num_users() const { return layout_.num_users; }
  uint64_t vocab_size() const { return layout_.vocab_size; }
  int32_t num_time_bins() const { return layout_.num_time_bins; }
  uint64_t generation() const { return layout_.generation; }
  /// Effective stored k (min(derived_top_k, |C|)); 0 = no stored
  /// membership/posting sections.
  int32_t stored_top_k() const { return layout_.effective_top_k(); }

  // ----- zero-copy section views (valid for the mapping's lifetime) -----
  std::span<const double> pi() const { return Doubles(ArtifactSection::kPi); }
  std::span<const double> theta() const {
    return Doubles(ArtifactSection::kTheta);
  }
  std::span<const double> phi() const {
    return Doubles(ArtifactSection::kPhi);
  }
  std::span<const double> eta() const {
    return Doubles(ArtifactSection::kEta);
  }
  std::span<const double> weights() const {
    return Doubles(ArtifactSection::kWeights);
  }
  std::span<const double> popularity() const {
    return Doubles(ArtifactSection::kPopularity);
  }
  std::span<const double> eta_agg() const {
    return Doubles(ArtifactSection::kEtaAgg);
  }
  std::span<const int32_t> topk_communities() const;
  std::span<const double> topk_weights() const {
    return Doubles(ArtifactSection::kTopkWeights);
  }
  std::span<const uint64_t> member_offsets() const;
  std::span<const int32_t> members() const;
  std::span<const double> member_weights() const {
    return Doubles(ArtifactSection::kMemberWeights);
  }

  // ----- vocabulary (strings are decoded, not zero-copy) -----
  bool has_vocabulary() const { return vocab_count_ != 0; }
  /// FailedPrecondition when the file bundles no vocabulary.
  Status BuildVocabulary(Vocabulary* out) const;

  /// Heap copy of the core estimates + vocabulary (generation preserved) —
  /// the bridge back to the vector-based world (re-encode, delta builds).
  ModelArtifact Materialize() const;

  const std::string& path() const { return path_; }
  size_t mapped_bytes() const { return size_; }

 private:
  MappedModelArtifact() = default;

  const char* SectionData(ArtifactSection id) const {
    return data_ + layout_.sections[static_cast<uint32_t>(id)].offset;
  }
  uint64_t SectionLength(ArtifactSection id) const {
    return layout_.sections[static_cast<uint32_t>(id)].length;
  }
  std::span<const double> Doubles(ArtifactSection id) const {
    return {reinterpret_cast<const double*>(SectionData(id)),
            static_cast<size_t>(SectionLength(id) / sizeof(double))};
  }

  std::string path_;
  const char* data_ = nullptr;  ///< mmap base (page-aligned).
  size_t size_ = 0;
  ArtifactV3Layout layout_;
  uint64_t vocab_count_ = 0;  ///< Parsed once at Open (0 = none bundled).
};

}  // namespace cpd

#endif  // CPD_CORE_MODEL_ARTIFACT_H_
