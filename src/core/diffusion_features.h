#ifndef CPD_CORE_DIFFUSION_FEATURES_H_
#define CPD_CORE_DIFFUSION_FEATURES_H_

/// \file diffusion_features.h
/// Precomputed per-link structures for the nonconformity factors of §3.1:
///  - individual-preference features f_uv (user popularity & activeness of
///    the diffusing and the diffused user, log-scaled for stability);
///  - the topic-popularity table n_tz, recomputed from the current topic
///    assignments each EM iteration;
///  - per-user incidence lists of directed friendship links (the sampler
///    needs the link index to address its Polya-Gamma variable).

#include <span>
#include <vector>

#include "core/model_config.h"
#include "graph/social_graph.h"
#include "util/wire_format.h"

namespace cpd {

/// Number of individual-preference features (popularity/activeness for both
/// endpoints, §3.1).
inline constexpr int kNumUserFeatures = 4;

/// Immutable per-graph caches shared by the Gibbs sampler and the M-step.
class LinkCaches {
 public:
  explicit LinkCaches(const SocialGraph& graph);

  /// f_uv for diffusion link e: [log pop(u), log act(u), log pop(v), log act(v)].
  std::span<const double> Features(size_t e) const {
    return {features_.data() + e * kNumUserFeatures, kNumUserFeatures};
  }

  /// Same four features for an arbitrary (u, v) pair (used for negative
  /// samples and application-time scoring).
  /// \param exclude_diffusions_u Subtracted from u's diffusion count before
  ///        computing activeness. The per-link cache passes 1 (leave-one-out)
  ///        so a positive training link does not count itself in its own
  ///        feature — otherwise the M-step's logistic regression learns the
  ///        self-count and mis-generalizes to held-out links.
  static void ComputePairFeatures(const SocialGraph& graph, UserId u, UserId v,
                                  double* out4, int64_t exclude_diffusions_u = 0);

  /// Indices of directed friendship links incident to user u (as source or
  /// target).
  std::span<const int32_t> FriendLinksOf(UserId u) const {
    const auto begin = user_flink_offsets_[static_cast<size_t>(u)];
    const auto end = user_flink_offsets_[static_cast<size_t>(u) + 1];
    return {user_flink_ids_.data() + begin, static_cast<size_t>(end - begin)};
  }

 private:
  std::vector<double> features_;          // E x 4
  std::vector<int64_t> user_flink_offsets_;
  std::vector<int32_t> user_flink_ids_;
};

/// Time-binned topic popularity n_tz (§3.1). Mutable: refreshed from the
/// current topic assignments (the topic of the *diffusing* document defines
/// the link's topic).
class PopularityTable {
 public:
  PopularityTable(int32_t num_time_bins, int num_topics, PopularityMode mode);

  /// Recounts from scratch: for each diffusion link (i, j, t), increments
  /// bin (t, doc_topic[i]).
  void Refresh(const SocialGraph& graph, std::span<const int32_t> doc_topics);

  /// n_tz under the configured representation. Bins are derived from
  /// observed diffusion-link times, but callers also pass *document* times
  /// (the M-step's negative sampling); a document published outside every
  /// observed bin has no diffusion signal there — zero, never a wild read.
  double Value(int32_t t, int z) const {
    if (t < 0 || t >= num_time_bins_) return 0.0;
    return values_[static_cast<size_t>(t) * static_cast<size_t>(num_topics_) +
                   static_cast<size_t>(z)];
  }

  int32_t num_time_bins() const { return num_time_bins_; }
  int num_topics() const { return num_topics_; }

  /// Raw per-bin counts (for the Fig. 5(b) case study).
  int64_t RawCount(int32_t t, int z) const {
    return counts_[static_cast<size_t>(t) * static_cast<size_t>(num_topics_) +
                   static_cast<size_t>(z)];
  }

  /// Wire codec (distributed executor parameter shipping): dims + mode +
  /// both tables. DecodeFrom rejects dim/size mismatches as InvalidArgument;
  /// truncation surfaces through the reader's own OutOfRange status.
  void EncodeTo(WireWriter* writer) const;
  Status DecodeFrom(WireReader* reader);

 private:
  int32_t num_time_bins_;
  int num_topics_;
  PopularityMode mode_;
  std::vector<int64_t> counts_;
  std::vector<double> values_;
};

}  // namespace cpd

#endif  // CPD_CORE_DIFFUSION_FEATURES_H_
