#include "core/artifact_derived.h"

#include <algorithm>

namespace cpd {

ArtifactDerived BuildArtifactDerived(const double* const* pi_rows,
                                     std::span<const double> eta,
                                     int num_communities, int num_topics,
                                     size_t num_users, int top_k) {
  const size_t c_count = static_cast<size_t>(num_communities);
  const size_t z_count = static_cast<size_t>(num_topics);
  ArtifactDerived derived;

  derived.eta_agg.assign(c_count * c_count, 0.0);
  for (size_t c = 0; c < c_count; ++c) {
    for (size_t c2 = 0; c2 < c_count; ++c2) {
      // Same accumulation order as CpdModel::EtaAggregated so every read
      // path agrees bitwise.
      double total = 0.0;
      const double* row = eta.data() + (c * c_count + c2) * z_count;
      for (size_t z = 0; z < z_count; ++z) total += row[z];
      derived.eta_agg[c * c_count + c2] = total;
    }
  }

  if (top_k < 1) return derived;
  derived.top_k = std::min(top_k, num_communities);
  const size_t k = static_cast<size_t>(derived.top_k);
  derived.topk_communities.assign(num_users * k, 0);
  derived.topk_weights.assign(num_users * k, 0.0);
  std::vector<int> order(c_count);
  for (size_t u = 0; u < num_users; ++u) {
    const double* pi = pi_rows[u];
    for (size_t c = 0; c < c_count; ++c) order[c] = static_cast<int>(c);
    // Descending weight, ties by ascending community id (matches
    // TopKIndices' stable-sort convention used by CpdModel::TopCommunities).
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(), [pi](int a, int b) {
                        if (pi[a] != pi[b]) return pi[a] > pi[b];
                        return a < b;
                      });
    for (size_t i = 0; i < k; ++i) {
      derived.topk_communities[u * k + i] = order[i];
      derived.topk_weights[u * k + i] = pi[static_cast<size_t>(order[i])];
    }
  }

  // Invert the top-k lists into per-community postings, weight-sorted.
  std::vector<std::vector<int32_t>> postings(c_count);
  for (size_t u = 0; u < num_users; ++u) {
    for (size_t i = 0; i < k; ++i) {
      postings[static_cast<size_t>(derived.topk_communities[u * k + i])]
          .push_back(static_cast<int32_t>(u));
    }
  }
  derived.member_offsets.assign(c_count + 1, 0);
  derived.members.reserve(num_users * k);
  derived.member_weights.reserve(num_users * k);
  for (size_t c = 0; c < c_count; ++c) {
    auto& users = postings[c];
    std::sort(users.begin(), users.end(),
              [pi_rows, c](int32_t a, int32_t b) {
                const double wa = pi_rows[static_cast<size_t>(a)][c];
                const double wb = pi_rows[static_cast<size_t>(b)][c];
                if (wa != wb) return wa > wb;
                return a < b;
              });
    derived.members.insert(derived.members.end(), users.begin(), users.end());
    for (const int32_t u : users) {
      derived.member_weights.push_back(pi_rows[static_cast<size_t>(u)][c]);
    }
    derived.member_offsets[c + 1] = derived.members.size();
  }
  return derived;
}

ArtifactDerived BuildArtifactDerived(std::span<const double> pi,
                                     std::span<const double> eta,
                                     int num_communities, int num_topics,
                                     size_t num_users, int top_k) {
  std::vector<const double*> rows(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    rows[u] = pi.data() + u * static_cast<size_t>(num_communities);
  }
  return BuildArtifactDerived(rows.data(), eta, num_communities, num_topics,
                              num_users, top_k);
}

}  // namespace cpd
