#include "core/em_trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dist/distributed_executor.h"
#include "obs/metrics.h"
#include "sampling/distributions.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/timer.h"

namespace cpd {

namespace {

/// Logical trace row of the trainer itself (the distributed coordinator
/// uses 1, its workers 100+w; see dist/distributed_executor.cc).
constexpr int kTrainerTid = 0;

}  // namespace

EmTrainer::EmTrainer(const SocialGraph& graph, const CpdConfig& config)
    : graph_(graph), config_(config), rng_(config.seed) {
  if (!config_.trace_out.empty()) {
    trace_ = std::make_unique<obs::TraceRecorder>();
    trace_->SetThreadName(kTrainerTid, "trainer");
  }
}

void EmTrainer::FlushTrace() {
  if (trace_ == nullptr) return;
  const Status written = trace_->WriteFile(config_.trace_out);
  if (!written.ok()) {
    CPD_LOG(Warning) << "trace_out not written: " << written.message();
  } else {
    CPD_LOG(Info) << "wrote " << trace_->num_events() << " trace events to "
                  << config_.trace_out;
  }
}

Status EmTrainer::Initialize() {
  CPD_RETURN_IF_ERROR(config_.Validate());
  if (graph_.num_documents() == 0) {
    return Status::FailedPrecondition("CPD: graph has no documents");
  }
  caches_ = std::make_unique<LinkCaches>(graph_);
  state_ = std::make_unique<ModelState>(graph_, config_);
  state_->InitializeRandom(graph_, &rng_,
                           /*per_user_communities=*/!config_.ablation.joint_profiling);
  state_->RebuildCounts(graph_);
  state_->popularity.Refresh(graph_, state_->doc_topic);
  sampler_ = std::make_unique<GibbsSampler>(graph_, config_, *caches_, state_.get());
  initialized_ = true;
  return Status::OK();
}

StatusOr<ThreadPlan> EmTrainer::BuildPlan() {
  WorkloadCostModel cost;
  const int num_shards = config_.ResolvedNumShards();
  if (num_shards == 1) {
    // One shard reproduces sequential collapsed Gibbs (exactly, when the
    // collapse memo is off or the backend is dense); skip the LDA
    // segmentation pre-pass entirely.
    return TrivialThreadPlan(graph_, cost);
  }
  // Segment count = |Z| as in §4.3 (at least one segment per shard).
  const int num_segments = std::max(config_.num_topics, num_shards);
  return PlanThreads(graph_, num_segments, num_shards, cost,
                     /*lda_iterations=*/15, config_.seed + 101);
}

StatusOr<std::unique_ptr<ShardExecutor>> EmTrainer::BuildExecutor(
    ThreadPlan plan) {
  if (executor_factory_) {
    return executor_factory_(graph_, config_, *caches_, std::move(plan));
  }
  if (config_.ResolvedExecutorMode() == ExecutorMode::kDistributed) {
    return dist::MakeDistributedExecutor(graph_, config_, *caches_,
                                         std::move(plan));
  }
  return MakeShardExecutor(graph_, config_, *caches_, std::move(plan));
}

void EmTrainer::UpdateTransportStats() {
  const DistTransportStats* t = executor_->transport_stats();
  if (t == nullptr) return;
  // The executor's counters are cumulative, so assign rather than add.
  stats_.dist_workers_connected = t->workers_connected;
  stats_.dist_workers_lost = t->workers_lost;
  stats_.dist_shards_redispatched = t->shards_redispatched;
  stats_.dist_bytes_out = t->bytes_out;
  stats_.dist_bytes_in = t->bytes_in;
  stats_.dist_serialize_seconds = t->serialize_seconds;
  stats_.dist_wait_seconds = t->wait_seconds;
}

Status EmTrainer::EnsureExecutor() {
  if (executor_ != nullptr) return Status::OK();
  auto plan = BuildPlan();
  if (!plan.ok()) return plan.status();
  stats_.num_segments = plan->num_segments;
  stats_.thread_estimated_workload = plan->allocation.thread_workload;
  auto executor = BuildExecutor(std::move(*plan));
  if (!executor.ok()) return executor.status();
  executor_ = std::move(*executor);
  executor_->SetTraceRecorder(trace_.get());
  return Status::OK();
}

Status EmTrainer::WarmStart(const WarmStartOptions& options) {
  WallTimer total_timer;
  CPD_RETURN_IF_ERROR(config_.Validate());
  if (graph_.num_documents() == 0) {
    return Status::FailedPrecondition("CPD: graph has no documents");
  }
  const size_t num_docs = graph_.num_documents();
  const size_t num_prev = options.prev_doc_topic.size();
  if (options.prev_doc_community.size() != num_prev) {
    return Status::InvalidArgument(
        "warm start: prev_doc_topic and prev_doc_community sizes differ");
  }
  if (num_prev > num_docs) {
    return Status::InvalidArgument(
        "warm start: more previous assignments than documents (base DocIds "
        "must be append-stable)");
  }
  if (options.warm_iterations < 1) {
    return Status::InvalidArgument("warm start: warm_iterations < 1");
  }
  for (size_t d = 0; d < num_prev; ++d) {
    if (options.prev_doc_topic[d] < 0 ||
        options.prev_doc_topic[d] >= config_.num_topics ||
        options.prev_doc_community[d] < 0 ||
        options.prev_doc_community[d] >= config_.num_communities) {
      return Status::InvalidArgument(
          "warm start: previous assignment out of range (did |C| or |Z| "
          "change between runs?)");
    }
  }
  for (const UserId u : options.touched_users) {
    if (u < 0 || static_cast<size_t>(u) >= graph_.num_users()) {
      return Status::OutOfRange("warm start: touched user out of range");
    }
  }

  caches_ = std::make_unique<LinkCaches>(graph_);
  state_ = std::make_unique<ModelState>(graph_, config_);
  ModelState& s = *state_;
  if (!options.prev_eta.empty()) {
    if (options.prev_eta.size() != s.eta.size()) {
      return Status::InvalidArgument("warm start: prev_eta shape mismatch");
    }
    std::copy(options.prev_eta.begin(), options.prev_eta.end(),
              s.eta.begin());
  }
  if (!options.prev_weights.empty()) {
    if (options.prev_weights.size() != s.weights.size()) {
      return Status::InvalidArgument(
          "warm start: prev_weights shape mismatch");
    }
    std::copy(options.prev_weights.begin(), options.prev_weights.end(),
              s.weights.begin());
  }

  // Restore previous assignments and their counter contributions; the
  // counters advance document by document so the prior-proposal draws for
  // new rows below condition on everything already placed.
  const auto add_doc_counts = [&](size_t d) {
    const Document& doc = graph_.document(static_cast<DocId>(d));
    const auto z = static_cast<size_t>(s.doc_topic[d]);
    const auto c = static_cast<size_t>(s.doc_community[d]);
    ++s.n_uc[static_cast<size_t>(doc.user) *
                 static_cast<size_t>(s.num_communities) +
             c];
    ++s.n_u[static_cast<size_t>(doc.user)];
    ++s.n_cz[c * static_cast<size_t>(s.num_topics) + z];
    ++s.n_c[c];
    for (const WordId w : doc.words) {
      ++s.n_zw[z * s.vocab_size + static_cast<size_t>(w)];
    }
    s.n_z[z] += static_cast<int64_t>(doc.words.size());
  };
  for (size_t d = 0; d < num_prev; ++d) {
    s.doc_topic[d] = options.prev_doc_topic[d];
    s.doc_community[d] = options.prev_doc_community[d];
    add_doc_counts(d);
  }

  // Sparse-sampler initialization for the new rows: draw the community from
  // the user's prior proposal (n_uc row + rho — the same distribution the
  // sparse kernel's prior proposal uses), then the topic from that
  // community's proposal (n_cz row + alpha). A brand-new user has an
  // all-zero row, so the +rho/+alpha mass makes the draw uniform.
  std::vector<double> community_weights(static_cast<size_t>(s.num_communities));
  std::vector<double> topic_weights(static_cast<size_t>(s.num_topics));
  for (size_t d = num_prev; d < num_docs; ++d) {
    const Document& doc = graph_.document(static_cast<DocId>(d));
    const size_t row = static_cast<size_t>(doc.user) *
                       static_cast<size_t>(s.num_communities);
    for (int c = 0; c < s.num_communities; ++c) {
      community_weights[static_cast<size_t>(c)] =
          static_cast<double>(s.n_uc[row + static_cast<size_t>(c)]) + s.rho;
    }
    const auto c = static_cast<int32_t>(
        SampleCategorical(community_weights, &rng_));
    for (int z = 0; z < s.num_topics; ++z) {
      topic_weights[static_cast<size_t>(z)] =
          static_cast<double>(
              s.n_cz[static_cast<size_t>(c) * static_cast<size_t>(s.num_topics) +
                     static_cast<size_t>(z)]) +
          s.alpha;
    }
    s.doc_community[d] = c;
    s.doc_topic[d] = static_cast<int32_t>(SampleCategorical(topic_weights, &rng_));
    add_doc_counts(d);
  }

  state_->popularity.Refresh(graph_, state_->doc_topic);
  sampler_ = std::make_unique<GibbsSampler>(graph_, config_, *caches_,
                                            state_.get());
  initialized_ = true;

  // Touched-shard plan: the regular plan (same segmentation, same per-shard
  // RNG stream mapping, so serial and pooled dispatch stay bit-identical)
  // with every untouched user filtered out of its shard. Shards left empty
  // are dispatched but sample nothing; an empty touched set empties every
  // shard (the sweeps then only refresh augmentation + the M-step).
  auto plan = BuildPlan();
  if (!plan.ok()) return plan.status();
  const std::unordered_set<UserId> touched(options.touched_users.begin(),
                                           options.touched_users.end());
  for (std::vector<UserId>& users : plan->users_per_thread) {
    std::erase_if(users,
                  [&](UserId u) { return touched.find(u) == touched.end(); });
  }
  stats_.num_segments = plan->num_segments;
  stats_.thread_estimated_workload = plan->allocation.thread_workload;
  auto executor = BuildExecutor(std::move(*plan));
  if (!executor.ok()) return executor.status();
  executor_ = std::move(*executor);
  executor_->SetTraceRecorder(trace_.get());

  for (int iter = 0; iter < options.warm_iterations; ++iter) {
    CPD_RETURN_IF_ERROR(EStep());
    MStep();
    const double loglik = sampler_->LinkLogLikelihood();
    stats_.link_log_likelihood.push_back(loglik);
    if (config_.verbose) {
      CPD_LOG(Info) << "warm EM iter " << iter << " link log-likelihood "
                    << loglik;
    }
  }
  stats_.total_seconds += total_timer.ElapsedSeconds();
  FlushTrace();
  return Status::OK();
}

Status EmTrainer::EStep() {
  CPD_CHECK(initialized_);
  WallTimer timer;
  CPD_RETURN_IF_ERROR(EnsureExecutor());

  // Mirror the master sampler's two-phase-schedule switches into the shard
  // kernels for this E-step.
  KernelFlags flags;
  flags.freeze_communities = sampler_->freeze_communities();
  flags.community_uses_content = sampler_->community_uses_content();
  flags.community_uses_diffusion = sampler_->community_uses_diffusion();

  executor_->ResetTimings();
  const int64_t e_step_index = trace_e_step_++;
  obs::DefaultRegistry()
      ->GetCounter("cpd_train_e_steps_total",
                   "E-steps executed across the training run.")
      ->Increment();
  // The M-step-owned parameters (eta, weights, popularity) cannot change
  // inside an E-step: capture them once and let executor slots skip the
  // re-restore via the snapshot's parameter version.
  {
    obs::TraceSpan span(trace_.get(), "capture_parameters", kTrainerTid);
    WallTimer params_timer;
    snapshot_.CaptureParameters(*state_);
    stats_.snapshot_seconds += params_timer.ElapsedSeconds();
  }
  for (int sweep = 0; sweep < config_.gibbs_sweeps_per_em; ++sweep) {
    const int64_t sweep_index = trace_sweep_++;
    obs::DefaultRegistry()
        ->GetCounter("cpd_train_sweeps_total",
                     "Gibbs sweeps executed across the training run.")
        ->Increment();
    // Plan -> snapshot -> shard-local sample -> delta-merge -> swap: the
    // master state is frozen while shards sample against the snapshot, then
    // advanced only by the merged deltas. Single-shard runs pay the same
    // two sweep-state copies per sweep (capture + restore) to keep every
    // execution mode on one protocol — memcpy cost, amortized against the
    // O(tokens) sweep, and reported as snapshot_seconds.
    {
      obs::TraceSpan span(trace_.get(), "snapshot", kTrainerTid);
      span.AddArg("sweep", Json(sweep_index));
      WallTimer snapshot_timer;
      snapshot_.CaptureSweepState(*state_);
      stats_.snapshot_seconds += snapshot_timer.ElapsedSeconds();
    }

    {
      obs::TraceSpan span(trace_.get(), "sample_shards", kTrainerTid);
      span.AddArg("sweep", Json(sweep_index));
      span.AddArg("e_step", Json(e_step_index));
      CPD_RETURN_IF_ERROR(executor_->SampleShards(snapshot_, flags, &deltas_));
      span.AddArg("shards", Json(static_cast<int64_t>(deltas_.size())));
    }

    // Applying the per-shard deltas in shard order IS the fold — ApplyTo is
    // the same commutative integer addition Merge() performs, without
    // materializing an intermediate merged delta (which would double the
    // merge cost in the default single-shard path).
    {
      obs::TraceSpan span(trace_.get(), "merge", kTrainerTid);
      span.AddArg("sweep", Json(sweep_index));
      WallTimer merge_timer;
      size_t doc_moves = 0;
      for (const CounterDelta& delta : deltas_) {
        delta.ApplyTo(state_.get());
        doc_moves += delta.NumDocMoves();
        stats_.delta_entries += delta.NonzeroEntries();
      }
      stats_.delta_doc_moves += doc_moves;
      stats_.merge_seconds += merge_timer.ElapsedSeconds();
      span.AddArg("doc_moves", Json(static_cast<int64_t>(doc_moves)));
    }

    // Phase 2: Polya-Gamma augmentation against the merged state.
    {
      obs::TraceSpan span(trace_.get(), "augment", kTrainerTid);
      span.AddArg("sweep", Json(sweep_index));
      CPD_RETURN_IF_ERROR(executor_->SweepAugmentation(sampler_.get()));
    }
  }

  const CollapseCacheStats collapse = executor_->ConsumeCollapseCacheStats();
  stats_.eta_collapse_hits += collapse.hits;
  stats_.eta_collapse_misses += collapse.misses;
  // Fold shard-sampler MH counters into the master so mh_stats() keeps
  // reporting sparse-backend acceptance health for the whole run.
  sampler_->AccumulateMhStats(executor_->ConsumeMhStats());
  stats_.thread_actual_seconds = executor_->shard_seconds();
  UpdateTransportStats();
  stats_.e_step_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

void EmTrainer::UpdateEta() {
  ModelState& s = *state_;
  std::fill(s.eta.begin(), s.eta.end(), 0.0);
  for (const DiffusionLink& link : graph_.diffusion_links()) {
    const int32_t ci = s.doc_community[static_cast<size_t>(link.i)];
    const int32_t cj = s.doc_community[static_cast<size_t>(link.j)];
    const int32_t zi = s.doc_topic[static_cast<size_t>(link.i)];
    s.EtaAt(ci, cj, zi) += 1.0;
  }
  // Normalize per source community over the (c', z) simplex (Definition 5),
  // with additive smoothing.
  const size_t block = static_cast<size_t>(s.num_communities) *
                       static_cast<size_t>(s.num_topics);
  const double eps = config_.eta_smoothing;
  for (int c = 0; c < s.num_communities; ++c) {
    double total = 0.0;
    const size_t base = static_cast<size_t>(c) * block;
    for (size_t k = 0; k < block; ++k) total += s.eta[base + k];
    const double denom = total + eps * static_cast<double>(block);
    for (size_t k = 0; k < block; ++k) {
      s.eta[base + k] = (s.eta[base + k] + eps) / denom;
    }
  }
}

void EmTrainer::TrainDiffusionWeights(Rng* rng) {
  // Fitting Eq. 6's diffusion term is logistic regression over the observed
  // links plus an equal number of sampled negatives (§4.2 M-step).
  ModelState& s = *state_;
  const auto& links = graph_.diffusion_links();
  const size_t num_pos = links.size();
  if (num_pos == 0 || config_.nu_iterations == 0) return;

  struct Example {
    double x[kNumDiffusionWeights];
    double y;
  };
  std::vector<Example> examples;
  examples.reserve(num_pos * 2);

  auto fill_example = [&](UserId u, UserId v, int z, int32_t time, size_t e,
                          double label) {
    Example ex;
    ex.y = label;
    ex.x[kWeightEta] = s.CommunityDiffusionScore(u, v, z);
    ex.x[kWeightPopularity] =
        config_.ablation.topic_factor ? s.popularity.Value(time, z) : 0.0;
    double feats[kNumUserFeatures];
    if (config_.ablation.individual_factor) {
      if (e != static_cast<size_t>(-1)) {
        const auto cached = caches_->Features(e);
        std::copy(cached.begin(), cached.end(), feats);
      } else {
        LinkCaches::ComputePairFeatures(graph_, u, v, feats);
      }
    } else {
      std::fill(feats, feats + kNumUserFeatures, 0.0);
    }
    for (int k = 0; k < kNumUserFeatures; ++k) {
      ex.x[kWeightFeature0 + k] = feats[k];
    }
    ex.x[kWeightBias] = 1.0;
    examples.push_back(ex);
  };

  for (size_t e = 0; e < num_pos; ++e) {
    const DiffusionLink& link = links[e];
    const UserId u = graph_.document(link.i).user;
    const UserId v = graph_.document(link.j).user;
    const int z = s.doc_topic[static_cast<size_t>(link.i)];
    fill_example(u, v, z, link.time, e, 1.0);
  }

  // Negative sampling: uniform random document pairs that are not linked
  // ("we randomly sample the same amount of non-observed diffusion links").
  const size_t num_docs = graph_.num_documents();
  size_t drawn = 0;
  size_t attempts = 0;
  while (drawn < num_pos && attempts < num_pos * 20) {
    ++attempts;
    const DocId i = static_cast<DocId>(rng->NextUint64(num_docs));
    const DocId j = static_cast<DocId>(rng->NextUint64(num_docs));
    if (i == j || graph_.HasDiffusion(i, j)) continue;
    const Document& di = graph_.document(i);
    const Document& dj = graph_.document(j);
    if (di.user == dj.user) continue;
    fill_example(di.user, dj.user, s.doc_topic[static_cast<size_t>(i)], di.time,
                 static_cast<size_t>(-1), 0.0);
    ++drawn;
  }

  // Full-batch gradient ascent on the regularized log-likelihood.
  const double n_inv = 1.0 / static_cast<double>(examples.size());
  for (int iter = 0; iter < config_.nu_iterations; ++iter) {
    double grad[kNumDiffusionWeights] = {0.0};
    for (const Example& ex : examples) {
      double w = 0.0;
      for (int k = 0; k < kNumDiffusionWeights; ++k) w += s.weights[k] * ex.x[k];
      const double residual = ex.y - Sigmoid(w);
      for (int k = 0; k < kNumDiffusionWeights; ++k) {
        grad[k] += residual * ex.x[k];
      }
    }
    for (int k = 0; k < kNumDiffusionWeights; ++k) {
      // Ablated factors keep their weight pinned at initialization.
      if (k == kWeightPopularity && !config_.ablation.topic_factor) continue;
      if (k >= kWeightFeature0 && k < kWeightFeature0 + kNumUserFeatures &&
          !config_.ablation.individual_factor) {
        continue;
      }
      s.weights[k] += config_.nu_learning_rate *
                      (grad[k] * n_inv - config_.nu_l2 * s.weights[k]);
    }
  }
}

void EmTrainer::MStep() {
  CPD_CHECK(initialized_);
  obs::TraceSpan span(trace_.get(), "m_step", kTrainerTid);
  WallTimer timer;
  state_->popularity.Refresh(graph_, state_->doc_topic);
  if (config_.ablation.model_diffusion) {
    UpdateEta();
    if (config_.ablation.heterogeneous_links) {
      TrainDiffusionWeights(&rng_);
    }
  }
  stats_.m_step_seconds += timer.ElapsedSeconds();
}

Status EmTrainer::Train() {
  WallTimer total_timer;
  CPD_RETURN_IF_ERROR(Initialize());

  int joint_iterations = config_.em_iterations;
  if (!config_.ablation.joint_profiling) {
    // "No joint modeling": phase A detects communities from friendship links
    // only (content and diffusion excluded from the community conditional),
    // phase B freezes the communities and fits topics + profiles.
    const int phase_a = std::max(1, config_.em_iterations / 2);
    sampler_->set_community_uses_content(false);
    sampler_->set_community_uses_diffusion(false);
    for (int iter = 0; iter < phase_a; ++iter) {
      CPD_RETURN_IF_ERROR(EStep());
    }
    sampler_->set_freeze_communities(true);
    sampler_->set_community_uses_content(true);
    sampler_->set_community_uses_diffusion(true);
    joint_iterations = std::max(1, config_.em_iterations - phase_a);
  }

  for (int iter = 0; iter < joint_iterations; ++iter) {
    CPD_RETURN_IF_ERROR(EStep());
    MStep();
    const double loglik = sampler_->LinkLogLikelihood();
    stats_.link_log_likelihood.push_back(loglik);
    if (config_.verbose) {
      CPD_LOG(Info) << "EM iter " << iter << " link log-likelihood " << loglik;
    }
  }
  stats_.total_seconds = total_timer.ElapsedSeconds();
  FlushTrace();
  return Status::OK();
}

}  // namespace cpd
