#include "core/model_artifact.h"

#include <cstring>

#include "core/model_state.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace cpd {

namespace {

// Little-endian fixed-width append/read helpers. The encoder always writes
// host byte order and stamps kModelArtifactEndianTag; the decoder rejects a
// foreign tag instead of byte-swapping (every deployment target of this
// library is little-endian; a swap path would be untested dead code).
template <typename T>
void AppendRaw(std::string* out, const T& value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(T));
}

void AppendDoubles(std::string* out, const std::vector<double>& values) {
  const char* bytes = reinterpret_cast<const char*>(values.data());
  out->append(bytes, values.size() * sizeof(double));
}

class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    if (offset_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(size_t count, std::vector<double>* out) {
    const size_t bytes_needed = count * sizeof(double);
    if (offset_ + bytes_needed > bytes_.size()) return false;
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + offset_, bytes_needed);
    offset_ += bytes_needed;
    return true;
  }

  bool ReadString(size_t length, std::string* out) {
    if (offset_ + length > bytes_.size()) return false;
    out->assign(bytes_.data() + offset_, length);
    offset_ += length;
    return true;
  }

  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::string& bytes_;
  size_t offset_ = 0;
};

}  // namespace

Status ModelArtifact::Validate() const {
  if (num_communities < 1 || num_topics < 1 || num_time_bins < 1) {
    return Status::InvalidArgument("model artifact: non-positive dimensions");
  }
  if (weights.size() != static_cast<size_t>(kNumDiffusionWeights)) {
    return Status::InvalidArgument(
        StrFormat("model artifact: %zu diffusion weights, expected %d",
                  weights.size(), kNumDiffusionWeights));
  }
  const size_t kc = static_cast<size_t>(num_communities);
  const size_t kz = static_cast<size_t>(num_topics);
  const size_t kt = static_cast<size_t>(num_time_bins);
  const auto check = [](size_t actual, size_t expected, const char* name) {
    if (actual != expected) {
      return Status::InvalidArgument(
          StrFormat("model artifact: %s has %zu entries, header implies %zu",
                    name, actual, expected));
    }
    return Status::OK();
  };
  CPD_RETURN_IF_ERROR(check(pi.size(), num_users * kc, "pi"));
  CPD_RETURN_IF_ERROR(check(theta.size(), kc * kz, "theta"));
  CPD_RETURN_IF_ERROR(check(phi.size(), kz * vocab_size, "phi"));
  CPD_RETURN_IF_ERROR(check(eta.size(), kc * kc * kz, "eta"));
  CPD_RETURN_IF_ERROR(check(popularity.size(), kt * kz, "popularity"));
  if (!vocab_words.empty()) {
    CPD_RETURN_IF_ERROR(check(vocab_words.size(), vocab_size, "vocabulary"));
    CPD_RETURN_IF_ERROR(check(vocab_frequencies.size(), vocab_words.size(),
                              "vocabulary frequencies"));
  } else if (!vocab_frequencies.empty()) {
    return Status::InvalidArgument(
        "model artifact: vocabulary frequencies without words");
  }
  return Status::OK();
}

Status ModelArtifact::BuildVocabulary(Vocabulary* out) const {
  if (!has_vocabulary()) {
    return Status::FailedPrecondition(
        "model artifact carries no bundled vocabulary (v1 file, or saved "
        "without one)");
  }
  CPD_RETURN_IF_ERROR(Validate());
  Vocabulary vocab;
  for (size_t i = 0; i < vocab_words.size(); ++i) {
    if (vocab.GetOrAdd(vocab_words[i]) != static_cast<WordId>(i)) {
      return Status::InvalidArgument(
          "model artifact: duplicate vocabulary word '" + vocab_words[i] + "'");
    }
    vocab.CountOccurrence(static_cast<WordId>(i), vocab_frequencies[i]);
  }
  *out = std::move(vocab);
  return Status::OK();
}

StatusOr<std::string> EncodeModelArtifact(const ModelArtifact& artifact) {
  CPD_RETURN_IF_ERROR(artifact.Validate());
  std::string out;
  out.reserve(sizeof(kModelArtifactMagic) + 64 +
              (artifact.pi.size() + artifact.theta.size() +
               artifact.phi.size() + artifact.eta.size() +
               artifact.weights.size() + artifact.popularity.size()) *
                  sizeof(double));
  out.append(kModelArtifactMagic, sizeof(kModelArtifactMagic));
  AppendRaw(&out, kModelArtifactVersion);
  AppendRaw(&out, kModelArtifactEndianTag);
  AppendRaw(&out, artifact.num_communities);
  AppendRaw(&out, artifact.num_topics);
  AppendRaw(&out, artifact.num_users);
  AppendRaw(&out, artifact.vocab_size);
  AppendRaw(&out, artifact.num_time_bins);
  AppendRaw(&out, static_cast<uint64_t>(artifact.weights.size()));
  AppendDoubles(&out, artifact.pi);
  AppendDoubles(&out, artifact.theta);
  AppendDoubles(&out, artifact.phi);
  AppendDoubles(&out, artifact.eta);
  AppendDoubles(&out, artifact.weights);
  AppendDoubles(&out, artifact.popularity);
  // v2 vocabulary section (count 0 when none is bundled).
  AppendRaw(&out, static_cast<uint64_t>(artifact.vocab_words.size()));
  for (size_t i = 0; i < artifact.vocab_words.size(); ++i) {
    const std::string& word = artifact.vocab_words[i];
    AppendRaw(&out, static_cast<uint32_t>(word.size()));
    out.append(word);
    AppendRaw(&out, artifact.vocab_frequencies[i]);
  }
  return out;
}

StatusOr<ModelArtifact> DecodeModelArtifact(const std::string& bytes) {
  if (!LooksLikeModelArtifact(bytes)) {
    return Status::InvalidArgument("not a CPD binary model artifact");
  }
  ByteReader reader(bytes);
  char magic[sizeof(kModelArtifactMagic)];
  reader.Read(&magic);  // Cannot fail: LooksLikeModelArtifact checked length.

  uint32_t version = 0;
  uint32_t endian_tag = 0;
  ModelArtifact artifact;
  uint64_t num_weights = 0;
  if (!reader.Read(&version) || !reader.Read(&endian_tag)) {
    return Status::OutOfRange("model artifact: truncated header");
  }
  if (version < kModelArtifactMinVersion || version > kModelArtifactVersion) {
    return Status::Unimplemented(
        StrFormat("model artifact: version %u not supported (reader "
                  "understands versions %u..%u)",
                  version, kModelArtifactMinVersion, kModelArtifactVersion));
  }
  if (endian_tag != kModelArtifactEndianTag) {
    return Status::InvalidArgument(
        "model artifact: foreign byte order (written on an incompatible "
        "host)");
  }
  if (!reader.Read(&artifact.num_communities) ||
      !reader.Read(&artifact.num_topics) || !reader.Read(&artifact.num_users) ||
      !reader.Read(&artifact.vocab_size) ||
      !reader.Read(&artifact.num_time_bins) || !reader.Read(&num_weights)) {
    return Status::OutOfRange("model artifact: truncated header");
  }
  if (artifact.num_communities < 1 || artifact.num_topics < 1 ||
      artifact.num_time_bins < 1) {
    return Status::InvalidArgument(
        "model artifact: corrupt header (non-positive dimensions)");
  }
  // Reject absurd headers before sizing any allocation against them: every
  // matrix must fit in the bytes that actually follow. The products are
  // accumulated in 128 bits so a crafted header cannot wrap the check (each
  // factor fits in 64 bits, so no term overflows 128).
  const size_t kc = static_cast<size_t>(artifact.num_communities);
  const size_t kz = static_cast<size_t>(artifact.num_topics);
  const size_t kt = static_cast<size_t>(artifact.num_time_bins);
  using uint128 = unsigned __int128;
  const uint128 total_doubles =
      static_cast<uint128>(artifact.num_users) * kc +
      static_cast<uint128>(kc) * kz +
      static_cast<uint128>(kz) * artifact.vocab_size +
      static_cast<uint128>(kc) * kc * kz + static_cast<uint128>(num_weights) +
      static_cast<uint128>(kt) * kz;
  if (total_doubles > reader.remaining() / sizeof(double)) {
    return Status::OutOfRange(StrFormat(
        "model artifact: truncated body (%zu bytes left, header needs %llu "
        "doubles)",
        reader.remaining(),
        static_cast<unsigned long long>(
            total_doubles > ~0ull ? ~0ull : static_cast<uint64_t>(total_doubles))));
  }
  reader.ReadDoubles(artifact.num_users * kc, &artifact.pi);
  reader.ReadDoubles(kc * kz, &artifact.theta);
  reader.ReadDoubles(kz * artifact.vocab_size, &artifact.phi);
  reader.ReadDoubles(kc * kc * kz, &artifact.eta);
  reader.ReadDoubles(static_cast<size_t>(num_weights), &artifact.weights);
  reader.ReadDoubles(kt * kz, &artifact.popularity);
  if (version >= 2) {
    uint64_t vocab_count = 0;
    if (!reader.Read(&vocab_count)) {
      return Status::OutOfRange("model artifact: truncated vocabulary section");
    }
    if (vocab_count != 0 && vocab_count != artifact.vocab_size) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: vocabulary section has %llu words, header says "
          "|W|=%llu",
          static_cast<unsigned long long>(vocab_count),
          static_cast<unsigned long long>(artifact.vocab_size)));
    }
    artifact.vocab_words.reserve(static_cast<size_t>(vocab_count));
    artifact.vocab_frequencies.reserve(static_cast<size_t>(vocab_count));
    for (uint64_t i = 0; i < vocab_count; ++i) {
      uint32_t length = 0;
      std::string word;
      int64_t frequency = 0;
      if (!reader.Read(&length) || !reader.ReadString(length, &word) ||
          !reader.Read(&frequency)) {
        return Status::OutOfRange(
            "model artifact: truncated vocabulary section");
      }
      artifact.vocab_words.push_back(std::move(word));
      artifact.vocab_frequencies.push_back(frequency);
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "model artifact: %zu trailing bytes after the last section",
        reader.remaining()));
  }
  CPD_RETURN_IF_ERROR(artifact.Validate());
  return artifact;
}

Status WriteModelArtifact(const std::string& path,
                          const ModelArtifact& artifact) {
  auto encoded = EncodeModelArtifact(artifact);
  if (!encoded.ok()) return encoded.status();
  return WriteStringToFile(path, *encoded);
}

StatusOr<ModelArtifact> ReadModelArtifact(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  auto decoded = DecodeModelArtifact(*contents);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

bool LooksLikeModelArtifact(const std::string& bytes) {
  return bytes.size() >= sizeof(kModelArtifactMagic) &&
         std::memcmp(bytes.data(), kModelArtifactMagic,
                     sizeof(kModelArtifactMagic)) == 0;
}

}  // namespace cpd
