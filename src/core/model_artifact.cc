#include "core/model_artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "core/artifact_derived.h"
#include "core/model_state.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace cpd {

namespace {

/// Overflow-proof arithmetic for size checks against attacker-controlled
/// headers: every dimension fits in 64 bits, so no product of two (plus a
/// sum of a handful) can wrap 128.
using uint128_t = unsigned __int128;

// Little-endian fixed-width append/read helpers. The encoder always writes
// host byte order and stamps kModelArtifactEndianTag; the decoder rejects a
// foreign tag instead of byte-swapping (every deployment target of this
// library is little-endian; a swap path would be untested dead code).
template <typename T>
void AppendRaw(std::string* out, const T& value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(T));
}

void AppendDoubles(std::string* out, const std::vector<double>& values) {
  const char* bytes = reinterpret_cast<const char*>(values.data());
  out->append(bytes, values.size() * sizeof(double));
}

template <typename T>
T ReadAt(const char* data, size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

template <typename T>
void WriteAt(char* data, size_t offset, const T& value) {
  std::memcpy(data + offset, &value, sizeof(T));
}

class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    if (offset_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(size_t count, std::vector<double>* out) {
    const size_t bytes_needed = count * sizeof(double);
    if (offset_ + bytes_needed > bytes_.size()) return false;
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + offset_, bytes_needed);
    offset_ += bytes_needed;
    return true;
  }

  bool ReadString(size_t length, std::string* out) {
    if (offset_ + length > bytes_.size()) return false;
    out->assign(bytes_.data() + offset_, length);
    offset_ += length;
    return true;
  }

  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::string& bytes_;
  size_t offset_ = 0;
};

// ----- v3 fixed geometry -----
// 0  magic[8]           40 i32 T
// 8  u32 version        44 u64 #weights
// 12 u32 endian tag     52 u32 section_alignment
// 16 i32 |C|            56 u32 section_count
// 20 i32 |Z|            60 u32 derived_top_k
// 24 u64 |U|            64 u32 header_checksum
// 32 u64 |W|            68 u64 model_generation
// 76 section table (24 bytes per entry), then aligned sections.
constexpr size_t kV3FixedHeaderBytes = 76;
constexpr size_t kV3TableEntryBytes = 24;
constexpr size_t kV3ChecksumOffset = 64;
constexpr uint32_t kV3MaxSections = 64;
constexpr uint32_t kV3MaxAlignment = 1u << 24;

size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

/// FNV-1a 32 over the header + section table, with the stored checksum
/// field read as zero — so *any* flipped bit in the fixed header or the
/// offset table is a typed error, not a silently different layout.
uint32_t HeaderChecksum(const char* data, size_t header_end) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < header_end; ++i) {
    const unsigned char byte =
        (i >= kV3ChecksumOffset && i < kV3ChecksumOffset + sizeof(uint32_t))
            ? 0u
            : static_cast<unsigned char>(data[i]);
    hash = (hash ^ byte) * 16777619u;
  }
  return hash;
}

uint128_t SectionExpectedBytes(ArtifactSection id,
                               const ArtifactV3Layout& layout);

/// Parses one bundled-vocabulary section body (count already validated by
/// ParseV3Layout for v3; the bounds checks stay so the v2 decoder and
/// Materialize can share it defensively).
Status ParseVocabSection(const char* section, uint64_t length,
                         std::vector<std::string>* words,
                         std::vector<int64_t>* frequencies) {
  if (length < sizeof(uint64_t)) {
    return Status::OutOfRange("model artifact: truncated vocabulary section");
  }
  const uint64_t count = ReadAt<uint64_t>(section, 0);
  // A word entry is at least 12 bytes; a crafted count cannot force a huge
  // reserve ahead of the bounded walk below.
  words->reserve(static_cast<size_t>(
      std::min<uint64_t>(count, length / 12 + 1)));
  frequencies->reserve(words->capacity());
  uint64_t cursor = sizeof(uint64_t);
  for (uint64_t i = 0; i < count; ++i) {
    if (cursor + sizeof(uint32_t) > length) {
      return Status::OutOfRange("model artifact: truncated vocabulary section");
    }
    const uint32_t word_length = ReadAt<uint32_t>(section, cursor);
    cursor += sizeof(uint32_t);
    if (word_length > length || cursor + word_length > length ||
        cursor + word_length + sizeof(int64_t) > length) {
      return Status::OutOfRange("model artifact: truncated vocabulary section");
    }
    words->emplace_back(section + cursor, word_length);
    cursor += word_length;
    frequencies->push_back(ReadAt<int64_t>(section, cursor));
    cursor += sizeof(int64_t);
  }
  if (cursor != length) {
    return Status::InvalidArgument(StrFormat(
        "model artifact: %llu trailing bytes in the vocabulary section",
        static_cast<unsigned long long>(length - cursor)));
  }
  return Status::OK();
}

Status VocabularyFromWords(const std::vector<std::string>& words,
                           const std::vector<int64_t>& frequencies,
                           Vocabulary* out) {
  Vocabulary vocab;
  for (size_t i = 0; i < words.size(); ++i) {
    if (vocab.GetOrAdd(words[i]) != static_cast<WordId>(i)) {
      return Status::InvalidArgument(
          "model artifact: duplicate vocabulary word '" + words[i] + "'");
    }
    vocab.CountOccurrence(static_cast<WordId>(i), frequencies[i]);
  }
  *out = std::move(vocab);
  return Status::OK();
}

}  // namespace

const char* ArtifactSectionName(uint32_t id) {
  switch (static_cast<ArtifactSection>(id)) {
    case ArtifactSection::kPi:
      return "pi";
    case ArtifactSection::kTheta:
      return "theta";
    case ArtifactSection::kPhi:
      return "phi";
    case ArtifactSection::kEta:
      return "eta";
    case ArtifactSection::kWeights:
      return "weights";
    case ArtifactSection::kPopularity:
      return "popularity";
    case ArtifactSection::kVocab:
      return "vocab";
    case ArtifactSection::kEtaAgg:
      return "eta_agg";
    case ArtifactSection::kTopkCommunities:
      return "topk_communities";
    case ArtifactSection::kTopkWeights:
      return "topk_weights";
    case ArtifactSection::kMemberOffsets:
      return "member_offsets";
    case ArtifactSection::kMembers:
      return "members";
    case ArtifactSection::kMemberWeights:
      return "member_weights";
  }
  return "unknown";
}

int32_t ArtifactV3Layout::effective_top_k() const {
  if (derived_top_k == 0) return 0;
  return static_cast<int32_t>(std::min<uint64_t>(
      derived_top_k, static_cast<uint64_t>(num_communities)));
}

Status ModelArtifact::Validate() const {
  if (num_communities < 1 || num_topics < 1 || num_time_bins < 1) {
    return Status::InvalidArgument("model artifact: non-positive dimensions");
  }
  if (weights.size() != static_cast<size_t>(kNumDiffusionWeights)) {
    return Status::InvalidArgument(
        StrFormat("model artifact: %zu diffusion weights, expected %d",
                  weights.size(), kNumDiffusionWeights));
  }
  const size_t kc = static_cast<size_t>(num_communities);
  const size_t kz = static_cast<size_t>(num_topics);
  const size_t kt = static_cast<size_t>(num_time_bins);
  const auto check = [](size_t actual, size_t expected, const char* name) {
    if (actual != expected) {
      return Status::InvalidArgument(
          StrFormat("model artifact: %s has %zu entries, header implies %zu",
                    name, actual, expected));
    }
    return Status::OK();
  };
  CPD_RETURN_IF_ERROR(check(pi.size(), num_users * kc, "pi"));
  CPD_RETURN_IF_ERROR(check(theta.size(), kc * kz, "theta"));
  CPD_RETURN_IF_ERROR(check(phi.size(), kz * vocab_size, "phi"));
  CPD_RETURN_IF_ERROR(check(eta.size(), kc * kc * kz, "eta"));
  CPD_RETURN_IF_ERROR(check(popularity.size(), kt * kz, "popularity"));
  if (!vocab_words.empty()) {
    CPD_RETURN_IF_ERROR(check(vocab_words.size(), vocab_size, "vocabulary"));
    CPD_RETURN_IF_ERROR(check(vocab_frequencies.size(), vocab_words.size(),
                              "vocabulary frequencies"));
  } else if (!vocab_frequencies.empty()) {
    return Status::InvalidArgument(
        "model artifact: vocabulary frequencies without words");
  }
  return Status::OK();
}

Status ModelArtifact::BuildVocabulary(Vocabulary* out) const {
  if (!has_vocabulary()) {
    return Status::FailedPrecondition(
        "model artifact carries no bundled vocabulary (v1 file, or saved "
        "without one)");
  }
  CPD_RETURN_IF_ERROR(Validate());
  return VocabularyFromWords(vocab_words, vocab_frequencies, out);
}

namespace {

std::string EncodeVocabSection(const ModelArtifact& artifact) {
  std::string out;
  AppendRaw(&out, static_cast<uint64_t>(artifact.vocab_words.size()));
  for (size_t i = 0; i < artifact.vocab_words.size(); ++i) {
    const std::string& word = artifact.vocab_words[i];
    AppendRaw(&out, static_cast<uint32_t>(word.size()));
    out.append(word);
    AppendRaw(&out, artifact.vocab_frequencies[i]);
  }
  return out;
}

StatusOr<std::string> EncodeLegacy(const ModelArtifact& artifact,
                                   uint32_t version) {
  if (version == 1 && artifact.has_vocabulary()) {
    return Status::InvalidArgument(
        "model artifact: version 1 cannot carry a vocabulary (save v2+ or "
        "drop it)");
  }
  std::string out;
  out.reserve(sizeof(kModelArtifactMagic) + 64 +
              (artifact.pi.size() + artifact.theta.size() +
               artifact.phi.size() + artifact.eta.size() +
               artifact.weights.size() + artifact.popularity.size()) *
                  sizeof(double));
  out.append(kModelArtifactMagic, sizeof(kModelArtifactMagic));
  AppendRaw(&out, version);
  AppendRaw(&out, kModelArtifactEndianTag);
  AppendRaw(&out, artifact.num_communities);
  AppendRaw(&out, artifact.num_topics);
  AppendRaw(&out, artifact.num_users);
  AppendRaw(&out, artifact.vocab_size);
  AppendRaw(&out, artifact.num_time_bins);
  AppendRaw(&out, static_cast<uint64_t>(artifact.weights.size()));
  AppendDoubles(&out, artifact.pi);
  AppendDoubles(&out, artifact.theta);
  AppendDoubles(&out, artifact.phi);
  AppendDoubles(&out, artifact.eta);
  AppendDoubles(&out, artifact.weights);
  AppendDoubles(&out, artifact.popularity);
  if (version >= 2) {
    // v2 vocabulary section (count 0 when none is bundled).
    out.append(EncodeVocabSection(artifact));
  }
  return out;
}

StatusOr<std::string> EncodeV3(const ModelArtifact& artifact,
                               const ArtifactWriteOptions& options) {
  const uint32_t alignment = options.section_alignment;
  if (alignment < 8 || alignment > kV3MaxAlignment ||
      (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument(StrFormat(
        "model artifact: section alignment %u is not a power of two in "
        "[8, %u]",
        alignment, kV3MaxAlignment));
  }
  const ArtifactDerived derived = BuildArtifactDerived(
      std::span<const double>(artifact.pi),
      std::span<const double>(artifact.eta), artifact.num_communities,
      artifact.num_topics, static_cast<size_t>(artifact.num_users),
      static_cast<int>(std::min<uint32_t>(options.derived_top_k, 1u << 20)));
  const std::string vocab_section = EncodeVocabSection(artifact);

  struct Payload {
    ArtifactSection id;
    const char* data;
    size_t bytes;
  };
  const auto doubles = [](const std::vector<double>& v, ArtifactSection id) {
    return Payload{id, reinterpret_cast<const char*>(v.data()),
                   v.size() * sizeof(double)};
  };
  std::vector<Payload> payloads = {
      doubles(artifact.pi, ArtifactSection::kPi),
      doubles(artifact.theta, ArtifactSection::kTheta),
      doubles(artifact.phi, ArtifactSection::kPhi),
      doubles(artifact.eta, ArtifactSection::kEta),
      doubles(artifact.weights, ArtifactSection::kWeights),
      doubles(artifact.popularity, ArtifactSection::kPopularity),
      Payload{ArtifactSection::kVocab, vocab_section.data(),
              vocab_section.size()},
      doubles(derived.eta_agg, ArtifactSection::kEtaAgg),
  };
  if (options.derived_top_k > 0) {
    payloads.push_back(Payload{
        ArtifactSection::kTopkCommunities,
        reinterpret_cast<const char*>(derived.topk_communities.data()),
        derived.topk_communities.size() * sizeof(int32_t)});
    payloads.push_back(doubles(derived.topk_weights,
                               ArtifactSection::kTopkWeights));
    payloads.push_back(Payload{
        ArtifactSection::kMemberOffsets,
        reinterpret_cast<const char*>(derived.member_offsets.data()),
        derived.member_offsets.size() * sizeof(uint64_t)});
    payloads.push_back(
        Payload{ArtifactSection::kMembers,
                reinterpret_cast<const char*>(derived.members.data()),
                derived.members.size() * sizeof(int32_t)});
    payloads.push_back(doubles(derived.member_weights,
                               ArtifactSection::kMemberWeights));
  }

  const size_t table_end =
      kV3FixedHeaderBytes + payloads.size() * kV3TableEntryBytes;
  std::vector<size_t> offsets(payloads.size());
  size_t cursor = table_end;
  for (size_t i = 0; i < payloads.size(); ++i) {
    cursor = AlignUp(cursor, alignment);
    offsets[i] = cursor;
    cursor += payloads[i].bytes;
  }
  std::string out(cursor, '\0');
  char* data = out.data();
  std::memcpy(data, kModelArtifactMagic, sizeof(kModelArtifactMagic));
  WriteAt<uint32_t>(data, 8, 3u);
  WriteAt<uint32_t>(data, 12, kModelArtifactEndianTag);
  WriteAt<int32_t>(data, 16, artifact.num_communities);
  WriteAt<int32_t>(data, 20, artifact.num_topics);
  WriteAt<uint64_t>(data, 24, artifact.num_users);
  WriteAt<uint64_t>(data, 32, artifact.vocab_size);
  WriteAt<int32_t>(data, 40, artifact.num_time_bins);
  WriteAt<uint64_t>(data, 44, static_cast<uint64_t>(artifact.weights.size()));
  WriteAt<uint32_t>(data, 52, alignment);
  WriteAt<uint32_t>(data, 56, static_cast<uint32_t>(payloads.size()));
  WriteAt<uint32_t>(data, 60, options.derived_top_k);
  WriteAt<uint32_t>(data, kV3ChecksumOffset, 0u);
  WriteAt<uint64_t>(data, 68, artifact.generation);
  for (size_t i = 0; i < payloads.size(); ++i) {
    const size_t entry = kV3FixedHeaderBytes + i * kV3TableEntryBytes;
    WriteAt<uint32_t>(data, entry, static_cast<uint32_t>(payloads[i].id));
    WriteAt<uint32_t>(data, entry + 4, 0u);
    WriteAt<uint64_t>(data, entry + 8, offsets[i]);
    WriteAt<uint64_t>(data, entry + 16, payloads[i].bytes);
    if (payloads[i].bytes != 0) {
      std::memcpy(data + offsets[i], payloads[i].data, payloads[i].bytes);
    }
  }
  WriteAt<uint32_t>(data, kV3ChecksumOffset, HeaderChecksum(data, table_end));
  return out;
}

}  // namespace

StatusOr<std::string> EncodeModelArtifact(const ModelArtifact& artifact,
                                          const ArtifactWriteOptions& options) {
  CPD_RETURN_IF_ERROR(artifact.Validate());
  if (options.version < kModelArtifactMinVersion ||
      options.version > kModelArtifactVersion) {
    return Status::InvalidArgument(
        StrFormat("model artifact: cannot write version %u (writer "
                  "understands versions %u..%u)",
                  options.version, kModelArtifactMinVersion,
                  kModelArtifactVersion));
  }
  if (options.version < 3) return EncodeLegacy(artifact, options.version);
  return EncodeV3(artifact, options);
}

Status ParseV3Layout(const char* data, size_t size,
                     ArtifactV3Layout* layout) {
  if (size < kV3FixedHeaderBytes) {
    return Status::OutOfRange(StrFormat(
        "model artifact: truncated v3 header (%zu bytes, need %zu)", size,
        kV3FixedHeaderBytes));
  }
  layout->num_communities = ReadAt<int32_t>(data, 16);
  layout->num_topics = ReadAt<int32_t>(data, 20);
  layout->num_users = ReadAt<uint64_t>(data, 24);
  layout->vocab_size = ReadAt<uint64_t>(data, 32);
  layout->num_time_bins = ReadAt<int32_t>(data, 40);
  layout->num_weights = ReadAt<uint64_t>(data, 44);
  layout->section_alignment = ReadAt<uint32_t>(data, 52);
  const uint32_t section_count = ReadAt<uint32_t>(data, 56);
  layout->derived_top_k = ReadAt<uint32_t>(data, 60);
  const uint32_t stored_checksum = ReadAt<uint32_t>(data, kV3ChecksumOffset);
  layout->generation = ReadAt<uint64_t>(data, 68);

  if (layout->num_communities < 1 || layout->num_topics < 1 ||
      layout->num_time_bins < 1) {
    return Status::InvalidArgument(
        "model artifact: corrupt header (non-positive dimensions)");
  }
  if (layout->num_weights != static_cast<uint64_t>(kNumDiffusionWeights)) {
    return Status::InvalidArgument(
        StrFormat("model artifact: %llu diffusion weights, expected %d",
                  static_cast<unsigned long long>(layout->num_weights),
                  kNumDiffusionWeights));
  }
  const uint32_t alignment = layout->section_alignment;
  if (alignment < 8 || alignment > kV3MaxAlignment ||
      (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument(StrFormat(
        "model artifact: section alignment %u is not a power of two in "
        "[8, %u]",
        alignment, kV3MaxAlignment));
  }
  if (section_count < 1 || section_count > kV3MaxSections) {
    return Status::InvalidArgument(
        StrFormat("model artifact: implausible section count %u",
                  section_count));
  }
  const size_t table_end =
      kV3FixedHeaderBytes + section_count * kV3TableEntryBytes;
  if (table_end > size) {
    return Status::OutOfRange(StrFormat(
        "model artifact: truncated section table (%u sections need %zu "
        "bytes, file has %zu)",
        section_count, table_end, size));
  }
  if (HeaderChecksum(data, table_end) != stored_checksum) {
    return Status::InvalidArgument(
        "model artifact: header checksum mismatch (corrupt header or "
        "section table)");
  }

  for (uint32_t i = 0; i <= kArtifactSectionMax; ++i) {
    layout->sections[i] = ArtifactV3Layout::Extent{};
  }
  struct Placed {
    uint64_t offset;
    uint64_t end;
    uint32_t id;
  };
  std::vector<Placed> placed;
  placed.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t entry = kV3FixedHeaderBytes + i * kV3TableEntryBytes;
    const uint32_t id = ReadAt<uint32_t>(data, entry);
    const uint32_t reserved = ReadAt<uint32_t>(data, entry + 4);
    const uint64_t offset = ReadAt<uint64_t>(data, entry + 8);
    const uint64_t length = ReadAt<uint64_t>(data, entry + 16);
    if (id < 1 || id > kArtifactSectionMax) {
      return Status::InvalidArgument(
          StrFormat("model artifact: unknown section id %u", id));
    }
    const char* name = ArtifactSectionName(id);
    if (reserved != 0) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: section %s has a nonzero reserved field", name));
    }
    if (layout->sections[id].offset != 0) {
      return Status::InvalidArgument(
          StrFormat("model artifact: duplicate section %s", name));
    }
    if (offset % alignment != 0) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: section %s misaligned (offset %llu, alignment "
          "%u)",
          name, static_cast<unsigned long long>(offset), alignment));
    }
    if (offset < table_end) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: section %s overlaps the header/section table "
          "(offset %llu)",
          name, static_cast<unsigned long long>(offset)));
    }
    if (offset > size || length > size - offset) {
      return Status::OutOfRange(StrFormat(
          "model artifact: section %s out of bounds (offset %llu + %llu "
          "bytes > file size %zu)",
          name, static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(length), size));
    }
    layout->sections[id] = ArtifactV3Layout::Extent{offset, length};
    placed.push_back(Placed{offset, offset + length, id});
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < placed.size(); ++i) {
    if (placed[i - 1].end > placed[i].offset) {
      return Status::InvalidArgument(
          StrFormat("model artifact: sections %s and %s overlap",
                    ArtifactSectionName(placed[i - 1].id),
                    ArtifactSectionName(placed[i].id)));
    }
  }
  const uint64_t last_end = placed.empty() ? table_end : placed.back().end;
  if (last_end != size) {
    return Status::OutOfRange(StrFormat(
        "model artifact: %llu trailing bytes after the last section",
        static_cast<unsigned long long>(size - last_end)));
  }

  for (uint32_t id = 1; id <= kArtifactSectionMax; ++id) {
    const bool required =
        id <= static_cast<uint32_t>(ArtifactSection::kEtaAgg) ||
        layout->has_derived();
    const bool present = layout->sections[id].offset != 0;
    if (required && !present) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: missing section %s", ArtifactSectionName(id)));
    }
    if (!required && present) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: section %s present but derived_top_k is 0",
          ArtifactSectionName(id)));
    }
  }

  for (uint32_t id = 1; id <= kArtifactSectionMax; ++id) {
    if (layout->sections[id].offset == 0) continue;
    if (id == static_cast<uint32_t>(ArtifactSection::kVocab)) continue;
    const uint128_t expected =
        SectionExpectedBytes(static_cast<ArtifactSection>(id), *layout);
    if (static_cast<uint128_t>(layout->sections[id].length) != expected) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: section %s has %llu bytes, dims imply %llu",
          ArtifactSectionName(id),
          static_cast<unsigned long long>(layout->sections[id].length),
          static_cast<unsigned long long>(
              expected > ~0ull ? ~0ull : static_cast<uint64_t>(expected))));
    }
  }

  // Vocabulary internals: count must be 0 or |W| and the entries must pack
  // the section exactly.
  {
    const auto& vocab = layout->sections[static_cast<uint32_t>(
        ArtifactSection::kVocab)];
    if (vocab.length < sizeof(uint64_t)) {
      return Status::OutOfRange(
          "model artifact: truncated vocabulary section");
    }
    const uint64_t count = ReadAt<uint64_t>(data + vocab.offset, 0);
    if (count != 0 && count != layout->vocab_size) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: vocabulary section has %llu words, header says "
          "|W|=%llu",
          static_cast<unsigned long long>(count),
          static_cast<unsigned long long>(layout->vocab_size)));
    }
    uint64_t cursor = sizeof(uint64_t);
    for (uint64_t i = 0; i < count; ++i) {
      if (cursor + sizeof(uint32_t) > vocab.length) {
        return Status::OutOfRange(
            "model artifact: truncated vocabulary section");
      }
      const uint32_t word_length =
          ReadAt<uint32_t>(data + vocab.offset, cursor);
      cursor += sizeof(uint32_t);
      if (word_length > vocab.length || cursor + word_length > vocab.length ||
          cursor + word_length + sizeof(int64_t) > vocab.length) {
        return Status::OutOfRange(
            "model artifact: truncated vocabulary section");
      }
      cursor += word_length + sizeof(int64_t);
    }
    if (cursor != vocab.length) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: %llu trailing bytes in the vocabulary section",
          static_cast<unsigned long long>(vocab.length - cursor)));
    }
    layout->vocab_count = count;
  }

  // Derived-structure internals: every id a query would chase must resolve,
  // so a corrupt stored structure is a load error, not an out-of-bounds
  // read at serve time.
  if (layout->has_derived()) {
    const uint64_t k = static_cast<uint64_t>(layout->effective_top_k());
    const uint64_t total = layout->num_users * k;
    const uint64_t* offsets = reinterpret_cast<const uint64_t*>(
        data +
        layout->sections[static_cast<uint32_t>(ArtifactSection::kMemberOffsets)]
            .offset);
    const size_t c_count = static_cast<size_t>(layout->num_communities);
    if (offsets[0] != 0 || offsets[c_count] != total) {
      return Status::InvalidArgument(
          "model artifact: section member_offsets corrupt (does not span "
          "the postings)");
    }
    for (size_t c = 0; c < c_count; ++c) {
      if (offsets[c] > offsets[c + 1]) {
        return Status::InvalidArgument(StrFormat(
            "model artifact: section member_offsets corrupt (offset %zu "
            "decreases)",
            c));
      }
    }
    const int32_t* topk = reinterpret_cast<const int32_t*>(
        data + layout->sections[static_cast<uint32_t>(
                                    ArtifactSection::kTopkCommunities)]
                   .offset);
    for (uint64_t i = 0; i < total; ++i) {
      if (topk[i] < 0 || topk[i] >= layout->num_communities) {
        return Status::InvalidArgument(StrFormat(
            "model artifact: section topk_communities corrupt (entry %llu "
            "is community %d, |C|=%d)",
            static_cast<unsigned long long>(i), topk[i],
            layout->num_communities));
      }
    }
    const int32_t* members = reinterpret_cast<const int32_t*>(
        data +
        layout->sections[static_cast<uint32_t>(ArtifactSection::kMembers)]
            .offset);
    for (uint64_t i = 0; i < total; ++i) {
      if (members[i] < 0 ||
          static_cast<uint64_t>(members[i]) >= layout->num_users) {
        return Status::InvalidArgument(StrFormat(
            "model artifact: section members corrupt (entry %llu is user "
            "%d, |U|=%llu)",
            static_cast<unsigned long long>(i), members[i],
            static_cast<unsigned long long>(layout->num_users)));
      }
    }
  }
  return Status::OK();
}

namespace {

uint128_t SectionExpectedBytes(ArtifactSection id,
                               const ArtifactV3Layout& layout) {
  const uint128_t kc = static_cast<uint128_t>(layout.num_communities);
  const uint128_t kz = static_cast<uint128_t>(layout.num_topics);
  const uint128_t kt = static_cast<uint128_t>(layout.num_time_bins);
  const uint128_t ku = static_cast<uint128_t>(layout.num_users);
  const uint128_t kw = static_cast<uint128_t>(layout.vocab_size);
  const uint128_t k = static_cast<uint128_t>(layout.effective_top_k());
  switch (id) {
    case ArtifactSection::kPi:
      return ku * kc * sizeof(double);
    case ArtifactSection::kTheta:
      return kc * kz * sizeof(double);
    case ArtifactSection::kPhi:
      return kz * kw * sizeof(double);
    case ArtifactSection::kEta:
      return kc * kc * kz * sizeof(double);
    case ArtifactSection::kWeights:
      return static_cast<uint128_t>(layout.num_weights) * sizeof(double);
    case ArtifactSection::kPopularity:
      return kt * kz * sizeof(double);
    case ArtifactSection::kVocab:
      return 0;  // Validated by the internal walk instead.
    case ArtifactSection::kEtaAgg:
      return kc * kc * sizeof(double);
    case ArtifactSection::kTopkCommunities:
      return ku * k * sizeof(int32_t);
    case ArtifactSection::kTopkWeights:
      return ku * k * sizeof(double);
    case ArtifactSection::kMemberOffsets:
      return (kc + 1) * sizeof(uint64_t);
    case ArtifactSection::kMembers:
      return ku * k * sizeof(int32_t);
    case ArtifactSection::kMemberWeights:
      return ku * k * sizeof(double);
  }
  return 0;
}

StatusOr<ModelArtifact> DecodeV3(const std::string& bytes) {
  ArtifactV3Layout layout;
  CPD_RETURN_IF_ERROR(ParseV3Layout(bytes.data(), bytes.size(), &layout));
  ModelArtifact artifact;
  artifact.num_communities = layout.num_communities;
  artifact.num_topics = layout.num_topics;
  artifact.num_users = layout.num_users;
  artifact.vocab_size = layout.vocab_size;
  artifact.num_time_bins = layout.num_time_bins;
  artifact.generation = layout.generation;
  const auto copy_doubles = [&](ArtifactSection id, std::vector<double>* out) {
    const auto& extent = layout.sections[static_cast<uint32_t>(id)];
    out->resize(static_cast<size_t>(extent.length / sizeof(double)));
    std::memcpy(out->data(), bytes.data() + extent.offset,
                static_cast<size_t>(extent.length));
  };
  copy_doubles(ArtifactSection::kPi, &artifact.pi);
  copy_doubles(ArtifactSection::kTheta, &artifact.theta);
  copy_doubles(ArtifactSection::kPhi, &artifact.phi);
  copy_doubles(ArtifactSection::kEta, &artifact.eta);
  copy_doubles(ArtifactSection::kWeights, &artifact.weights);
  copy_doubles(ArtifactSection::kPopularity, &artifact.popularity);
  // The derived sections (eta_agg, top-k, postings) are intentionally not
  // surfaced: the heap path rebuilds them from the estimates, which is the
  // reference the stored ones are differentially tested against.
  if (layout.vocab_count != 0) {
    const auto& vocab =
        layout.sections[static_cast<uint32_t>(ArtifactSection::kVocab)];
    CPD_RETURN_IF_ERROR(ParseVocabSection(
        bytes.data() + vocab.offset, vocab.length, &artifact.vocab_words,
        &artifact.vocab_frequencies));
  }
  CPD_RETURN_IF_ERROR(artifact.Validate());
  return artifact;
}

/// Names the first sequential-format section that does not fit in
/// `remaining_doubles` (v1/v2 truncation diagnostics).
const char* FirstTruncatedLegacySection(const ModelArtifact& artifact,
                                        uint64_t num_weights,
                                        uint128_t remaining_doubles) {
  const uint128_t kc = static_cast<uint128_t>(artifact.num_communities);
  const uint128_t kz = static_cast<uint128_t>(artifact.num_topics);
  const uint128_t kt = static_cast<uint128_t>(artifact.num_time_bins);
  const struct {
    const char* name;
    uint128_t doubles;
  } sections[] = {
      {"pi", static_cast<uint128_t>(artifact.num_users) * kc},
      {"theta", kc * kz},
      {"phi", kz * artifact.vocab_size},
      {"eta", kc * kc * kz},
      {"weights", static_cast<uint128_t>(num_weights)},
      {"popularity", kt * kz},
  };
  uint128_t used = 0;
  for (const auto& section : sections) {
    used += section.doubles;
    if (used > remaining_doubles) return section.name;
  }
  return "body";
}

}  // namespace

StatusOr<ModelArtifact> DecodeModelArtifact(const std::string& bytes) {
  if (!LooksLikeModelArtifact(bytes)) {
    return Status::InvalidArgument("not a CPD binary model artifact");
  }
  ByteReader reader(bytes);
  char magic[sizeof(kModelArtifactMagic)];
  reader.Read(&magic);  // Cannot fail: LooksLikeModelArtifact checked length.

  uint32_t version = 0;
  uint32_t endian_tag = 0;
  ModelArtifact artifact;
  uint64_t num_weights = 0;
  if (!reader.Read(&version) || !reader.Read(&endian_tag)) {
    return Status::OutOfRange("model artifact: truncated header");
  }
  if (version < kModelArtifactMinVersion || version > kModelArtifactVersion) {
    return Status::Unimplemented(
        StrFormat("model artifact: version %u not supported (reader "
                  "understands versions %u..%u)",
                  version, kModelArtifactMinVersion, kModelArtifactVersion));
  }
  if (endian_tag != kModelArtifactEndianTag) {
    return Status::InvalidArgument(
        "model artifact: foreign byte order (written on an incompatible "
        "host)");
  }
  if (version >= 3) return DecodeV3(bytes);
  if (!reader.Read(&artifact.num_communities) ||
      !reader.Read(&artifact.num_topics) || !reader.Read(&artifact.num_users) ||
      !reader.Read(&artifact.vocab_size) ||
      !reader.Read(&artifact.num_time_bins) || !reader.Read(&num_weights)) {
    return Status::OutOfRange("model artifact: truncated header");
  }
  if (artifact.num_communities < 1 || artifact.num_topics < 1 ||
      artifact.num_time_bins < 1) {
    return Status::InvalidArgument(
        "model artifact: corrupt header (non-positive dimensions)");
  }
  // Reject absurd headers before sizing any allocation against them: every
  // matrix must fit in the bytes that actually follow. The products are
  // accumulated in 128 bits so a crafted header cannot wrap the check (each
  // factor fits in 64 bits, so no term overflows 128).
  const size_t kc = static_cast<size_t>(artifact.num_communities);
  const size_t kz = static_cast<size_t>(artifact.num_topics);
  const size_t kt = static_cast<size_t>(artifact.num_time_bins);
  const uint128_t total_doubles =
      static_cast<uint128_t>(artifact.num_users) * kc +
      static_cast<uint128_t>(kc) * kz +
      static_cast<uint128_t>(kz) * artifact.vocab_size +
      static_cast<uint128_t>(kc) * kc * kz +
      static_cast<uint128_t>(num_weights) + static_cast<uint128_t>(kt) * kz;
  if (total_doubles > reader.remaining() / sizeof(double)) {
    return Status::OutOfRange(StrFormat(
        "model artifact: truncated in section %s (%zu bytes left, header "
        "needs %llu doubles)",
        FirstTruncatedLegacySection(artifact, num_weights,
                                    reader.remaining() / sizeof(double)),
        reader.remaining(),
        static_cast<unsigned long long>(
            total_doubles > ~0ull ? ~0ull
                                  : static_cast<uint64_t>(total_doubles))));
  }
  reader.ReadDoubles(artifact.num_users * kc, &artifact.pi);
  reader.ReadDoubles(kc * kz, &artifact.theta);
  reader.ReadDoubles(kz * artifact.vocab_size, &artifact.phi);
  reader.ReadDoubles(kc * kc * kz, &artifact.eta);
  reader.ReadDoubles(static_cast<size_t>(num_weights), &artifact.weights);
  reader.ReadDoubles(kt * kz, &artifact.popularity);
  if (version >= 2) {
    uint64_t vocab_count = 0;
    if (!reader.Read(&vocab_count)) {
      return Status::OutOfRange("model artifact: truncated vocabulary section");
    }
    if (vocab_count != 0 && vocab_count != artifact.vocab_size) {
      return Status::InvalidArgument(StrFormat(
          "model artifact: vocabulary section has %llu words, header says "
          "|W|=%llu",
          static_cast<unsigned long long>(vocab_count),
          static_cast<unsigned long long>(artifact.vocab_size)));
    }
    artifact.vocab_words.reserve(static_cast<size_t>(vocab_count));
    artifact.vocab_frequencies.reserve(static_cast<size_t>(vocab_count));
    for (uint64_t i = 0; i < vocab_count; ++i) {
      uint32_t length = 0;
      std::string word;
      int64_t frequency = 0;
      if (!reader.Read(&length) || !reader.ReadString(length, &word) ||
          !reader.Read(&frequency)) {
        return Status::OutOfRange(
            "model artifact: truncated vocabulary section");
      }
      artifact.vocab_words.push_back(std::move(word));
      artifact.vocab_frequencies.push_back(frequency);
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "model artifact: %zu trailing bytes after the last section",
        reader.remaining()));
  }
  CPD_RETURN_IF_ERROR(artifact.Validate());
  return artifact;
}

Status WriteModelArtifact(const std::string& path,
                          const ModelArtifact& artifact,
                          const ArtifactWriteOptions& options) {
  auto encoded = EncodeModelArtifact(artifact, options);
  if (!encoded.ok()) return encoded.status();
  return WriteStringToFile(path, *encoded);
}

StatusOr<ModelArtifact> ReadModelArtifact(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  auto decoded = DecodeModelArtifact(*contents);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

bool LooksLikeModelArtifact(const std::string& bytes) {
  return bytes.size() >= sizeof(kModelArtifactMagic) &&
         std::memcmp(bytes.data(), kModelArtifactMagic,
                     sizeof(kModelArtifactMagic)) == 0;
}

// ----- MappedModelArtifact -----

StatusOr<std::shared_ptr<const MappedModelArtifact>> MappedModelArtifact::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open model artifact: " + path);
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat model artifact: " + path);
  }
  const size_t size = static_cast<size_t>(info.st_size);
  if (size < sizeof(kModelArtifactMagic)) {
    ::close(fd);
    return Status::InvalidArgument("not a CPD binary model artifact: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for model artifact: " + path);
  }
  const char* data = static_cast<const char*>(base);
  const auto fail = [&](Status status) {
    ::munmap(base, size);
    return Status(status.code(), status.message() + ": " + path);
  };
  if (std::memcmp(data, kModelArtifactMagic, sizeof(kModelArtifactMagic)) !=
      0) {
    return fail(Status::InvalidArgument("not a CPD binary model artifact"));
  }
  if (size < 16) {
    return fail(Status::OutOfRange("model artifact: truncated header"));
  }
  const uint32_t version = ReadAt<uint32_t>(data, 8);
  const uint32_t endian_tag = ReadAt<uint32_t>(data, 12);
  if (version < kModelArtifactMinVersion ||
      version > kModelArtifactVersion) {
    return fail(Status::Unimplemented(
        StrFormat("model artifact: version %u not supported (reader "
                  "understands versions %u..%u)",
                  version, kModelArtifactMinVersion, kModelArtifactVersion)));
  }
  if (endian_tag != kModelArtifactEndianTag) {
    return fail(Status::InvalidArgument(
        "model artifact: foreign byte order (written on an incompatible "
        "host)"));
  }
  if (version < 3) {
    return fail(Status::FailedPrecondition(StrFormat(
        "model artifact: version %u has no mmap layout; load it on the heap "
        "(load_mode=heap) or re-save it as v3",
        version)));
  }
  auto mapped = std::shared_ptr<MappedModelArtifact>(new MappedModelArtifact());
  mapped->path_ = path;
  mapped->data_ = data;
  mapped->size_ = size;
  const Status parsed = ParseV3Layout(data, size, &mapped->layout_);
  if (!parsed.ok()) {
    // The shared_ptr destructor unmaps.
    return Status(parsed.code(), parsed.message() + ": " + path);
  }
  mapped->vocab_count_ = mapped->layout_.vocab_count;
  return std::shared_ptr<const MappedModelArtifact>(std::move(mapped));
}

MappedModelArtifact::~MappedModelArtifact() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

std::span<const int32_t> MappedModelArtifact::topk_communities() const {
  return {reinterpret_cast<const int32_t*>(
              SectionData(ArtifactSection::kTopkCommunities)),
          static_cast<size_t>(
              SectionLength(ArtifactSection::kTopkCommunities) /
              sizeof(int32_t))};
}

std::span<const uint64_t> MappedModelArtifact::member_offsets() const {
  return {reinterpret_cast<const uint64_t*>(
              SectionData(ArtifactSection::kMemberOffsets)),
          static_cast<size_t>(SectionLength(ArtifactSection::kMemberOffsets) /
                              sizeof(uint64_t))};
}

std::span<const int32_t> MappedModelArtifact::members() const {
  return {
      reinterpret_cast<const int32_t*>(SectionData(ArtifactSection::kMembers)),
      static_cast<size_t>(SectionLength(ArtifactSection::kMembers) /
                          sizeof(int32_t))};
}

Status MappedModelArtifact::BuildVocabulary(Vocabulary* out) const {
  if (!has_vocabulary()) {
    return Status::FailedPrecondition(
        "model artifact carries no bundled vocabulary (v1 file, or saved "
        "without one)");
  }
  std::vector<std::string> words;
  std::vector<int64_t> frequencies;
  CPD_RETURN_IF_ERROR(ParseVocabSection(
      SectionData(ArtifactSection::kVocab),
      SectionLength(ArtifactSection::kVocab), &words, &frequencies));
  return VocabularyFromWords(words, frequencies, out);
}

ModelArtifact MappedModelArtifact::Materialize() const {
  ModelArtifact artifact;
  artifact.num_communities = layout_.num_communities;
  artifact.num_topics = layout_.num_topics;
  artifact.num_users = layout_.num_users;
  artifact.vocab_size = layout_.vocab_size;
  artifact.num_time_bins = layout_.num_time_bins;
  artifact.generation = layout_.generation;
  const auto copy = [](std::span<const double> view) {
    return std::vector<double>(view.begin(), view.end());
  };
  artifact.pi = copy(pi());
  artifact.theta = copy(theta());
  artifact.phi = copy(phi());
  artifact.eta = copy(eta());
  artifact.weights = copy(weights());
  artifact.popularity = copy(popularity());
  if (has_vocabulary()) {
    // Open() validated the section, so the parse cannot fail.
    (void)ParseVocabSection(SectionData(ArtifactSection::kVocab),
                            SectionLength(ArtifactSection::kVocab),
                            &artifact.vocab_words,
                            &artifact.vocab_frequencies);
  }
  return artifact;
}

}  // namespace cpd
