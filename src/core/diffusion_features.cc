#include "core/diffusion_features.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cpd {

LinkCaches::LinkCaches(const SocialGraph& graph) {
  const auto& links = graph.diffusion_links();
  features_.resize(links.size() * kNumUserFeatures);
  for (size_t e = 0; e < links.size(); ++e) {
    const UserId u = graph.document(links[e].i).user;
    const UserId v = graph.document(links[e].j).user;
    ComputePairFeatures(graph, u, v, features_.data() + e * kNumUserFeatures,
                        /*exclude_diffusions_u=*/1);
  }

  const size_t n = graph.num_users();
  const auto& flinks = graph.friendship_links();
  std::vector<int32_t> degree(n, 0);
  for (const FriendshipLink& link : flinks) {
    ++degree[static_cast<size_t>(link.u)];
    ++degree[static_cast<size_t>(link.v)];
  }
  user_flink_offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    user_flink_offsets_[u + 1] = user_flink_offsets_[u] + degree[u];
  }
  user_flink_ids_.resize(static_cast<size_t>(user_flink_offsets_[n]));
  std::vector<int64_t> cursor(user_flink_offsets_.begin(),
                              user_flink_offsets_.end() - 1);
  for (size_t f = 0; f < flinks.size(); ++f) {
    user_flink_ids_[static_cast<size_t>(
        cursor[static_cast<size_t>(flinks[f].u)]++)] = static_cast<int32_t>(f);
    user_flink_ids_[static_cast<size_t>(
        cursor[static_cast<size_t>(flinks[f].v)]++)] = static_cast<int32_t>(f);
  }
}

void LinkCaches::ComputePairFeatures(const SocialGraph& graph, UserId u, UserId v,
                                     double* out4, int64_t exclude_diffusions_u) {
  UserActivity au = graph.activity(u);
  const UserActivity& av = graph.activity(v);
  au.diffusions = std::max<int64_t>(0, au.diffusions - exclude_diffusions_u);
  // Ratios are heavy-tailed; log keeps the logistic regression stable
  // (DESIGN.md §5).
  out4[0] = std::log(au.Popularity());
  out4[1] = std::log(au.Activeness());
  out4[2] = std::log(av.Popularity());
  out4[3] = std::log(av.Activeness());
}

PopularityTable::PopularityTable(int32_t num_time_bins, int num_topics,
                                 PopularityMode mode)
    : num_time_bins_(num_time_bins), num_topics_(num_topics), mode_(mode) {
  CPD_CHECK_GE(num_time_bins, 1);
  CPD_CHECK_GE(num_topics, 1);
  counts_.assign(static_cast<size_t>(num_time_bins) * static_cast<size_t>(num_topics),
                 0);
  values_.assign(counts_.size(), 0.0);
}

void PopularityTable::Refresh(const SocialGraph& graph,
                              std::span<const int32_t> doc_topics) {
  std::fill(counts_.begin(), counts_.end(), 0);
  for (const DiffusionLink& link : graph.diffusion_links()) {
    const int z = doc_topics[static_cast<size_t>(link.i)];
    CPD_DCHECK(z >= 0 && z < num_topics_);
    ++counts_[static_cast<size_t>(link.time) * static_cast<size_t>(num_topics_) +
              static_cast<size_t>(z)];
  }
  for (int32_t t = 0; t < num_time_bins_; ++t) {
    int64_t bin_total = 0;
    const size_t base = static_cast<size_t>(t) * static_cast<size_t>(num_topics_);
    for (int z = 0; z < num_topics_; ++z) bin_total += counts_[base + static_cast<size_t>(z)];
    for (int z = 0; z < num_topics_; ++z) {
      const int64_t count = counts_[base + static_cast<size_t>(z)];
      double value = 0.0;
      switch (mode_) {
        case PopularityMode::kRaw:
          value = static_cast<double>(count);
          break;
        case PopularityMode::kFraction:
          value = bin_total > 0
                      ? static_cast<double>(count) / static_cast<double>(bin_total)
                      : 0.0;
          break;
        case PopularityMode::kLog1p:
          value = std::log1p(static_cast<double>(count));
          break;
      }
      values_[base + static_cast<size_t>(z)] = value;
    }
  }
}

void PopularityTable::EncodeTo(WireWriter* writer) const {
  writer->I32(num_time_bins_);
  writer->I32(num_topics_);
  writer->U8(static_cast<uint8_t>(mode_));
  writer->Vec(counts_);
  writer->Vec(values_);
}

Status PopularityTable::DecodeFrom(WireReader* reader) {
  const int32_t time_bins = reader->I32();
  const int32_t topics = reader->I32();
  const uint8_t mode = reader->U8();
  std::vector<int64_t> counts;
  std::vector<double> values;
  reader->Vec(&counts);
  reader->Vec(&values);
  CPD_RETURN_IF_ERROR(reader->status());
  if (time_bins < 1 || topics < 1 || mode > static_cast<uint8_t>(PopularityMode::kLog1p)) {
    return Status::InvalidArgument("popularity table: bad header");
  }
  const size_t cells =
      static_cast<size_t>(time_bins) * static_cast<size_t>(topics);
  if (counts.size() != cells || values.size() != cells) {
    return Status::InvalidArgument("popularity table: size mismatch");
  }
  num_time_bins_ = time_bins;
  num_topics_ = topics;
  mode_ = static_cast<PopularityMode>(mode);
  counts_ = std::move(counts);
  values_ = std::move(values);
  return Status::OK();
}

}  // namespace cpd
