#ifndef CPD_CORE_ARTIFACT_DERIVED_H_
#define CPD_CORE_ARTIFACT_DERIVED_H_

/// \file artifact_derived.h
/// The canonical builder of the read-side structures derived from a trained
/// model's estimates: the topic-aggregated diffusion matrix sum_z eta, the
/// per-user top-k membership lists, and the per-community member postings.
/// Exactly one implementation exists so the three consumers can never
/// diverge bitwise:
///   - serve::ProfileIndex builds them at load time (the reference path);
///   - the v3 .cpdb encoder precomputes and *stores* them, so an mmap load
///     skips the O(U |C| log k) build entirely;
///   - the delta-apply path rebuilds them over a patched pi.
/// The orderings are load-bearing: top-k lists are (weight descending, id
/// ascending) partial sorts and postings are weight-sorted with ascending-id
/// ties, matching CpdModel::TopCommunities' convention, so a stored and a
/// rebuilt structure are bit-identical for the same estimates.

#include <cstdint>
#include <span>
#include <vector>

namespace cpd {

/// Parallel-array form of the derived structures (padding-free, so the v3
/// sections are raw dumps of these vectors).
struct ArtifactDerived {
  /// min(requested top_k, |C|); 0 when only eta_agg was requested.
  int32_t top_k = 0;

  std::vector<double> eta_agg;  ///< C x C, sum over topics.

  // Per-user top-k membership lists, U x top_k, weight-descending.
  std::vector<int32_t> topk_communities;
  std::vector<double> topk_weights;

  // Per-community postings: users assigned by the top-k convention, sorted
  // by descending pi_{u,c} (ties ascending id), with CSR offsets.
  std::vector<uint64_t> member_offsets;  ///< |C| + 1.
  std::vector<int32_t> members;          ///< U x top_k total entries.
  std::vector<double> member_weights;    ///< pi_{u,c} per posting entry.
};

/// Builds the derived structures from per-user pi row pointers (row u is
/// pi_rows[u][0..C)) and the flat eta tensor. Row pointers rather than one
/// flat span so a copy-on-write delta overlay (touched rows on the heap,
/// untouched rows in a shared mapping) reuses this builder unchanged.
/// top_k < 1 skips the membership/posting build (eta_agg only).
ArtifactDerived BuildArtifactDerived(const double* const* pi_rows,
                                     std::span<const double> eta,
                                     int num_communities, int num_topics,
                                     size_t num_users, int top_k);

/// Convenience overload over a flat row-major pi (U x C).
ArtifactDerived BuildArtifactDerived(std::span<const double> pi,
                                     std::span<const double> eta,
                                     int num_communities, int num_topics,
                                     size_t num_users, int top_k);

}  // namespace cpd

#endif  // CPD_CORE_ARTIFACT_DERIVED_H_
