#include "core/model_delta.h"

#include <algorithm>
#include <cstring>

#include "core/model_state.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace cpd {

namespace {

using uint128_t = unsigned __int128;

// 0  magic[8]                 52 u64 base_generation
// 8  u32 version              60 u64 generation
// 12 u32 endian tag           68 u64 base_num_users
// 16 i32 |C|                  76 u64 base_vocab_size
// 20 i32 |Z|                  84 u64 touched_user_count
// 24 u64 |U| (result)         92 u32 header_checksum
// 32 u64 |W| (result)
// 40 i32 T
// 44 u64 #weights
constexpr size_t kDeltaHeaderBytes = 96;
constexpr size_t kDeltaChecksumOffset = 92;

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendDoubles(std::string* out, const std::vector<double>& values) {
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(double));
}

template <typename T>
T ReadAt(const char* data, size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

uint32_t DeltaHeaderChecksum(const char* data) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < kDeltaHeaderBytes; ++i) {
    const unsigned char byte =
        (i >= kDeltaChecksumOffset &&
         i < kDeltaChecksumOffset + sizeof(uint32_t))
            ? 0u
            : static_cast<unsigned char>(data[i]);
    hash = (hash ^ byte) * 16777619u;
  }
  return hash;
}

class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes, size_t offset)
      : bytes_(bytes), offset_(offset) {}

  template <typename T>
  bool Read(T* value) {
    if (offset_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(size_t count, std::vector<double>* out) {
    const size_t bytes_needed = count * sizeof(double);
    if (offset_ + bytes_needed > bytes_.size()) return false;
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + offset_, bytes_needed);
    offset_ += bytes_needed;
    return true;
  }

  bool ReadString(size_t length, std::string* out) {
    if (offset_ + length > bytes_.size()) return false;
    out->assign(bytes_.data() + offset_, length);
    offset_ += length;
    return true;
  }

  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::string& bytes_;
  size_t offset_;
};

}  // namespace

Status ModelDelta::Validate() const {
  if (num_communities < 1 || num_topics < 1 || num_time_bins < 1) {
    return Status::InvalidArgument("model delta: non-positive dimensions");
  }
  if (weights.size() != static_cast<size_t>(kNumDiffusionWeights)) {
    return Status::InvalidArgument(
        StrFormat("model delta: %zu diffusion weights, expected %d",
                  weights.size(), kNumDiffusionWeights));
  }
  if (base_num_users > num_users) {
    return Status::InvalidArgument(StrFormat(
        "model delta: base has %llu users but result has %llu (users never "
        "leave a lineage)",
        static_cast<unsigned long long>(base_num_users),
        static_cast<unsigned long long>(num_users)));
  }
  if (base_vocab_size > vocab_size) {
    return Status::InvalidArgument(StrFormat(
        "model delta: base has %llu words but result has %llu (vocabulary "
        "ids are append-only)",
        static_cast<unsigned long long>(base_vocab_size),
        static_cast<unsigned long long>(vocab_size)));
  }
  const size_t kc = static_cast<size_t>(num_communities);
  const size_t kz = static_cast<size_t>(num_topics);
  const size_t kt = static_cast<size_t>(num_time_bins);
  const auto check = [](size_t actual, size_t expected, const char* name) {
    if (actual != expected) {
      return Status::InvalidArgument(
          StrFormat("model delta: %s has %zu entries, header implies %zu",
                    name, actual, expected));
    }
    return Status::OK();
  };
  CPD_RETURN_IF_ERROR(
      check(touched_pi.size(), touched_users.size() * kc, "touched pi"));
  CPD_RETURN_IF_ERROR(check(theta.size(), kc * kz, "theta"));
  CPD_RETURN_IF_ERROR(check(phi.size(), kz * vocab_size, "phi"));
  CPD_RETURN_IF_ERROR(check(eta.size(), kc * kc * kz, "eta"));
  CPD_RETURN_IF_ERROR(check(popularity.size(), kt * kz, "popularity"));
  uint64_t previous = 0;
  bool first = true;
  size_t new_users_touched = 0;
  for (const uint64_t user : touched_users) {
    if (!first && user <= previous) {
      return Status::InvalidArgument(
          "model delta: touched user ids are not strictly increasing");
    }
    if (user >= num_users) {
      return Status::InvalidArgument(StrFormat(
          "model delta: touched user %llu out of range (|U|=%llu)",
          static_cast<unsigned long long>(user),
          static_cast<unsigned long long>(num_users)));
    }
    if (user >= base_num_users) ++new_users_touched;
    previous = user;
    first = false;
  }
  if (new_users_touched != num_users - base_num_users) {
    return Status::InvalidArgument(StrFormat(
        "model delta: %llu users are new in this generation but only %zu "
        "of their pi rows are shipped",
        static_cast<unsigned long long>(num_users - base_num_users),
        new_users_touched));
  }
  if (has_vocabulary()) {
    CPD_RETURN_IF_ERROR(check(vocab_frequencies.size(), vocab_size,
                              "vocabulary frequencies"));
    CPD_RETURN_IF_ERROR(
        check(appended_words.size(),
              static_cast<size_t>(vocab_size - base_vocab_size),
              "appended words"));
  } else if (!appended_words.empty()) {
    return Status::InvalidArgument(
        "model delta: appended words without a frequency table");
  }
  return Status::OK();
}

StatusOr<std::string> EncodeModelDelta(const ModelDelta& delta) {
  CPD_RETURN_IF_ERROR(delta.Validate());
  std::string out;
  out.reserve(kDeltaHeaderBytes +
              delta.touched_users.size() * sizeof(uint64_t) +
              (delta.touched_pi.size() + delta.theta.size() +
               delta.phi.size() + delta.eta.size() + delta.weights.size() +
               delta.popularity.size()) *
                  sizeof(double));
  out.append(kModelDeltaMagic, sizeof(kModelDeltaMagic));
  AppendRaw(&out, kModelDeltaVersion);
  AppendRaw(&out, kModelArtifactEndianTag);
  AppendRaw(&out, delta.num_communities);
  AppendRaw(&out, delta.num_topics);
  AppendRaw(&out, delta.num_users);
  AppendRaw(&out, delta.vocab_size);
  AppendRaw(&out, delta.num_time_bins);
  AppendRaw(&out, static_cast<uint64_t>(delta.weights.size()));
  AppendRaw(&out, delta.base_generation);
  AppendRaw(&out, delta.generation);
  AppendRaw(&out, delta.base_num_users);
  AppendRaw(&out, delta.base_vocab_size);
  AppendRaw(&out, static_cast<uint64_t>(delta.touched_users.size()));
  AppendRaw(&out, uint32_t{0});  // Checksum, patched below.
  uint32_t checksum = DeltaHeaderChecksum(out.data());
  std::memcpy(out.data() + kDeltaChecksumOffset, &checksum, sizeof(checksum));
  for (const uint64_t user : delta.touched_users) AppendRaw(&out, user);
  AppendDoubles(&out, delta.touched_pi);
  AppendDoubles(&out, delta.theta);
  AppendDoubles(&out, delta.phi);
  AppendDoubles(&out, delta.eta);
  AppendDoubles(&out, delta.weights);
  AppendDoubles(&out, delta.popularity);
  AppendRaw(&out, static_cast<uint64_t>(delta.appended_words.size()));
  for (const std::string& word : delta.appended_words) {
    AppendRaw(&out, static_cast<uint32_t>(word.size()));
    out.append(word);
  }
  AppendRaw(&out, static_cast<uint64_t>(delta.vocab_frequencies.size()));
  for (const int64_t frequency : delta.vocab_frequencies) {
    AppendRaw(&out, frequency);
  }
  return out;
}

StatusOr<ModelDelta> DecodeModelDelta(const std::string& bytes) {
  if (!LooksLikeModelDelta(bytes)) {
    return Status::InvalidArgument("not a CPD model delta");
  }
  if (bytes.size() < kDeltaHeaderBytes) {
    return Status::OutOfRange(StrFormat(
        "model delta: truncated header (%zu bytes, need %zu)", bytes.size(),
        kDeltaHeaderBytes));
  }
  const char* data = bytes.data();
  const uint32_t version = ReadAt<uint32_t>(data, 8);
  if (version > kModelDeltaVersion || version < 1) {
    return Status::Unimplemented(
        StrFormat("model delta: version %u not supported (reader "
                  "understands versions 1..%u)",
                  version, kModelDeltaVersion));
  }
  if (ReadAt<uint32_t>(data, 12) != kModelArtifactEndianTag) {
    return Status::InvalidArgument(
        "model delta: foreign byte order (written on an incompatible host)");
  }
  if (DeltaHeaderChecksum(data) != ReadAt<uint32_t>(data, kDeltaChecksumOffset)) {
    return Status::InvalidArgument(
        "model delta: header checksum mismatch (corrupt header)");
  }
  ModelDelta delta;
  delta.num_communities = ReadAt<int32_t>(data, 16);
  delta.num_topics = ReadAt<int32_t>(data, 20);
  delta.num_users = ReadAt<uint64_t>(data, 24);
  delta.vocab_size = ReadAt<uint64_t>(data, 32);
  delta.num_time_bins = ReadAt<int32_t>(data, 40);
  const uint64_t num_weights = ReadAt<uint64_t>(data, 44);
  delta.base_generation = ReadAt<uint64_t>(data, 52);
  delta.generation = ReadAt<uint64_t>(data, 60);
  delta.base_num_users = ReadAt<uint64_t>(data, 68);
  delta.base_vocab_size = ReadAt<uint64_t>(data, 76);
  const uint64_t touched_count = ReadAt<uint64_t>(data, 84);

  if (delta.num_communities < 1 || delta.num_topics < 1 ||
      delta.num_time_bins < 1) {
    return Status::InvalidArgument(
        "model delta: corrupt header (non-positive dimensions)");
  }
  if (num_weights != static_cast<uint64_t>(kNumDiffusionWeights)) {
    return Status::InvalidArgument(
        StrFormat("model delta: %llu diffusion weights, expected %d",
                  static_cast<unsigned long long>(num_weights),
                  kNumDiffusionWeights));
  }
  if (touched_count > delta.num_users) {
    return Status::InvalidArgument(StrFormat(
        "model delta: %llu touched users but |U|=%llu",
        static_cast<unsigned long long>(touched_count),
        static_cast<unsigned long long>(delta.num_users)));
  }
  // Bound every matrix against the bytes that actually follow before sizing
  // any allocation (128-bit accumulation so a crafted header cannot wrap).
  const size_t kc = static_cast<size_t>(delta.num_communities);
  const size_t kz = static_cast<size_t>(delta.num_topics);
  const size_t kt = static_cast<size_t>(delta.num_time_bins);
  const uint128_t body_doubles =
      static_cast<uint128_t>(touched_count) * kc +
      static_cast<uint128_t>(kc) * kz +
      static_cast<uint128_t>(kz) * delta.vocab_size +
      static_cast<uint128_t>(kc) * kc * kz +
      static_cast<uint128_t>(num_weights) + static_cast<uint128_t>(kt) * kz;
  const uint128_t body_bytes =
      static_cast<uint128_t>(touched_count) * sizeof(uint64_t) +
      body_doubles * sizeof(double);
  if (body_bytes > bytes.size() - kDeltaHeaderBytes) {
    return Status::OutOfRange(StrFormat(
        "model delta: truncated body (%zu bytes left, header needs %llu)",
        bytes.size() - kDeltaHeaderBytes,
        static_cast<unsigned long long>(
            body_bytes > ~0ull ? ~0ull : static_cast<uint64_t>(body_bytes))));
  }
  ByteReader reader(bytes, kDeltaHeaderBytes);
  delta.touched_users.resize(static_cast<size_t>(touched_count));
  for (uint64_t& user : delta.touched_users) reader.Read(&user);
  reader.ReadDoubles(static_cast<size_t>(touched_count) * kc,
                     &delta.touched_pi);
  reader.ReadDoubles(kc * kz, &delta.theta);
  reader.ReadDoubles(kz * delta.vocab_size, &delta.phi);
  reader.ReadDoubles(kc * kc * kz, &delta.eta);
  reader.ReadDoubles(static_cast<size_t>(num_weights), &delta.weights);
  reader.ReadDoubles(kt * kz, &delta.popularity);

  uint64_t appended_count = 0;
  if (!reader.Read(&appended_count)) {
    return Status::OutOfRange("model delta: truncated vocabulary section");
  }
  if (appended_count > delta.vocab_size - delta.base_vocab_size &&
      delta.vocab_size >= delta.base_vocab_size) {
    return Status::InvalidArgument(StrFormat(
        "model delta: %llu appended words but the vocabulary grew by %llu",
        static_cast<unsigned long long>(appended_count),
        static_cast<unsigned long long>(delta.vocab_size -
                                        delta.base_vocab_size)));
  }
  delta.appended_words.reserve(static_cast<size_t>(
      std::min<uint64_t>(appended_count, reader.remaining() / 4 + 1)));
  for (uint64_t i = 0; i < appended_count; ++i) {
    uint32_t length = 0;
    std::string word;
    if (!reader.Read(&length) || !reader.ReadString(length, &word)) {
      return Status::OutOfRange("model delta: truncated vocabulary section");
    }
    delta.appended_words.push_back(std::move(word));
  }
  uint64_t frequency_count = 0;
  if (!reader.Read(&frequency_count)) {
    return Status::OutOfRange("model delta: truncated vocabulary section");
  }
  if (frequency_count != 0 && frequency_count != delta.vocab_size) {
    return Status::InvalidArgument(StrFormat(
        "model delta: frequency table has %llu entries, header says "
        "|W|=%llu",
        static_cast<unsigned long long>(frequency_count),
        static_cast<unsigned long long>(delta.vocab_size)));
  }
  if (frequency_count * sizeof(int64_t) > reader.remaining()) {
    return Status::OutOfRange("model delta: truncated vocabulary section");
  }
  delta.vocab_frequencies.resize(static_cast<size_t>(frequency_count));
  for (int64_t& frequency : delta.vocab_frequencies) reader.Read(&frequency);
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "model delta: %zu trailing bytes after the last section",
        reader.remaining()));
  }
  CPD_RETURN_IF_ERROR(delta.Validate());
  return delta;
}

Status WriteModelDelta(const std::string& path, const ModelDelta& delta) {
  auto encoded = EncodeModelDelta(delta);
  if (!encoded.ok()) return encoded.status();
  return WriteStringToFile(path, *encoded);
}

StatusOr<ModelDelta> ReadModelDelta(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  auto decoded = DecodeModelDelta(*contents);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

bool LooksLikeModelDelta(const std::string& bytes) {
  return bytes.size() >= sizeof(kModelDeltaMagic) &&
         std::memcmp(bytes.data(), kModelDeltaMagic,
                     sizeof(kModelDeltaMagic)) == 0;
}

StatusOr<ModelDelta> BuildModelDelta(const ModelArtifact& base,
                                     const ModelArtifact& target) {
  CPD_RETURN_IF_ERROR(base.Validate());
  CPD_RETURN_IF_ERROR(target.Validate());
  if (base.num_communities != target.num_communities ||
      base.num_topics != target.num_topics ||
      base.num_time_bins != target.num_time_bins) {
    return Status::InvalidArgument(
        "model delta: base and target disagree on |C|/|Z|/T (not one "
        "lineage)");
  }
  if (target.num_users < base.num_users) {
    return Status::InvalidArgument(
        "model delta: target has fewer users than base (users never leave a "
        "lineage)");
  }
  if (target.vocab_size < base.vocab_size) {
    return Status::InvalidArgument(
        "model delta: target vocabulary is smaller than base (word ids are "
        "append-only)");
  }
  if (target.has_vocabulary() && base.has_vocabulary()) {
    for (size_t w = 0; w < base.vocab_words.size(); ++w) {
      if (base.vocab_words[w] != target.vocab_words[w]) {
        return Status::InvalidArgument(StrFormat(
            "model delta: word id %zu is '%s' in base but '%s' in target "
            "(word ids are append-only)",
            w, base.vocab_words[w].c_str(), target.vocab_words[w].c_str()));
      }
    }
  }
  ModelDelta delta;
  delta.num_communities = target.num_communities;
  delta.num_topics = target.num_topics;
  delta.num_users = target.num_users;
  delta.vocab_size = target.vocab_size;
  delta.num_time_bins = target.num_time_bins;
  delta.base_generation = base.generation;
  delta.generation = target.generation;
  delta.base_num_users = base.num_users;
  delta.base_vocab_size = base.vocab_size;
  const size_t kc = static_cast<size_t>(target.num_communities);
  for (uint64_t u = 0; u < target.num_users; ++u) {
    const double* target_row = target.pi.data() + u * kc;
    const bool is_new = u >= base.num_users;
    const bool changed =
        is_new || std::memcmp(base.pi.data() + u * kc, target_row,
                              kc * sizeof(double)) != 0;
    if (!changed) continue;
    delta.touched_users.push_back(u);
    delta.touched_pi.insert(delta.touched_pi.end(), target_row,
                            target_row + kc);
  }
  delta.theta = target.theta;
  delta.phi = target.phi;
  delta.eta = target.eta;
  delta.weights = target.weights;
  delta.popularity = target.popularity;
  if (target.has_vocabulary()) {
    delta.appended_words.assign(
        target.vocab_words.begin() +
            static_cast<ptrdiff_t>(base.vocab_size),
        target.vocab_words.end());
    delta.vocab_frequencies = target.vocab_frequencies;
  }
  return delta;
}

StatusOr<ModelDelta> ComposeModelDeltas(const ModelDelta& first,
                                        const ModelDelta& second) {
  CPD_RETURN_IF_ERROR(first.Validate());
  CPD_RETURN_IF_ERROR(second.Validate());
  if (second.base_generation != first.generation) {
    return Status::FailedPrecondition(StrFormat(
        "model delta: cannot chain — the second delta patches generation "
        "%llu but the first produces generation %llu",
        static_cast<unsigned long long>(second.base_generation),
        static_cast<unsigned long long>(first.generation)));
  }
  if (first.num_communities != second.num_communities ||
      first.num_topics != second.num_topics ||
      first.num_time_bins != second.num_time_bins) {
    return Status::InvalidArgument(
        "model delta: chained deltas disagree on |C|/|Z|/T");
  }
  if (second.base_num_users != first.num_users ||
      second.base_vocab_size != first.vocab_size) {
    return Status::InvalidArgument(StrFormat(
        "model delta: the second delta expects a base with |U|=%llu "
        "|W|=%llu but the first produces |U|=%llu |W|=%llu",
        static_cast<unsigned long long>(second.base_num_users),
        static_cast<unsigned long long>(second.base_vocab_size),
        static_cast<unsigned long long>(first.num_users),
        static_cast<unsigned long long>(first.vocab_size)));
  }
  if (second.has_vocabulary() != first.has_vocabulary() &&
      first.vocab_size != 0) {
    return Status::InvalidArgument(
        "model delta: chained deltas disagree on whether the lineage "
        "bundles a vocabulary");
  }
  ModelDelta out;
  out.num_communities = second.num_communities;
  out.num_topics = second.num_topics;
  out.num_users = second.num_users;
  out.vocab_size = second.vocab_size;
  out.num_time_bins = second.num_time_bins;
  out.base_generation = first.base_generation;
  out.generation = second.generation;
  out.base_num_users = first.base_num_users;
  out.base_vocab_size = first.base_vocab_size;
  const size_t kc = static_cast<size_t>(second.num_communities);
  // Merge the sorted touched lists; on overlap the second delta's row is
  // the surviving one.
  size_t i = 0;
  size_t j = 0;
  while (i < first.touched_users.size() || j < second.touched_users.size()) {
    uint64_t user;
    const double* row;
    if (j >= second.touched_users.size() ||
        (i < first.touched_users.size() &&
         first.touched_users[i] < second.touched_users[j])) {
      user = first.touched_users[i];
      row = first.touched_pi.data() + i * kc;
      ++i;
    } else {
      user = second.touched_users[j];
      row = second.touched_pi.data() + j * kc;
      ++j;
      if (i < first.touched_users.size() && first.touched_users[i] == user) {
        ++i;  // superseded
      }
    }
    out.touched_users.push_back(user);
    out.touched_pi.insert(out.touched_pi.end(), row, row + kc);
  }
  out.theta = second.theta;
  out.phi = second.phi;
  out.eta = second.eta;
  out.weights = second.weights;
  out.popularity = second.popularity;
  out.appended_words.reserve(first.appended_words.size() +
                             second.appended_words.size());
  out.appended_words = first.appended_words;
  out.appended_words.insert(out.appended_words.end(),
                            second.appended_words.begin(),
                            second.appended_words.end());
  out.vocab_frequencies = second.vocab_frequencies;
  CPD_RETURN_IF_ERROR(out.Validate());
  return out;
}

StatusOr<ModelArtifact> ApplyModelDelta(const ModelArtifact& base,
                                        const ModelDelta& delta) {
  CPD_RETURN_IF_ERROR(base.Validate());
  CPD_RETURN_IF_ERROR(delta.Validate());
  if (base.generation != delta.base_generation) {
    return Status::FailedPrecondition(StrFormat(
        "model delta: patches generation %llu but the base artifact is "
        "generation %llu",
        static_cast<unsigned long long>(delta.base_generation),
        static_cast<unsigned long long>(base.generation)));
  }
  if (base.num_communities != delta.num_communities ||
      base.num_topics != delta.num_topics ||
      base.num_time_bins != delta.num_time_bins) {
    return Status::InvalidArgument(
        "model delta: base artifact disagrees on |C|/|Z|/T");
  }
  if (base.num_users != delta.base_num_users ||
      base.vocab_size != delta.base_vocab_size) {
    return Status::InvalidArgument(StrFormat(
        "model delta: expects a base with |U|=%llu |W|=%llu, got |U|=%llu "
        "|W|=%llu",
        static_cast<unsigned long long>(delta.base_num_users),
        static_cast<unsigned long long>(delta.base_vocab_size),
        static_cast<unsigned long long>(base.num_users),
        static_cast<unsigned long long>(base.vocab_size)));
  }
  if (delta.has_vocabulary() && !base.has_vocabulary() &&
      delta.base_vocab_size != 0) {
    return Status::InvalidArgument(
        "model delta: carries a vocabulary but the base artifact bundles "
        "none");
  }
  ModelArtifact result;
  result.num_communities = delta.num_communities;
  result.num_topics = delta.num_topics;
  result.num_users = delta.num_users;
  result.vocab_size = delta.vocab_size;
  result.num_time_bins = delta.num_time_bins;
  result.generation = delta.generation;
  const size_t kc = static_cast<size_t>(delta.num_communities);
  result.pi.assign(static_cast<size_t>(delta.num_users) * kc, 0.0);
  std::memcpy(result.pi.data(), base.pi.data(),
              base.pi.size() * sizeof(double));
  for (size_t i = 0; i < delta.touched_users.size(); ++i) {
    std::memcpy(result.pi.data() + delta.touched_users[i] * kc,
                delta.touched_pi.data() + i * kc, kc * sizeof(double));
  }
  result.theta = delta.theta;
  result.phi = delta.phi;
  result.eta = delta.eta;
  result.weights = delta.weights;
  result.popularity = delta.popularity;
  if (delta.has_vocabulary()) {
    result.vocab_words.reserve(static_cast<size_t>(delta.vocab_size));
    result.vocab_words.assign(
        base.vocab_words.begin(),
        base.vocab_words.begin() +
            static_cast<ptrdiff_t>(delta.base_vocab_size));
    result.vocab_words.insert(result.vocab_words.end(),
                              delta.appended_words.begin(),
                              delta.appended_words.end());
    result.vocab_frequencies = delta.vocab_frequencies;
  }
  CPD_RETURN_IF_ERROR(result.Validate());
  return result;
}

}  // namespace cpd
