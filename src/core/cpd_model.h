#ifndef CPD_CORE_CPD_MODEL_H_
#define CPD_CORE_CPD_MODEL_H_

/// \file cpd_model.h
/// Public entry point of the library: train CPD on a social graph and read
/// out the paper's five outputs (§5): community memberships pi_u, content
/// profiles theta_c, topic-word distributions phi_z, diffusion profiles
/// eta_c, and the diffusion factor weights (nu and the per-factor
/// coefficients).
///
/// Storage is flat row-major (one contiguous allocation per matrix); the
/// row accessors hand out std::span views into it. Serving workloads should
/// build a serve::ProfileIndex (src/serve/profile_index.h) — it shares this
/// layout, adds the precomputed read-side indexes, and loads straight from
/// the binary artifact written by SaveBinary.
///
/// Quickstart:
///   CpdConfig config;
///   config.num_communities = 20;
///   config.num_topics = 20;
///   auto model = CpdModel::Train(graph, config);
///   if (!model.ok()) { ... }
///   std::span<const double> pi = model->Membership(user);

#include <span>
#include <string>
#include <vector>

#include "core/em_trainer.h"
#include "core/model_artifact.h"
#include "core/model_config.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

/// Immutable trained CPD model.
class CpdModel {
 public:
  /// An empty model; populate via Train / FromState / LoadFromFile.
  CpdModel() = default;

  /// Runs Alg. 1 on the graph and freezes the estimates.
  static StatusOr<CpdModel> Train(const SocialGraph& graph,
                                  const CpdConfig& config);

  /// Builds a model from an already-run trainer (used by benchmarks that
  /// need trainer internals too).
  static CpdModel FromState(const SocialGraph& graph, const CpdConfig& config,
                            const ModelState& state, TrainStats stats = {});

  int num_communities() const { return num_communities_; }
  int num_topics() const { return num_topics_; }
  size_t num_users() const { return num_users_; }
  size_t vocab_size() const { return vocab_size_; }
  int32_t num_time_bins() const { return num_time_bins_; }

  /// pi_u: membership distribution of user u over communities (Def. 3).
  std::span<const double> Membership(UserId u) const;

  /// theta_c: content profile of community c over topics (Def. 4).
  std::span<const double> ContentProfile(int c) const;

  /// phi_z: word distribution of topic z (Def. 2).
  std::span<const double> TopicWords(int z) const;

  /// eta_{c,c',z}: diffusion profile entry (Def. 5).
  double Eta(int c, int c2, int z) const;

  /// sum_z eta_{c,c',z}: topic-aggregated diffusion strength (§5).
  double EtaAggregated(int c, int c2) const;

  /// The raw |C|x|C|x|Z| row-major eta tensor (warm-start seeding path).
  std::span<const double> EtaTensor() const { return eta_; }

  /// Learned factor weights, indexed by kWeight* (model_state.h).
  const std::vector<double>& DiffusionWeights() const { return weights_; }

  /// n_tz under the trained representation.
  double TopicPopularity(int32_t t, int z) const;

  /// Top-k communities of user u by membership.
  std::vector<int> TopCommunities(UserId u, int k) const;

  /// Training diagnostics.
  const TrainStats& stats() const { return stats_; }
  const CpdConfig& config() const { return config_; }

  /// Text serialization (versioned header + matrices). Human-readable and
  /// kept for back-compat; prefer the binary artifact for serving.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<CpdModel> LoadFromFile(const std::string& path);

  /// Binary ".cpdb" artifact (core/model_artifact.h): bit-exact doubles, no
  /// text parsing on load, and directly mappable by serve::ProfileIndex.
  /// Pass the training vocabulary to bundle it into the artifact (v2+
  /// section) so cpd_query / cpd_serve need no side --vocab file.
  /// `options` picks the wire version / layout (default: v3, mmap-ready);
  /// `generation` stamps the artifact's lineage id so a .cpdd delta can
  /// name it as its base.
  Status SaveBinary(const std::string& path, const Vocabulary* vocab = nullptr,
                    const ArtifactWriteOptions& options = {},
                    uint64_t generation = 0) const;
  static StatusOr<CpdModel> LoadBinary(const std::string& path);

  /// Conversions to/from the artifact struct (used by the file APIs above
  /// and by ProfileIndex to ingest a model without re-encoding).
  ModelArtifact ToArtifact() const;
  static StatusOr<CpdModel> FromArtifact(ModelArtifact artifact);

 private:
  CpdConfig config_;
  int num_communities_ = 0;
  int num_topics_ = 0;
  size_t num_users_ = 0;
  size_t vocab_size_ = 0;
  int32_t num_time_bins_ = 1;

  std::vector<double> pi_;          // U x C, row-major.
  std::vector<double> theta_;       // C x Z, row-major.
  std::vector<double> phi_;         // Z x W, row-major.
  std::vector<double> eta_;         // C x C x Z
  std::vector<double> weights_;     // kNumDiffusionWeights
  std::vector<double> popularity_;  // T x Z
  TrainStats stats_;
};

}  // namespace cpd

#endif  // CPD_CORE_CPD_MODEL_H_
