#ifndef CPD_CORE_MODEL_DELTA_H_
#define CPD_CORE_MODEL_DELTA_H_

/// \file model_delta.h
/// The delta artifact (".cpdd"): what one ingest generation changed,
/// relative to a named base .cpdb generation. An incremental warm start
/// touches only the users that posted or linked in the batch (plus any
/// newly joined ones), but the full artifact still re-serializes every pi
/// row; the delta form ships just the touched rows, so publishing
/// generation N+1 is O(touched) bytes and the serving index can patch a
/// copy-on-write overlay over the mapped base instead of rebuilding.
///
/// The global estimates (theta, phi, eta, weights, popularity) are small —
/// O(|C| |Z| + |Z| |W|), independent of |U| — and every Gibbs sweep
/// perturbs all of them, so the delta always carries them whole; only pi
/// (the |U| x |C| matrix that dominates artifact size) is row-diffed.
///
/// Wire layout (little-endian, same endianness tag as .cpdb):
///
///   magic "CPDDELTA" | u32 version=1 | u32 endian tag |
///   i32 |C| | i32 |Z| | u64 |U| (result) | u64 |W| (result) | i32 T |
///   u64 #weights | u64 base_generation | u64 generation |
///   u64 base_num_users | u64 base_vocab_size | u64 touched_user_count |
///   u32 header_checksum (FNV-1a over the header, field zeroed) |
///   touched user ids (u64 each, strictly increasing; every id in
///     [base_|U|, |U|) must appear — new users have no base row to fall
///     back on) |
///   touched pi rows (touched_user_count x |C| doubles, id order) |
///   theta (C*Z) | phi (Z*W) | eta (C*C*Z) | weights | popularity (T*Z) |
///   u64 appended_word_count | appended (u32 len | bytes) each |
///   u64 frequency_count (0, or |W|) | frequencies (i64 each)
///
/// Vocabulary rule: a delta carries vocabulary (appended words for ids
/// [base_|W|, |W|) plus a full refreshed frequency table) iff the target
/// artifact bundles one; the base's first base_|W| words are taken as-is.
///
/// Error taxonomy matches model_artifact.h: InvalidArgument for bad
/// magic/endianness/dims/checksum/ordering, Unimplemented for a newer
/// version, OutOfRange for truncated or trailing bytes, and
/// FailedPrecondition when ApplyModelDelta is pointed at the wrong base
/// generation.

#include <cstdint>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "util/status.h"

namespace cpd {

inline constexpr char kModelDeltaMagic[8] = {'C', 'P', 'D', 'D',
                                             'E', 'L', 'T', 'A'};
inline constexpr uint32_t kModelDeltaVersion = 1;

/// Decoded (or to-be-encoded) contents of one .cpdd delta.
struct ModelDelta {
  // Result-generation dimensions (what applying the delta produces).
  int32_t num_communities = 0;
  int32_t num_topics = 0;
  uint64_t num_users = 0;
  uint64_t vocab_size = 0;
  int32_t num_time_bins = 1;

  /// Generation stamp of the artifact this delta patches; ApplyModelDelta
  /// refuses any other base.
  uint64_t base_generation = 0;
  /// Generation stamp of the result.
  uint64_t generation = 0;
  uint64_t base_num_users = 0;
  uint64_t base_vocab_size = 0;

  /// Strictly increasing user ids whose pi rows this delta replaces (or,
  /// for ids >= base_num_users, introduces).
  std::vector<uint64_t> touched_users;
  /// touched_users.size() x |C| replacement rows, in touched_users order.
  std::vector<double> touched_pi;

  // Full result-generation globals (size-independent of |U|).
  std::vector<double> theta;
  std::vector<double> phi;
  std::vector<double> eta;
  std::vector<double> weights;
  std::vector<double> popularity;

  /// Words appended by this generation (ids base_vocab_size..vocab_size).
  /// Empty when the target carries no vocabulary.
  std::vector<std::string> appended_words;
  /// Refreshed occurrence counts for the *whole* result vocabulary (word
  /// frequencies drift every batch): empty, or exactly vocab_size entries.
  std::vector<int64_t> vocab_frequencies;

  bool has_vocabulary() const { return !vocab_frequencies.empty(); }

  /// InvalidArgument when any field disagrees with the dims or ordering
  /// rules above.
  Status Validate() const;
};

/// Serializes the delta (deterministic: same delta -> same bytes).
StatusOr<std::string> EncodeModelDelta(const ModelDelta& delta);

/// Parses bytes produced by EncodeModelDelta; see the taxonomy above.
StatusOr<ModelDelta> DecodeModelDelta(const std::string& bytes);

/// Whole-file convenience wrappers.
Status WriteModelDelta(const std::string& path, const ModelDelta& delta);
StatusOr<ModelDelta> ReadModelDelta(const std::string& path);

/// True if the byte string begins with the .cpdd magic.
bool LooksLikeModelDelta(const std::string& bytes);

/// Diffs `target` against `base`: touched = every pi row that changed
/// bitwise, plus all rows of users new in `target`. Fails when the two
/// artifacts are not one lineage (mismatched C/Z/T, shrinking users or
/// vocabulary, diverging base words, or target.generation <=
/// base.generation would still encode — generations are caller-owned and
/// only equality is checked at apply time).
StatusOr<ModelDelta> BuildModelDelta(const ModelArtifact& base,
                                     const ModelArtifact& target);

/// Merges two consecutive deltas into one that patches `first`'s base
/// straight to `second`'s result: touched rows are the union (second's row
/// wins on overlap), the globals/frequencies come from `second` alone, and
/// the appended word lists concatenate. FailedPrecondition unless
/// second.base_generation == first.generation; InvalidArgument when the
/// chained dims disagree. Lets the registry apply an arbitrary .cpdd chain
/// against the one mapped base artifact it keeps open.
StatusOr<ModelDelta> ComposeModelDeltas(const ModelDelta& first,
                                        const ModelDelta& second);

/// Applies `delta` to `base`, producing the full result artifact
/// (generation = delta.generation). FailedPrecondition when
/// base.generation != delta.base_generation; InvalidArgument when the
/// dims disagree.
StatusOr<ModelArtifact> ApplyModelDelta(const ModelArtifact& base,
                                        const ModelDelta& delta);

}  // namespace cpd

#endif  // CPD_CORE_MODEL_DELTA_H_
