#ifndef CPD_CORE_EM_TRAINER_H_
#define CPD_CORE_EM_TRAINER_H_

/// \file em_trainer.h
/// Variational EM for CPD (paper Alg. 1). The E-step is pure orchestration
/// of the snapshot/delta protocol (§4.3 refactored): per sweep it freezes
/// the master ModelState into a StateSnapshot, dispatches the shard plan
/// (LDA segmentation + knapsack allocation) through a ShardExecutor, folds
/// the returned CounterDeltas together, applies them to the master, and
/// runs the Polya-Gamma augmentation over disjoint link ranges. The M-step
/// re-estimates eta from the merged assignments and fits the factor weights
/// by logistic regression with negative sampling.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gibbs_sampler.h"
#include "core/model_config.h"
#include "core/model_state.h"
#include "core/state_snapshot.h"
#include "graph/social_graph.h"
#include "parallel/shard_executor.h"

namespace cpd {

/// Timing/diagnostic record of one training run.
struct TrainStats {
  std::vector<double> link_log_likelihood;  ///< Per EM iteration.
  double e_step_seconds = 0.0;
  double m_step_seconds = 0.0;
  double total_seconds = 0.0;
  /// Snapshot/delta E-step diagnostics: seconds capturing snapshots,
  /// seconds applying CounterDeltas, and the delta volume (documents that
  /// moved, nonzero sparse counter diffs — summed per shard) merged so far.
  double snapshot_seconds = 0.0;
  double merge_seconds = 0.0;
  size_t delta_doc_moves = 0;
  size_t delta_entries = 0;
  /// Eta/theta endpoint-collapse memo counters (cache_eta_collapse).
  int64_t eta_collapse_hits = 0;
  int64_t eta_collapse_misses = 0;
  /// Per-shard estimated workload and measured time of the last E-step
  /// (Fig. 11 data). One entry per shard (== per thread by default).
  std::vector<double> thread_estimated_workload;
  std::vector<double> thread_actual_seconds;
  size_t num_segments = 0;
};

class EmTrainer {
 public:
  /// Graph must outlive the trainer.
  EmTrainer(const SocialGraph& graph, const CpdConfig& config);

  /// Runs Alg. 1 end to end (handles the "no joint modeling" two-phase
  /// schedule when config.ablation.joint_profiling is false).
  Status Train();

  /// Pieces exposed for the scalability benchmarks (Fig. 10): one E-step /
  /// M-step at a time. Initialize() must be called first.
  Status Initialize();
  Status EStep();
  void MStep();

  const ModelState& state() const { return *state_; }
  ModelState* mutable_state() { return state_.get(); }
  const TrainStats& stats() const { return stats_; }
  const LinkCaches& caches() const { return *caches_; }
  GibbsSampler* sampler() { return sampler_.get(); }
  /// The shard executor (null until the first EStep builds it).
  ShardExecutor* executor() { return executor_.get(); }

 private:
  void UpdateEta();
  void TrainDiffusionWeights(Rng* rng);
  Status EnsureExecutor();

  const SocialGraph& graph_;
  CpdConfig config_;
  std::unique_ptr<LinkCaches> caches_;
  std::unique_ptr<ModelState> state_;
  std::unique_ptr<GibbsSampler> sampler_;
  Rng rng_;
  TrainStats stats_;
  bool initialized_ = false;

  // Snapshot/delta E-step plumbing (executor lazily built on first EStep;
  // snapshot and delta buffers reused across sweeps).
  std::unique_ptr<ShardExecutor> executor_;
  StateSnapshot snapshot_;
  std::vector<CounterDelta> deltas_;
};

}  // namespace cpd

#endif  // CPD_CORE_EM_TRAINER_H_
