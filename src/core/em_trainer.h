#ifndef CPD_CORE_EM_TRAINER_H_
#define CPD_CORE_EM_TRAINER_H_

/// \file em_trainer.h
/// Variational EM for CPD (paper Alg. 1). The E-step is pure orchestration
/// of the snapshot/delta protocol (§4.3 refactored): per sweep it freezes
/// the master ModelState into a StateSnapshot, dispatches the shard plan
/// (LDA segmentation + knapsack allocation) through a ShardExecutor, folds
/// the returned CounterDeltas together, applies them to the master, and
/// runs the Polya-Gamma augmentation over disjoint link ranges. The M-step
/// re-estimates eta from the merged assignments and fits the factor weights
/// by logistic regression with negative sampling.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/gibbs_sampler.h"
#include "core/model_config.h"
#include "core/model_state.h"
#include "core/state_snapshot.h"
#include "graph/social_graph.h"
#include "obs/trace.h"
#include "parallel/shard_executor.h"

namespace cpd {

/// Timing/diagnostic record of one training run.
struct TrainStats {
  std::vector<double> link_log_likelihood;  ///< Per EM iteration.
  double e_step_seconds = 0.0;
  double m_step_seconds = 0.0;
  double total_seconds = 0.0;
  /// Snapshot/delta E-step diagnostics: seconds capturing snapshots,
  /// seconds applying CounterDeltas, and the delta volume (documents that
  /// moved, nonzero sparse counter diffs — summed per shard) merged so far.
  double snapshot_seconds = 0.0;
  double merge_seconds = 0.0;
  size_t delta_doc_moves = 0;
  size_t delta_entries = 0;
  /// Eta/theta endpoint-collapse memo counters (cache_eta_collapse).
  int64_t eta_collapse_hits = 0;
  int64_t eta_collapse_misses = 0;
  /// Per-shard estimated workload and measured time of the last E-step
  /// (Fig. 11 data). One entry per shard (== per thread by default).
  std::vector<double> thread_estimated_workload;
  std::vector<double> thread_actual_seconds;
  size_t num_segments = 0;
  /// Distributed-executor transport counters (cumulative over the run; all
  /// zero for in-process executors). Mirrors DistTransportStats.
  int dist_workers_connected = 0;
  int dist_workers_lost = 0;
  int64_t dist_shards_redispatched = 0;
  uint64_t dist_bytes_out = 0;
  uint64_t dist_bytes_in = 0;
  double dist_serialize_seconds = 0.0;
  double dist_wait_seconds = 0.0;
};

/// Inputs of a warm-started (incremental) training run over a graph that
/// grew from a previously trained one: the first prev_doc_topic.size()
/// documents of the trainer's graph carry their previous assignments, new
/// documents are initialized from the sparse sampler's prior proposal
/// distributions, and only `touched_users` are resampled in the bounded
/// warm sweeps (streaming ingest, see src/ingest).
struct WarmStartOptions {
  /// Previous assignments, indexed by DocId; both spans must have the same
  /// size <= the graph's document count (base DocIds are append-stable).
  std::span<const int32_t> prev_doc_topic;
  std::span<const int32_t> prev_doc_community;

  /// Users whose evidence changed; only the shards' intersection with this
  /// set is resampled in warm sweeps. Empty = resample nobody (a degenerate
  /// batch — say, only a user-count bump — must stay cheap and must never
  /// rewrite untouched assignments; list every user explicitly for a warm
  /// full sweep). Polya-Gamma augmentation always refreshes every link.
  std::span<const UserId> touched_users;

  /// Previous M-step parameters to seed the first warm E-step (empty spans
  /// keep the cold defaults). Shapes must match the config (|C|^2 |Z| and
  /// kNumDiffusionWeights).
  std::span<const double> prev_eta;
  std::span<const double> prev_weights;

  /// Bounded EM iterations (each = gibbs_sweeps_per_em sweeps + one M-step).
  int warm_iterations = 2;
};

class EmTrainer {
 public:
  /// Graph must outlive the trainer.
  EmTrainer(const SocialGraph& graph, const CpdConfig& config);

  /// Replacement executor constructor for tests (e.g. a distributed
  /// coordinator over in-process socketpair workers with fault hooks). Must
  /// be installed before the first EStep/WarmStart builds the executor.
  using ExecutorFactory = std::function<StatusOr<std::unique_ptr<ShardExecutor>>(
      const SocialGraph&, const CpdConfig&, const LinkCaches&, ThreadPlan)>;
  void SetExecutorFactoryForTest(ExecutorFactory factory) {
    executor_factory_ = std::move(factory);
  }

  /// Runs Alg. 1 end to end (handles the "no joint modeling" two-phase
  /// schedule when config.ablation.joint_profiling is false).
  Status Train();

  /// Warm-started incremental run (streaming ingest): restores previous
  /// assignments, initializes new rows by sampling the sparse prior
  /// proposals (c ~ n_uc[u][.] + rho, then z ~ n_cz[c][.] + alpha, counters
  /// advancing as rows land so later rows see earlier ones), then runs
  /// `warm_iterations` bounded EM iterations whose E-step sweeps only the
  /// shards' touched users through the regular ShardExecutor protocol —
  /// serial and pooled dispatch stay bit-identical for the same seed and
  /// shard count. Replaces Initialize()+Train(); always joint (no two-phase
  /// schedule: communities are already detected, this is maintenance).
  Status WarmStart(const WarmStartOptions& options);

  /// Pieces exposed for the scalability benchmarks (Fig. 10): one E-step /
  /// M-step at a time. Initialize() must be called first.
  Status Initialize();
  Status EStep();
  void MStep();

  const ModelState& state() const { return *state_; }
  ModelState* mutable_state() { return state_.get(); }
  const TrainStats& stats() const { return stats_; }
  const LinkCaches& caches() const { return *caches_; }
  GibbsSampler* sampler() { return sampler_.get(); }
  /// The shard executor (null until the first EStep builds it).
  ShardExecutor* executor() { return executor_.get(); }
  /// The trace recorder (null unless config.trace_out is set). Spans
  /// accumulate across EStep/MStep calls; Train()/WarmStart() write the
  /// file at the end of the run.
  obs::TraceRecorder* trace_recorder() { return trace_.get(); }

 private:
  void UpdateEta();
  void TrainDiffusionWeights(Rng* rng);
  Status EnsureExecutor();
  /// Dispatches on ResolvedExecutorMode(): the src/dist coordinator for
  /// kDistributed (which can fail to connect), MakeShardExecutor otherwise,
  /// or the test-injected factory when one is set.
  StatusOr<std::unique_ptr<ShardExecutor>> BuildExecutor(ThreadPlan plan);
  /// Folds the executor's cumulative transport counters into stats_.
  void UpdateTransportStats();
  /// The shard plan EnsureExecutor/WarmStart build their executor over
  /// (TrivialThreadPlan for one shard, LDA segmentation + knapsack else).
  StatusOr<ThreadPlan> BuildPlan();

  const SocialGraph& graph_;
  CpdConfig config_;
  std::unique_ptr<LinkCaches> caches_;
  std::unique_ptr<ModelState> state_;
  std::unique_ptr<GibbsSampler> sampler_;
  Rng rng_;
  TrainStats stats_;
  bool initialized_ = false;

  // Snapshot/delta E-step plumbing (executor lazily built on first EStep;
  // snapshot and delta buffers reused across sweeps).
  std::unique_ptr<ShardExecutor> executor_;
  StateSnapshot snapshot_;
  std::vector<CounterDelta> deltas_;
  ExecutorFactory executor_factory_;

  /// Writes the accumulated trace to config.trace_out (no-op when tracing
  /// is off); logs a Warning instead of failing the run on IO errors.
  void FlushTrace();

  std::unique_ptr<obs::TraceRecorder> trace_;
  int64_t trace_sweep_ = 0;   ///< Global sweep index across EM iterations.
  int64_t trace_e_step_ = 0;  ///< E-step index for span args.
};

}  // namespace cpd

#endif  // CPD_CORE_EM_TRAINER_H_
