#ifndef CPD_CORE_EM_TRAINER_H_
#define CPD_CORE_EM_TRAINER_H_

/// \file em_trainer.h
/// Variational EM for CPD (paper Alg. 1): the E-step runs collapsed Gibbs
/// sweeps over documents plus the Polya-Gamma augmentation variables; the
/// M-step re-estimates eta by aggregating the sampled assignments and fits
/// the factor weights (nu and the per-factor coefficients) by logistic
/// regression with negative sampling. With config.num_threads > 1 the
/// E-step is parallelized per §4.3 (LDA segmentation + knapsack allocation).

#include <memory>
#include <vector>

#include "core/gibbs_sampler.h"
#include "core/model_config.h"
#include "core/model_state.h"
#include "graph/social_graph.h"
#include "parallel/segmenter.h"
#include "parallel/thread_pool.h"

namespace cpd {

/// Timing/diagnostic record of one training run.
struct TrainStats {
  std::vector<double> link_log_likelihood;  ///< Per EM iteration.
  double e_step_seconds = 0.0;
  double m_step_seconds = 0.0;
  double total_seconds = 0.0;
  /// Parallel E-step only: per-thread estimated workload and measured time
  /// of the last E-step (Fig. 11 data).
  std::vector<double> thread_estimated_workload;
  std::vector<double> thread_actual_seconds;
  size_t num_segments = 0;
};

class EmTrainer {
 public:
  /// Graph must outlive the trainer.
  EmTrainer(const SocialGraph& graph, const CpdConfig& config);

  /// Runs Alg. 1 end to end (handles the "no joint modeling" two-phase
  /// schedule when config.ablation.joint_profiling is false).
  Status Train();

  /// Pieces exposed for the scalability benchmarks (Fig. 10): one E-step /
  /// M-step at a time. Initialize() must be called first.
  Status Initialize();
  Status EStep();
  void MStep();

  const ModelState& state() const { return *state_; }
  ModelState* mutable_state() { return state_.get(); }
  const TrainStats& stats() const { return stats_; }
  const LinkCaches& caches() const { return *caches_; }
  GibbsSampler* sampler() { return sampler_.get(); }

 private:
  void UpdateEta();
  void TrainDiffusionWeights(Rng* rng);
  Status EnsureThreadPlan();

  const SocialGraph& graph_;
  CpdConfig config_;
  std::unique_ptr<LinkCaches> caches_;
  std::unique_ptr<ModelState> state_;
  std::unique_ptr<GibbsSampler> sampler_;
  Rng rng_;
  TrainStats stats_;
  bool initialized_ = false;

  // Parallel E-step plumbing (lazily built).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPlan> plan_;
  std::vector<Rng> thread_rngs_;
};

}  // namespace cpd

#endif  // CPD_CORE_EM_TRAINER_H_
