#include "core/cpd_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/file_util.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace cpd {

StatusOr<CpdModel> CpdModel::Train(const SocialGraph& graph,
                                   const CpdConfig& config) {
  EmTrainer trainer(graph, config);
  CPD_RETURN_IF_ERROR(trainer.Train());
  return FromState(graph, config, trainer.state(), trainer.stats());
}

CpdModel CpdModel::FromState(const SocialGraph& graph, const CpdConfig& config,
                             const ModelState& state, TrainStats stats) {
  CpdModel model;
  model.config_ = config;
  model.num_communities_ = state.num_communities;
  model.num_topics_ = state.num_topics;
  model.num_users_ = state.num_users;
  model.vocab_size_ = state.vocab_size;
  model.num_time_bins_ = graph.num_time_bins();
  model.stats_ = std::move(stats);

  model.pi_.resize(state.num_users);
  for (size_t u = 0; u < state.num_users; ++u) {
    auto& pi = model.pi_[u];
    pi.resize(static_cast<size_t>(state.num_communities));
    for (int c = 0; c < state.num_communities; ++c) {
      pi[static_cast<size_t>(c)] = state.PiHat(static_cast<UserId>(u), c);
    }
  }
  model.theta_.resize(static_cast<size_t>(state.num_communities));
  for (int c = 0; c < state.num_communities; ++c) {
    auto& theta = model.theta_[static_cast<size_t>(c)];
    theta.resize(static_cast<size_t>(state.num_topics));
    for (int z = 0; z < state.num_topics; ++z) {
      theta[static_cast<size_t>(z)] = state.ThetaHat(c, z);
    }
  }
  model.phi_.resize(static_cast<size_t>(state.num_topics));
  for (int z = 0; z < state.num_topics; ++z) {
    auto& phi = model.phi_[static_cast<size_t>(z)];
    phi.resize(state.vocab_size);
    for (size_t w = 0; w < state.vocab_size; ++w) {
      phi[w] = state.PhiHat(z, static_cast<WordId>(w));
    }
  }
  model.eta_ = state.eta;
  model.weights_ = state.weights;

  model.popularity_.resize(static_cast<size_t>(graph.num_time_bins()) *
                           static_cast<size_t>(state.num_topics));
  for (int32_t t = 0; t < graph.num_time_bins(); ++t) {
    for (int z = 0; z < state.num_topics; ++z) {
      model.popularity_[static_cast<size_t>(t) *
                            static_cast<size_t>(state.num_topics) +
                        static_cast<size_t>(z)] = state.popularity.Value(t, z);
    }
  }
  return model;
}

const std::vector<double>& CpdModel::Membership(UserId u) const {
  CPD_CHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
  return pi_[static_cast<size_t>(u)];
}

const std::vector<double>& CpdModel::ContentProfile(int c) const {
  CPD_CHECK(c >= 0 && c < num_communities_);
  return theta_[static_cast<size_t>(c)];
}

const std::vector<double>& CpdModel::TopicWords(int z) const {
  CPD_CHECK(z >= 0 && z < num_topics_);
  return phi_[static_cast<size_t>(z)];
}

double CpdModel::Eta(int c, int c2, int z) const {
  CPD_DCHECK(c >= 0 && c < num_communities_);
  CPD_DCHECK(c2 >= 0 && c2 < num_communities_);
  CPD_DCHECK(z >= 0 && z < num_topics_);
  return eta_[(static_cast<size_t>(c) * static_cast<size_t>(num_communities_) +
               static_cast<size_t>(c2)) *
                  static_cast<size_t>(num_topics_) +
              static_cast<size_t>(z)];
}

double CpdModel::EtaAggregated(int c, int c2) const {
  double total = 0.0;
  for (int z = 0; z < num_topics_; ++z) total += Eta(c, c2, z);
  return total;
}

double CpdModel::TopicPopularity(int32_t t, int z) const {
  CPD_DCHECK(z >= 0 && z < num_topics_);
  // Clamp: prediction-time timestamps may fall outside the training range
  // (e.g. the max-time link was held out by cross-validation).
  t = std::min(std::max(t, 0), num_time_bins_ - 1);
  return popularity_[static_cast<size_t>(t) * static_cast<size_t>(num_topics_) +
                     static_cast<size_t>(z)];
}

std::vector<int> CpdModel::TopCommunities(UserId u, int k) const {
  const auto& pi = Membership(u);
  std::vector<int> result;
  for (size_t idx : TopKIndices(pi, static_cast<size_t>(k))) {
    result.push_back(static_cast<int>(idx));
  }
  return result;
}

namespace {
constexpr char kMagic[] = "CPDMODEL v1";

void WriteVector(std::ostringstream& out, const std::vector<double>& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

bool ReadVector(std::istringstream& in, std::vector<double>* v) {
  size_t n = 0;
  if (!(in >> n)) return false;
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*v)[i])) return false;
  }
  return true;
}
}  // namespace

Status CpdModel::SaveToFile(const std::string& path) const {
  std::ostringstream out;
  out.precision(17);  // Round-trippable doubles.
  out << kMagic << '\n';
  out << num_communities_ << ' ' << num_topics_ << ' ' << num_users_ << ' '
      << vocab_size_ << ' ' << num_time_bins_ << '\n';
  for (const auto& pi : pi_) WriteVector(out, pi);
  for (const auto& theta : theta_) WriteVector(out, theta);
  for (const auto& phi : phi_) WriteVector(out, phi);
  WriteVector(out, eta_);
  WriteVector(out, weights_);
  WriteVector(out, popularity_);
  return WriteStringToFile(path, out.str());
}

StatusOr<CpdModel> CpdModel::LoadFromFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::istringstream in(*contents);
  std::string magic_line;
  if (!std::getline(in, magic_line) || magic_line != kMagic) {
    return Status::InvalidArgument("not a CPD model file: " + path);
  }
  CpdModel model;
  if (!(in >> model.num_communities_ >> model.num_topics_ >> model.num_users_ >>
        model.vocab_size_ >> model.num_time_bins_)) {
    return Status::InvalidArgument("corrupt CPD model header: " + path);
  }
  auto fail = [&path] {
    return Status::InvalidArgument("corrupt CPD model body: " + path);
  };
  // Re-wrap the remaining stream as an istringstream for ReadVector.
  std::string rest;
  std::getline(in, rest, '\0');
  std::istringstream body(rest);
  model.pi_.resize(model.num_users_);
  for (auto& pi : model.pi_) {
    if (!ReadVector(body, &pi)) return fail();
  }
  model.theta_.resize(static_cast<size_t>(model.num_communities_));
  for (auto& theta : model.theta_) {
    if (!ReadVector(body, &theta)) return fail();
  }
  model.phi_.resize(static_cast<size_t>(model.num_topics_));
  for (auto& phi : model.phi_) {
    if (!ReadVector(body, &phi)) return fail();
  }
  if (!ReadVector(body, &model.eta_)) return fail();
  if (!ReadVector(body, &model.weights_)) return fail();
  if (!ReadVector(body, &model.popularity_)) return fail();
  return model;
}

}  // namespace cpd
