#include "core/cpd_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/model_artifact.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace cpd {

StatusOr<CpdModel> CpdModel::Train(const SocialGraph& graph,
                                   const CpdConfig& config) {
  EmTrainer trainer(graph, config);
  CPD_RETURN_IF_ERROR(trainer.Train());
  return FromState(graph, config, trainer.state(), trainer.stats());
}

CpdModel CpdModel::FromState(const SocialGraph& graph, const CpdConfig& config,
                             const ModelState& state, TrainStats stats) {
  CpdModel model;
  model.config_ = config;
  model.num_communities_ = state.num_communities;
  model.num_topics_ = state.num_topics;
  model.num_users_ = state.num_users;
  model.vocab_size_ = state.vocab_size;
  model.num_time_bins_ = graph.num_time_bins();
  model.stats_ = std::move(stats);

  const size_t kc = static_cast<size_t>(state.num_communities);
  const size_t kz = static_cast<size_t>(state.num_topics);
  model.pi_.resize(state.num_users * kc);
  for (size_t u = 0; u < state.num_users; ++u) {
    for (int c = 0; c < state.num_communities; ++c) {
      model.pi_[u * kc + static_cast<size_t>(c)] =
          state.PiHat(static_cast<UserId>(u), c);
    }
  }
  model.theta_.resize(kc * kz);
  for (int c = 0; c < state.num_communities; ++c) {
    for (int z = 0; z < state.num_topics; ++z) {
      model.theta_[static_cast<size_t>(c) * kz + static_cast<size_t>(z)] =
          state.ThetaHat(c, z);
    }
  }
  model.phi_.resize(kz * state.vocab_size);
  for (int z = 0; z < state.num_topics; ++z) {
    for (size_t w = 0; w < state.vocab_size; ++w) {
      model.phi_[static_cast<size_t>(z) * state.vocab_size + w] =
          state.PhiHat(z, static_cast<WordId>(w));
    }
  }
  model.eta_ = state.eta;
  model.weights_ = state.weights;

  model.popularity_.resize(static_cast<size_t>(graph.num_time_bins()) * kz);
  for (int32_t t = 0; t < graph.num_time_bins(); ++t) {
    for (int z = 0; z < state.num_topics; ++z) {
      model.popularity_[static_cast<size_t>(t) * kz + static_cast<size_t>(z)] =
          state.popularity.Value(t, z);
    }
  }
  return model;
}

std::span<const double> CpdModel::Membership(UserId u) const {
  CPD_CHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
  const size_t kc = static_cast<size_t>(num_communities_);
  return {pi_.data() + static_cast<size_t>(u) * kc, kc};
}

std::span<const double> CpdModel::ContentProfile(int c) const {
  CPD_CHECK(c >= 0 && c < num_communities_);
  const size_t kz = static_cast<size_t>(num_topics_);
  return {theta_.data() + static_cast<size_t>(c) * kz, kz};
}

std::span<const double> CpdModel::TopicWords(int z) const {
  CPD_CHECK(z >= 0 && z < num_topics_);
  return {phi_.data() + static_cast<size_t>(z) * vocab_size_, vocab_size_};
}

double CpdModel::Eta(int c, int c2, int z) const {
  CPD_DCHECK(c >= 0 && c < num_communities_);
  CPD_DCHECK(c2 >= 0 && c2 < num_communities_);
  CPD_DCHECK(z >= 0 && z < num_topics_);
  return eta_[(static_cast<size_t>(c) * static_cast<size_t>(num_communities_) +
               static_cast<size_t>(c2)) *
                  static_cast<size_t>(num_topics_) +
              static_cast<size_t>(z)];
}

double CpdModel::EtaAggregated(int c, int c2) const {
  double total = 0.0;
  for (int z = 0; z < num_topics_; ++z) total += Eta(c, c2, z);
  return total;
}

double CpdModel::TopicPopularity(int32_t t, int z) const {
  CPD_DCHECK(z >= 0 && z < num_topics_);
  // Clamp: prediction-time timestamps may fall outside the training range
  // (e.g. the max-time link was held out by cross-validation).
  t = std::min(std::max(t, 0), num_time_bins_ - 1);
  return popularity_[static_cast<size_t>(t) * static_cast<size_t>(num_topics_) +
                     static_cast<size_t>(z)];
}

std::vector<int> CpdModel::TopCommunities(UserId u, int k) const {
  const auto pi = Membership(u);
  std::vector<int> result;
  for (size_t idx : TopKIndices(pi, static_cast<size_t>(k))) {
    result.push_back(static_cast<int>(idx));
  }
  return result;
}

namespace {
constexpr char kMagic[] = "CPDMODEL v1";

void WriteVector(std::ostringstream& out, std::span<const double> v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

/// Reads one "n v1 .. vn" row into out[offset, offset + expected); the row
/// length must match the header-implied dimension.
bool ReadRow(std::istringstream& in, size_t expected, std::vector<double>* out,
             size_t offset) {
  size_t n = 0;
  if (!(in >> n) || n != expected) return false;
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*out)[offset + i])) return false;
  }
  return true;
}

/// Variable-length vector (weights: the count is the source of truth).
bool ReadVector(std::istringstream& in, std::vector<double>* v) {
  size_t n = 0;
  if (!(in >> n)) return false;
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*v)[i])) return false;
  }
  return true;
}
}  // namespace

Status CpdModel::SaveToFile(const std::string& path) const {
  std::ostringstream out;
  out.precision(17);  // Round-trippable doubles.
  out << kMagic << '\n';
  out << num_communities_ << ' ' << num_topics_ << ' ' << num_users_ << ' '
      << vocab_size_ << ' ' << num_time_bins_ << '\n';
  for (size_t u = 0; u < num_users_; ++u) {
    WriteVector(out, Membership(static_cast<UserId>(u)));
  }
  for (int c = 0; c < num_communities_; ++c) WriteVector(out, ContentProfile(c));
  for (int z = 0; z < num_topics_; ++z) WriteVector(out, TopicWords(z));
  WriteVector(out, eta_);
  WriteVector(out, weights_);
  WriteVector(out, popularity_);
  return WriteStringToFile(path, out.str());
}

StatusOr<CpdModel> CpdModel::LoadFromFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::istringstream in(*contents);
  std::string magic_line;
  if (!std::getline(in, magic_line) || magic_line != kMagic) {
    return Status::InvalidArgument("not a CPD model file: " + path);
  }
  CpdModel model;
  if (!(in >> model.num_communities_ >> model.num_topics_ >> model.num_users_ >>
        model.vocab_size_ >> model.num_time_bins_) ||
      model.num_communities_ < 1 || model.num_topics_ < 1 ||
      model.num_time_bins_ < 1) {
    return Status::InvalidArgument("corrupt CPD model header: " + path);
  }
  auto fail = [&path] {
    return Status::InvalidArgument("corrupt CPD model body: " + path);
  };
  // Re-wrap the remaining stream as an istringstream for the row readers.
  std::string rest;
  std::getline(in, rest, '\0');
  std::istringstream body(rest);
  const size_t kc = static_cast<size_t>(model.num_communities_);
  const size_t kz = static_cast<size_t>(model.num_topics_);
  // Size sanity before any resize: every serialized value occupies at least
  // two characters ("0 "), so the header-implied value count can never
  // exceed the remaining byte count — and the 128-bit accumulation keeps a
  // crafted header from wrapping the products used for the resizes below.
  {
    using uint128 = unsigned __int128;
    const uint128 total_values =
        static_cast<uint128>(model.num_users_) * kc +
        static_cast<uint128>(kc) * kz +
        static_cast<uint128>(kz) * model.vocab_size_ +
        static_cast<uint128>(kc) * kc * kz +
        static_cast<uint128>(model.num_time_bins_) * kz;
    if (total_values > rest.size()) {
      return Status::InvalidArgument("corrupt CPD model header: " + path);
    }
  }
  model.pi_.resize(model.num_users_ * kc);
  for (size_t u = 0; u < model.num_users_; ++u) {
    if (!ReadRow(body, kc, &model.pi_, u * kc)) return fail();
  }
  model.theta_.resize(kc * kz);
  for (size_t c = 0; c < kc; ++c) {
    if (!ReadRow(body, kz, &model.theta_, c * kz)) return fail();
  }
  model.phi_.resize(kz * model.vocab_size_);
  for (size_t z = 0; z < kz; ++z) {
    if (!ReadRow(body, model.vocab_size_, &model.phi_, z * model.vocab_size_)) {
      return fail();
    }
  }
  if (!ReadVector(body, &model.eta_) || model.eta_.size() != kc * kc * kz) {
    return fail();
  }
  if (!ReadVector(body, &model.weights_) ||
      model.weights_.size() != static_cast<size_t>(kNumDiffusionWeights)) {
    return fail();
  }
  if (!ReadVector(body, &model.popularity_) ||
      model.popularity_.size() !=
          static_cast<size_t>(model.num_time_bins_) * kz) {
    return fail();
  }
  return model;
}

ModelArtifact CpdModel::ToArtifact() const {
  ModelArtifact artifact;
  artifact.num_communities = num_communities_;
  artifact.num_topics = num_topics_;
  artifact.num_users = num_users_;
  artifact.vocab_size = vocab_size_;
  artifact.num_time_bins = num_time_bins_;
  artifact.pi = pi_;
  artifact.theta = theta_;
  artifact.phi = phi_;
  artifact.eta = eta_;
  artifact.weights = weights_;
  artifact.popularity = popularity_;
  return artifact;
}

StatusOr<CpdModel> CpdModel::FromArtifact(ModelArtifact artifact) {
  CPD_RETURN_IF_ERROR(artifact.Validate());
  CpdModel model;
  model.num_communities_ = artifact.num_communities;
  model.num_topics_ = artifact.num_topics;
  model.num_users_ = artifact.num_users;
  model.vocab_size_ = artifact.vocab_size;
  model.num_time_bins_ = artifact.num_time_bins;
  model.pi_ = std::move(artifact.pi);
  model.theta_ = std::move(artifact.theta);
  model.phi_ = std::move(artifact.phi);
  model.eta_ = std::move(artifact.eta);
  model.weights_ = std::move(artifact.weights);
  model.popularity_ = std::move(artifact.popularity);
  return model;
}

Status CpdModel::SaveBinary(const std::string& path, const Vocabulary* vocab,
                            const ArtifactWriteOptions& options,
                            uint64_t generation) const {
  ModelArtifact artifact = ToArtifact();
  artifact.generation = generation;
  if (vocab != nullptr) {
    if (vocab->size() != vocab_size_) {
      return Status::InvalidArgument(
          StrFormat("vocabulary has %zu words, model expects %zu",
                    vocab->size(), vocab_size_));
    }
    artifact.vocab_words.reserve(vocab->size());
    artifact.vocab_frequencies.reserve(vocab->size());
    for (size_t w = 0; w < vocab->size(); ++w) {
      artifact.vocab_words.push_back(vocab->WordOf(static_cast<WordId>(w)));
      artifact.vocab_frequencies.push_back(
          vocab->Frequency(static_cast<WordId>(w)));
    }
  }
  return WriteModelArtifact(path, artifact, options);
}

StatusOr<CpdModel> CpdModel::LoadBinary(const std::string& path) {
  auto artifact = ReadModelArtifact(path);
  if (!artifact.ok()) return artifact.status();
  return FromArtifact(std::move(*artifact));
}

}  // namespace cpd
