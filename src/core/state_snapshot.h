#ifndef CPD_CORE_STATE_SNAPSHOT_H_
#define CPD_CORE_STATE_SNAPSHOT_H_

/// \file state_snapshot.h
/// The read/merge sides of the shard-local delta E-step (§4.3 refactor):
///
///  - StateSnapshot: an immutable copy of the sweep-mutable part of a
///    ModelState (assignments, collapsed counters, augmentation variables,
///    model parameters), captured once per sweep while the master state is
///    frozen. Shards restore a private working ModelState from it and run
///    the unmodified dense/sparse kernels against that copy — no atomics,
///    no cross-shard writes.
///  - CounterDelta: the sparse count diffs one shard's sweep produced
///    (topic/word, user/community, community/topic rows plus the document
///    assignment moves themselves), with an associative and commutative
///    Merge(). The trainer folds the per-shard deltas together and applies
///    the result to the master state, which is exactly the parameter-server
///    merge step a process/distributed executor needs.
///
/// A single shard restored from the snapshot and swept in order reproduces
/// sequential collapsed Gibbs bit-for-bit (modulo the optional per-sweep
/// collapse memo, CpdConfig::cache_eta_collapse); N shards are the
/// AD-LDA-style stale-read approximation, made reproducible by per-shard
/// RNG streams.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/model_state.h"
#include "graph/social_graph.h"
#include "util/wire_format.h"

namespace cpd {

class StateSnapshot {
 public:
  StateSnapshot() = default;

  /// Deep-copies the mutable arrays of `state` (CaptureParameters +
  /// CaptureSweepState). Buffers are reused across captures, so repeated
  /// captures settle into pure memcpy cost.
  void CaptureFrom(const ModelState& state);

  /// Captures only what a sweep mutates: assignments, collapsed counters,
  /// and the Polya-Gamma variables. Called once per sweep.
  void CaptureSweepState(const ModelState& state);

  /// Captures the M-step-owned parameters (eta, weights, popularity), which
  /// cannot change inside an E-step — called once per E-step, and slots
  /// skip re-restoring them via parameters_version().
  void CaptureParameters(const ModelState& state);

  /// Overwrites the mutable arrays of `working` with the snapshot content
  /// (both halves). `working` must be built over the same graph and config
  /// shape.
  void RestoreTo(ModelState* working) const;

  /// The split restores matching the split captures.
  void RestoreSweepStateTo(ModelState* working) const;
  void RestoreParametersTo(ModelState* working) const;

  /// Refreshed by every CaptureParameters with a process-unique value; lets
  /// a working-state owner skip the O(|C|^2 |Z|) parameter copy when it
  /// already holds this version, even across distinct snapshot instances.
  uint64_t parameters_version() const { return parameters_version_; }

  bool captured() const { return captured_ && parameters_version_ > 0; }

  /// Assignments at capture time (the "old" side of a shard's delta).
  int32_t TopicOf(DocId d) const { return doc_topic_[static_cast<size_t>(d)]; }
  int32_t CommunityOf(DocId d) const {
    return doc_community_[static_cast<size_t>(d)];
  }

  /// Count/prior views for readers that consume the snapshot directly
  /// without materializing a working state (e.g. the per-sweep alias-table
  /// rebuild of the sparse backend).
  const std::vector<int32_t>& n_cz() const { return n_cz_; }
  const std::vector<int32_t>& n_zw() const { return n_zw_; }
  int num_communities() const { return num_communities_; }
  int num_topics() const { return num_topics_; }
  size_t vocab_size() const { return vocab_size_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Wire codec halves mirroring the capture split (distributed executor):
  /// the sweep-state blob ships once per sweep, the parameter blob only when
  /// parameters_version() changed. Decoding marks the receiving snapshot
  /// captured; DecodeParameters assigns a fresh process-local version (the
  /// sender's counter means nothing in another process — the sender signals
  /// "parameters changed" by including the blob at all). Structural errors
  /// are InvalidArgument; truncation surfaces as the reader's OutOfRange.
  void EncodeSweepState(WireWriter* writer) const;
  Status DecodeSweepState(WireReader* reader);
  void EncodeParameters(WireWriter* writer) const;
  Status DecodeParameters(WireReader* reader);

 private:
  bool captured_ = false;
  uint64_t parameters_version_ = 0;
  int num_communities_ = 0;
  int num_topics_ = 0;
  size_t vocab_size_ = 0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
  std::vector<int32_t> doc_topic_, doc_community_;
  std::vector<int32_t> n_uc_, n_u_, n_cz_, n_c_, n_zw_;
  std::vector<int64_t> n_z_;
  std::vector<double> lambda_, delta_, eta_, weights_;
  /// Placeholder shape until the first capture overwrites it.
  PopularityTable popularity_{1, 1, PopularityMode::kFraction};
};

/// Sparse diff of the collapsed counters plus the assignment moves that
/// produced it. One instance per shard per sweep; Merge() is associative and
/// commutative (count diffs add exactly; shards own disjoint document sets,
/// so assignment moves concatenate).
class CounterDelta {
 public:
  struct DocMove {
    DocId doc = 0;
    int32_t topic = 0;
    int32_t community = 0;
  };

  void Clear();
  bool Empty() const { return doc_moves_.empty(); }

  /// Number of nonzero sparse counter entries (merge-cost proxy reported by
  /// the bench suite).
  size_t NonzeroEntries() const;
  size_t NumDocMoves() const { return doc_moves_.size(); }

  /// Records document d (owned by `doc.user`, words `doc.words`) moving from
  /// (c_old, z_old) to (c_new, z_new). A no-op when nothing changed; net
  /// round trips cancel at apply time regardless.
  void RecordMove(const Document& doc, DocId d, int32_t c_old, int32_t z_old,
                  int32_t c_new, int32_t z_new, int num_communities,
                  int num_topics, size_t vocab_size);

  /// Accumulates `other` into this delta.
  void Merge(const CounterDelta& other);

  /// Adds the count diffs into the master counters and applies the
  /// assignment moves. Apply order is irrelevant (exact integer adds over
  /// disjoint or commuting entries).
  void ApplyTo(ModelState* state) const;

  /// Wire codec (distributed executor result shipping). DecodeFrom replaces
  /// this delta's contents; map entries round-trip in container order, which
  /// is irrelevant to ApplyTo/Merge (commutative integer adds).
  void EncodeTo(WireWriter* writer) const;
  Status DecodeFrom(WireReader* reader);

 private:
  std::vector<DocMove> doc_moves_;
  /// Flat-index -> diff maps mirroring the ModelState count layouts. n_u is
  /// absent by construction: a document never changes its user.
  std::unordered_map<int64_t, int32_t> user_community_;   // n_uc
  std::unordered_map<int64_t, int32_t> community_topic_;  // n_cz
  std::unordered_map<int64_t, int32_t> topic_word_;       // n_zw
  std::unordered_map<int32_t, int32_t> community_docs_;   // n_c
  std::unordered_map<int32_t, int64_t> topic_tokens_;     // n_z
};

}  // namespace cpd

#endif  // CPD_CORE_STATE_SNAPSHOT_H_
