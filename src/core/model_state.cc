#include "core/model_state.h"

#include <algorithm>

#include "util/logging.h"

namespace cpd {

ModelState::ModelState(const SocialGraph& graph, const CpdConfig& config)
    : num_communities(config.num_communities),
      num_topics(config.num_topics),
      num_users(graph.num_users()),
      num_documents(graph.num_documents()),
      vocab_size(graph.vocabulary_size()),
      alpha(config.ResolvedAlpha()),
      rho(config.ResolvedRho()),
      beta(config.beta),
      popularity(graph.num_time_bins(), config.num_topics,
                 config.popularity_mode) {
  doc_topic.assign(num_documents, 0);
  doc_community.assign(num_documents, 0);
  n_uc.assign(num_users * static_cast<size_t>(num_communities), 0);
  n_u.assign(num_users, 0);
  n_cz.assign(static_cast<size_t>(num_communities) * static_cast<size_t>(num_topics),
              0);
  n_c.assign(static_cast<size_t>(num_communities), 0);
  n_zw.assign(static_cast<size_t>(num_topics) * vocab_size, 0);
  n_z.assign(static_cast<size_t>(num_topics), 0);
  lambda.assign(graph.num_friendship_links(), 0.25);
  delta.assign(graph.num_diffusion_links(), 0.25);
  eta.assign(static_cast<size_t>(num_communities) *
                 static_cast<size_t>(num_communities) *
                 static_cast<size_t>(num_topics),
             1.0 / static_cast<double>(static_cast<size_t>(num_communities) *
                                       static_cast<size_t>(num_topics)));
  // Eq. 5's implicit unit coefficients on the community and popularity
  // factors; ablated factors are pinned to zero so they vanish both in the
  // Gibbs energies and in application-time scoring (Eq. 18). The individual
  // features (nu) start at zero and are learned in the M-step.
  weights.assign(kNumDiffusionWeights, 0.0);
  weights[kWeightEta] = 1.0;
  weights[kWeightPopularity] = config.ablation.topic_factor ? 1.0 : 0.0;

  // Per-document word histograms (run-length encode the sorted token list).
  doc_words.offsets.reserve(num_documents + 1);
  doc_words.offsets.push_back(0);
  std::vector<WordId> sorted;
  for (size_t d = 0; d < num_documents; ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    sorted.assign(doc.words.begin(), doc.words.end());
    std::sort(sorted.begin(), sorted.end());
    for (size_t k = 0; k < sorted.size();) {
      size_t run = k + 1;
      while (run < sorted.size() && sorted[run] == sorted[k]) ++run;
      doc_words.entries.push_back(
          {static_cast<int32_t>(sorted[k]), static_cast<int32_t>(run - k)});
      k = run;
    }
    doc_words.offsets.push_back(doc_words.entries.size());
  }
}

void ModelState::NonzeroUserCommunities(UserId u,
                                        std::vector<SparseCount>* out) const {
  out->clear();
  const size_t base = static_cast<size_t>(u) * static_cast<size_t>(num_communities);
  for (int c = 0; c < num_communities; ++c) {
    const int32_t count = n_uc[base + static_cast<size_t>(c)];
    if (count != 0) out->push_back({c, count});
  }
}

std::span<const SparseCount> ModelState::UserCommunityRow(UserId u) {
  if (uc_row_valid.empty()) {
    uc_row_cache.resize(num_users);
    uc_row_valid.assign(num_users, 0);
  }
  auto& row = uc_row_cache[static_cast<size_t>(u)];
  if (!uc_row_valid[static_cast<size_t>(u)]) {
    row.clear();
    const size_t base =
        static_cast<size_t>(u) * static_cast<size_t>(num_communities);
    for (int c = 0; c < num_communities; ++c) {
      const int32_t count = n_uc[base + static_cast<size_t>(c)];
      if (count != 0) row.push_back({c, count});
    }
    uc_row_valid[static_cast<size_t>(u)] = 1;
  }
  return row;
}

void ModelState::BumpUserCommunity(UserId u, int32_t c, int32_t delta) {
  const size_t slot =
      static_cast<size_t>(u) * static_cast<size_t>(num_communities) +
      static_cast<size_t>(c);
  n_uc[slot] += delta;
  if (uc_row_valid.empty() || !uc_row_valid[static_cast<size_t>(u)]) return;
  auto& row = uc_row_cache[static_cast<size_t>(u)];
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].index != c) continue;
    row[i].count += delta;
    if (row[i].count == 0) row.erase(row.begin() + static_cast<long>(i));
    return;
  }
  if (n_uc[slot] != 0) row.push_back({c, n_uc[slot]});
}

void ModelState::InvalidateUserCommunityRows() {
  std::fill(uc_row_valid.begin(), uc_row_valid.end(), 0);
}

void ModelState::InvalidateUserCommunityRows(std::span<const UserId> users) {
  if (uc_row_valid.empty()) return;
  for (UserId u : users) uc_row_valid[static_cast<size_t>(u)] = 0;
}

void ModelState::InitializeRandom(const SocialGraph& graph, Rng* rng,
                                  bool per_user_communities) {
  for (size_t d = 0; d < num_documents; ++d) {
    doc_topic[d] =
        static_cast<int32_t>(rng->NextUint64(static_cast<uint64_t>(num_topics)));
  }
  if (per_user_communities) {
    for (size_t u = 0; u < num_users; ++u) {
      const int32_t c = static_cast<int32_t>(
          rng->NextUint64(static_cast<uint64_t>(num_communities)));
      for (DocId d : graph.DocumentsOf(static_cast<UserId>(u))) {
        doc_community[static_cast<size_t>(d)] = c;
      }
    }
  } else {
    for (size_t d = 0; d < num_documents; ++d) {
      doc_community[d] = static_cast<int32_t>(
          rng->NextUint64(static_cast<uint64_t>(num_communities)));
    }
  }
}

void ModelState::RebuildCounts(const SocialGraph& graph) {
  InvalidateUserCommunityRows();
  std::fill(n_uc.begin(), n_uc.end(), 0);
  std::fill(n_u.begin(), n_u.end(), 0);
  std::fill(n_cz.begin(), n_cz.end(), 0);
  std::fill(n_c.begin(), n_c.end(), 0);
  std::fill(n_zw.begin(), n_zw.end(), 0);
  std::fill(n_z.begin(), n_z.end(), 0);
  for (size_t d = 0; d < num_documents; ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    const int32_t z = doc_topic[d];
    const int32_t c = doc_community[d];
    CPD_DCHECK(z >= 0 && z < num_topics);
    CPD_DCHECK(c >= 0 && c < num_communities);
    ++n_uc[static_cast<size_t>(doc.user) * static_cast<size_t>(num_communities) +
           static_cast<size_t>(c)];
    ++n_u[static_cast<size_t>(doc.user)];
    ++n_cz[static_cast<size_t>(c) * static_cast<size_t>(num_topics) +
           static_cast<size_t>(z)];
    ++n_c[static_cast<size_t>(c)];
    for (WordId w : doc.words) {
      ++n_zw[static_cast<size_t>(z) * vocab_size + static_cast<size_t>(w)];
    }
    n_z[static_cast<size_t>(z)] += static_cast<int64_t>(doc.words.size());
  }
}

double ModelState::MembershipDot(UserId u, UserId v) const {
  double dot = 0.0;
  for (int c = 0; c < num_communities; ++c) {
    dot += PiHat(u, c) * PiHat(v, c);
  }
  return dot;
}

double ModelState::CommunityDiffusionScore(UserId u, UserId v, int z) const {
  // sum_c sum_c' pihat_{u,c} thetahat_{c,z} eta_{c,c',z} thetahat_{c',z}
  //              pihat_{v,c'}  (Eq. 4, step 2).
  const int kc = num_communities;
  double score = 0.0;
  for (int c = 0; c < kc; ++c) {
    const double left = PiHat(u, c) * ThetaHat(c, z);
    if (left == 0.0) continue;
    double inner = 0.0;
    for (int c2 = 0; c2 < kc; ++c2) {
      inner += EtaAt(c, c2, z) * ThetaHat(c2, z) * PiHat(v, c2);
    }
    score += left * inner;
  }
  return score;
}

}  // namespace cpd
