#ifndef CPD_CORE_MODEL_CONFIG_H_
#define CPD_CORE_MODEL_CONFIG_H_

/// \file model_config.h
/// Configuration for the CPD model (paper §3-4), including the ablation
/// switches used by the model-design study (§6.2) and the baselines that are
/// structural restrictions of CPD (COLD).

#include <algorithm>
#include <cstdint>

#include "util/status.h"

namespace cpd {

/// How the topic-popularity factor n_tz (§3.1) is represented. The paper
/// says "the count of topic z at t"; raw counts saturate the sigmoid, so the
/// default is the per-bin fraction (see DESIGN.md §5).
enum class PopularityMode {
  kRaw,       ///< Raw count of topic-z diffusions in bin t.
  kFraction,  ///< Count divided by total diffusions in bin t.
  kLog1p,     ///< log(1 + count).
};

/// E-step sampling backend (§4.3 performance work). Both target the same
/// posterior; they must agree statistically.
enum class SamplerMode {
  /// Exact conditional scan: O(|Z|) per topic draw, O(|C|) per community
  /// draw with full log-space evaluation. Reference implementation.
  kDense,
  /// Sparse decomposition + stale Walker alias proposals with a
  /// Metropolis-Hastings correction (LightLDA-style cycle proposals).
  /// Amortized cost per document is proportional to the document length and
  /// the nonzero counts touched, not |Z| or |C|.
  kSparse,
};

/// How the E-step dispatches its snapshot/delta shards (§4.3 refactored as
/// plan -> snapshot -> shard-local sample -> delta-merge). Every mode samples
/// against an immutable StateSnapshot and emits CounterDeltas; only the
/// dispatch differs, so serial and pooled runs with the same seed and shard
/// count are bit-identical.
enum class ExecutorMode {
  /// num_threads == 1 -> kSerial, otherwise kPooled.
  kAuto,
  /// Shards run in shard order on the calling thread.
  kSerial,
  /// Shards fan out over a persistent thread pool.
  kPooled,
  /// Shards ship to cpd_worker processes over the src/dist wire protocol
  /// (snapshot out, CounterDelta back). Bit-identical to kSerial/kPooled for
  /// the same seed and shard count because shard RNG streams travel with
  /// their shards. Requires dist_workers or dist_worker_addrs.
  kDistributed,
};

/// Ablation / variant switches. Default = full CPD.
struct CpdAblation {
  /// false reproduces the "no joint modeling" baseline: detect communities
  /// from friendship links only, then freeze them and fit the profiles.
  bool joint_profiling = true;

  /// false reproduces "no heterogeneity": diffusion links are generated the
  /// same way as friendship links (Eq. 3), ignoring topics/eta/nu.
  bool heterogeneous_links = true;

  /// false drops the individual-preference factor nu^T f_uv from Eq. 5.
  bool individual_factor = true;

  /// false drops the topic-popularity factor n_tz from Eq. 5.
  bool topic_factor = true;

  /// false drops friendship links from the model entirely (COLD-style).
  bool model_friendship = true;

  /// false drops diffusion links from the model entirely.
  bool model_diffusion = true;
};

/// Full model configuration (Table 2 symbols in comments).
struct CpdConfig {
  int num_communities = 20;  ///< |C|
  int num_topics = 20;       ///< |Z|

  /// Dirichlet priors; negative values select the paper's convention
  /// alpha = 50/|Z|, rho = 50/|C| [13], capped so the prior stays sparse
  /// relative to the likelihood: alpha <= 1.0 and rho <= 0.1. The uncapped
  /// convention assumes the paper's data scale (hundreds of documents per
  /// user, where rho/n_u is negligible); at smaller scales an uncapped rho
  /// smooths every user's membership toward uniform and nothing is detected
  /// (see DESIGN.md §5). beta = 0.1.
  double alpha = -1.0;
  double rho = -1.0;
  double beta = 0.1;

  int em_iterations = 15;          ///< T1, outer variational-EM iterations.
  int gibbs_sweeps_per_em = 3;     ///< Collapsed-Gibbs sweeps per E-step.
  int nu_iterations = 60;          ///< T2, gradient steps for nu per M-step.
  double nu_learning_rate = 0.1;
  double nu_l2 = 1e-4;             ///< L2 regularization for nu.
  double eta_smoothing = 1e-3;     ///< Additive smoothing for eta aggregation.

  PopularityMode popularity_mode = PopularityMode::kFraction;

  /// E-step backend. kSparse (the alias-table + Metropolis-Hastings path) is
  /// the default now that it has soaked across the bench suite; kDense stays
  /// as the exact reference path (`--sampler dense` in cpd_train).
  SamplerMode sampler_mode = SamplerMode::kSparse;

  /// Metropolis-Hastings proposals per conditional draw in kSparse mode.
  /// More steps track the exact conditional more closely per sweep;
  /// LightLDA's cycle default is 2 (one prior proposal plus one word
  /// proposal for topics), but 4 buys noticeably better per-sweep mixing on
  /// small/medium graphs for a still-sublinear cost, so it is the default
  /// now that kSparse is the default backend.
  int mh_steps = 4;

  /// E-step shard dispatch (see ExecutorMode). kAuto follows num_threads.
  ExecutorMode executor_mode = ExecutorMode::kAuto;

  /// Number of snapshot/delta shards per sweep. 0 follows num_threads. More
  /// shards than threads is legal (they queue on the pool); a single shard
  /// reproduces sequential collapsed Gibbs exactly — modulo the collapse
  /// memo below, so also clear cache_eta_collapse (or use kDense) when an
  /// exact chain is the point.
  int num_shards = 0;

  /// Memoize the eta/theta endpoint collapse of the diffusion-link community
  /// term per (other endpoint, link topic, side) within a sweep, cutting the
  /// O(|C|^2) collapse per link to an O(|C|) lookup after the first link that
  /// shares the key. The memo enters the community kernel's MH *target*, so
  /// its within-sweep staleness is NOT corrected by the MH step — it is an
  /// uncorrected stale-read approximation of the same class as AD-LDA /
  /// multi-shard sweeps (bounded by one sweep; tables refresh at every
  /// sweep start). It therefore only applies to kSparse sweeps, keeping the
  /// dense path an exact reference; disable it for exact single-shard
  /// sparse chains. Hits/misses are reported in TrainStats.
  bool cache_eta_collapse = true;

  CpdAblation ablation;

  /// Distributed E-step (executor_mode == kDistributed). Exactly one of
  /// dist_workers (auto-spawned local cpd_worker processes) or
  /// dist_worker_addrs (comma-separated HOST:PORT list of pre-started
  /// workers) must be set.
  int dist_workers = 0;
  std::string dist_worker_addrs;
  /// Path of the worker binary to spawn; empty = "cpd_worker" next to the
  /// running executable.
  std::string dist_worker_binary;
  /// Per-sweep deadline: shards still pending on a worker after this long
  /// are re-dispatched to surviving workers (the stragglers are declared
  /// dead).
  int dist_sweep_deadline_ms = 30000;

  uint64_t seed = 42;
  int num_threads = 1;  ///< >1 enables the parallel E-step (§4.3).
  bool verbose = false;

  /// When non-empty, the trainer records per-sweep trace spans (snapshot,
  /// shard sample, merge, augmentation, M-step; per-worker rows for the
  /// distributed executor) and writes Chrome trace-event JSON here at the
  /// end of Train()/WarmStart() — load it in Perfetto / chrome://tracing
  /// (cpd_train --trace_out). Recording never perturbs sampling: executors
  /// emit only wall-clock spans, so traced and untraced runs stay
  /// bit-identical for the same seed.
  std::string trace_out;

  /// Resolved priors.
  double ResolvedAlpha() const {
    if (alpha > 0.0) return alpha;
    return std::min(1.0, 50.0 / static_cast<double>(num_topics));
  }
  double ResolvedRho() const {
    if (rho > 0.0) return rho;
    return std::min(0.1, 50.0 / static_cast<double>(num_communities));
  }

  /// Number of distributed workers implied by the config: the spawn count,
  /// or the address-list length when pre-started workers are used.
  int ResolvedDistWorkers() const {
    if (!dist_worker_addrs.empty()) {
      return 1 + static_cast<int>(std::count(dist_worker_addrs.begin(),
                                             dist_worker_addrs.end(), ','));
    }
    return dist_workers;
  }

  /// Resolved E-step sharding. Distributed runs default to one shard per
  /// worker so every worker gets work; the serial-identity invariant then
  /// requires comparing against a local run with the same shard count.
  int ResolvedNumShards() const {
    if (num_shards > 0) return num_shards;
    if (ResolvedExecutorMode() == ExecutorMode::kDistributed) {
      return std::max(1, ResolvedDistWorkers());
    }
    return std::max(1, num_threads);
  }
  ExecutorMode ResolvedExecutorMode() const {
    if (executor_mode != ExecutorMode::kAuto) return executor_mode;
    return num_threads > 1 ? ExecutorMode::kPooled : ExecutorMode::kSerial;
  }

  /// Validates field ranges.
  Status Validate() const {
    if (num_communities < 1) return Status::InvalidArgument("|C| < 1");
    if (num_topics < 1) return Status::InvalidArgument("|Z| < 1");
    if (beta <= 0.0) return Status::InvalidArgument("beta <= 0");
    if (em_iterations < 1) return Status::InvalidArgument("em_iterations < 1");
    if (gibbs_sweeps_per_em < 1) {
      return Status::InvalidArgument("gibbs_sweeps_per_em < 1");
    }
    if (nu_iterations < 0) return Status::InvalidArgument("nu_iterations < 0");
    if (mh_steps < 1) return Status::InvalidArgument("mh_steps < 1");
    if (num_shards < 0) return Status::InvalidArgument("num_shards < 0");
    if (nu_learning_rate <= 0.0) {
      return Status::InvalidArgument("nu_learning_rate <= 0");
    }
    if (num_threads < 1) return Status::InvalidArgument("num_threads < 1");
    if (dist_workers < 0) return Status::InvalidArgument("dist_workers < 0");
    if (dist_workers > 0 && !dist_worker_addrs.empty()) {
      return Status::InvalidArgument(
          "dist_workers and dist_worker_addrs are mutually exclusive");
    }
    if (executor_mode == ExecutorMode::kDistributed &&
        ResolvedDistWorkers() < 1) {
      return Status::InvalidArgument(
          "distributed executor requires dist_workers or dist_worker_addrs");
    }
    if (dist_sweep_deadline_ms < 1) {
      return Status::InvalidArgument("dist_sweep_deadline_ms < 1");
    }
    return Status::OK();
  }
};

}  // namespace cpd

#endif  // CPD_CORE_MODEL_CONFIG_H_
