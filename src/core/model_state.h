#ifndef CPD_CORE_MODEL_STATE_H_
#define CPD_CORE_MODEL_STATE_H_

/// \file model_state.h
/// Mutable inference state of the CPD sampler: topic/community assignments
/// per document, the collapsed count matrices of §4.1, the Polya-Gamma
/// augmentation variables, and the model parameters eta / nu / factor
/// weights. Data members are public by design — the Gibbs sampler and the
/// M-step are performance-critical and operate on the raw arrays.
///
/// In the snapshot/delta E-step (§4.3, state_snapshot.h) there is one
/// master ModelState owned by the trainer plus one private working copy per
/// executor slot; StateSnapshot freezes the master's mutable arrays per
/// sweep and restores them into the working copies, and the master advances
/// only by merged CounterDeltas.

#include <cstdint>
#include <span>
#include <vector>

#include "core/diffusion_features.h"
#include "core/model_config.h"
#include "graph/social_graph.h"
#include "util/rng.h"

namespace cpd {

/// Index of the learned factor weights (the logistic regression of the
/// M-step learns "how much each factor contributes", §3.1): the community
/// term c_bar^T eta_bar, the popularity term n_tz, four user features, bias.
inline constexpr int kWeightEta = 0;
inline constexpr int kWeightPopularity = 1;
inline constexpr int kWeightFeature0 = 2;  // .. kWeightFeature0+3
inline constexpr int kWeightBias = kWeightFeature0 + kNumUserFeatures;
inline constexpr int kNumDiffusionWeights = kWeightBias + 1;

/// One nonzero entry of a count row (index into the row + its count).
struct SparseCount {
  int32_t index = 0;
  int32_t count = 0;
  friend bool operator==(const SparseCount&, const SparseCount&) = default;
};

struct ModelState {
  ModelState(const SocialGraph& graph, const CpdConfig& config);

  /// CSR word-histogram view of every document, built once at construction.
  /// The sparse sampler evaluates the Dirichlet-multinomial word term over
  /// unique words (O(distinct) instead of the dense path's O(len^2)
  /// repeated-word rescans).
  struct DocWordView {
    std::vector<size_t> offsets;       ///< num_documents + 1.
    std::vector<SparseCount> entries;  ///< (word, multiplicity) runs.
    std::span<const SparseCount> Row(DocId d) const {
      return std::span<const SparseCount>(entries)
          .subspan(offsets[static_cast<size_t>(d)],
                   offsets[static_cast<size_t>(d) + 1] -
                       offsets[static_cast<size_t>(d)]);
    }
  };

  /// Random initial assignments; topics are drawn per document. Communities
  /// are drawn per document by default; with per_user_communities all of a
  /// user's documents start in one random community. The per-user start
  /// matters for friendship-only detection ("no joint" phase A): uniform
  /// per-document draws leave every pihat_u near-uniform, a symmetric fixed
  /// point where the friendship energy (Eq. 3) has no gradient. The joint
  /// model prefers the per-document start (content breaks symmetry first;
  /// block starts create sticky wrong commitments under a sparse rho).
  /// Counters are NOT built; call RebuildCounts afterwards.
  void InitializeRandom(const SocialGraph& graph, Rng* rng,
                        bool per_user_communities = false);

  /// Recomputes all count matrices from the current assignments (used by
  /// tests to verify sampler invariants and by the parallel driver after
  /// merging).
  void RebuildCounts(const SocialGraph& graph);

  // ----- sizes -----
  int num_communities = 0;
  int num_topics = 0;
  size_t num_users = 0;
  size_t num_documents = 0;
  size_t vocab_size = 0;
  double alpha = 0.0;
  double rho = 0.0;
  double beta = 0.0;

  // ----- assignments (per document) -----
  std::vector<int32_t> doc_topic;      ///< z_ui
  std::vector<int32_t> doc_community;  ///< c_ui

  // ----- sparse count views (sparse E-step, §4.3 perf work) -----
  /// Per-document word histograms (immutable once built).
  DocWordView doc_words;

  /// Appends the nonzero entries of user u's community row n_uc[u][.] to
  /// *out* (cleared first). A plain row scan: the point is to hand the
  /// sparse sampler the k_u << |C| support of the prior proposal without any
  /// log/exp work, not to beat O(|C|) memory traffic.
  void NonzeroUserCommunities(UserId u, std::vector<SparseCount>* out) const;

  /// Cached variant of NonzeroUserCommunities: the row is scanned once and
  /// then patched incrementally by BumpUserCommunity, so a user's later
  /// documents in the same sweep pay O(k_u) instead of O(|C|). The view is
  /// valid until the next BumpUserCommunity/invalidation for this user; the
  /// entry order is scan order plus appended re-entries (any order is a
  /// correct categorical support, and the order is deterministic). Not
  /// thread-safe: only single-threaded (shard-local) sweeps may use it —
  /// concurrent relaxed-atomic sweeps must stay on the scan variant.
  std::span<const SparseCount> UserCommunityRow(UserId u);

  /// Write-through n_uc update: adjusts the counter and, if user u's cached
  /// row is live, patches it in place (erasing emptied entries, appending
  /// new ones). Every non-concurrent n_uc mutation must go through here;
  /// bulk writers (RebuildCounts, snapshot restore, delta apply) instead
  /// invalidate the affected rows.
  void BumpUserCommunity(UserId u, int32_t c, int32_t delta);

  /// Drops every cached row (bulk n_uc rewrite) or only the given users'
  /// rows (sweep start for a shard's user span).
  void InvalidateUserCommunityRows();
  void InvalidateUserCommunityRows(std::span<const UserId> users);

  // ----- collapsed counters (Table 2 / §4.1) -----
  std::vector<int32_t> n_uc;  ///< |U|x|C|: docs of u assigned to community c.
  std::vector<int32_t> n_u;   ///< |U|: docs of u (constant once built).
  std::vector<int32_t> n_cz;  ///< |C|x|Z|: docs in community c with topic z.
  std::vector<int32_t> n_c;   ///< |C|: docs in community c.
  std::vector<int32_t> n_zw;  ///< |Z|x|W|: word w occurrences with topic z.
  std::vector<int64_t> n_z;   ///< |Z|: words assigned to topic z.

  // ----- Polya-Gamma augmentation -----
  std::vector<double> lambda;  ///< Per friendship link (Eq. 8/15).
  std::vector<double> delta;   ///< Per diffusion link (Eq. 9/16).

  // ----- model parameters -----
  std::vector<double> eta;      ///< |C|x|C|x|Z| diffusion profile tensor.
  std::vector<double> weights;  ///< kNumDiffusionWeights factor weights.

  /// Topic popularity n_tz; refreshed by the trainer.
  PopularityTable popularity;

  // ----- smoothed estimates -----
  /// pihat_{u,c} = (n_uc + rho) / (n_u + |C| rho).
  double PiHat(UserId u, int c) const {
    return (static_cast<double>(
                n_uc[static_cast<size_t>(u) * static_cast<size_t>(num_communities) +
                     static_cast<size_t>(c)]) +
            rho) /
           (static_cast<double>(n_u[static_cast<size_t>(u)]) +
            static_cast<double>(num_communities) * rho);
  }

  /// thetahat_{c,z} = (n_cz + alpha) / (n_c + |Z| alpha).
  double ThetaHat(int c, int z) const {
    return (static_cast<double>(
                n_cz[static_cast<size_t>(c) * static_cast<size_t>(num_topics) +
                     static_cast<size_t>(z)]) +
            alpha) /
           (static_cast<double>(n_c[static_cast<size_t>(c)]) +
            static_cast<double>(num_topics) * alpha);
  }

  /// phihat_{z,w} = (n_zw + beta) / (n_z + |W| beta).
  double PhiHat(int z, WordId w) const {
    return (static_cast<double>(n_zw[static_cast<size_t>(z) * vocab_size +
                                     static_cast<size_t>(w)]) +
            beta) /
           (static_cast<double>(n_z[static_cast<size_t>(z)]) +
            static_cast<double>(vocab_size) * beta);
  }

  double& EtaAt(int c, int c2, int z) {
    return eta[(static_cast<size_t>(c) * static_cast<size_t>(num_communities) +
                static_cast<size_t>(c2)) *
                   static_cast<size_t>(num_topics) +
               static_cast<size_t>(z)];
  }
  double EtaAt(int c, int c2, int z) const {
    return eta[(static_cast<size_t>(c) * static_cast<size_t>(num_communities) +
                static_cast<size_t>(c2)) *
                   static_cast<size_t>(num_topics) +
               static_cast<size_t>(z)];
  }

  /// pihat_u . pihat_v (Eq. 3 energy).
  double MembershipDot(UserId u, UserId v) const;

  // ----- n_uc row cache (see UserCommunityRow) -----
  /// Lazily allocated on first UserCommunityRow call; rows[u] is live iff
  /// row_valid[u]. Kept at the bottom: the sampler's hot arrays above keep
  /// their layout.
  std::vector<std::vector<SparseCount>> uc_row_cache;
  std::vector<uint8_t> uc_row_valid;

  /// The community-factor score S_eta = c_bar_ij^T eta_bar (Eq. 4) for users
  /// u (diffusing) and v (diffused) on topic z, under current estimates.
  double CommunityDiffusionScore(UserId u, UserId v, int z) const;
};

}  // namespace cpd

#endif  // CPD_CORE_MODEL_STATE_H_
