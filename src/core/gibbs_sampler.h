#ifndef CPD_CORE_GIBBS_SAMPLER_H_
#define CPD_CORE_GIBBS_SAMPLER_H_

/// \file gibbs_sampler.h
/// Collapsed Gibbs sampler with Polya-Gamma augmentation for CPD
/// (paper §4.1, Eqs. 13-16). The same kernels serve the serial E-step and
/// the multithreaded E-step of §4.3 (`concurrent = true` switches counter
/// updates to relaxed atomics; reads may then be slightly stale, which is the
/// standard AD-LDA-style approximation).
///
/// Two interchangeable E-step backends (CpdConfig::sampler_mode):
///  - kDense: exact conditional scan over every candidate topic/community in
///    log space. O(|Z|) resp. O(|C|) heavy log/exp evaluations per document.
///    Reference implementation; bit-for-bit the seed behavior.
///  - kSparse: the conditional is decomposed into a dense prior term served
///    by stale Walker alias tables (SparseSamplerTables, rebuilt once per
///    sweep) and sparse count terms iterated over nonzero entries only, with
///    a Metropolis-Hastings acceptance step correcting for proposal
///    staleness (LightLDA-style cycle proposals). Amortized cost per
///    document is O(len + links) per MH step instead of O(|Z| * len) /
///    O(|C| * links); the stationary distribution is identical.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/diffusion_features.h"
#include "core/model_config.h"
#include "core/model_state.h"
#include "graph/social_graph.h"
#include "sampling/alias_table.h"
#include "sampling/polya_gamma.h"
#include "util/rng.h"

namespace cpd {

class ThreadPool;

/// Stale alias proposal tables for the sparse E-step. Rebuilt once per sweep
/// from the current counts and read-only until the next rebuild; the MH
/// correction in the sparse kernels uses AliasTable::Probability() (the
/// build-time distribution) so staleness costs acceptance rate, never
/// correctness.
struct SparseSamplerTables {
  /// community_topic[c] draws z with q_c(z) proportional to n_cz[c][z] +
  /// alpha — the community-prior proposal of the topic conditional (Eq. 13).
  std::vector<AliasTable> community_topic;

  /// word_topic[w] draws z with q_w(z) proportional to n_zw[z][w] + beta —
  /// the word proposal (cycled with the prior proposal, as in LightLDA).
  std::vector<AliasTable> word_topic;

  bool ready() const { return !community_topic.empty(); }

  /// Rebuilds every table from the state's current counts. With a pool the
  /// per-community / per-word rebuilds are sharded across the workers (the
  /// trainer schedules this once per sweep inside the §4.3 segment plan);
  /// with nullptr the rebuild runs serially.
  void Rebuild(const ModelState& state, ThreadPool* pool);
};

/// Metropolis-Hastings diagnostics of the sparse sampler. Self-proposals
/// count as accepted (they are); rates near zero indicate pathologically
/// stale tables, rates near one a near-exact proposal.
struct MhStats {
  int64_t topic_proposals = 0;
  int64_t topic_accepts = 0;
  int64_t community_proposals = 0;
  int64_t community_accepts = 0;

  double TopicAcceptRate() const {
    return topic_proposals > 0
               ? static_cast<double>(topic_accepts) /
                     static_cast<double>(topic_proposals)
               : 0.0;
  }
  double CommunityAcceptRate() const {
    return community_proposals > 0
               ? static_cast<double>(community_accepts) /
                     static_cast<double>(community_proposals)
               : 0.0;
  }
};

class GibbsSampler {
 public:
  /// The sampler keeps references; graph/caches must outlive it and state is
  /// mutated in place.
  GibbsSampler(const SocialGraph& graph, const CpdConfig& config,
               const LinkCaches& caches, ModelState* state);

  /// One full sweep: resamples z_ui and c_ui for every document (Alg. 1
  /// steps 4-6). In sparse mode the alias tables are rebuilt at sweep start.
  void SweepDocuments(Rng* rng);

  /// Sweeps only the documents of the given users (one parallel segment).
  /// In sparse mode the caller must RebuildSparseTables() once per sweep
  /// before fanning out segments (the tables are shared and read-only).
  void SweepUsers(std::span<const UserId> users, bool concurrent, Rng* rng);

  /// Resamples every lambda_uv ~ PG(1, pihat_u . pihat_v) (Eq. 15),
  /// optionally restricted to a range of link indices [begin, end).
  void SweepFriendshipAugmentation(Rng* rng);
  void SweepFriendshipAugmentation(size_t begin, size_t end, Rng* rng);

  /// Resamples every delta_ij ~ PG(1, w_ij) (Eq. 16), optionally restricted
  /// to a range of link indices.
  void SweepDiffusionAugmentation(Rng* rng);
  void SweepDiffusionAugmentation(size_t begin, size_t end, Rng* rng);

  /// Per-document kernels (exposed for tests). Dispatch on
  /// config.sampler_mode; the *Dense/*Sparse variants are also exposed so
  /// the equivalence tests can drive both paths on one state.
  void ResampleTopic(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunity(DocId d, bool concurrent, Rng* rng);
  void ResampleTopicDense(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunityDense(DocId d, bool concurrent, Rng* rng);
  void ResampleTopicSparse(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunitySparse(DocId d, bool concurrent, Rng* rng);

  /// Sparse mode: rebuilds the stale alias proposal tables from the current
  /// counts (no-op work but cheap in dense mode — tables are simply unused).
  /// Serial callers may rely on SweepDocuments doing this; the parallel
  /// trainer calls it explicitly (optionally sharded over its pool) once per
  /// sweep before submitting segments.
  void RebuildSparseTables(ThreadPool* pool = nullptr);

  /// Snapshot / reset of the MH acceptance counters (sparse mode only).
  MhStats mh_stats() const;
  void ResetMhStats();

  /// w_ij of Eq. 5 (or the Eq. 3 energy under the no-heterogeneity
  /// ablation) for diffusion link index e under the current state.
  double DiffusionEnergy(size_t e) const;

  /// pihat_u . pihat_v for friendship link index f.
  double FriendshipEnergy(size_t f) const;

  /// Sum over observed links of log sigmoid(energy) — a training diagnostic
  /// (increases as the model fits the links).
  double LinkLogLikelihood() const;

  /// "No joint modeling" support: phase A detects communities from
  /// friendship links only (content and diffusion excluded from the
  /// community weights), phase B freezes communities.
  void set_freeze_communities(bool freeze) { freeze_communities_ = freeze; }
  void set_community_uses_content(bool use) { community_uses_content_ = use; }
  void set_community_uses_diffusion(bool use) { community_uses_diffusion_ = use; }

 private:
  /// log psi(w, x) = w/2 - x w^2 / 2 (the PG mixture kernel, Eq. 7).
  static double LogPsi(double w, double x) { return 0.5 * w - 0.5 * x * w * w; }

  /// Energy of a diffusion link given explicit endpoint users/topic; used by
  /// both DiffusionEnergy and candidate evaluation.
  double LinkEnergyParts(UserId u, UserId v, int z, int32_t time, size_t e,
                         double community_score) const;

  /// Shared counter bookkeeping: removes/adds one document's contribution to
  /// the topic-side (n_cz, n_c, n_zw, n_z) or community-side (n_uc, n_u,
  /// n_cz, n_c) counters.
  void RemoveDocTopicCounts(const Document& doc, int32_t c, int32_t z,
                            bool concurrent);
  void AddDocTopicCounts(const Document& doc, int32_t c, int32_t z,
                         bool concurrent);
  void RemoveDocCommunityCounts(UserId u, int32_t c, int32_t z,
                                bool concurrent);
  void AddDocCommunityCounts(UserId u, int32_t c, int32_t z, bool concurrent);

  /// Exact (current-counts) unnormalized log conditional of topic z for
  /// document d in community c — the MH target of the sparse topic kernel.
  double TopicLogWeight(DocId d, const Document& doc, int32_t c, int z) const;

  /// Shared candidate-vector math of the community conditional (Eq. 14),
  /// used identically by the dense scan and the sparse MH evaluator so the
  /// two backends cannot diverge. Both fill out[0..|C|) with the
  /// candidate-indexed term of one link and return base = sum_c q[c]*out[c],
  /// the candidate-independent part of the shifted-membership dot.
  ///
  /// Membership-dot links (friendship, or diffusion under the
  /// no-heterogeneity ablation): out[c] = pihat_{other,c}.
  double FillMembershipVector(UserId other, const double* q,
                              double* out) const;
  /// Heterogeneous diffusion links: out[] is the eta endpoint collapse
  ///   source side: out[c]  = th[c]  sum_c' eta[c][c'][z_e] th[c'] pio[c']
  ///   target side: out[c'] = th[c'] sum_c  eta[c][c'][z_e] th[c]  pio[c]
  /// where th must hold ThetaHat(., z_e).
  double FillEtaCollapseVector(UserId other, int z_e, bool is_source,
                               const double* q, const double* th,
                               double* out) const;

  const SocialGraph& graph_;
  const CpdConfig& config_;
  const LinkCaches& caches_;
  ModelState* state_;
  PolyaGammaSampler pg_;

  SparseSamplerTables tables_;

  std::atomic<int64_t> topic_proposals_{0};
  std::atomic<int64_t> topic_accepts_{0};
  std::atomic<int64_t> community_proposals_{0};
  std::atomic<int64_t> community_accepts_{0};

  bool freeze_communities_ = false;
  bool community_uses_content_ = true;
  bool community_uses_diffusion_ = true;
};

}  // namespace cpd

#endif  // CPD_CORE_GIBBS_SAMPLER_H_
