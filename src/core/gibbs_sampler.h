#ifndef CPD_CORE_GIBBS_SAMPLER_H_
#define CPD_CORE_GIBBS_SAMPLER_H_

/// \file gibbs_sampler.h
/// Collapsed Gibbs sampler with Polya-Gamma augmentation for CPD
/// (paper §4.1, Eqs. 13-16). The same kernels serve the serial E-step and
/// the multithreaded E-step of §4.3 (`concurrent = true` switches counter
/// updates to relaxed atomics; reads may then be slightly stale, which is the
/// standard AD-LDA-style approximation).

#include <span>
#include <vector>

#include "core/diffusion_features.h"
#include "core/model_config.h"
#include "core/model_state.h"
#include "graph/social_graph.h"
#include "sampling/polya_gamma.h"
#include "util/rng.h"

namespace cpd {

class GibbsSampler {
 public:
  /// The sampler keeps references; graph/caches must outlive it and state is
  /// mutated in place.
  GibbsSampler(const SocialGraph& graph, const CpdConfig& config,
               const LinkCaches& caches, ModelState* state);

  /// One full sweep: resamples z_ui and c_ui for every document (Alg. 1
  /// steps 4-6).
  void SweepDocuments(Rng* rng);

  /// Sweeps only the documents of the given users (one parallel segment).
  void SweepUsers(std::span<const UserId> users, bool concurrent, Rng* rng);

  /// Resamples every lambda_uv ~ PG(1, pihat_u . pihat_v) (Eq. 15),
  /// optionally restricted to a range of link indices [begin, end).
  void SweepFriendshipAugmentation(Rng* rng);
  void SweepFriendshipAugmentation(size_t begin, size_t end, Rng* rng);

  /// Resamples every delta_ij ~ PG(1, w_ij) (Eq. 16), optionally restricted
  /// to a range of link indices.
  void SweepDiffusionAugmentation(Rng* rng);
  void SweepDiffusionAugmentation(size_t begin, size_t end, Rng* rng);

  /// Per-document kernels (exposed for tests).
  void ResampleTopic(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunity(DocId d, bool concurrent, Rng* rng);

  /// w_ij of Eq. 5 (or the Eq. 3 energy under the no-heterogeneity
  /// ablation) for diffusion link index e under the current state.
  double DiffusionEnergy(size_t e) const;

  /// pihat_u . pihat_v for friendship link index f.
  double FriendshipEnergy(size_t f) const;

  /// Sum over observed links of log sigmoid(energy) — a training diagnostic
  /// (increases as the model fits the links).
  double LinkLogLikelihood() const;

  /// "No joint modeling" support: phase A detects communities from
  /// friendship links only (content and diffusion excluded from the
  /// community weights), phase B freezes communities.
  void set_freeze_communities(bool freeze) { freeze_communities_ = freeze; }
  void set_community_uses_content(bool use) { community_uses_content_ = use; }
  void set_community_uses_diffusion(bool use) { community_uses_diffusion_ = use; }

 private:
  /// log psi(w, x) = w/2 - x w^2 / 2 (the PG mixture kernel, Eq. 7).
  static double LogPsi(double w, double x) { return 0.5 * w - 0.5 * x * w * w; }

  /// Energy of a diffusion link given explicit endpoint users/topic; used by
  /// both DiffusionEnergy and candidate evaluation.
  double LinkEnergyParts(UserId u, UserId v, int z, int32_t time, size_t e,
                         double community_score) const;

  const SocialGraph& graph_;
  const CpdConfig& config_;
  const LinkCaches& caches_;
  ModelState* state_;
  PolyaGammaSampler pg_;

  bool freeze_communities_ = false;
  bool community_uses_content_ = true;
  bool community_uses_diffusion_ = true;
};

}  // namespace cpd

#endif  // CPD_CORE_GIBBS_SAMPLER_H_
