#ifndef CPD_CORE_GIBBS_SAMPLER_H_
#define CPD_CORE_GIBBS_SAMPLER_H_

/// \file gibbs_sampler.h
/// Collapsed Gibbs sampler with Polya-Gamma augmentation for CPD
/// (paper §4.1, Eqs. 13-16). The same kernels serve the serial E-step and
/// the shard-local snapshot/delta E-step of §4.3: each shard executor binds
/// one sampler to a private working ModelState and sweeps it single-threaded
/// (`concurrent = false`), so the trainer path needs no atomics. The
/// `concurrent = true` mode (relaxed-atomic counter updates over one shared
/// state, AD-LDA style) remains for direct embedders of the sampler.
///
/// Two interchangeable E-step backends (CpdConfig::sampler_mode):
///  - kDense: exact conditional scan over every candidate topic/community in
///    log space. O(|Z|) resp. O(|C|) heavy log/exp evaluations per document.
///    Reference implementation; bit-for-bit the seed behavior.
///  - kSparse: the conditional is decomposed into a dense prior term served
///    by stale Walker alias tables (SparseSamplerTables, rebuilt once per
///    sweep) and sparse count terms iterated over nonzero entries only, with
///    a Metropolis-Hastings acceptance step correcting for proposal
///    staleness (LightLDA-style cycle proposals). Amortized cost per
///    document is O(len + links) per MH step instead of O(|Z| * len) /
///    O(|C| * links); the stationary distribution is identical.

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/diffusion_features.h"
#include "core/model_config.h"
#include "core/model_state.h"
#include "graph/social_graph.h"
#include "sampling/alias_table.h"
#include "sampling/polya_gamma.h"
#include "util/rng.h"

namespace cpd {

class StateSnapshot;
class ThreadPool;

/// Stale alias proposal tables for the sparse E-step. Rebuilt once per sweep
/// from the current counts and read-only until the next rebuild; the MH
/// correction in the sparse kernels uses AliasTable::Probability() (the
/// build-time distribution) so staleness costs acceptance rate, never
/// correctness.
struct SparseSamplerTables {
  /// community_topic[c] draws z with q_c(z) proportional to n_cz[c][z] +
  /// alpha — the community-prior proposal of the topic conditional (Eq. 13).
  std::vector<AliasTable> community_topic;

  /// word_topic[w] draws z with q_w(z) proportional to n_zw[z][w] + beta —
  /// the word proposal (cycled with the prior proposal, as in LightLDA).
  std::vector<AliasTable> word_topic;

  bool ready() const { return !community_topic.empty(); }

  /// Rebuilds every table from the state's current counts; with a pool the
  /// per-community / per-word rebuilds are sharded across the workers, with
  /// nullptr the rebuild runs serially. Used by serial SweepDocuments
  /// callers and direct embedders of the sampler.
  void Rebuild(const ModelState& state, ThreadPool* pool);

  /// Same rebuild, reading the frozen counts of a StateSnapshot directly —
  /// the shard executors use this once per sweep so no working state has to
  /// be materialized just to source the tables.
  void Rebuild(const StateSnapshot& snapshot, ThreadPool* pool);
};

/// Metropolis-Hastings diagnostics of the sparse sampler. Self-proposals
/// count as accepted (they are); rates near zero indicate pathologically
/// stale tables, rates near one a near-exact proposal.
struct MhStats {
  int64_t topic_proposals = 0;
  int64_t topic_accepts = 0;
  int64_t community_proposals = 0;
  int64_t community_accepts = 0;

  double TopicAcceptRate() const {
    return topic_proposals > 0
               ? static_cast<double>(topic_accepts) /
                     static_cast<double>(topic_proposals)
               : 0.0;
  }
  double CommunityAcceptRate() const {
    return community_proposals > 0
               ? static_cast<double>(community_accepts) /
                     static_cast<double>(community_proposals)
               : 0.0;
  }
};

/// Hit/miss counters of the per-sweep eta/theta endpoint-collapse memo (the
/// diffusion-link community term; see CpdConfig::cache_eta_collapse).
struct CollapseCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  double HitRate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class GibbsSampler {
 public:
  /// The sampler keeps references; graph/caches must outlive it and state is
  /// mutated in place.
  GibbsSampler(const SocialGraph& graph, const CpdConfig& config,
               const LinkCaches& caches, ModelState* state);

  /// One full sweep: resamples z_ui and c_ui for every document (Alg. 1
  /// steps 4-6). In sparse mode the alias tables are rebuilt at sweep start.
  void SweepDocuments(Rng* rng);

  /// Sweeps only the documents of the given users (one parallel segment).
  /// In sparse mode the caller must RebuildSparseTables() once per sweep
  /// before fanning out segments (the tables are shared and read-only).
  void SweepUsers(std::span<const UserId> users, bool concurrent, Rng* rng);

  /// Resamples every lambda_uv ~ PG(1, pihat_u . pihat_v) (Eq. 15),
  /// optionally restricted to a range of link indices [begin, end).
  void SweepFriendshipAugmentation(Rng* rng);
  void SweepFriendshipAugmentation(size_t begin, size_t end, Rng* rng);

  /// Resamples every delta_ij ~ PG(1, w_ij) (Eq. 16), optionally restricted
  /// to a range of link indices.
  void SweepDiffusionAugmentation(Rng* rng);
  void SweepDiffusionAugmentation(size_t begin, size_t end, Rng* rng);

  /// Per-document kernels (exposed for tests). Dispatch on
  /// config.sampler_mode; the *Dense/*Sparse variants are also exposed so
  /// the equivalence tests can drive both paths on one state.
  void ResampleTopic(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunity(DocId d, bool concurrent, Rng* rng);
  void ResampleTopicDense(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunityDense(DocId d, bool concurrent, Rng* rng);
  void ResampleTopicSparse(DocId d, bool concurrent, Rng* rng);
  void ResampleCommunitySparse(DocId d, bool concurrent, Rng* rng);

  /// Sparse mode: rebuilds the stale alias proposal tables from the current
  /// counts (no-op work but cheap in dense mode — tables are simply unused).
  /// Serial callers may rely on SweepDocuments doing this; the parallel
  /// trainer calls it explicitly (optionally sharded over its pool) once per
  /// sweep before submitting segments.
  void RebuildSparseTables(ThreadPool* pool = nullptr);

  /// Points the sparse kernels at an externally owned, already-rebuilt table
  /// set. The shard executors rebuild one table set per sweep from the
  /// snapshot counts and share it read-only across every shard sampler
  /// (staleness is MH-corrected, exactly like the single-sampler case).
  /// Pass nullptr to fall back to the internally owned tables.
  void UseExternalSparseTables(const SparseSamplerTables* tables) {
    external_tables_ = tables;
  }

  /// Per-sweep collapse-memo counters (aggregated into TrainStats).
  CollapseCacheStats collapse_cache_stats() const {
    return {collapse_hits_, collapse_misses_};
  }
  void ResetCollapseCacheStats() {
    collapse_hits_ = 0;
    collapse_misses_ = 0;
  }

  /// Snapshot / reset of the MH acceptance counters (sparse mode only).
  MhStats mh_stats() const;
  void ResetMhStats();

  /// Adds externally accumulated counters into this sampler's totals. The
  /// trainer folds its shard samplers' MH stats into the master sampler
  /// after every E-step, so mh_stats() on the master keeps reporting
  /// acceptance health for the whole training run.
  void AccumulateMhStats(const MhStats& stats);

  /// w_ij of Eq. 5 (or the Eq. 3 energy under the no-heterogeneity
  /// ablation) for diffusion link index e under the current state.
  double DiffusionEnergy(size_t e) const;

  /// pihat_u . pihat_v for friendship link index f.
  double FriendshipEnergy(size_t f) const;

  /// Sum over observed links of log sigmoid(energy) — a training diagnostic
  /// (increases as the model fits the links).
  double LinkLogLikelihood() const;

  /// "No joint modeling" support: phase A detects communities from
  /// friendship links only (content and diffusion excluded from the
  /// community weights), phase B freezes communities.
  void set_freeze_communities(bool freeze) { freeze_communities_ = freeze; }
  void set_community_uses_content(bool use) { community_uses_content_ = use; }
  void set_community_uses_diffusion(bool use) { community_uses_diffusion_ = use; }
  bool freeze_communities() const { return freeze_communities_; }
  bool community_uses_content() const { return community_uses_content_; }
  bool community_uses_diffusion() const { return community_uses_diffusion_; }

 private:
  /// log psi(w, x) = w/2 - x w^2 / 2 (the PG mixture kernel, Eq. 7).
  static double LogPsi(double w, double x) { return 0.5 * w - 0.5 * x * w * w; }

  /// Energy of a diffusion link given explicit endpoint users/topic; used by
  /// both DiffusionEnergy and candidate evaluation.
  double LinkEnergyParts(UserId u, UserId v, int z, int32_t time, size_t e,
                         double community_score) const;

  /// Shared counter bookkeeping: removes/adds one document's contribution to
  /// the topic-side (n_cz, n_c, n_zw, n_z) or community-side (n_uc, n_u,
  /// n_cz, n_c) counters.
  void RemoveDocTopicCounts(const Document& doc, int32_t c, int32_t z,
                            bool concurrent);
  void AddDocTopicCounts(const Document& doc, int32_t c, int32_t z,
                         bool concurrent);
  void RemoveDocCommunityCounts(UserId u, int32_t c, int32_t z,
                                bool concurrent);
  void AddDocCommunityCounts(UserId u, int32_t c, int32_t z, bool concurrent);

  /// Exact (current-counts) unnormalized log conditional of topic z for
  /// document d in community c — the MH target of the sparse topic kernel.
  double TopicLogWeight(DocId d, const Document& doc, int32_t c, int z) const;

  /// Shared candidate-vector math of the community conditional (Eq. 14),
  /// used identically by the dense scan and the sparse MH evaluator so the
  /// two backends cannot diverge. Both fill out[0..|C|) with the
  /// candidate-indexed term of one link and return base = sum_c q[c]*out[c],
  /// the candidate-independent part of the shifted-membership dot.
  ///
  /// Membership-dot links (friendship, or diffusion under the
  /// no-heterogeneity ablation): out[c] = pihat_{other,c}.
  double FillMembershipVector(UserId other, const double* q,
                              double* out) const;

  /// Heterogeneous diffusion links: computes the eta endpoint collapse
  ///   source side: out[c]  = th[c]  sum_c' eta[c][c'][z_e] th[c'] pio[c']
  ///   target side: out[c'] = th[c'] sum_c  eta[c][c'][z_e] th[c]  pio[c]
  /// where th[.] = ThetaHat(., z_e) and pio is the fixed endpoint's
  /// membership — O(|C|^2) per call.
  void ComputeEtaCollapse(UserId other, int z_e, bool is_source,
                          double* out) const;

  /// Cached front end of ComputeEtaCollapse: within a sweep the collapse is
  /// keyed by (other, z_e, is_source), so repeated links sharing the key
  /// cost an O(|C|) lookup instead of the O(|C|^2) recompute. The returned
  /// pointer (|C| doubles) is valid until the next call. Cached values go
  /// stale as the sweep moves counts and the staleness is NOT MH-corrected
  /// (it enters the MH target) — an AD-LDA-class approximation, so the
  /// memo is only active inside non-concurrent *sparse* sweeps with
  /// config.cache_eta_collapse set; dense kernels and direct calls always
  /// get a fresh exact computation.
  const double* CollapsedEtaVector(UserId other, int z_e, bool is_source);

  /// The table set the sparse kernels read (external when shared by an
  /// executor, internal otherwise).
  const SparseSamplerTables& active_tables() const {
    return external_tables_ != nullptr ? *external_tables_ : tables_;
  }

  /// Activates (sparse mode + config flag) and clears the collapse memo for
  /// one single-threaded sweep; callers reset collapse_cache_active_ when
  /// the sweep ends.
  void BeginCollapseMemoSweep();

  const SocialGraph& graph_;
  const CpdConfig& config_;
  const LinkCaches& caches_;
  ModelState* state_;
  PolyaGammaSampler pg_;

  SparseSamplerTables tables_;
  const SparseSamplerTables* external_tables_ = nullptr;

  // Per-sweep eta/theta collapse memo (key -> offset of a |C|-vector in
  // collapse_vectors_). Cleared at sweep start; the owning sweep is
  // single-threaded (shard-local), so plain counters suffice.
  std::unordered_map<uint64_t, size_t> collapse_index_;
  std::vector<double> collapse_vectors_;
  bool collapse_cache_active_ = false;
  int64_t collapse_hits_ = 0;
  int64_t collapse_misses_ = 0;

  std::atomic<int64_t> topic_proposals_{0};
  std::atomic<int64_t> topic_accepts_{0};
  std::atomic<int64_t> community_proposals_{0};
  std::atomic<int64_t> community_accepts_{0};

  bool freeze_communities_ = false;
  bool community_uses_content_ = true;
  bool community_uses_diffusion_ = true;
};

}  // namespace cpd

#endif  // CPD_CORE_GIBBS_SAMPLER_H_
