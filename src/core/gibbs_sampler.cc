#include "core/gibbs_sampler.h"

#include <atomic>
#include <cmath>

#include "core/state_snapshot.h"
#include "parallel/thread_pool.h"
#include "sampling/distributions.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

namespace {

// Counter updates: plain in the serial sweep, relaxed atomics in the
// parallel sweep (benign-staleness reads, AD-LDA style).
inline void Add32(int32_t* x, int32_t d, bool concurrent) {
  if (concurrent) {
    std::atomic_ref<int32_t>(*x).fetch_add(d, std::memory_order_relaxed);
  } else {
    *x += d;
  }
}

inline void Add64(int64_t* x, int64_t d, bool concurrent) {
  if (concurrent) {
    std::atomic_ref<int64_t>(*x).fetch_add(d, std::memory_order_relaxed);
  } else {
    *x += d;
  }
}

}  // namespace

namespace {

// Shared body of the two Rebuild overloads: (re)builds the per-community
// and per-word alias tables from raw count arrays.
void RebuildTablesFromCounts(SparseSamplerTables* tables, const int32_t* n_cz,
                             const int32_t* n_zw, int kc, int kz, size_t vocab,
                             double alpha, double beta, ThreadPool* pool) {
  tables->community_topic.resize(static_cast<size_t>(kc));
  tables->word_topic.resize(vocab);

  const auto build_community = [tables, n_cz, kz, alpha](size_t c) {
    static thread_local std::vector<double> weights;
    weights.resize(static_cast<size_t>(kz));
    const size_t base = c * static_cast<size_t>(kz);
    for (int z = 0; z < kz; ++z) {
      weights[static_cast<size_t>(z)] =
          static_cast<double>(n_cz[base + static_cast<size_t>(z)]) + alpha;
    }
    tables->community_topic[c].Rebuild(weights);
  };
  const auto build_word = [tables, n_zw, kz, vocab, beta](size_t w) {
    static thread_local std::vector<double> weights;
    weights.resize(static_cast<size_t>(kz));
    for (int z = 0; z < kz; ++z) {
      weights[static_cast<size_t>(z)] =
          static_cast<double>(n_zw[static_cast<size_t>(z) * vocab + w]) + beta;
    }
    tables->word_topic[w].Rebuild(weights);
  };

  if (pool != nullptr && pool->num_threads() > 1) {
    // Shard whole table groups per worker; each alias rebuild is O(|Z|) so
    // chunking by index keeps the per-task overhead negligible.
    ParallelFor(pool, static_cast<size_t>(kc), build_community);
    ParallelFor(pool, vocab, build_word);
  } else {
    for (size_t c = 0; c < static_cast<size_t>(kc); ++c) build_community(c);
    for (size_t w = 0; w < vocab; ++w) build_word(w);
  }
}

}  // namespace

void SparseSamplerTables::Rebuild(const ModelState& state, ThreadPool* pool) {
  RebuildTablesFromCounts(this, state.n_cz.data(), state.n_zw.data(),
                          state.num_communities, state.num_topics,
                          state.vocab_size, state.alpha, state.beta, pool);
}

void SparseSamplerTables::Rebuild(const StateSnapshot& snapshot,
                                  ThreadPool* pool) {
  RebuildTablesFromCounts(this, snapshot.n_cz().data(), snapshot.n_zw().data(),
                          snapshot.num_communities(), snapshot.num_topics(),
                          snapshot.vocab_size(), snapshot.alpha(),
                          snapshot.beta(), pool);
}

GibbsSampler::GibbsSampler(const SocialGraph& graph, const CpdConfig& config,
                           const LinkCaches& caches, ModelState* state)
    : graph_(graph), config_(config), caches_(caches), state_(state) {
  CPD_CHECK(state != nullptr);
}

double GibbsSampler::LinkEnergyParts(UserId u, UserId v, int z, int32_t time,
                                     size_t e, double community_score) const {
  const ModelState& s = *state_;
  double w = s.weights[kWeightEta] * community_score + s.weights[kWeightBias];
  if (config_.ablation.topic_factor) {
    w += s.weights[kWeightPopularity] * s.popularity.Value(time, z);
  }
  if (config_.ablation.individual_factor) {
    double feats[kNumUserFeatures];
    const double* f = feats;
    if (e != static_cast<size_t>(-1)) {
      f = caches_.Features(e).data();
    } else {
      LinkCaches::ComputePairFeatures(graph_, u, v, feats);
    }
    for (int k = 0; k < kNumUserFeatures; ++k) {
      w += s.weights[kWeightFeature0 + k] * f[k];
    }
  }
  return w;
}

double GibbsSampler::DiffusionEnergy(size_t e) const {
  const ModelState& s = *state_;
  const DiffusionLink& link = graph_.diffusion_links()[e];
  const UserId u = graph_.document(link.i).user;
  const UserId v = graph_.document(link.j).user;
  if (!config_.ablation.heterogeneous_links) {
    // "No heterogeneity": diffusion links share the Eq. 3 friendship energy.
    return s.MembershipDot(u, v);
  }
  const int z = s.doc_topic[static_cast<size_t>(link.i)];
  const double score = s.CommunityDiffusionScore(u, v, z);
  return LinkEnergyParts(u, v, z, link.time, e, score);
}

double GibbsSampler::FriendshipEnergy(size_t f) const {
  const FriendshipLink& link = graph_.friendship_links()[f];
  return state_->MembershipDot(link.u, link.v);
}

double GibbsSampler::LinkLogLikelihood() const {
  double total = 0.0;
  if (config_.ablation.model_friendship) {
    for (size_t f = 0; f < graph_.num_friendship_links(); ++f) {
      total += -Log1pExp(-FriendshipEnergy(f));
    }
  }
  if (config_.ablation.model_diffusion) {
    for (size_t e = 0; e < graph_.num_diffusion_links(); ++e) {
      total += -Log1pExp(-DiffusionEnergy(e));
    }
  }
  return total;
}

void GibbsSampler::RemoveDocTopicCounts(const Document& doc, int32_t c,
                                        int32_t z, bool concurrent) {
  ModelState& s = *state_;
  const int kz = s.num_topics;
  const size_t vocab = s.vocab_size;
  Add32(&s.n_cz[static_cast<size_t>(c) * kz + z], -1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c)], -1, concurrent);
  for (WordId w : doc.words) {
    Add32(&s.n_zw[static_cast<size_t>(z) * vocab + static_cast<size_t>(w)], -1,
          concurrent);
  }
  Add64(&s.n_z[static_cast<size_t>(z)],
        -static_cast<int64_t>(doc.words.size()), concurrent);
}

void GibbsSampler::AddDocTopicCounts(const Document& doc, int32_t c, int32_t z,
                                     bool concurrent) {
  ModelState& s = *state_;
  const int kz = s.num_topics;
  const size_t vocab = s.vocab_size;
  Add32(&s.n_cz[static_cast<size_t>(c) * kz + z], 1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c)], 1, concurrent);
  for (WordId w : doc.words) {
    Add32(&s.n_zw[static_cast<size_t>(z) * vocab + static_cast<size_t>(w)], 1,
          concurrent);
  }
  Add64(&s.n_z[static_cast<size_t>(z)], static_cast<int64_t>(doc.words.size()),
        concurrent);
}

void GibbsSampler::RemoveDocCommunityCounts(UserId u, int32_t c, int32_t z,
                                            bool concurrent) {
  ModelState& s = *state_;
  const int kz = s.num_topics;
  const int kc = s.num_communities;
  if (concurrent) {
    // The n_uc row cache is not thread-safe; concurrent relaxed-atomic
    // sweeps bypass it (and never consult it in the kernels).
    Add32(&s.n_uc[static_cast<size_t>(u) * kc + c], -1, concurrent);
  } else {
    s.BumpUserCommunity(u, c, -1);
  }
  Add32(&s.n_u[static_cast<size_t>(u)], -1, concurrent);
  Add32(&s.n_cz[static_cast<size_t>(c) * kz + z], -1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c)], -1, concurrent);
}

void GibbsSampler::AddDocCommunityCounts(UserId u, int32_t c, int32_t z,
                                         bool concurrent) {
  ModelState& s = *state_;
  const int kz = s.num_topics;
  const int kc = s.num_communities;
  if (concurrent) {
    Add32(&s.n_uc[static_cast<size_t>(u) * kc + c], 1, concurrent);
  } else {
    s.BumpUserCommunity(u, c, 1);
  }
  Add32(&s.n_u[static_cast<size_t>(u)], 1, concurrent);
  Add32(&s.n_cz[static_cast<size_t>(c) * kz + z], 1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c)], 1, concurrent);
}

void GibbsSampler::ResampleTopic(DocId d, bool concurrent, Rng* rng) {
  if (config_.sampler_mode == SamplerMode::kSparse) {
    ResampleTopicSparse(d, concurrent, rng);
  } else {
    ResampleTopicDense(d, concurrent, rng);
  }
}

void GibbsSampler::ResampleCommunity(DocId d, bool concurrent, Rng* rng) {
  if (config_.sampler_mode == SamplerMode::kSparse) {
    ResampleCommunitySparse(d, concurrent, rng);
  } else {
    ResampleCommunityDense(d, concurrent, rng);
  }
}

void GibbsSampler::ResampleTopicDense(DocId d, bool concurrent, Rng* rng) {
  ModelState& s = *state_;
  const Document& doc = graph_.document(d);
  const UserId u = doc.user;
  const int kz = s.num_topics;
  const size_t vocab = s.vocab_size;
  const int32_t c = s.doc_community[static_cast<size_t>(d)];
  const int32_t z_old = s.doc_topic[static_cast<size_t>(d)];
  const size_t len = doc.words.size();

  // Exclude the document: topic-side counters only (community unchanged).
  RemoveDocTopicCounts(doc, c, z_old, concurrent);

  static thread_local std::vector<double> logw;
  logw.assign(static_cast<size_t>(kz), 0.0);

  const double v_beta = static_cast<double>(vocab) * s.beta;
  for (int z = 0; z < kz; ++z) {
    // Community-topic term (denominator n_c is candidate-independent).
    double lw = std::log(
        static_cast<double>(s.n_cz[static_cast<size_t>(c) * kz + z]) + s.alpha);
    // Dirichlet-multinomial word term of Eq. 13 (single topic per document);
    // the inner "+ occurrences so far" handles repeated words.
    for (size_t k = 0; k < len; ++k) {
      int prev = 0;
      for (size_t k2 = 0; k2 < k; ++k2) {
        if (doc.words[k2] == doc.words[k]) ++prev;
      }
      lw += std::log(static_cast<double>(
                         s.n_zw[static_cast<size_t>(z) * vocab +
                                static_cast<size_t>(doc.words[k])]) +
                     s.beta + static_cast<double>(prev));
    }
    for (size_t j = 0; j < len; ++j) {
      lw -= std::log(static_cast<double>(s.n_z[static_cast<size_t>(z)]) + v_beta +
                     static_cast<double>(j));
    }
    logw[static_cast<size_t>(z)] = lw;
  }

  // Diffusion psi terms (Eq. 13's product over Lambda_i). Only links where
  // this document is the diffusing side depend on the candidate topic; links
  // where it is the diffused side keep the source document's topic.
  if (config_.ablation.model_diffusion && config_.ablation.heterogeneous_links &&
      community_uses_diffusion_) {
    for (int32_t e_idx : graph_.DiffusionNeighbors(d)) {
      const DiffusionLink& link = graph_.diffusion_links()[static_cast<size_t>(e_idx)];
      if (link.i != d) continue;
      const UserId v = graph_.document(link.j).user;
      const double de = s.delta[static_cast<size_t>(e_idx)];
      for (int z = 0; z < kz; ++z) {
        const double score = s.CommunityDiffusionScore(u, v, z);
        const double w = LinkEnergyParts(u, v, z, link.time,
                                         static_cast<size_t>(e_idx), score);
        logw[static_cast<size_t>(z)] += LogPsi(w, de);
      }
    }
  }

  const int32_t z_new =
      static_cast<int32_t>(SampleCategoricalFromLog(logw, rng));
  s.doc_topic[static_cast<size_t>(d)] = z_new;
  AddDocTopicCounts(doc, c, z_new, concurrent);
}

double GibbsSampler::TopicLogWeight(DocId d, const Document& doc, int32_t c,
                                    int z) const {
  const ModelState& s = *state_;
  const int kz = s.num_topics;
  const size_t vocab = s.vocab_size;
  const size_t len = doc.words.size();
  const double v_beta = static_cast<double>(vocab) * s.beta;

  double lw = std::log(
      static_cast<double>(s.n_cz[static_cast<size_t>(c) * kz + z]) + s.alpha);
  // Dirichlet-multinomial word term over unique words: the histogram form of
  // the dense path's "+ occurrences so far" product (same multiset, so the
  // same value without the O(len^2) rescan).
  for (const SparseCount& entry : s.doc_words.Row(d)) {
    const double base = static_cast<double>(
        s.n_zw[static_cast<size_t>(z) * vocab + static_cast<size_t>(entry.index)]);
    for (int i = 0; i < entry.count; ++i) {
      lw += std::log(base + s.beta + static_cast<double>(i));
    }
  }
  for (size_t j = 0; j < len; ++j) {
    lw -= std::log(static_cast<double>(s.n_z[static_cast<size_t>(z)]) + v_beta +
                   static_cast<double>(j));
  }

  if (config_.ablation.model_diffusion && config_.ablation.heterogeneous_links &&
      community_uses_diffusion_) {
    const UserId u = doc.user;
    for (int32_t e_idx : graph_.DiffusionNeighbors(d)) {
      const DiffusionLink& link =
          graph_.diffusion_links()[static_cast<size_t>(e_idx)];
      if (link.i != d) continue;
      const UserId v = graph_.document(link.j).user;
      const double de = s.delta[static_cast<size_t>(e_idx)];
      const double score = s.CommunityDiffusionScore(u, v, z);
      const double w =
          LinkEnergyParts(u, v, z, link.time, static_cast<size_t>(e_idx), score);
      lw += LogPsi(w, de);
    }
  }
  return lw;
}

void GibbsSampler::ResampleTopicSparse(DocId d, bool concurrent, Rng* rng) {
  if (!active_tables().ready()) {
    // Lazy init is inherently serial; a concurrent caller that skipped
    // RebuildSparseTables() would race the table construction, and an
    // executor sharing external tables must rebuild them before the sweep —
    // fail loudly instead of corrupting memory.
    CPD_CHECK(!concurrent && external_tables_ == nullptr);
    RebuildSparseTables();
  }
  const SparseSamplerTables& tables = active_tables();
  ModelState& s = *state_;
  const Document& doc = graph_.document(d);
  const int32_t c = s.doc_community[static_cast<size_t>(d)];
  const int32_t z_old = s.doc_topic[static_cast<size_t>(d)];
  const size_t len = doc.words.size();

  RemoveDocTopicCounts(doc, c, z_old, concurrent);

  // MH chain targeting the exact conditional, started at the current
  // assignment. Cycle proposals: even steps draw from the community-prior
  // table, odd steps from a random word's table. Both proposals have full
  // support (alpha/beta smoothing), so the chain is irreducible regardless
  // of staleness.
  int32_t z_cur = z_old;
  double lw_cur = TopicLogWeight(d, doc, c, z_cur);
  int64_t proposals = 0;
  int64_t accepts = 0;
  for (int step = 0; step < config_.mh_steps; ++step) {
    const bool word_proposal = (step % 2 == 1) && len > 0;
    const AliasTable& table =
        word_proposal
            ? tables.word_topic[static_cast<size_t>(
                  doc.words[static_cast<size_t>(rng->NextUint64(len))])]
            : tables.community_topic[static_cast<size_t>(c)];
    const int32_t z_prop = static_cast<int32_t>(table.Sample(rng));
    ++proposals;
    if (z_prop == z_cur) {
      ++accepts;
      continue;
    }
    const double lw_prop = TopicLogWeight(d, doc, c, z_prop);
    const double log_accept =
        lw_prop - lw_cur +
        std::log(table.Probability(static_cast<size_t>(z_cur))) -
        std::log(table.Probability(static_cast<size_t>(z_prop)));
    if (log_accept >= 0.0 || rng->NextDoubleOpen() < std::exp(log_accept)) {
      z_cur = z_prop;
      lw_cur = lw_prop;
      ++accepts;
    }
  }
  topic_proposals_.fetch_add(proposals, std::memory_order_relaxed);
  topic_accepts_.fetch_add(accepts, std::memory_order_relaxed);

  s.doc_topic[static_cast<size_t>(d)] = z_cur;
  AddDocTopicCounts(doc, c, z_cur, concurrent);
}

double GibbsSampler::FillMembershipVector(UserId other, const double* q,
                                          double* out) const {
  const ModelState& s = *state_;
  const int kc = s.num_communities;
  const double other_denom =
      static_cast<double>(s.n_u[static_cast<size_t>(other)]) +
      static_cast<double>(kc) * s.rho;
  double base = 0.0;
  for (int c = 0; c < kc; ++c) {
    out[c] = (static_cast<double>(s.n_uc[static_cast<size_t>(other) * kc + c]) +
              s.rho) /
             other_denom;
    base += q[c] * out[c];
  }
  return base;
}

void GibbsSampler::ComputeEtaCollapse(UserId other, int z_e, bool is_source,
                                      double* out) const {
  const ModelState& s = *state_;
  const int kc = s.num_communities;
  static thread_local std::vector<double> pio, th;
  pio.resize(static_cast<size_t>(kc));
  th.resize(static_cast<size_t>(kc));
  const double other_denom =
      static_cast<double>(s.n_u[static_cast<size_t>(other)]) +
      static_cast<double>(kc) * s.rho;
  for (int c = 0; c < kc; ++c) {
    pio[static_cast<size_t>(c)] =
        (static_cast<double>(s.n_uc[static_cast<size_t>(other) * kc + c]) +
         s.rho) /
        other_denom;
    th[static_cast<size_t>(c)] = s.ThetaHat(c, z_e);
  }
  // a[c] collapses the fixed endpoint so each candidate costs O(1):
  //   source side: a[c]  = th[c]  sum_c' eta[c][c'][z_e] th[c'] pio[c']
  //   target side: a[c'] = th[c'] sum_c  eta[c][c'][z_e] th[c]  pio[c]
  if (is_source) {
    for (int c = 0; c < kc; ++c) {
      double inner = 0.0;
      for (int c2 = 0; c2 < kc; ++c2) {
        inner += s.EtaAt(c, c2, z_e) * th[static_cast<size_t>(c2)] *
                 pio[static_cast<size_t>(c2)];
      }
      out[c] = th[static_cast<size_t>(c)] * inner;
    }
  } else {
    for (int c2 = 0; c2 < kc; ++c2) {
      double inner = 0.0;
      for (int c = 0; c < kc; ++c) {
        inner += s.EtaAt(c, c2, z_e) * th[static_cast<size_t>(c)] *
                 pio[static_cast<size_t>(c)];
      }
      out[c2] = th[static_cast<size_t>(c2)] * inner;
    }
  }
}

namespace {

// Upper bound on memoized collapse keys per sampler per sweep: bounds the
// memo at kCollapseMemoMaxEntries * |C| doubles (e.g. ~10 MB at |C| = 20)
// on graphs with very many distinct (endpoint, topic, side) keys. Overflow
// keys fall back to the uncached exact computation.
constexpr size_t kCollapseMemoMaxEntries = 1 << 16;

}  // namespace

const double* GibbsSampler::CollapsedEtaVector(UserId other, int z_e,
                                               bool is_source) {
  const size_t kc = static_cast<size_t>(state_->num_communities);
  if (!collapse_cache_active_) {
    static thread_local std::vector<double> scratch;
    scratch.resize(kc);
    ComputeEtaCollapse(other, z_e, is_source, scratch.data());
    return scratch.data();
  }
  const uint64_t key = (static_cast<uint64_t>(other) *
                            static_cast<uint64_t>(state_->num_topics) +
                        static_cast<uint64_t>(z_e)) *
                           2ULL +
                       (is_source ? 1ULL : 0ULL);
  const auto it = collapse_index_.find(key);
  if (it != collapse_index_.end()) {
    ++collapse_hits_;
    return collapse_vectors_.data() + it->second;
  }
  ++collapse_misses_;
  if (collapse_index_.size() >= kCollapseMemoMaxEntries) {
    static thread_local std::vector<double> scratch;
    scratch.resize(kc);
    ComputeEtaCollapse(other, z_e, is_source, scratch.data());
    return scratch.data();
  }
  const size_t offset = collapse_vectors_.size();
  collapse_vectors_.resize(offset + kc);
  ComputeEtaCollapse(other, z_e, is_source, collapse_vectors_.data() + offset);
  collapse_index_.emplace(key, offset);
  return collapse_vectors_.data() + offset;
}

void GibbsSampler::ResampleCommunityDense(DocId d, bool concurrent, Rng* rng) {
  if (freeze_communities_) return;
  ModelState& s = *state_;
  const Document& doc = graph_.document(d);
  const UserId u = doc.user;
  const int kz = s.num_topics;
  const int kc = s.num_communities;
  const int32_t z = s.doc_topic[static_cast<size_t>(d)];
  const int32_t c_old = s.doc_community[static_cast<size_t>(d)];

  // Exclude the document: community-side counters.
  RemoveDocCommunityCounts(u, c_old, z, concurrent);

  static thread_local std::vector<double> logw, q, pio;
  logw.assign(static_cast<size_t>(kc), 0.0);
  q.resize(static_cast<size_t>(kc));

  // pihat_u(candidate) = (q[c] + [c == candidate]) / denom_pi.
  const double denom_pi = static_cast<double>(s.n_u[static_cast<size_t>(u)]) + 1.0 +
                          static_cast<double>(kc) * s.rho;
  for (int c = 0; c < kc; ++c) {
    q[static_cast<size_t>(c)] =
        static_cast<double>(s.n_uc[static_cast<size_t>(u) * kc + c]) + s.rho;
    logw[static_cast<size_t>(c)] = std::log(q[static_cast<size_t>(c)]);
  }
  if (community_uses_content_) {
    const double z_alpha = static_cast<double>(kz) * s.alpha;
    for (int c = 0; c < kc; ++c) {
      logw[static_cast<size_t>(c)] +=
          std::log(static_cast<double>(s.n_cz[static_cast<size_t>(c) * kz + z]) +
                   s.alpha) -
          std::log(static_cast<double>(s.n_c[static_cast<size_t>(c)]) + z_alpha);
    }
  }

  // Friendship psi terms over Lambda_u (Eq. 14). The candidate shifts one
  // coordinate of pihat_u; the neighbor's pihat is held at current counts.
  if (config_.ablation.model_friendship) {
    pio.resize(static_cast<size_t>(kc));
    for (int32_t f_idx : caches_.FriendLinksOf(u)) {
      const FriendshipLink& fl = graph_.friendship_links()[static_cast<size_t>(f_idx)];
      const UserId other = (fl.u == u) ? fl.v : fl.u;
      const double lam = s.lambda[static_cast<size_t>(f_idx)];
      const double base = FillMembershipVector(other, q.data(), pio.data());
      for (int cand = 0; cand < kc; ++cand) {
        const double dot = (base + pio[static_cast<size_t>(cand)]) / denom_pi;
        logw[static_cast<size_t>(cand)] += LogPsi(dot, lam);
      }
    }
  }

  // Diffusion psi terms over Lambda_i (Eq. 14).
  if (config_.ablation.model_diffusion && community_uses_diffusion_) {
    pio.resize(static_cast<size_t>(kc));
    for (int32_t e_idx : graph_.DiffusionNeighbors(d)) {
      const DiffusionLink& link = graph_.diffusion_links()[static_cast<size_t>(e_idx)];
      const double de = s.delta[static_cast<size_t>(e_idx)];
      const bool is_source = (link.i == d);
      const UserId other = is_source ? graph_.document(link.j).user
                                     : graph_.document(link.i).user;

      if (!config_.ablation.heterogeneous_links) {
        // Ablated variant: diffusion links behave like friendship links.
        const double base = FillMembershipVector(other, q.data(), pio.data());
        for (int cand = 0; cand < kc; ++cand) {
          const double dot = (base + pio[static_cast<size_t>(cand)]) / denom_pi;
          logw[static_cast<size_t>(cand)] += LogPsi(dot, de);
        }
        continue;
      }

      // Link topic: the diffusing document's topic.
      const int z_e =
          is_source ? z : s.doc_topic[static_cast<size_t>(link.i)];
      const double* a = CollapsedEtaVector(other, z_e, is_source);
      double base = 0.0;
      for (int c = 0; c < kc; ++c) {
        base += q[static_cast<size_t>(c)] * a[c];
      }
      const UserId src_user = is_source ? u : other;
      const UserId dst_user = is_source ? other : u;
      const double const_part =
          LinkEnergyParts(src_user, dst_user, z_e, link.time,
                          static_cast<size_t>(e_idx), 0.0);
      const double w_eta = s.weights[kWeightEta];
      for (int cand = 0; cand < kc; ++cand) {
        const double score = (base + a[cand]) / denom_pi;
        const double w = const_part + w_eta * score;
        logw[static_cast<size_t>(cand)] += LogPsi(w, de);
      }
    }
  }

  const int32_t c_new =
      static_cast<int32_t>(SampleCategoricalFromLog(logw, rng));
  s.doc_community[static_cast<size_t>(d)] = c_new;
  AddDocCommunityCounts(u, c_new, z, concurrent);
}

void GibbsSampler::ResampleCommunitySparse(DocId d, bool concurrent, Rng* rng) {
  if (freeze_communities_) return;
  ModelState& s = *state_;
  const Document& doc = graph_.document(d);
  const UserId u = doc.user;
  const int kz = s.num_topics;
  const int kc = s.num_communities;
  const int32_t z = s.doc_topic[static_cast<size_t>(d)];
  const int32_t c_old = s.doc_community[static_cast<size_t>(d)];

  RemoveDocCommunityCounts(u, c_old, z, concurrent);

  // The conditional factors as  p(c) ∝ (n_uc[u][c] + rho) * R(c)  where R
  // collects the content term and the link psi terms. We propose directly
  // from the *fresh* prior factor — its sparse part is the user's nonzero
  // community row, its dense part is the flat rho mass — so the MH ratio
  // reduces to R(c_prop) / R(c_cur): no O(|C|) log/exp scan anywhere.
  // Shard-local sweeps read the write-through row cache (O(k_u) after the
  // user's first document); concurrent sweeps fall back to the fresh scan.
  static thread_local std::vector<SparseCount> nonzero_scratch;
  std::span<const SparseCount> nonzero;
  if (concurrent) {
    s.NonzeroUserCommunities(u, &nonzero_scratch);
    nonzero = nonzero_scratch;
  } else {
    nonzero = s.UserCommunityRow(u);
  }
  const double sparse_mass = static_cast<double>(s.n_u[static_cast<size_t>(u)]);
  const double rho_mass = static_cast<double>(kc) * s.rho;
  const double denom_pi = sparse_mass + 1.0 + rho_mass;

  // q[c] = n_uc + rho (candidate-independent base masses for the link dots).
  static thread_local std::vector<double> q;
  q.resize(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    q[static_cast<size_t>(c)] =
        static_cast<double>(s.n_uc[static_cast<size_t>(u) * kc + c]) + s.rho;
  }

  // Per-link candidate evaluators, precomputed once per document so each MH
  // candidate costs O(1) per link afterwards. `vec` holds the link's
  // candidate-indexed array (pio for membership-dot links, the collapsed a[]
  // for heterogeneous diffusion links) in one flat buffer.
  struct LinkEval {
    double base = 0.0;       // Candidate-independent part of the dot.
    double aug = 0.0;        // Polya-Gamma variable (lambda or delta).
    double const_part = 0.0; // Non-community energy terms (kind 1 only).
    double w_eta = 1.0;      // Eta weight (kind 1 only).
    size_t vec_offset = 0;   // Offset of this link's C-vector in `vecs`.
    bool heterogeneous = false;
  };
  static thread_local std::vector<LinkEval> links;
  static thread_local std::vector<double> vecs;
  links.clear();
  vecs.clear();

  const auto push_membership_link = [&](UserId other, double aug) {
    LinkEval ev;
    ev.aug = aug;
    ev.vec_offset = vecs.size();
    vecs.resize(vecs.size() + static_cast<size_t>(kc));
    ev.base = FillMembershipVector(other, q.data(), vecs.data() + ev.vec_offset);
    links.push_back(ev);
  };

  if (config_.ablation.model_friendship) {
    for (int32_t f_idx : caches_.FriendLinksOf(u)) {
      const FriendshipLink& fl =
          graph_.friendship_links()[static_cast<size_t>(f_idx)];
      const UserId other = (fl.u == u) ? fl.v : fl.u;
      push_membership_link(other, s.lambda[static_cast<size_t>(f_idx)]);
    }
  }

  if (config_.ablation.model_diffusion && community_uses_diffusion_) {
    for (int32_t e_idx : graph_.DiffusionNeighbors(d)) {
      const DiffusionLink& link =
          graph_.diffusion_links()[static_cast<size_t>(e_idx)];
      const double de = s.delta[static_cast<size_t>(e_idx)];
      const bool is_source = (link.i == d);
      const UserId other = is_source ? graph_.document(link.j).user
                                     : graph_.document(link.i).user;
      if (!config_.ablation.heterogeneous_links) {
        push_membership_link(other, de);
        continue;
      }

      const int z_e = is_source ? z : s.doc_topic[static_cast<size_t>(link.i)];

      LinkEval ev;
      ev.heterogeneous = true;
      ev.aug = de;
      ev.vec_offset = vecs.size();
      vecs.resize(vecs.size() + static_cast<size_t>(kc));
      // Copy the (possibly memoized) collapse into the flat buffer — the
      // cache may grow while later links are evaluated, so the pointer must
      // not be retained.
      const double* a = CollapsedEtaVector(other, z_e, is_source);
      double base = 0.0;
      for (int c = 0; c < kc; ++c) {
        vecs[ev.vec_offset + static_cast<size_t>(c)] = a[c];
        base += q[static_cast<size_t>(c)] * a[c];
      }
      ev.base = base;
      const UserId src_user = is_source ? u : other;
      const UserId dst_user = is_source ? other : u;
      ev.const_part = LinkEnergyParts(src_user, dst_user, z_e, link.time,
                                      static_cast<size_t>(e_idx), 0.0);
      ev.w_eta = s.weights[kWeightEta];
      links.push_back(ev);
    }
  }

  const double z_alpha = static_cast<double>(kz) * s.alpha;
  const auto log_rest = [&](int cand) {
    double lw = 0.0;
    if (community_uses_content_) {
      lw += std::log(
                static_cast<double>(s.n_cz[static_cast<size_t>(cand) * kz + z]) +
                s.alpha) -
            std::log(static_cast<double>(s.n_c[static_cast<size_t>(cand)]) +
                     z_alpha);
    }
    for (const LinkEval& ev : links) {
      const double val =
          (ev.base + vecs[ev.vec_offset + static_cast<size_t>(cand)]) / denom_pi;
      const double w =
          ev.heterogeneous ? ev.const_part + ev.w_eta * val : val;
      lw += LogPsi(w, ev.aug);
    }
    return lw;
  };

  const auto propose_from_prior = [&]() -> int32_t {
    const double r = rng->NextDouble() * (sparse_mass + rho_mass);
    if (r < sparse_mass) {
      double acc = 0.0;
      for (const SparseCount& entry : nonzero) {
        acc += static_cast<double>(entry.count);
        if (r < acc) return entry.index;
      }
      return nonzero.empty() ? 0 : nonzero.back().index;
    }
    return static_cast<int32_t>(rng->NextUint64(static_cast<uint64_t>(kc)));
  };

  int32_t c_cur = c_old;
  double lw_cur = log_rest(c_cur);
  int64_t proposals = 0;
  int64_t accepts = 0;
  for (int step = 0; step < config_.mh_steps; ++step) {
    const int32_t c_prop = propose_from_prior();
    ++proposals;
    if (c_prop == c_cur) {
      ++accepts;
      continue;
    }
    const double lw_prop = log_rest(c_prop);
    // Proposal ∝ fresh prior factor, which therefore cancels out of the MH
    // ratio: accept with min(1, R(c_prop)/R(c_cur)).
    const double log_accept = lw_prop - lw_cur;
    if (log_accept >= 0.0 || rng->NextDoubleOpen() < std::exp(log_accept)) {
      c_cur = c_prop;
      lw_cur = lw_prop;
      ++accepts;
    }
  }
  community_proposals_.fetch_add(proposals, std::memory_order_relaxed);
  community_accepts_.fetch_add(accepts, std::memory_order_relaxed);

  s.doc_community[static_cast<size_t>(d)] = c_cur;
  AddDocCommunityCounts(u, c_cur, z, concurrent);
}

void GibbsSampler::RebuildSparseTables(ThreadPool* pool) {
  tables_.Rebuild(*state_, pool);
}

MhStats GibbsSampler::mh_stats() const {
  MhStats stats;
  stats.topic_proposals = topic_proposals_.load(std::memory_order_relaxed);
  stats.topic_accepts = topic_accepts_.load(std::memory_order_relaxed);
  stats.community_proposals =
      community_proposals_.load(std::memory_order_relaxed);
  stats.community_accepts = community_accepts_.load(std::memory_order_relaxed);
  return stats;
}

void GibbsSampler::ResetMhStats() {
  topic_proposals_.store(0, std::memory_order_relaxed);
  topic_accepts_.store(0, std::memory_order_relaxed);
  community_proposals_.store(0, std::memory_order_relaxed);
  community_accepts_.store(0, std::memory_order_relaxed);
}

void GibbsSampler::AccumulateMhStats(const MhStats& stats) {
  topic_proposals_.fetch_add(stats.topic_proposals, std::memory_order_relaxed);
  topic_accepts_.fetch_add(stats.topic_accepts, std::memory_order_relaxed);
  community_proposals_.fetch_add(stats.community_proposals,
                                 std::memory_order_relaxed);
  community_accepts_.fetch_add(stats.community_accepts,
                               std::memory_order_relaxed);
}

// The collapse memo requires (a) a sampler driven by a single thread for
// the whole sweep — shard-local or serial sweeps; legacy concurrent callers
// share the sampler across threads, so the memo members must not even be
// touched there — and (b) tolerance for within-sweep staleness: the memo
// feeds the community kernel's MH target, so the staleness is an
// uncorrected AD-LDA-class approximation, acceptable for the sparse
// backend but not for the dense exact-reference path.
void GibbsSampler::BeginCollapseMemoSweep() {
  collapse_cache_active_ = config_.cache_eta_collapse &&
                           config_.sampler_mode == SamplerMode::kSparse;
  collapse_index_.clear();
  collapse_vectors_.clear();
}

void GibbsSampler::SweepDocuments(Rng* rng) {
  if (config_.sampler_mode == SamplerMode::kSparse &&
      external_tables_ == nullptr) {
    RebuildSparseTables();
  }
  BeginCollapseMemoSweep();
  // Counts may have been rewritten since the last sweep (delta merge,
  // direct mutation); rebuild the n_uc row cache lazily from scratch.
  state_->InvalidateUserCommunityRows();
  for (size_t u = 0; u < graph_.num_users(); ++u) {
    for (DocId d : graph_.DocumentsOf(static_cast<UserId>(u))) {
      ResampleTopic(d, /*concurrent=*/false, rng);
      ResampleCommunity(d, /*concurrent=*/false, rng);
    }
  }
  collapse_cache_active_ = false;
}

void GibbsSampler::SweepUsers(std::span<const UserId> users, bool concurrent,
                              Rng* rng) {
  if (!concurrent) {
    BeginCollapseMemoSweep();
    state_->InvalidateUserCommunityRows(users);
  }
  for (UserId u : users) {
    for (DocId d : graph_.DocumentsOf(u)) {
      ResampleTopic(d, concurrent, rng);
      ResampleCommunity(d, concurrent, rng);
    }
  }
  if (!concurrent) collapse_cache_active_ = false;
}

void GibbsSampler::SweepFriendshipAugmentation(Rng* rng) {
  SweepFriendshipAugmentation(0, graph_.num_friendship_links(), rng);
}

void GibbsSampler::SweepFriendshipAugmentation(size_t begin, size_t end,
                                               Rng* rng) {
  if (!config_.ablation.model_friendship) return;
  for (size_t f = begin; f < end; ++f) {
    state_->lambda[f] = pg_.Sample(FriendshipEnergy(f), rng);
  }
}

void GibbsSampler::SweepDiffusionAugmentation(Rng* rng) {
  SweepDiffusionAugmentation(0, graph_.num_diffusion_links(), rng);
}

void GibbsSampler::SweepDiffusionAugmentation(size_t begin, size_t end, Rng* rng) {
  if (!config_.ablation.model_diffusion) return;
  for (size_t e = begin; e < end; ++e) {
    state_->delta[e] = pg_.Sample(DiffusionEnergy(e), rng);
  }
}

}  // namespace cpd
