#include "core/gibbs_sampler.h"

#include <atomic>
#include <cmath>

#include "sampling/distributions.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

namespace {

// Counter updates: plain in the serial sweep, relaxed atomics in the
// parallel sweep (benign-staleness reads, AD-LDA style).
inline void Add32(int32_t* x, int32_t d, bool concurrent) {
  if (concurrent) {
    std::atomic_ref<int32_t>(*x).fetch_add(d, std::memory_order_relaxed);
  } else {
    *x += d;
  }
}

inline void Add64(int64_t* x, int64_t d, bool concurrent) {
  if (concurrent) {
    std::atomic_ref<int64_t>(*x).fetch_add(d, std::memory_order_relaxed);
  } else {
    *x += d;
  }
}

}  // namespace

GibbsSampler::GibbsSampler(const SocialGraph& graph, const CpdConfig& config,
                           const LinkCaches& caches, ModelState* state)
    : graph_(graph), config_(config), caches_(caches), state_(state) {
  CPD_CHECK(state != nullptr);
}

double GibbsSampler::LinkEnergyParts(UserId u, UserId v, int z, int32_t time,
                                     size_t e, double community_score) const {
  const ModelState& s = *state_;
  double w = s.weights[kWeightEta] * community_score + s.weights[kWeightBias];
  if (config_.ablation.topic_factor) {
    w += s.weights[kWeightPopularity] * s.popularity.Value(time, z);
  }
  if (config_.ablation.individual_factor) {
    double feats[kNumUserFeatures];
    const double* f = feats;
    if (e != static_cast<size_t>(-1)) {
      f = caches_.Features(e).data();
    } else {
      LinkCaches::ComputePairFeatures(graph_, u, v, feats);
    }
    for (int k = 0; k < kNumUserFeatures; ++k) {
      w += s.weights[kWeightFeature0 + k] * f[k];
    }
  }
  return w;
}

double GibbsSampler::DiffusionEnergy(size_t e) const {
  const ModelState& s = *state_;
  const DiffusionLink& link = graph_.diffusion_links()[e];
  const UserId u = graph_.document(link.i).user;
  const UserId v = graph_.document(link.j).user;
  if (!config_.ablation.heterogeneous_links) {
    // "No heterogeneity": diffusion links share the Eq. 3 friendship energy.
    return s.MembershipDot(u, v);
  }
  const int z = s.doc_topic[static_cast<size_t>(link.i)];
  const double score = s.CommunityDiffusionScore(u, v, z);
  return LinkEnergyParts(u, v, z, link.time, e, score);
}

double GibbsSampler::FriendshipEnergy(size_t f) const {
  const FriendshipLink& link = graph_.friendship_links()[f];
  return state_->MembershipDot(link.u, link.v);
}

double GibbsSampler::LinkLogLikelihood() const {
  double total = 0.0;
  if (config_.ablation.model_friendship) {
    for (size_t f = 0; f < graph_.num_friendship_links(); ++f) {
      total += -Log1pExp(-FriendshipEnergy(f));
    }
  }
  if (config_.ablation.model_diffusion) {
    for (size_t e = 0; e < graph_.num_diffusion_links(); ++e) {
      total += -Log1pExp(-DiffusionEnergy(e));
    }
  }
  return total;
}

void GibbsSampler::ResampleTopic(DocId d, bool concurrent, Rng* rng) {
  ModelState& s = *state_;
  const Document& doc = graph_.document(d);
  const UserId u = doc.user;
  const int kz = s.num_topics;
  const size_t vocab = s.vocab_size;
  const int32_t c = s.doc_community[static_cast<size_t>(d)];
  const int32_t z_old = s.doc_topic[static_cast<size_t>(d)];
  const size_t len = doc.words.size();

  // Exclude the document: topic-side counters only (community unchanged).
  Add32(&s.n_cz[static_cast<size_t>(c) * kz + z_old], -1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c)], -1, concurrent);
  for (WordId w : doc.words) {
    Add32(&s.n_zw[static_cast<size_t>(z_old) * vocab + static_cast<size_t>(w)], -1,
          concurrent);
  }
  Add64(&s.n_z[static_cast<size_t>(z_old)], -static_cast<int64_t>(len), concurrent);

  static thread_local std::vector<double> logw;
  logw.assign(static_cast<size_t>(kz), 0.0);

  const double v_beta = static_cast<double>(vocab) * s.beta;
  for (int z = 0; z < kz; ++z) {
    // Community-topic term (denominator n_c is candidate-independent).
    double lw = std::log(
        static_cast<double>(s.n_cz[static_cast<size_t>(c) * kz + z]) + s.alpha);
    // Dirichlet-multinomial word term of Eq. 13 (single topic per document);
    // the inner "+ occurrences so far" handles repeated words.
    for (size_t k = 0; k < len; ++k) {
      int prev = 0;
      for (size_t k2 = 0; k2 < k; ++k2) {
        if (doc.words[k2] == doc.words[k]) ++prev;
      }
      lw += std::log(static_cast<double>(
                         s.n_zw[static_cast<size_t>(z) * vocab +
                                static_cast<size_t>(doc.words[k])]) +
                     s.beta + static_cast<double>(prev));
    }
    for (size_t j = 0; j < len; ++j) {
      lw -= std::log(static_cast<double>(s.n_z[static_cast<size_t>(z)]) + v_beta +
                     static_cast<double>(j));
    }
    logw[static_cast<size_t>(z)] = lw;
  }

  // Diffusion psi terms (Eq. 13's product over Lambda_i). Only links where
  // this document is the diffusing side depend on the candidate topic; links
  // where it is the diffused side keep the source document's topic.
  if (config_.ablation.model_diffusion && config_.ablation.heterogeneous_links &&
      community_uses_diffusion_) {
    for (int32_t e_idx : graph_.DiffusionNeighbors(d)) {
      const DiffusionLink& link = graph_.diffusion_links()[static_cast<size_t>(e_idx)];
      if (link.i != d) continue;
      const UserId v = graph_.document(link.j).user;
      const double de = s.delta[static_cast<size_t>(e_idx)];
      for (int z = 0; z < kz; ++z) {
        const double score = s.CommunityDiffusionScore(u, v, z);
        const double w = LinkEnergyParts(u, v, z, link.time,
                                         static_cast<size_t>(e_idx), score);
        logw[static_cast<size_t>(z)] += LogPsi(w, de);
      }
    }
  }

  const int32_t z_new =
      static_cast<int32_t>(SampleCategoricalFromLog(logw, rng));
  s.doc_topic[static_cast<size_t>(d)] = z_new;
  Add32(&s.n_cz[static_cast<size_t>(c) * kz + z_new], 1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c)], 1, concurrent);
  for (WordId w : doc.words) {
    Add32(&s.n_zw[static_cast<size_t>(z_new) * vocab + static_cast<size_t>(w)], 1,
          concurrent);
  }
  Add64(&s.n_z[static_cast<size_t>(z_new)], static_cast<int64_t>(len), concurrent);
}

void GibbsSampler::ResampleCommunity(DocId d, bool concurrent, Rng* rng) {
  if (freeze_communities_) return;
  ModelState& s = *state_;
  const Document& doc = graph_.document(d);
  const UserId u = doc.user;
  const int kz = s.num_topics;
  const int kc = s.num_communities;
  const int32_t z = s.doc_topic[static_cast<size_t>(d)];
  const int32_t c_old = s.doc_community[static_cast<size_t>(d)];

  // Exclude the document: community-side counters.
  Add32(&s.n_uc[static_cast<size_t>(u) * kc + c_old], -1, concurrent);
  Add32(&s.n_u[static_cast<size_t>(u)], -1, concurrent);
  Add32(&s.n_cz[static_cast<size_t>(c_old) * kz + z], -1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c_old)], -1, concurrent);

  static thread_local std::vector<double> logw, q, pio, th, a;
  logw.assign(static_cast<size_t>(kc), 0.0);
  q.resize(static_cast<size_t>(kc));

  // pihat_u(candidate) = (q[c] + [c == candidate]) / denom_pi.
  const double denom_pi = static_cast<double>(s.n_u[static_cast<size_t>(u)]) + 1.0 +
                          static_cast<double>(kc) * s.rho;
  for (int c = 0; c < kc; ++c) {
    q[static_cast<size_t>(c)] =
        static_cast<double>(s.n_uc[static_cast<size_t>(u) * kc + c]) + s.rho;
    logw[static_cast<size_t>(c)] = std::log(q[static_cast<size_t>(c)]);
  }
  if (community_uses_content_) {
    const double z_alpha = static_cast<double>(kz) * s.alpha;
    for (int c = 0; c < kc; ++c) {
      logw[static_cast<size_t>(c)] +=
          std::log(static_cast<double>(s.n_cz[static_cast<size_t>(c) * kz + z]) +
                   s.alpha) -
          std::log(static_cast<double>(s.n_c[static_cast<size_t>(c)]) + z_alpha);
    }
  }

  // Friendship psi terms over Lambda_u (Eq. 14). The candidate shifts one
  // coordinate of pihat_u; the neighbor's pihat is held at current counts.
  if (config_.ablation.model_friendship) {
    pio.resize(static_cast<size_t>(kc));
    for (int32_t f_idx : caches_.FriendLinksOf(u)) {
      const FriendshipLink& fl = graph_.friendship_links()[static_cast<size_t>(f_idx)];
      const UserId other = (fl.u == u) ? fl.v : fl.u;
      const double lam = s.lambda[static_cast<size_t>(f_idx)];
      const double other_denom =
          static_cast<double>(s.n_u[static_cast<size_t>(other)]) +
          static_cast<double>(kc) * s.rho;
      double base = 0.0;
      for (int c = 0; c < kc; ++c) {
        pio[static_cast<size_t>(c)] =
            (static_cast<double>(s.n_uc[static_cast<size_t>(other) * kc + c]) +
             s.rho) /
            other_denom;
        base += q[static_cast<size_t>(c)] * pio[static_cast<size_t>(c)];
      }
      for (int cand = 0; cand < kc; ++cand) {
        const double dot = (base + pio[static_cast<size_t>(cand)]) / denom_pi;
        logw[static_cast<size_t>(cand)] += LogPsi(dot, lam);
      }
    }
  }

  // Diffusion psi terms over Lambda_i (Eq. 14).
  if (config_.ablation.model_diffusion && community_uses_diffusion_) {
    th.resize(static_cast<size_t>(kc));
    a.resize(static_cast<size_t>(kc));
    pio.resize(static_cast<size_t>(kc));
    for (int32_t e_idx : graph_.DiffusionNeighbors(d)) {
      const DiffusionLink& link = graph_.diffusion_links()[static_cast<size_t>(e_idx)];
      const double de = s.delta[static_cast<size_t>(e_idx)];
      const bool is_source = (link.i == d);
      const UserId other = is_source ? graph_.document(link.j).user
                                     : graph_.document(link.i).user;

      if (!config_.ablation.heterogeneous_links) {
        // Ablated variant: diffusion links behave like friendship links.
        const double other_denom =
            static_cast<double>(s.n_u[static_cast<size_t>(other)]) +
            static_cast<double>(kc) * s.rho;
        double base = 0.0;
        for (int c = 0; c < kc; ++c) {
          pio[static_cast<size_t>(c)] =
              (static_cast<double>(s.n_uc[static_cast<size_t>(other) * kc + c]) +
               s.rho) /
              other_denom;
          base += q[static_cast<size_t>(c)] * pio[static_cast<size_t>(c)];
        }
        for (int cand = 0; cand < kc; ++cand) {
          const double dot = (base + pio[static_cast<size_t>(cand)]) / denom_pi;
          logw[static_cast<size_t>(cand)] += LogPsi(dot, de);
        }
        continue;
      }

      // Link topic: the diffusing document's topic.
      const int z_e =
          is_source ? z : s.doc_topic[static_cast<size_t>(link.i)];
      for (int c = 0; c < kc; ++c) {
        th[static_cast<size_t>(c)] = s.ThetaHat(c, z_e);
      }
      const double other_denom =
          static_cast<double>(s.n_u[static_cast<size_t>(other)]) +
          static_cast<double>(kc) * s.rho;
      for (int c = 0; c < kc; ++c) {
        pio[static_cast<size_t>(c)] =
            (static_cast<double>(s.n_uc[static_cast<size_t>(other) * kc + c]) +
             s.rho) /
            other_denom;
      }
      // a[c] collapses the fixed endpoint so each candidate costs O(1):
      //   source side: a[c]  = th[c]  sum_c' eta[c][c'][z_e] th[c'] pio[c']
      //   target side: a[c'] = th[c'] sum_c  eta[c][c'][z_e] th[c]  pio[c]
      if (is_source) {
        for (int c = 0; c < kc; ++c) {
          double inner = 0.0;
          for (int c2 = 0; c2 < kc; ++c2) {
            inner += s.EtaAt(c, c2, z_e) * th[static_cast<size_t>(c2)] *
                     pio[static_cast<size_t>(c2)];
          }
          a[static_cast<size_t>(c)] = th[static_cast<size_t>(c)] * inner;
        }
      } else {
        for (int c2 = 0; c2 < kc; ++c2) {
          double inner = 0.0;
          for (int c = 0; c < kc; ++c) {
            inner += s.EtaAt(c, c2, z_e) * th[static_cast<size_t>(c)] *
                     pio[static_cast<size_t>(c)];
          }
          a[static_cast<size_t>(c2)] = th[static_cast<size_t>(c2)] * inner;
        }
      }
      double base = 0.0;
      for (int c = 0; c < kc; ++c) {
        base += q[static_cast<size_t>(c)] * a[static_cast<size_t>(c)];
      }
      const UserId src_user = is_source ? u : other;
      const UserId dst_user = is_source ? other : u;
      const double const_part =
          LinkEnergyParts(src_user, dst_user, z_e, link.time,
                          static_cast<size_t>(e_idx), 0.0);
      const double w_eta = s.weights[kWeightEta];
      for (int cand = 0; cand < kc; ++cand) {
        const double score = (base + a[static_cast<size_t>(cand)]) / denom_pi;
        const double w = const_part + w_eta * score;
        logw[static_cast<size_t>(cand)] += LogPsi(w, de);
      }
    }
  }

  const int32_t c_new =
      static_cast<int32_t>(SampleCategoricalFromLog(logw, rng));
  s.doc_community[static_cast<size_t>(d)] = c_new;
  Add32(&s.n_uc[static_cast<size_t>(u) * kc + c_new], 1, concurrent);
  Add32(&s.n_u[static_cast<size_t>(u)], 1, concurrent);
  Add32(&s.n_cz[static_cast<size_t>(c_new) * kz + z], 1, concurrent);
  Add32(&s.n_c[static_cast<size_t>(c_new)], 1, concurrent);
}

void GibbsSampler::SweepDocuments(Rng* rng) {
  for (size_t u = 0; u < graph_.num_users(); ++u) {
    for (DocId d : graph_.DocumentsOf(static_cast<UserId>(u))) {
      ResampleTopic(d, /*concurrent=*/false, rng);
      ResampleCommunity(d, /*concurrent=*/false, rng);
    }
  }
}

void GibbsSampler::SweepUsers(std::span<const UserId> users, bool concurrent,
                              Rng* rng) {
  for (UserId u : users) {
    for (DocId d : graph_.DocumentsOf(u)) {
      ResampleTopic(d, concurrent, rng);
      ResampleCommunity(d, concurrent, rng);
    }
  }
}

void GibbsSampler::SweepFriendshipAugmentation(Rng* rng) {
  SweepFriendshipAugmentation(0, graph_.num_friendship_links(), rng);
}

void GibbsSampler::SweepFriendshipAugmentation(size_t begin, size_t end,
                                               Rng* rng) {
  if (!config_.ablation.model_friendship) return;
  for (size_t f = begin; f < end; ++f) {
    state_->lambda[f] = pg_.Sample(FriendshipEnergy(f), rng);
  }
}

void GibbsSampler::SweepDiffusionAugmentation(Rng* rng) {
  SweepDiffusionAugmentation(0, graph_.num_diffusion_links(), rng);
}

void GibbsSampler::SweepDiffusionAugmentation(size_t begin, size_t end, Rng* rng) {
  if (!config_.ablation.model_diffusion) return;
  for (size_t e = begin; e < end; ++e) {
    state_->delta[e] = pg_.Sample(DiffusionEnergy(e), rng);
  }
}

}  // namespace cpd
