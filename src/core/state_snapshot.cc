#include "core/state_snapshot.h"

#include <atomic>

#include "util/logging.h"

namespace cpd {

namespace {

// Parameter versions are process-unique, not per-instance: a slot that
// cached "version N restored" can never be fooled by a different (or
// reconstructed) snapshot whose own counter happens to match.
uint64_t NextParametersVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void StateSnapshot::CaptureFrom(const ModelState& state) {
  CaptureParameters(state);
  CaptureSweepState(state);
}

void StateSnapshot::CaptureSweepState(const ModelState& state) {
  num_communities_ = state.num_communities;
  num_topics_ = state.num_topics;
  vocab_size_ = state.vocab_size;
  alpha_ = state.alpha;
  beta_ = state.beta;
  doc_topic_ = state.doc_topic;
  doc_community_ = state.doc_community;
  n_uc_ = state.n_uc;
  n_u_ = state.n_u;
  n_cz_ = state.n_cz;
  n_c_ = state.n_c;
  n_zw_ = state.n_zw;
  n_z_ = state.n_z;
  lambda_ = state.lambda;
  delta_ = state.delta;
  captured_ = true;
}

void StateSnapshot::CaptureParameters(const ModelState& state) {
  eta_ = state.eta;
  weights_ = state.weights;
  popularity_ = state.popularity;
  parameters_version_ = NextParametersVersion();
}

void StateSnapshot::RestoreTo(ModelState* working) const {
  RestoreSweepStateTo(working);
  RestoreParametersTo(working);
}

void StateSnapshot::RestoreSweepStateTo(ModelState* working) const {
  CPD_CHECK(captured_);
  CPD_CHECK_EQ(working->doc_topic.size(), doc_topic_.size());
  CPD_CHECK_EQ(working->n_zw.size(), n_zw_.size());
  working->InvalidateUserCommunityRows();
  working->doc_topic = doc_topic_;
  working->doc_community = doc_community_;
  working->n_uc = n_uc_;
  working->n_u = n_u_;
  working->n_cz = n_cz_;
  working->n_c = n_c_;
  working->n_zw = n_zw_;
  working->n_z = n_z_;
  working->lambda = lambda_;
  working->delta = delta_;
}

void StateSnapshot::RestoreParametersTo(ModelState* working) const {
  CPD_CHECK_GT(parameters_version_, 0u);
  working->eta = eta_;
  working->weights = weights_;
  working->popularity = popularity_;
}

void StateSnapshot::EncodeSweepState(WireWriter* writer) const {
  CPD_CHECK(captured_);
  writer->I32(num_communities_);
  writer->I32(num_topics_);
  writer->U64(vocab_size_);
  writer->F64(alpha_);
  writer->F64(beta_);
  writer->Vec(doc_topic_);
  writer->Vec(doc_community_);
  writer->Vec(n_uc_);
  writer->Vec(n_u_);
  writer->Vec(n_cz_);
  writer->Vec(n_c_);
  writer->Vec(n_zw_);
  writer->Vec(n_z_);
  writer->Vec(lambda_);
  writer->Vec(delta_);
}

Status StateSnapshot::DecodeSweepState(WireReader* reader) {
  const int32_t communities = reader->I32();
  const int32_t topics = reader->I32();
  const uint64_t vocab = reader->U64();
  alpha_ = reader->F64();
  beta_ = reader->F64();
  reader->Vec(&doc_topic_);
  reader->Vec(&doc_community_);
  reader->Vec(&n_uc_);
  reader->Vec(&n_u_);
  reader->Vec(&n_cz_);
  reader->Vec(&n_c_);
  reader->Vec(&n_zw_);
  reader->Vec(&n_z_);
  reader->Vec(&lambda_);
  reader->Vec(&delta_);
  CPD_RETURN_IF_ERROR(reader->status());
  if (communities < 1 || topics < 1) {
    return Status::InvalidArgument("snapshot: bad dimensions");
  }
  num_communities_ = communities;
  num_topics_ = topics;
  vocab_size_ = static_cast<size_t>(vocab);
  if (doc_topic_.size() != doc_community_.size() ||
      n_uc_.size() != n_u_.size() * static_cast<size_t>(communities) ||
      n_cz_.size() != static_cast<size_t>(communities) *
                          static_cast<size_t>(topics) ||
      n_c_.size() != static_cast<size_t>(communities) ||
      n_zw_.size() != static_cast<size_t>(topics) * vocab_size_ ||
      n_z_.size() != static_cast<size_t>(topics)) {
    return Status::InvalidArgument("snapshot: counter shape mismatch");
  }
  captured_ = true;
  return Status::OK();
}

void StateSnapshot::EncodeParameters(WireWriter* writer) const {
  CPD_CHECK_GT(parameters_version_, 0u);
  writer->Vec(eta_);
  writer->Vec(weights_);
  popularity_.EncodeTo(writer);
}

Status StateSnapshot::DecodeParameters(WireReader* reader) {
  reader->Vec(&eta_);
  reader->Vec(&weights_);
  CPD_RETURN_IF_ERROR(popularity_.DecodeFrom(reader));
  CPD_RETURN_IF_ERROR(reader->status());
  parameters_version_ = NextParametersVersion();
  return Status::OK();
}

namespace {

// Decode helper for the flat-index -> diff maps: validates the entry count
// against the bytes actually remaining before looping, so a corrupt count
// cannot drive a near-endless decode loop.
template <typename Map, typename ReadKey, typename ReadValue>
Status DecodeDiffMap(WireReader* reader, size_t entry_bytes, Map* out,
                     ReadKey read_key, ReadValue read_value) {
  const uint64_t n = reader->U64();
  CPD_RETURN_IF_ERROR(reader->status());
  if (n > reader->remaining() / entry_bytes) {
    return Status::OutOfRange("wire: truncated payload");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = read_key(reader);
    (*out)[key] = read_value(reader);
  }
  return reader->status();
}

}  // namespace

void CounterDelta::EncodeTo(WireWriter* writer) const {
  writer->U64(doc_moves_.size());
  for (const DocMove& move : doc_moves_) {
    writer->I32(move.doc);
    writer->I32(move.topic);
    writer->I32(move.community);
  }
  const auto encode_map = [writer](const auto& map, auto write_key,
                                   auto write_value) {
    writer->U64(map.size());
    for (const auto& [k, v] : map) {
      write_key(k);
      write_value(v);
    }
  };
  const auto i32 = [writer](int32_t v) { writer->I32(v); };
  const auto i64 = [writer](int64_t v) { writer->I64(v); };
  encode_map(user_community_, i64, i32);
  encode_map(community_topic_, i64, i32);
  encode_map(topic_word_, i64, i32);
  encode_map(community_docs_, i32, i32);
  encode_map(topic_tokens_, i32, i64);
}

Status CounterDelta::DecodeFrom(WireReader* reader) {
  const uint64_t num_moves = reader->U64();
  CPD_RETURN_IF_ERROR(reader->status());
  if (num_moves > reader->remaining() / (3 * sizeof(int32_t))) {
    return Status::OutOfRange("wire: truncated payload");
  }
  doc_moves_.clear();
  doc_moves_.reserve(num_moves);
  for (uint64_t i = 0; i < num_moves; ++i) {
    DocMove move;
    move.doc = reader->I32();
    move.topic = reader->I32();
    move.community = reader->I32();
    doc_moves_.push_back(move);
  }
  const auto i32 = [](WireReader* r) { return r->I32(); };
  const auto i64 = [](WireReader* r) { return r->I64(); };
  CPD_RETURN_IF_ERROR(DecodeDiffMap(reader, 12, &user_community_, i64, i32));
  CPD_RETURN_IF_ERROR(DecodeDiffMap(reader, 12, &community_topic_, i64, i32));
  CPD_RETURN_IF_ERROR(DecodeDiffMap(reader, 12, &topic_word_, i64, i32));
  CPD_RETURN_IF_ERROR(DecodeDiffMap(reader, 8, &community_docs_, i32, i32));
  CPD_RETURN_IF_ERROR(DecodeDiffMap(reader, 12, &topic_tokens_, i32, i64));
  return reader->status();
}

void CounterDelta::Clear() {
  doc_moves_.clear();
  user_community_.clear();
  community_topic_.clear();
  topic_word_.clear();
  community_docs_.clear();
  topic_tokens_.clear();
}

size_t CounterDelta::NonzeroEntries() const {
  size_t n = 0;
  for (const auto& kv : user_community_) n += (kv.second != 0);
  for (const auto& kv : community_topic_) n += (kv.second != 0);
  for (const auto& kv : topic_word_) n += (kv.second != 0);
  for (const auto& kv : community_docs_) n += (kv.second != 0);
  for (const auto& kv : topic_tokens_) n += (kv.second != 0);
  return n;
}

void CounterDelta::RecordMove(const Document& doc, DocId d, int32_t c_old,
                              int32_t z_old, int32_t c_new, int32_t z_new,
                              int num_communities, int num_topics,
                              size_t vocab_size) {
  if (c_old == c_new && z_old == z_new) return;
  doc_moves_.push_back({d, z_new, c_new});

  const int64_t kc = num_communities;
  const int64_t kz = num_topics;
  if (c_old != c_new) {
    const int64_t u = static_cast<int64_t>(doc.user);
    --user_community_[u * kc + c_old];
    ++user_community_[u * kc + c_new];
    --community_docs_[c_old];
    ++community_docs_[c_new];
  }
  --community_topic_[static_cast<int64_t>(c_old) * kz + z_old];
  ++community_topic_[static_cast<int64_t>(c_new) * kz + z_new];
  if (z_old != z_new) {
    const int64_t vocab = static_cast<int64_t>(vocab_size);
    for (WordId w : doc.words) {
      --topic_word_[static_cast<int64_t>(z_old) * vocab + w];
      ++topic_word_[static_cast<int64_t>(z_new) * vocab + w];
    }
    topic_tokens_[z_old] -= static_cast<int64_t>(doc.words.size());
    topic_tokens_[z_new] += static_cast<int64_t>(doc.words.size());
  }
}

void CounterDelta::Merge(const CounterDelta& other) {
  doc_moves_.insert(doc_moves_.end(), other.doc_moves_.begin(),
                    other.doc_moves_.end());
  for (const auto& [k, v] : other.user_community_) user_community_[k] += v;
  for (const auto& [k, v] : other.community_topic_) community_topic_[k] += v;
  for (const auto& [k, v] : other.topic_word_) topic_word_[k] += v;
  for (const auto& [k, v] : other.community_docs_) community_docs_[k] += v;
  for (const auto& [k, v] : other.topic_tokens_) topic_tokens_[k] += v;
}

void CounterDelta::ApplyTo(ModelState* state) const {
  state->InvalidateUserCommunityRows();
  for (const DocMove& move : doc_moves_) {
    state->doc_topic[static_cast<size_t>(move.doc)] = move.topic;
    state->doc_community[static_cast<size_t>(move.doc)] = move.community;
  }
  for (const auto& [k, v] : user_community_) {
    state->n_uc[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : community_topic_) {
    state->n_cz[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : topic_word_) {
    state->n_zw[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : community_docs_) {
    state->n_c[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : topic_tokens_) {
    state->n_z[static_cast<size_t>(k)] += v;
  }
}

}  // namespace cpd
