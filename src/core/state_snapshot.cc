#include "core/state_snapshot.h"

#include <atomic>

#include "util/logging.h"

namespace cpd {

namespace {

// Parameter versions are process-unique, not per-instance: a slot that
// cached "version N restored" can never be fooled by a different (or
// reconstructed) snapshot whose own counter happens to match.
uint64_t NextParametersVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void StateSnapshot::CaptureFrom(const ModelState& state) {
  CaptureParameters(state);
  CaptureSweepState(state);
}

void StateSnapshot::CaptureSweepState(const ModelState& state) {
  num_communities_ = state.num_communities;
  num_topics_ = state.num_topics;
  vocab_size_ = state.vocab_size;
  alpha_ = state.alpha;
  beta_ = state.beta;
  doc_topic_ = state.doc_topic;
  doc_community_ = state.doc_community;
  n_uc_ = state.n_uc;
  n_u_ = state.n_u;
  n_cz_ = state.n_cz;
  n_c_ = state.n_c;
  n_zw_ = state.n_zw;
  n_z_ = state.n_z;
  lambda_ = state.lambda;
  delta_ = state.delta;
  captured_ = true;
}

void StateSnapshot::CaptureParameters(const ModelState& state) {
  eta_ = state.eta;
  weights_ = state.weights;
  popularity_ = state.popularity;
  parameters_version_ = NextParametersVersion();
}

void StateSnapshot::RestoreTo(ModelState* working) const {
  RestoreSweepStateTo(working);
  RestoreParametersTo(working);
}

void StateSnapshot::RestoreSweepStateTo(ModelState* working) const {
  CPD_CHECK(captured_);
  CPD_CHECK_EQ(working->doc_topic.size(), doc_topic_.size());
  CPD_CHECK_EQ(working->n_zw.size(), n_zw_.size());
  working->InvalidateUserCommunityRows();
  working->doc_topic = doc_topic_;
  working->doc_community = doc_community_;
  working->n_uc = n_uc_;
  working->n_u = n_u_;
  working->n_cz = n_cz_;
  working->n_c = n_c_;
  working->n_zw = n_zw_;
  working->n_z = n_z_;
  working->lambda = lambda_;
  working->delta = delta_;
}

void StateSnapshot::RestoreParametersTo(ModelState* working) const {
  CPD_CHECK_GT(parameters_version_, 0u);
  working->eta = eta_;
  working->weights = weights_;
  working->popularity = popularity_;
}

void CounterDelta::Clear() {
  doc_moves_.clear();
  user_community_.clear();
  community_topic_.clear();
  topic_word_.clear();
  community_docs_.clear();
  topic_tokens_.clear();
}

size_t CounterDelta::NonzeroEntries() const {
  size_t n = 0;
  for (const auto& kv : user_community_) n += (kv.second != 0);
  for (const auto& kv : community_topic_) n += (kv.second != 0);
  for (const auto& kv : topic_word_) n += (kv.second != 0);
  for (const auto& kv : community_docs_) n += (kv.second != 0);
  for (const auto& kv : topic_tokens_) n += (kv.second != 0);
  return n;
}

void CounterDelta::RecordMove(const Document& doc, DocId d, int32_t c_old,
                              int32_t z_old, int32_t c_new, int32_t z_new,
                              int num_communities, int num_topics,
                              size_t vocab_size) {
  if (c_old == c_new && z_old == z_new) return;
  doc_moves_.push_back({d, z_new, c_new});

  const int64_t kc = num_communities;
  const int64_t kz = num_topics;
  if (c_old != c_new) {
    const int64_t u = static_cast<int64_t>(doc.user);
    --user_community_[u * kc + c_old];
    ++user_community_[u * kc + c_new];
    --community_docs_[c_old];
    ++community_docs_[c_new];
  }
  --community_topic_[static_cast<int64_t>(c_old) * kz + z_old];
  ++community_topic_[static_cast<int64_t>(c_new) * kz + z_new];
  if (z_old != z_new) {
    const int64_t vocab = static_cast<int64_t>(vocab_size);
    for (WordId w : doc.words) {
      --topic_word_[static_cast<int64_t>(z_old) * vocab + w];
      ++topic_word_[static_cast<int64_t>(z_new) * vocab + w];
    }
    topic_tokens_[z_old] -= static_cast<int64_t>(doc.words.size());
    topic_tokens_[z_new] += static_cast<int64_t>(doc.words.size());
  }
}

void CounterDelta::Merge(const CounterDelta& other) {
  doc_moves_.insert(doc_moves_.end(), other.doc_moves_.begin(),
                    other.doc_moves_.end());
  for (const auto& [k, v] : other.user_community_) user_community_[k] += v;
  for (const auto& [k, v] : other.community_topic_) community_topic_[k] += v;
  for (const auto& [k, v] : other.topic_word_) topic_word_[k] += v;
  for (const auto& [k, v] : other.community_docs_) community_docs_[k] += v;
  for (const auto& [k, v] : other.topic_tokens_) topic_tokens_[k] += v;
}

void CounterDelta::ApplyTo(ModelState* state) const {
  state->InvalidateUserCommunityRows();
  for (const DocMove& move : doc_moves_) {
    state->doc_topic[static_cast<size_t>(move.doc)] = move.topic;
    state->doc_community[static_cast<size_t>(move.doc)] = move.community;
  }
  for (const auto& [k, v] : user_community_) {
    state->n_uc[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : community_topic_) {
    state->n_cz[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : topic_word_) {
    state->n_zw[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : community_docs_) {
    state->n_c[static_cast<size_t>(k)] += v;
  }
  for (const auto& [k, v] : topic_tokens_) {
    state->n_z[static_cast<size_t>(k)] += v;
  }
}

}  // namespace cpd
