#include "synth/synth_config.h"

namespace cpd {

SynthConfig SynthConfig::TwitterLike() {
  SynthConfig config;
  // Scaled-down analogue of the May-2011 Twitter crawl (Table 3): many short
  // documents per user, dense directed followership, retweets concentrated
  // on bursty topics, hashtags available as ranking queries.
  config.num_users = 400;
  config.num_communities = 10;
  config.num_topics = 12;
  config.background_vocab = 1500;
  config.docs_per_user_mean = 9.0;
  config.doc_length_min = 4;
  config.doc_length_max = 9;
  config.num_time_bins = 30;  // "Days".
  config.avg_friend_degree = 14.0;
  config.intra_community_fraction = 0.8;
  config.symmetric_friendship = false;
  config.primary_membership = 0.65;
  config.secondary_membership = 0.2;  // Twitter users are topically diverse.
  config.topics_per_community = 4;
  config.diffusion_per_doc = 0.35;
  config.eta_self_mass = 0.6;
  config.cross_ties_per_community = 2;
  config.individual_strength = 1.2;
  config.diffusion_same_topic = 0.9;  // Retweets are near-verbatim copies.
  config.wave_sharpness = 3.0;  // Bursty trending topics.
  config.add_hashtags = true;
  config.seed = 20110501;
  return config;
}

SynthConfig SynthConfig::DBLPLike() {
  SynthConfig config;
  // Scaled-down analogue of the DBLP dump (Table 3): one "paper title" is a
  // document, co-authorship is symmetric, citations are plentiful relative
  // to papers, time bins are years, and users stay within one research area
  // (low per-user topic diversity, which §6.4 credits for DBLP's better
  // parallel speedup).
  config.num_users = 500;
  config.num_communities = 10;
  config.num_topics = 12;
  config.background_vocab = 1200;
  config.docs_per_user_mean = 4.0;
  config.doc_length_min = 5;
  config.doc_length_max = 11;
  config.num_time_bins = 40;  // "Years".
  config.avg_friend_degree = 8.0;
  config.intra_community_fraction = 0.9;
  config.symmetric_friendship = true;
  config.primary_membership = 0.85;
  config.secondary_membership = 0.08;
  config.topics_per_community = 3;
  config.diffusion_per_doc = 1.2;  // Citations outnumber papers.
  config.eta_self_mass = 0.55;
  config.cross_ties_per_community = 2;
  config.individual_strength = 1.0;
  config.diffusion_same_topic = 0.35;  // Citing titles read like the citer's field.
  config.wave_sharpness = 1.5;  // Research topics rise and fall slowly.
  config.add_hashtags = false;
  config.seed = 19362010;
  return config;
}

}  // namespace cpd
