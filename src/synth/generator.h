#ifndef CPD_SYNTH_GENERATOR_H_
#define CPD_SYNTH_GENERATOR_H_

/// \file generator.h
/// Planted-model social-graph generator (the dataset substitution of
/// DESIGN.md §2). Generation steps:
///  1. topic-word distributions phi*: themed seed words (networking,
///     security, databases, ...) + Zipfian filler, so Table-5-style top-word
///     lists are human-readable;
///  2. community memberships pi* (home + secondary community) and content
///     profiles theta* (a few topics per community);
///  3. directed friendship links with a planted intra-community fraction
///     (low conductance);
///  4. documents: community ~ pi*, topic ~ theta*, words ~ phi*, timestamp ~
///     the topic's popularity wave;
///  5. diffusion profile eta*: strong self-diffusion on home topics plus
///     planted cross-community ties ("weak ties" of §1);
///  6. diffusion events: source doc j ~ popularity-weighted; diffusing
///     community ~ eta*[., c_j, z_j]; diffusing user ~ membership x
///     sociability (individual factor); a NEW document with topic z_j is
///     authored by the diffuser at a later time bin and linked to j — the
///     retweet/citation semantics of Definition 1.

#include "graph/social_graph.h"
#include "synth/ground_truth.h"
#include "synth/synth_config.h"
#include "util/status.h"

namespace cpd {

struct SynthResult {
  SocialGraph graph;
  SynthGroundTruth truth;
};

/// Generates a graph + planted truth. Deterministic given config.seed.
StatusOr<SynthResult> GenerateSocialGraph(const SynthConfig& config);

/// The themed seed-word lists (exposed for tests and for query selection).
/// There are kNumThemes lists; topic z uses list z % kNumThemes.
inline constexpr int kNumThemes = 12;
const std::vector<std::string>& ThemeWords(int theme);

}  // namespace cpd

#endif  // CPD_SYNTH_GENERATOR_H_
