#include "synth/queries.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace cpd {

std::vector<RankingQuery> BuildRankingQueries(const SocialGraph& graph,
                                              const QueryOptions& options,
                                              Rng* rng) {
  const Vocabulary& vocab = graph.corpus().vocabulary();
  const size_t num_users = graph.num_users();

  // Users mentioning word w in a *diffusing* document (a diffusion source).
  std::unordered_map<WordId, std::unordered_set<UserId>> mentions;
  std::vector<char> is_source(graph.num_documents(), 0);
  for (const DiffusionLink& link : graph.diffusion_links()) {
    is_source[static_cast<size_t>(link.i)] = 1;
  }
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    if (!is_source[d]) continue;
    const Document& doc = graph.document(static_cast<DocId>(d));
    for (WordId w : doc.words) mentions[w].insert(doc.user);
  }

  // Candidate words under the frequency and shape filters.
  std::vector<std::pair<int64_t, WordId>> by_frequency;
  for (size_t w = 0; w < vocab.size(); ++w) {
    const WordId word = static_cast<WordId>(w);
    const int64_t freq = vocab.Frequency(word);
    if (freq < static_cast<int64_t>(options.min_frequency)) continue;
    const bool is_hashtag = !vocab.WordOf(word).empty() && vocab.WordOf(word)[0] == '#';
    if (options.hashtags_only && !is_hashtag) continue;
    by_frequency.emplace_back(freq, word);
  }
  std::sort(by_frequency.begin(), by_frequency.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // DBLP convention: drop the most frequent (uninformative) words.
  const size_t skip = std::min(options.skip_top_frequent, by_frequency.size());

  std::vector<RankingQuery> queries;
  for (size_t idx = skip; idx < by_frequency.size(); ++idx) {
    const WordId word = by_frequency[idx].second;
    auto it = mentions.find(word);
    if (it == mentions.end() || it->second.size() < options.min_relevant_users) {
      continue;
    }
    RankingQuery query;
    query.word = word;
    query.relevant_users.assign(num_users, 0);
    for (UserId u : it->second) query.relevant_users[static_cast<size_t>(u)] = 1;
    query.num_relevant = it->second.size();
    queries.push_back(std::move(query));
  }

  // Subsample deterministically if over the cap.
  if (queries.size() > options.max_queries) {
    for (size_t i = queries.size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(rng->NextUint64(i + 1));
      std::swap(queries[i], queries[j]);
    }
    queries.resize(options.max_queries);
  }
  return queries;
}

}  // namespace cpd
